"""Property-based tests for the vectorised kernels (Hypothesis).

The differential suites pin the kernels to *specific* reference models; this
file pins their *algebraic* properties over machine-generated inputs:

* ``lru_miss_flags(..., ways=1)`` is exactly the direct-mapped recurrence;
* miss counts are monotonically non-increasing in associativity (the
  Mattson/LRU inclusion property — the very fact the kernel exploits);
* every access sequence pays at least its cold misses, and the fully-
  degenerate ``ways >= distinct blocks per set`` run pays *only* cold misses;
* :func:`per_set_counts` accepts unsigned / platform index dtypes (the
  ``np.bincount`` foot-gun this PR fixed) and handles empty traces and
  single-set geometries.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.fastsim import (
    direct_mapped_miss_flags,
    lru_miss_count,
    lru_miss_flags,
    lru_stack_distances,
    per_set_counts,
)

#: Small universes force heavy aliasing, the interesting regime.
access_arrays = st.integers(min_value=0, max_value=400).flatmap(
    lambda n: st.tuples(
        hnp.arrays(np.int64, n, elements=st.integers(min_value=0, max_value=40)),
        hnp.arrays(np.int64, n, elements=st.integers(min_value=0, max_value=11)),
    )
)


class TestKernelProperties:
    @given(access_arrays)
    @settings(max_examples=120, deadline=None)
    def test_ways_one_equals_direct_mapped(self, arrays):
        blocks, indices = arrays
        np.testing.assert_array_equal(
            lru_miss_flags(blocks, indices, 1),
            direct_mapped_miss_flags(blocks, indices),
        )

    @given(access_arrays)
    @settings(max_examples=120, deadline=None)
    def test_misses_monotone_non_increasing_in_ways(self, arrays):
        blocks, indices = arrays
        counts = [lru_miss_count(blocks, indices, w) for w in (1, 2, 3, 4, 8, 16, 64)]
        assert counts == sorted(counts, reverse=True)

    @given(access_arrays)
    @settings(max_examples=120, deadline=None)
    def test_cold_misses_bound_every_associativity(self, arrays):
        blocks, indices = arrays
        # Distinct (set, block) pairs = compulsory misses under any ways.
        cold = len(set(zip(indices.tolist(), blocks.tolist())))
        for ways in (1, 2, 8):
            assert lru_miss_count(blocks, indices, ways) >= cold
        # With more ways than distinct blocks nothing is ever evicted.
        assert lru_miss_count(blocks, indices, 64) == cold

    @given(access_arrays)
    @settings(max_examples=120, deadline=None)
    def test_stack_distance_structure(self, arrays):
        blocks, indices = arrays
        dist = lru_stack_distances(blocks, indices)
        # Exactly the first occurrence of each (set, block) pair is cold.
        cold = len(set(zip(indices.tolist(), blocks.tolist())))
        assert int((dist < 0).sum()) == cold
        # Warm distances are bounded by the set's distinct-block population.
        assert dist.max(initial=-1) < max(len(blocks), 1)


class TestPerSetCountsEdgeCases:
    @pytest.mark.parametrize(
        "dtype", [np.uint8, np.uint32, np.uint64, np.int32, np.intp, np.uintp]
    )
    def test_accepts_any_integer_dtype(self, dtype):
        indices = np.array([0, 3, 3, 1, 0, 3], dtype=dtype)
        miss = np.array([1, 0, 1, 0, 0, 1], dtype=bool)
        acc, mis = per_set_counts(indices, miss, 4)
        assert acc.tolist() == [2, 1, 0, 3]
        assert mis.tolist() == [1, 0, 0, 2]
        assert acc.dtype == np.int64 and mis.dtype == np.int64

    def test_rejects_non_integer_dtype(self):
        with pytest.raises(TypeError):
            per_set_counts(np.array([0.0, 1.0]), np.array([True, False]), 2)

    def test_empty_trace(self):
        acc, mis = per_set_counts(
            np.empty(0, dtype=np.uint32), np.empty(0, dtype=bool), 8
        )
        assert acc.shape == (8,) and mis.shape == (8,)
        assert int(acc.sum()) == 0 and int(mis.sum()) == 0

    def test_single_set(self):
        indices = np.zeros(5, dtype=np.uint64)
        miss = np.array([True, False, False, True, False])
        acc, mis = per_set_counts(indices, miss, 1)
        assert acc.tolist() == [5] and mis.tolist() == [2]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            per_set_counts(np.array([0, 1]), np.array([True]), 2)
