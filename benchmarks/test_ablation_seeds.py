"""Ablation: seed robustness of the headline conclusions.

A reproduction's conclusions should not hinge on one RNG seed.  This bench
re-runs the core comparisons with three different workload seeds and asserts
the *signs and orderings* (not the magnitudes) hold each time:

* fft gains massively from every hashing scheme;
* the programmable-associativity trio stays non-negative on the conflict
  benchmarks;
* the SMT per-thread-multiplier gain on fft+susan persists.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import run_once

from repro.core.caches import AdaptiveGroupAssociativeCache, ColumnAssociativeCache
from repro.core.indexing import ModuloIndexing, OddMultiplierIndexing
from repro.core.selector import ThreadSchemeTable
from repro.core.simulator import simulate, simulate_indexing
from repro.multithread import SMTSharedCache, simulate_smt
from repro.trace import round_robin
from repro.workloads import get_workload

SEEDS = (101, 202, 303)


def test_seed_robustness(benchmark, config):
    g = config.geometry
    refs = min(config.ref_limit, 40_000)

    def run():
        rows = {}
        for seed in SEEDS:
            fft = get_workload("fft").generate(seed=seed, ref_limit=refs)
            base = simulate_indexing(ModuloIndexing(g), fft, g)
            odd = simulate_indexing(OddMultiplierIndexing(g, 9), fft, g)
            col = simulate(ColumnAssociativeCache(g), fft)
            ada = simulate(AdaptiveGroupAssociativeCache(g), fft)
            susan = get_workload("susan").generate(seed=seed + 1, ref_limit=refs // 2)
            fft_half = get_workload("fft").generate(seed=seed, ref_limit=refs // 2)
            mix = round_robin([fft_half, susan])
            smt_base = simulate_smt(
                SMTSharedCache(g, ThreadSchemeTable([ModuloIndexing(g)] * 2)), mix
            )
            smt_multi = simulate_smt(
                SMTSharedCache(
                    g,
                    ThreadSchemeTable(
                        [OddMultiplierIndexing(g, 9), OddMultiplierIndexing(g, 31)]
                    ),
                ),
                mix,
            )
            rows[seed] = {
                "fft_odd_red": 100 * (base.misses - odd.misses) / base.misses,
                "fft_col_red": 100 * (base.misses - col.misses) / base.misses,
                "fft_ada_red": 100 * (base.misses - ada.misses) / base.misses,
                "smt_red": 100 * (smt_base.misses - smt_multi.misses) / smt_base.misses,
            }
        return rows

    rows = run_once(benchmark, run)
    print()
    for seed, row in rows.items():
        print(
            f"seed {seed}: fft odd {row['fft_odd_red']:+.1f}%  "
            f"col {row['fft_col_red']:+.1f}%  ada {row['fft_ada_red']:+.1f}%  "
            f"smt {row['smt_red']:+.1f}%"
        )
        assert row["fft_odd_red"] > 50.0
        assert row["fft_col_red"] > 50.0
        assert row["fft_ada_red"] > 50.0
        assert row["smt_red"] > 30.0
