"""Address-space model tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace.memory import AddressSpace, Array, SegmentLayout, StackFrame


class TestArray:
    def test_addressing(self):
        a = Array(base=1000, elem_size=8, length=10, name="a")
        assert a.addr(0) == 1000
        assert a.addr(3) == 1024
        assert a.size_bytes == 80
        assert a.end == 1080

    def test_bounds(self):
        a = Array(0, 4, 5)
        with pytest.raises(IndexError):
            a.addr(5)
        with pytest.raises(IndexError):
            a.addr(-1)

    def test_vectorised(self):
        a = Array(64, 4, 100)
        idx = np.array([0, 2, 99])
        assert a.addrs(idx).tolist() == [64, 72, 460]
        with pytest.raises(IndexError):
            a.addrs(np.array([100]))

    def test_field_addr(self):
        a = Array(0, 32, 4)
        assert a.field_addr(1, 8) == 40
        with pytest.raises(IndexError):
            a.field_addr(0, 32)


class TestAddressSpace:
    def test_segments_disjoint(self):
        sp = AddressSpace()
        s = sp.static_array(4, 100)
        h = sp.heap_array(4, 100)
        m = sp.mmap_array(4, 100)
        frame = sp.push_frame(128)
        ranges = [
            (s.base, s.end),
            (h.base, h.end),
            (m.base, m.end),
            (frame.base, frame.base + frame.size),
        ]
        ranges.sort()
        for (lo1, hi1), (lo2, hi2) in zip(ranges, ranges[1:]):
            assert hi1 <= lo2

    def test_heap_allocations_do_not_overlap(self):
        sp = AddressSpace()
        arrays = [sp.heap_array(8, 50) for _ in range(20)]
        for a, b in zip(arrays, arrays[1:]):
            assert a.end <= b.base

    def test_heap_padding_separates(self):
        sp = AddressSpace(heap_padding=16)
        a = sp.heap_array(1, 10)
        b = sp.heap_array(1, 10)
        assert b.base - a.end >= 6  # padding minus alignment slack

    def test_alignment(self):
        sp = AddressSpace()
        a = sp.heap_array(4, 3, align=4096)
        assert a.base % 4096 == 0
        with pytest.raises(ValueError):
            sp.malloc(8, align=3)

    def test_mmap_page_aligned(self):
        sp = AddressSpace()
        assert sp.mmap_array(8, 10).base % 4096 == 0

    def test_stack_grows_down(self):
        sp = AddressSpace()
        f1 = sp.push_frame(64)
        f2 = sp.push_frame(64)
        assert f2.base < f1.base
        sp.pop_frame()
        sp.pop_frame()
        with pytest.raises(RuntimeError):
            sp.pop_frame()

    def test_stack_depth(self):
        sp = AddressSpace()
        sp.push_frame()
        sp.push_frame()
        assert sp.stack_depth == 2

    def test_thread_spaces_disjoint(self):
        sp0 = AddressSpace(thread=0)
        sp1 = AddressSpace(thread=1)
        a0 = sp0.heap_array(8, 1000)
        a1 = sp1.heap_array(8, 1000)
        assert a0.end <= a1.base or a1.end <= a0.base

    def test_heap_used(self):
        sp = AddressSpace(thread=2)
        sp.heap_array(8, 100)
        assert sp.heap_used >= 800

    def test_bases_not_capacity_aligned(self):
        """Regression: capacity-aligned segment bases made unrelated hot
        objects alias to set 0 and corrupted the crc baseline."""
        layout = SegmentLayout()
        for base in (layout.static_base, layout.heap_base, layout.stack_top, layout.mmap_base):
            assert base % (32 * 1024) != 0


class TestStackFrame:
    def test_locals_distinct(self):
        f = StackFrame(base=1000, size=64)
        a = f.local("a", 8)
        b = f.local("b", 8)
        assert a != b
        assert f.local("a", 8) == a  # idempotent

    def test_overflow(self):
        f = StackFrame(base=0, size=16)
        f.local("x", 8)
        with pytest.raises(MemoryError):
            f.local("y", 16)

    def test_local_array(self):
        f = StackFrame(base=100, size=256)
        arr = f.local_array("buf", 4, 10)
        assert arr.length == 10
        assert 100 <= arr.base < 356
        assert f.local_array("buf", 4, 10).base == arr.base
