"""Figure 8 — column-associative cache with non-conventional primary indexes.

On the SPEC-like workloads: a column-associative cache whose *primary*
index function is XOR, odd-multiplier or prime-modulo, measured as
% reduction in misses versus the plain (conventionally indexed)
column-associative cache.  Paper shape: odd-multiplier best on average;
some benchmarks regress under non-conventional indexes (their text calls
out calculix and sjeng).
"""

from __future__ import annotations

from ..core.caches import ColumnAssociativeCache
from ..core.indexing import OddMultiplierIndexing, PrimeModuloIndexing, XorIndexing
from ..core.simulator import simulate
from ..core.uniformity import percent_reduction
from ..workloads.spec import SPEC_ORDER
from .config import PaperConfig
from .report import ExperimentResult
from .runner import register_experiment, workload_trace

__all__ = ["run_fig08", "FIG8_COLUMNS"]

FIG8_COLUMNS = [
    "ColAssoc_XOR",
    "ColAssoc_Odd_Multiplier",
    "ColAssoc_Prime_Modulo",
]


@register_experiment("fig8")
def run_fig08(config: PaperConfig) -> ExperimentResult:
    g = config.geometry
    result = ExperimentResult(
        experiment_id="fig8",
        title="% reduction in miss rate: indexed column-associative vs plain",
        columns=FIG8_COLUMNS,
    )
    for bench in SPEC_ORDER:
        trace = workload_trace(bench, config)
        base = simulate(ColumnAssociativeCache(g), trace)
        variants = {
            "ColAssoc_XOR": XorIndexing(g),
            "ColAssoc_Odd_Multiplier": OddMultiplierIndexing(g, config.odd_multiplier),
            "ColAssoc_Prime_Modulo": PrimeModuloIndexing(g),
        }
        row = {}
        for label, scheme in variants.items():
            sim = simulate(ColumnAssociativeCache(g, indexing=scheme), trace)
            row[label] = percent_reduction(sim.misses, base.misses)
        result.add_row(bench, row)
    result.add_average_row()
    result.note("paper shape: odd-multiplier best on average; some benchmarks regress")
    return result
