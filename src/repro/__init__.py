"""repro — reproduction of *Evaluation of Techniques to Improve Cache Access
Uniformities* (Nwachukwu, Kavi, Fawibe & Yan, ICPP 2011).

Public API tour
---------------

Geometry & simulation::

    from repro import CacheGeometry, simulate, simulate_indexing
    from repro.core.caches import DirectMappedCache, ColumnAssociativeCache

Indexing schemes (paper Section II)::

    from repro.core.indexing import (
        ModuloIndexing, XorIndexing, OddMultiplierIndexing,
        PrimeModuloIndexing, GivargisIndexing, GivargisXorIndexing,
    )

Workloads (MiBench / SPEC-like trace generators)::

    from repro.workloads import get_workload
    trace = get_workload("fft").generate(seed=1, ref_limit=200_000)

Experiments (one per paper figure)::

    from repro.experiments import run_experiment
    result = run_experiment("fig4")
"""

from .core import (
    PAPER_L1_GEOMETRY,
    PAPER_L2_GEOMETRY,
    CacheGeometry,
    CacheHierarchy,
    SimulationResult,
    TimingModel,
    profile_schemes,
    simulate,
    simulate_indexing,
    uniformity_report,
)
from .trace import Trace, record

__version__ = "1.0.0"

__all__ = [
    "CacheGeometry",
    "PAPER_L1_GEOMETRY",
    "PAPER_L2_GEOMETRY",
    "TimingModel",
    "CacheHierarchy",
    "SimulationResult",
    "simulate",
    "simulate_indexing",
    "profile_schemes",
    "uniformity_report",
    "Trace",
    "record",
    "__version__",
]
