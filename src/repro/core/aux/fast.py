"""Exact miss-event replay engine for direct-mapped aux compositions.

Exactness argument (DESIGN.md §5.7)
-----------------------------------
For a *direct-mapped* base array the composed simulation decomposes
exactly, whatever auxiliary structures ride along:

1. **The main array is oblivious to the aux layer.**  After any access to
   set ``s`` the resident line of ``s`` is the accessed block — a direct
   hit trivially, a victim-buffer hit by the swap, a miss-cache or
   stream-buffer hit by the copy-in, and a full miss by the fill.  The
   main-array hit/miss outcome of access ``i`` therefore depends only on
   the previous access to the same set (hit iff same block), which is the
   set-local adjacent-compare already vectorised by
   :func:`~repro.core.fastsim.direct_mapped_miss_flags` — absorption
   never feeds back into main-array state.
2. **The displaced line is the previous block of the set.**  By the same
   resident-after-access property, the line a main-array miss displaces
   is simply the block of the set's previous access (none on the set's
   first access) — a vectorised grouped shift, no replay needed.
3. **Aux state changes only at main-array misses**, as a pure function of
   the program-ordered stream of ``(missed block, displaced block)``
   events.  The fast path replays exactly that event stream through the
   *actual structure objects*, issuing the same protocol calls in the
   same order as :class:`~repro.core.aux.augmented.AugmentedCache` —
   structural equivalence, so buffer end states match byte for byte.

The speedup is the miss rate: a trace that hits the main array 90% of the
time replays one tenth of its accesses through Python, with everything
else answered by two vectorised passes
(``benchmarks/test_aux_bench.py`` gates ≥ 5× at one million accesses;
bit-identity is locked by ``tests/core/test_aux_differential.py``).

Anything outside the provable region — a set-associative or otherwise
stateful base, an unregistered structure type, pre-warmed contents, a
subclass overriding the access path — falls back to the sequential
reference engine, the same ``engine="auto"``/``"sequential"`` contract as
:mod:`~repro.core.fastassoc` and :mod:`~repro.core.fastpolicy`.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

import numpy as np

from ...trace.event import Trace
from ..address import CacheGeometry
from ..caches.base import EMPTY, CacheModel, CacheStats
from ..caches.direct_mapped import DirectMappedCache
from ..fastsim import direct_mapped_miss_flags, per_set_counts
from ..indexing.base import IndexingScheme
from ..simulator import SimulationResult, _result_from_stats, simulate
from .augmented import AugmentedCache
from .structures import AuxStructure, MissCache, StreamBuffer, VictimBuffer

__all__ = [
    "AUX_COMBOS",
    "make_aux_structures",
    "has_aux_fast_path",
    "simulate_augmented",
    "simulate_aux",
    "simulate_aux_sweep",
]

#: Composition specs with first-class support (probe priority in order).
AUX_COMBOS = ("vc", "mc", "sb", "vc+sb", "mc+sb")

_ENGINES = ("auto", "sequential")

#: Structure types the replay is proven against (the protocol calls they
#: receive are identical between engines; anything else falls back).
_EXACT_STRUCTURES = (VictimBuffer, MissCache, StreamBuffer)


def make_aux_structures(
    combo: str,
    depth: int,
    streams: int = 4,
    allocate: str = "miss",
) -> tuple[AuxStructure, ...]:
    """Build the structure tuple for a ``+``-joined combo spec.

    ``depth`` is every structure's size knob: buffer lines for vc/mc,
    queue depth for sb.  ``streams``/``allocate`` only shape stream
    buffers and are ignored by combos without one.
    """
    parts = combo.split("+")
    if combo not in AUX_COMBOS:
        raise ValueError(f"unknown aux combo {combo!r}; known: {AUX_COMBOS}")
    out: list[AuxStructure] = []
    for part in parts:
        if part == "vc":
            out.append(VictimBuffer(depth))
        elif part == "mc":
            out.append(MissCache(depth))
        else:
            out.append(StreamBuffer(depth, streams=streams, allocate=allocate))
    return tuple(out)


# -- the replay -------------------------------------------------------------------


def _decode(scheme: IndexingScheme, trace: Trace, geometry: CacheGeometry):
    blocks = trace.blocks(geometry.offset_bits).astype(np.int64)
    indices = scheme.indices_of(trace.addresses)
    if indices.size and (indices.min() < 0 or indices.max() >= geometry.num_sets):
        raise ValueError("indexing scheme produced an out-of-range set index")
    return blocks, indices


def _prev_blocks(blocks: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Per access, the block of the previous access to the same set
    (``EMPTY`` on the set's first access) — the displaced line when the
    access misses the direct-mapped main array."""
    n = int(blocks.size)
    prev = np.full(n, EMPTY, dtype=np.int64)
    if not n:
        return prev
    indices64 = np.ascontiguousarray(indices, dtype=np.int64)
    if int(indices64.max()) < (1 << 62) // n:
        # Packed-key grouping (see fastsim.lru_stack_distances): sort by
        # (set, program order) and decode both outputs.
        key = np.sort(indices64 * np.int64(n) + np.arange(n, dtype=np.int64))
        sorted_idx = key // n
        order = key - sorted_idx * n
    else:
        order = np.argsort(indices64, kind="stable")
        sorted_idx = indices64[order]
    sorted_blk = np.asarray(blocks)[order]
    prev_sorted = np.full(n, EMPTY, dtype=np.int64)
    same = sorted_idx[1:] == sorted_idx[:-1]
    prev_sorted[1:][same] = sorted_blk[:-1][same]
    prev[order] = prev_sorted
    return prev


def _replay(
    structures: tuple[AuxStructure, ...],
    blk_l: list[int],
    prev_l: list[int],
    stats: CacheStats,
) -> bytearray:
    """Replay the main-miss event stream through the aux structures.

    Issues the exact protocol-call sequence of
    ``AugmentedCache._access_block``'s miss path, mutating the given
    structure objects.  Returns one class code per event: 0 = full miss,
    ``1 + i`` = serviced by ``structures[i]``.
    """
    cls = bytearray(len(blk_l))
    for k in range(len(blk_l)):
        block = blk_l[k]
        hit_i = -1
        for i, st in enumerate(structures):
            if st.probe(block, stats):
                hit_i = i
                break
        leaving = prev_l[k]
        if leaving != EMPTY:
            for st in structures:
                leaving = st.on_eviction(leaving, stats)
                if leaving is None:
                    break
        for i, st in enumerate(structures):
            if i != hit_i:
                st.on_main_miss(block, stats)
        if hit_i < 0:
            for st in structures:
                st.on_full_miss(block, stats)
        else:
            cls[k] = 1 + hit_i
    return cls


def _composed_stats(
    structures: tuple[AuxStructure, ...],
    stats: CacheStats,
    indices: np.ndarray,
    mpos: np.ndarray,
    cls: bytearray,
    num_sets: int,
) -> int:
    """Fill the wrapper-level counters into ``stats`` (the replay already
    bumped structure-private extras there); returns the lookup cycles."""
    n = int(indices.size)
    cls_arr = np.frombuffer(bytes(cls), dtype=np.uint8)
    full_miss = np.zeros(n, dtype=bool)
    full_miss[mpos[cls_arr == 0]] = True
    accesses, misses = per_set_counts(indices, full_miss, num_sets)
    total_misses = int(full_miss.sum())
    stats.accesses = n
    stats.hits = n - total_misses
    stats.misses = total_misses
    stats.slot_accesses = accesses
    stats.slot_hits = accesses - misses
    stats.slot_misses = misses
    main_hits = n - int(mpos.size)
    cycles = main_hits + total_misses
    if main_hits:
        stats.extra["direct_hits"] = main_hits
    aux_counts = np.bincount(cls_arr, minlength=len(structures) + 1)
    for i, st in enumerate(structures):
        count = int(aux_counts[i + 1])
        if count:
            stats.extra[st.hit_class + "_hits"] = count
            cycles += count * st.hit_cycles
    return cycles


def _restore_base(
    base: DirectMappedCache,
    blocks: np.ndarray,
    indices: np.ndarray,
    miss: np.ndarray,
    num_sets: int,
) -> None:
    """Write the main-array view (contents + stats) into the base model."""
    n = int(blocks.size)
    last = np.full(num_sets, -1, dtype=np.int64)
    if n:
        np.maximum.at(last, indices, np.arange(n, dtype=np.int64))
    filled = last >= 0
    flat = np.full(num_sets, EMPTY, dtype=np.int64)
    flat[filled] = blocks[last[filled]]
    base._blocks[:] = flat
    accesses, misses = per_set_counts(indices, miss, num_sets)
    bs = CacheStats(num_sets)
    bs.accesses = n
    bs.misses = int(miss.sum())
    bs.hits = n - bs.misses
    bs.slot_accesses = accesses
    bs.slot_hits = accesses - misses
    bs.slot_misses = misses
    if bs.hits:
        bs.extra["direct_hits"] = bs.hits
    base.stats = bs


def has_aux_fast_path(cache: CacheModel) -> bool:
    """True iff :func:`simulate_augmented` would take the replay engine."""
    if not isinstance(cache, AugmentedCache):
        return False
    t = type(cache)
    if (
        t._access_block is not AugmentedCache._access_block
        or t.access is not CacheModel.access
    ):
        return False
    if type(cache.base) is not DirectMappedCache:
        return False
    if not all(type(st) in _EXACT_STRUCTURES for st in cache.structures):
        return False
    # Pristine only: the replay starts from a cold hierarchy.
    if np.any(cache.base._blocks != EMPTY):
        return False
    if any(st.contents() for st in cache.structures):
        return False
    return cache.stats.accesses == 0 and cache.base.stats.accesses == 0


def simulate_augmented(
    cache: AugmentedCache,
    trace: Trace,
    engine: str = "auto",
    warmup: int = 0,
    check_invariants_every: int = 0,
) -> SimulationResult:
    """Drive an :class:`AugmentedCache` through the miss-event replay.

    A drop-in accelerator for :func:`~repro.core.simulator.simulate` on
    aux compositions, mirroring
    :func:`~repro.core.fastpolicy.simulate_policy`: ``engine="auto"``
    takes the replay when the composition is a pristine direct-mapped
    base with registered structures, reconstructing the full end state
    (main array, base stats, buffer contents — the replay mutates the
    real structure objects) so follow-on inspection sees exactly what the
    sequential engine would have left behind.  Anything else — other
    bases, subclassed wrappers, warmup, invariant checking — falls back
    to :func:`simulate`.
    """
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {_ENGINES}")
    if (
        engine != "auto"
        or warmup
        or check_invariants_every
        or not has_aux_fast_path(cache)
    ):
        return simulate(
            cache, trace, warmup=warmup, check_invariants_every=check_invariants_every
        )
    geometry = cache.geometry
    num_sets = geometry.num_sets
    blocks, indices = _decode(cache.base.indexing, trace, geometry)
    miss = direct_mapped_miss_flags(blocks, indices)
    prev = _prev_blocks(blocks, indices)
    mpos = np.flatnonzero(miss)
    stats = CacheStats(num_sets)
    cls = _replay(
        cache.structures, blocks[mpos].tolist(), prev[mpos].tolist(), stats
    )
    cycles = _composed_stats(cache.structures, stats, indices, mpos, cls, num_sets)
    _restore_base(cache.base, blocks, indices, miss, num_sets)
    cache.stats = stats
    return _result_from_stats(cache.name, trace.name, stats, cycles)


# -- stats-level entry points -----------------------------------------------------


def _canonical_model(scheme_name: str, combo: str, depth: int) -> str:
    return f"augmented[{scheme_name},{combo}{depth}]"


def _make_cache(
    scheme: IndexingScheme,
    geometry: CacheGeometry,
    combo: str,
    depth: int,
    streams: int,
    allocate: str,
) -> AugmentedCache:
    if geometry.ways != 1:
        raise ValueError("aux structures augment a direct-mapped geometry")
    base = DirectMappedCache(geometry, indexing=scheme)
    return AugmentedCache(base, make_aux_structures(combo, depth, streams, allocate))


def simulate_aux(
    scheme: IndexingScheme,
    trace: Trace,
    geometry: CacheGeometry | None = None,
    combo: str = "vc",
    depth: int = 4,
    streams: int = 4,
    allocate: str = "miss",
    engine: str = "auto",
) -> SimulationResult:
    """One aux composition over a direct-mapped base under ``scheme``.

    The stats-level engine behind ``auxsweep`` cells and the CLI:
    equivalent to ``simulate(AugmentedCache(DirectMappedCache(geometry,
    scheme), make_aux_structures(...)), trace)`` with the model renamed
    to the canonical ``augmented[<scheme>,<combo><depth>]`` — identical
    counters, per-set histograms and ``extra`` classes either engine.
    """
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {_ENGINES}")
    geometry = geometry or scheme.geometry
    cache = _make_cache(scheme, geometry, combo, depth, streams, allocate)
    res = simulate_augmented(cache, trace, engine=engine)
    return dc_replace(res, model=_canonical_model(scheme.name, combo, depth))


def simulate_aux_sweep(
    scheme: IndexingScheme,
    trace: Trace,
    geometry: CacheGeometry,
    specs,
    streams: int = 4,
    allocate: str = "miss",
    engine: str = "auto",
) -> list[SimulationResult]:
    """An *aux sweep*: many ``(combo, depth)`` points from one main pass.

    Every member shares one trace decode, one index computation, one
    vectorised main-array pass and one displaced-block computation; each
    spec then replays its own (fresh) structures off the shared miss
    events.  Returns one result per spec, in order, each bit-identical
    (per-set counts included) to its :func:`simulate_aux` per-cell
    equivalent — the contract the CLI's ``sweep --aux`` rides on.
    """
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {_ENGINES}")
    specs = [(str(combo), int(depth)) for combo, depth in specs]
    if geometry.ways != 1:
        raise ValueError("aux structures augment a direct-mapped geometry")
    for combo, depth in specs:
        make_aux_structures(combo, depth, streams, allocate)  # validate eagerly
    if engine == "sequential":
        return [
            simulate_aux(
                scheme,
                trace,
                geometry,
                combo=combo,
                depth=depth,
                streams=streams,
                allocate=allocate,
                engine="sequential",
            )
            for combo, depth in specs
        ]
    num_sets = geometry.num_sets
    blocks, indices = _decode(scheme, trace, geometry)
    miss = direct_mapped_miss_flags(blocks, indices)
    prev = _prev_blocks(blocks, indices)
    mpos = np.flatnonzero(miss)
    blk_l = blocks[mpos].tolist()
    prev_l = prev[mpos].tolist()
    results = []
    for combo, depth in specs:
        structures = make_aux_structures(combo, depth, streams, allocate)
        stats = CacheStats(num_sets)
        cls = _replay(structures, blk_l, prev_l, stats)
        cycles = _composed_stats(structures, stats, indices, mpos, cls, num_sets)
        results.append(
            _result_from_stats(
                _canonical_model(scheme.name, combo, depth),
                trace.name,
                stats,
                cycles,
            )
        )
    return results
