"""Figure 7 bench: AMAT reductions via the paper's Eqs. (8)/(9)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment


def test_fig07_progassoc_amat(benchmark, config):
    result = run_once(benchmark, lambda: run_experiment("fig7", config))
    print()
    print(result)
    averages = result.rows["Average"]
    # Shape: AMAT improves on average for every scheme; fft dominates.
    assert all(v > 0 for v in averages.values())
    assert result.rows["fft"]["Column_associative"] > 50.0
