"""Golden regression tests for the reproduced figures.

``tests/experiments/goldens/*.json`` freezes the small-trace
(``ref_limit=15000``, seed 2011) miss-rate / uniformity outputs of fig1,
fig4 and fig6.  Each golden file is tolerance-tagged (``rtol``/``atol``
inside the file) so refactors of the execution layer — the parallel engine,
the result cache, future sharding — cannot silently shift reproduced
numbers.  If a change *intentionally* alters the numbers, regenerate the
goldens with::

    PYTHONPATH=src python tests/experiments/test_figure_goldens.py --regen

and justify the shift in the PR description.
"""

from __future__ import annotations

import json
import math
from dataclasses import replace
from pathlib import Path

import pytest

from repro.experiments import PaperConfig, run_experiment

GOLDEN_DIR = Path(__file__).parent / "goldens"
GOLDEN_IDS = ["fig1", "fig4", "fig6"]
GOLDEN_REFS = 15_000


@pytest.fixture(scope="module")
def config(tmp_path_factory) -> PaperConfig:
    return replace(
        PaperConfig(),
        ref_limit=GOLDEN_REFS,
        trace_cache_dir=tmp_path_factory.mktemp("golden_traces"),
    )


def _load_golden(eid: str) -> dict:
    return json.loads((GOLDEN_DIR / f"{eid}.json").read_text())


@pytest.mark.parametrize("eid", GOLDEN_IDS)
def test_figure_matches_golden(eid, config):
    golden = _load_golden(eid)
    assert golden["config"]["ref_limit"] == config.ref_limit
    assert golden["config"]["seed"] == config.seed
    rtol = golden["tolerance"]["rtol"]
    atol = golden["tolerance"]["atol"]

    result = run_experiment(eid, config)
    assert result.columns == golden["columns"]
    assert list(result.rows) == list(golden["rows"]), "row set/order drifted"
    for row_label, expected_row in golden["rows"].items():
        actual_row = result.rows[row_label]
        assert set(actual_row) == set(expected_row), row_label
        for col, expected in expected_row.items():
            actual = actual_row[col]
            if isinstance(expected, float) and math.isnan(expected):
                assert math.isnan(actual), f"{eid}[{row_label}][{col}]"
                continue
            assert math.isclose(actual, expected, rel_tol=rtol, abs_tol=atol), (
                f"{eid}[{row_label}][{col}]: got {actual!r}, golden {expected!r} "
                f"(rtol={rtol}, atol={atol})"
            )


@pytest.mark.parametrize("eid", GOLDEN_IDS)
def test_golden_file_wellformed(eid):
    golden = _load_golden(eid)
    assert golden["experiment_id"] == eid
    assert golden["tolerance"]["rtol"] > 0
    assert golden["rows"], "golden must freeze at least one row"


def _regen() -> None:  # pragma: no cover - maintenance entry point
    import tempfile

    cfg = replace(
        PaperConfig(),
        ref_limit=GOLDEN_REFS,
        trace_cache_dir=Path(tempfile.mkdtemp()),
    )
    for eid in GOLDEN_IDS:
        r = run_experiment(eid, cfg)
        doc = {
            "experiment_id": eid,
            "title": r.title,
            "config": {
                "ref_limit": GOLDEN_REFS,
                "seed": cfg.seed,
                "workload_scale": cfg.workload_scale,
            },
            "tolerance": {"rtol": 1e-7, "atol": 1e-9},
            "unit": r.unit,
            "columns": r.columns,
            "rows": r.rows,
        }
        path = GOLDEN_DIR / f"{eid}.json"
        path.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"regenerated {path}")


if __name__ == "__main__":  # pragma: no cover
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        sys.exit("usage: test_figure_goldens.py --regen")
