"""Differential tests: the aux replay engine ≡ the sequential wrapper.

Fifth instalment of the differential-testing contract (see DESIGN.md
§5.7): the miss-event replay in :mod:`repro.core.aux.fast` must be
*bit-identical* to driving :class:`~repro.core.aux.AugmentedCache` one
access at a time through :func:`~repro.core.simulator.simulate` — equal
:class:`~repro.core.simulator.SimulationResult` (totals, lookup cycles,
per-set histograms, ``extra`` hit classes) **and** equal post-run object
state (main array contents, victim/miss-cache entry order, stream-buffer
queue contents and LRU order), across:

* every supported combo (vc, mc, sb, vc+sb, mc+sb) × every registered
  indexing scheme × the adversarial trace zoo, plus Hypothesis-generated
  address streams;
* buffer depths 1/2/4/8, stream counts, both allocate-on-miss modes;
* the :func:`~repro.core.aux.simulate_aux_sweep` sweep path — shared
  main-array pass ≡ the per-cell path ≡ sequential;
* pristine-gate fallbacks (dirty/warmed compositions take the sequential
  engine but still agree) and engine/config rejection;
* victim-cache swap semantics regressions (a miss-in-main/hit-in-VC
  access swaps exactly one pair of blocks).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.address import CacheGeometry
from repro.core.aux import (
    AUX_COMBOS,
    AugmentedCache,
    StreamBuffer,
    VictimBuffer,
    has_aux_fast_path,
    make_aux_structures,
    simulate_augmented,
    simulate_aux,
    simulate_aux_sweep,
)
from repro.core.caches import DirectMappedCache, VictimCache
from repro.core.indexing import (
    BitSelectIndexing,
    GivargisIndexing,
    GivargisXorIndexing,
    ModuloIndexing,
    OddMultiplierIndexing,
    PatelIndexing,
    PrimeModuloIndexing,
    XorIndexing,
)
from repro.core.simulator import simulate
from repro.trace import Trace

SMALL = CacheGeometry(capacity_bytes=2048, line_bytes=16, ways=1, address_bits=16)


# -- trace zoo --------------------------------------------------------------------


def random_trace(geometry: CacheGeometry, n: int = 4000, seed: int = 7) -> Trace:
    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, 1 << geometry.address_bits, size=n, dtype=np.uint64)
    return Trace(addrs, name="random")


def hot_trace(geometry: CacheGeometry, n: int = 4000, seed: int = 9) -> Trace:
    rng = np.random.default_rng(seed)
    pool = rng.integers(0, 1 << geometry.address_bits, size=64, dtype=np.uint64)
    addrs = pool[rng.integers(0, len(pool), size=n)]
    return Trace(addrs, name="hot")


def ping_pong_trace(geometry: CacheGeometry, n: int = 3000) -> Trace:
    """Two blocks aliasing one set: the victim cache's best case."""
    line = geometry.line_bytes
    span = geometry.num_sets * line
    addrs = np.array([3 * line, 3 * line + span], dtype=np.uint64)
    return Trace(np.tile(addrs, n // 2), name="ping_pong")


def sequential_scan_trace(geometry: CacheGeometry, n: int = 3000) -> Trace:
    """A pure sequential walk: the stream buffers' best case."""
    line = geometry.line_bytes
    addrs = (np.arange(n, dtype=np.uint64) * line) % (1 << geometry.address_bits)
    return Trace(addrs, name="scan")


def empty_trace() -> Trace:
    return Trace(np.empty(0, dtype=np.uint64), name="empty")


def single_access_trace(geometry: CacheGeometry) -> Trace:
    return Trace(np.array([7 * geometry.line_bytes], dtype=np.uint64), name="single")


def trace_zoo(geometry: CacheGeometry) -> list[Trace]:
    return [
        random_trace(geometry),
        hot_trace(geometry),
        ping_pong_trace(geometry),
        sequential_scan_trace(geometry),
        empty_trace(),
        single_access_trace(geometry),
    ]


def scheme_lineup(geometry: CacheGeometry, fit_trace: Trace) -> list:
    fit_addrs = fit_trace.addresses
    bit_positions = tuple(
        range(geometry.offset_bits, geometry.offset_bits + geometry.index_bits)
    )[::-1]
    factories = [
        lambda: ModuloIndexing(geometry),
        lambda: XorIndexing(geometry),
        lambda: OddMultiplierIndexing(geometry, 9),
        lambda: PrimeModuloIndexing(geometry),
        lambda: BitSelectIndexing(geometry, bit_positions),
        lambda: GivargisIndexing(geometry).fit(fit_addrs),
        lambda: GivargisXorIndexing(geometry).fit(fit_addrs),
        lambda: PatelIndexing(geometry, max_swap_moves=4).fit(fit_addrs),
    ]
    schemes = []
    for make in factories:
        try:
            schemes.append(make())
        except ValueError:
            pass
    return schemes


# -- equality helpers -------------------------------------------------------------


def assert_results_identical(fast, slow, ctx: str) -> None:
    assert fast.model == slow.model, ctx
    assert fast.trace_name == slow.trace_name, ctx
    assert fast.accesses == slow.accesses, ctx
    assert fast.hits == slow.hits, ctx
    assert fast.misses == slow.misses, ctx
    assert fast.lookup_cycles == slow.lookup_cycles, ctx
    assert fast.extra == slow.extra, ctx
    np.testing.assert_array_equal(fast.slot_accesses, slow.slot_accesses, err_msg=ctx)
    np.testing.assert_array_equal(fast.slot_hits, slow.slot_hits, err_msg=ctx)
    np.testing.assert_array_equal(fast.slot_misses, slow.slot_misses, err_msg=ctx)


def assert_cache_state_identical(
    fast_cache: AugmentedCache, slow_cache: AugmentedCache, ctx: str
) -> None:
    """Main array, buffer contents AND their recency/insertion order."""
    np.testing.assert_array_equal(
        fast_cache.base._blocks, slow_cache.base._blocks, err_msg=ctx
    )
    for fst, sst in zip(fast_cache.structures, slow_cache.structures):
        assert type(fst) is type(sst), ctx
        if isinstance(fst, StreamBuffer):
            assert [list(q) for q in fst._queues] == [
                list(q) for q in sst._queues
            ], ctx
        else:
            assert list(fst._entries) == list(sst._entries), ctx
    # Base stats carry the main-array view either engine.
    assert fast_cache.base.stats.accesses == slow_cache.base.stats.accesses, ctx
    assert fast_cache.base.stats.misses == slow_cache.base.stats.misses, ctx
    assert fast_cache.base.stats.extra == slow_cache.base.stats.extra, ctx
    np.testing.assert_array_equal(
        fast_cache.base.stats.slot_misses, slow_cache.base.stats.slot_misses,
        err_msg=ctx,
    )


def make_pair(scheme, combo: str, depth: int, **kw):
    def build():
        base = DirectMappedCache(scheme.geometry, indexing=scheme)
        return AugmentedCache(base, make_aux_structures(combo, depth, **kw))

    return build(), build()


# -- the stats-level engine -------------------------------------------------------


class TestStatsEngine:
    @pytest.mark.parametrize("combo", AUX_COMBOS)
    def test_all_schemes_all_traces(self, combo):
        geometry = SMALL
        fit = random_trace(geometry, n=2000, seed=99)
        for scheme in scheme_lineup(geometry, fit):
            for trace in trace_zoo(geometry):
                for depth in (1, 4):
                    ctx = f"{combo}{depth}/{scheme.name}/{trace.name}"
                    fast = simulate_aux(
                        scheme, trace, geometry, combo=combo, depth=depth
                    )
                    slow = simulate_aux(
                        scheme, trace, geometry, combo=combo, depth=depth,
                        engine="sequential",
                    )
                    assert_results_identical(fast, slow, ctx)

    @pytest.mark.parametrize("allocate", ["miss", "always"])
    @pytest.mark.parametrize("streams", [1, 2, 8])
    def test_stream_buffer_shapes(self, streams, allocate):
        geometry = SMALL
        scheme = XorIndexing(geometry)
        for combo in ("sb", "vc+sb"):
            for trace in (sequential_scan_trace(geometry), random_trace(geometry)):
                ctx = f"{combo}/streams={streams}/{allocate}/{trace.name}"
                fast = simulate_aux(
                    scheme, trace, geometry, combo=combo, depth=4,
                    streams=streams, allocate=allocate,
                )
                slow = simulate_aux(
                    scheme, trace, geometry, combo=combo, depth=4,
                    streams=streams, allocate=allocate, engine="sequential",
                )
                assert_results_identical(fast, slow, ctx)

    def test_accounting_invariants(self):
        geometry = SMALL
        scheme = ModuloIndexing(geometry)
        trace = hot_trace(geometry)
        for combo in AUX_COMBOS:
            res = simulate_aux(scheme, trace, geometry, combo=combo, depth=4)
            aux_hits = sum(
                res.extra.get(k, 0)
                for k in ("victim_hits", "miss_cache_hits", "stream_hits")
            )
            assert res.extra.get("direct_hits", 0) + aux_hits == res.hits, combo
            assert int(res.slot_hits.sum()) == res.hits, combo
            assert int(res.slot_misses.sum()) == res.misses, combo

    def test_rejections(self):
        geometry = SMALL
        scheme = ModuloIndexing(geometry)
        trace = single_access_trace(geometry)
        with pytest.raises(ValueError, match="unknown engine"):
            simulate_aux(scheme, trace, geometry, engine="turbo")
        with pytest.raises(ValueError, match="unknown aux combo"):
            simulate_aux(scheme, trace, geometry, combo="vc+vc")
        with pytest.raises(ValueError, match="direct-mapped"):
            g2 = CacheGeometry(2048, 16, ways=2, address_bits=16)
            simulate_aux(ModuloIndexing(g2), trace, g2)
        with pytest.raises(ValueError, match="at least one line"):
            simulate_aux(scheme, trace, geometry, combo="vc", depth=0)


# -- the sweep path ---------------------------------------------------------------


class TestAuxSweep:
    def test_sweep_equals_per_cell_equals_sequential(self):
        geometry = SMALL
        scheme = XorIndexing(geometry)
        specs = [(combo, depth) for combo in AUX_COMBOS for depth in (1, 2, 8)]
        for trace in trace_zoo(geometry):
            swept = simulate_aux_sweep(scheme, trace, geometry, specs)
            seq = simulate_aux_sweep(
                scheme, trace, geometry, specs, engine="sequential"
            )
            assert len(swept) == len(specs)
            for (combo, depth), a, b in zip(specs, swept, seq):
                ctx = f"{combo}{depth}/{trace.name}"
                assert_results_identical(a, b, ctx)
                cell = simulate_aux(
                    scheme, trace, geometry, combo=combo, depth=depth
                )
                assert_results_identical(a, cell, ctx + "/per-cell")

    def test_sweep_validates_before_work(self):
        geometry = SMALL
        scheme = ModuloIndexing(geometry)
        with pytest.raises(ValueError, match="unknown aux combo"):
            simulate_aux_sweep(
                scheme, random_trace(geometry), geometry, [("vc", 4), ("zz", 4)]
            )

    def test_sweep_preserves_order_and_models(self):
        geometry = SMALL
        scheme = ModuloIndexing(geometry)
        specs = [("mc", 2), ("vc", 8), ("sb", 4)]
        results = simulate_aux_sweep(scheme, hot_trace(geometry), geometry, specs)
        assert [r.model for r in results] == [
            f"augmented[{scheme.name},{c}{d}]" for c, d in specs
        ]


# -- the cache-object dispatcher --------------------------------------------------


class TestSimulateAugmented:
    @pytest.mark.parametrize("combo", AUX_COMBOS)
    def test_auto_equals_sequential_with_state(self, combo):
        geometry = SMALL
        scheme = XorIndexing(geometry)
        for trace in trace_zoo(geometry):
            ctx = f"{combo}/{trace.name}"
            fast_cache, slow_cache = make_pair(scheme, combo, 4)
            assert has_aux_fast_path(fast_cache), ctx
            fast = simulate_augmented(fast_cache, trace)
            slow = simulate(slow_cache, trace)
            assert_results_identical(fast, slow, ctx)
            assert_cache_state_identical(fast_cache, slow_cache, ctx)
            fast_cache.check_invariants()
            fast_cache.stats.check_invariants()

    @pytest.mark.parametrize("combo", AUX_COMBOS)
    def test_dirty_cache_falls_back_but_agrees(self, combo):
        """A second run over the same object is not pristine: the dispatcher
        must take the sequential engine and still match it exactly."""
        geometry = SMALL
        scheme = ModuloIndexing(geometry)
        t1 = hot_trace(geometry, n=800, seed=3)
        t2 = random_trace(geometry, n=800, seed=4)
        fast_cache, slow_cache = make_pair(scheme, combo, 4)
        simulate_augmented(fast_cache, t1)
        simulate(slow_cache, t1)
        assert not has_aux_fast_path(fast_cache)
        fast = simulate_augmented(fast_cache, t2)
        slow = simulate(slow_cache, t2)
        assert_results_identical(fast, slow, f"{combo}/dirty")
        assert_cache_state_identical(fast_cache, slow_cache, f"{combo}/dirty")

    def test_warmup_falls_back_but_agrees(self):
        geometry = SMALL
        scheme = ModuloIndexing(geometry)
        trace = random_trace(geometry, n=2000, seed=19)
        fast_cache, slow_cache = make_pair(scheme, "vc", 4)
        fast = simulate_augmented(fast_cache, trace, warmup=300)
        slow = simulate(slow_cache, trace, warmup=300)
        assert_results_identical(fast, slow, "warmup")
        assert_cache_state_identical(fast_cache, slow_cache, "warmup")

    def test_overriding_subclass_falls_back(self):
        """The gate is method identity, not type identity: a subclass that
        leaves the access path alone (like the migrated VictimCache) keeps
        the replay, one that overrides it must fall back."""

        class Plain(AugmentedCache):
            pass

        class Overrides(AugmentedCache):
            def _access_block(self, block, is_write):
                return super()._access_block(block, is_write)

        geometry = SMALL
        scheme = ModuloIndexing(geometry)

        def build(cls):
            base = DirectMappedCache(geometry, indexing=scheme)
            return cls(base, make_aux_structures("vc", 4))

        assert has_aux_fast_path(build(Plain))
        sub = build(Overrides)
        assert not has_aux_fast_path(sub)
        trace = hot_trace(geometry, n=400)
        res = simulate_augmented(sub, trace)
        ref_cache, _ = make_pair(scheme, "vc", 4)
        seq = simulate(ref_cache, trace)
        assert res.misses == seq.misses

    def test_unregistered_structure_falls_back(self):
        class WeirdBuffer(VictimBuffer):
            pass

        geometry = SMALL
        base = DirectMappedCache(geometry)
        cache = AugmentedCache(base, (WeirdBuffer(4),))
        assert not has_aux_fast_path(cache)
        trace = hot_trace(geometry, n=400)
        res = simulate_augmented(cache, trace)
        seq = simulate(
            AugmentedCache(DirectMappedCache(geometry), (VictimBuffer(4),)),
            trace,
        )
        assert_results_identical(res, seq, "weird-buffer")

    def test_victim_cache_subclass_takes_fast_path(self):
        """The migrated VictimCache adds no access-path override, so the
        dispatcher's method-identity gate admits it."""
        cache = VictimCache(SMALL, victim_lines=4)
        assert has_aux_fast_path(cache)

    def test_rejects_unknown_engine(self):
        cache = VictimCache(SMALL, victim_lines=2)
        with pytest.raises(ValueError, match="unknown engine"):
            simulate_augmented(cache, single_access_trace(SMALL), engine="turbo")


# -- Hypothesis: arbitrary address streams ----------------------------------------


address_lists = st.lists(
    st.integers(min_value=0, max_value=(1 << 16) - 1), min_size=0, max_size=400
)


class TestHypothesisDifferential:
    @settings(max_examples=40, deadline=None)
    @given(address_lists, st.sampled_from(AUX_COMBOS), st.sampled_from([1, 2, 4]))
    def test_fast_equals_sequential(self, addrs, combo, depth):
        trace = Trace(np.array(addrs, dtype=np.uint64), name="hyp")
        scheme = XorIndexing(SMALL)
        fast_cache, slow_cache = make_pair(scheme, combo, depth)
        fast = simulate_augmented(fast_cache, trace)
        slow = simulate(slow_cache, trace)
        ctx = f"{combo}{depth}"
        assert_results_identical(fast, slow, ctx)
        assert_cache_state_identical(fast_cache, slow_cache, ctx)
        fast_cache.check_invariants()

    @settings(max_examples=25, deadline=None)
    @given(address_lists, st.sampled_from(["miss", "always"]))
    def test_stream_modes(self, addrs, allocate):
        trace = Trace(np.array(addrs, dtype=np.uint64), name="hyp")
        scheme = ModuloIndexing(SMALL)

        def build():
            return AugmentedCache(
                DirectMappedCache(SMALL, indexing=scheme),
                make_aux_structures("mc+sb", 2, streams=2, allocate=allocate),
            )

        fast_cache, slow_cache = build(), build()
        fast = simulate_augmented(fast_cache, trace)
        slow = simulate(slow_cache, trace)
        assert_results_identical(fast, slow, allocate)
        assert_cache_state_identical(fast_cache, slow_cache, allocate)


# -- victim-cache swap semantics regressions --------------------------------------


class TestVictimSwapSemantics:
    def test_swap_exchanges_exactly_one_pair(self):
        """A miss-in-main/hit-in-VC access must swap one pair of blocks:
        the serviced block moves to the main array, the displaced main
        block moves into the buffer, and nothing else changes."""
        g = SMALL
        cache = VictimCache(g, victim_lines=4)
        line, span = g.line_bytes, g.num_sets * g.line_bytes
        a, b = 3 * line, 3 * line + span  # same set, different blocks
        blk_a, blk_b = a // line, b // line
        cache.access(a)
        cache.access(b)  # a evicted into the buffer
        before_main = cache.base.contents()
        before_buf = cache.structures[0].contents()
        assert blk_a in before_buf and blk_b in before_main
        r = cache.access(a)  # swap
        assert r.hit and r.hit_class == "victim" and r.cycles == 2
        after_main = cache.base.contents()
        after_buf = cache.structures[0].contents()
        assert after_main == (before_main - {blk_b}) | {blk_a}
        assert after_buf == (before_buf - {blk_a}) | {blk_b}
        # One swap exchanges exactly one pair; totals are unchanged.
        assert len(after_main) == len(before_main)
        assert len(after_buf) == len(before_buf)
        cache.check_invariants()

    def test_swap_never_overflows_buffer(self):
        """The probe frees a buffer slot before the displaced block is
        inserted, so a swap can never push an unrelated block out."""
        g = SMALL
        cache = VictimCache(g, victim_lines=2)
        line, span = g.line_bytes, g.num_sets * g.line_bytes
        blocks = [3 * line + i * span for i in range(3)]
        for addr in blocks:
            cache.access(addr)  # buffer now holds blocks[0], blocks[1]
        buf = cache.structures[0].contents()
        r = cache.access(blocks[0])
        assert r.hit and r.hit_class == "victim"
        assert r.evicted_block is None  # swap, not an overflow
        assert cache.structures[0].contents() == (buf - {blocks[0] // line}) | {
            blocks[2] // line
        }

    @settings(max_examples=30, deadline=None)
    @given(address_lists)
    def test_disjoint_and_bounded_always(self, addrs):
        cache = VictimCache(SMALL, victim_lines=4)
        for a in addrs:
            cache.access(a)
        cache.check_invariants()
