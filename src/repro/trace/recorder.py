"""Workload recorder: the bridge between an algorithm and its trace.

A :class:`Recorder` owns an :class:`~repro.trace.memory.AddressSpace` and a
:class:`~repro.trace.event.TraceBuilder`, and exposes ``load``/``store``
verbs the workload kernels call as they execute.  The kernels therefore read
like the C programs they model::

    m = Recorder("fft", seed=1)
    data = m.space.heap_array(8, n, "data")
    ...
    x = values[i]          # real computation on Python values
    m.load(data.addr(i))   # and the memory reference it implies

A ``ref_limit`` turns long-running kernels into bounded traces: once the
limit is reached the recorder raises :class:`TraceComplete`, which
:func:`record` catches — so kernels never need their own trace-length logic.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .event import Trace, TraceBuilder
from .memory import AddressSpace, Array

__all__ = ["Recorder", "TraceComplete", "record"]


class TraceComplete(Exception):
    """Raised internally when the recorder hits its reference limit."""


class Recorder:
    """Trace-emitting memory interface handed to workload kernels."""

    def __init__(
        self,
        name: str,
        seed: int = 0,
        ref_limit: int | None = None,
        thread: int = 0,
    ):
        self.name = name
        self.rng = np.random.default_rng(seed)
        self.space = AddressSpace(thread=thread)
        self.builder = TraceBuilder(name=name, meta={"seed": seed})
        self.ref_limit = ref_limit
        self._stdio: "_StdioModel | None" = None

    # -- stdio -------------------------------------------------------------------

    def printf(self, nbytes: int = 24, fmt_id: int = 0) -> None:
        """Model a formatted print (MiBench programs print constantly).

        Touches the hot stdio working set a real ``printf`` does: the format
        string (rodata), the ``FILE`` structure, and a run of stores into the
        stdout buffer; a full buffer is "flushed" (re-read for the write
        syscall).  These recurring hot lines, scattered across segments, are
        a major source of the conflict misses the paper's techniques target.
        """
        if self._stdio is None:
            self._stdio = _StdioModel(self.space)
        self._stdio.printf(self, nbytes, fmt_id)

    # -- scalar references -----------------------------------------------------------

    def load(self, address: int) -> None:
        self._emit(address, False)

    def store(self, address: int) -> None:
        self._emit(address, True)

    def _emit(self, address: int, is_write: bool) -> None:
        self.builder.append(address, is_write)
        if self.ref_limit is not None and len(self.builder) >= self.ref_limit:
            raise TraceComplete

    # -- array convenience -------------------------------------------------------------

    def load_elem(self, array: Array, index: int) -> None:
        self.load(array.addr(index))

    def store_elem(self, array: Array, index: int) -> None:
        self.store(array.addr(index))

    def load_field(self, array: Array, index: int, offset: int) -> None:
        self.load(array.field_addr(index, offset))

    def store_field(self, array: Array, index: int, offset: int) -> None:
        self.store(array.field_addr(index, offset))

    # -- bulk references ----------------------------------------------------------------

    def load_stream(self, addresses: np.ndarray) -> None:
        """Vectorised sequence of loads (bounded by the ref limit)."""
        self._emit_stream(addresses, False)

    def store_stream(self, addresses: np.ndarray) -> None:
        self._emit_stream(addresses, True)

    def _emit_stream(self, addresses: np.ndarray, is_write: bool) -> None:
        addresses = np.asarray(addresses, dtype=np.uint64).ravel()
        if self.ref_limit is not None:
            room = self.ref_limit - len(self.builder)
            if room <= 0:
                raise TraceComplete
            if addresses.size > room:
                self.builder.extend(addresses[:room], is_write)
                raise TraceComplete
        self.builder.extend(addresses, is_write)
        if self.ref_limit is not None and len(self.builder) >= self.ref_limit:
            raise TraceComplete

    # -- finishing -----------------------------------------------------------------------

    def build(self) -> Trace:
        return self.builder.build()


class _StdioModel:
    """Hot stdio state: FILE struct, stdout buffer, format-string pool."""

    BUF_BYTES = 4096

    def __init__(self, space: AddressSpace):
        self.file_struct = space.static_array(8, 16, "_IO_FILE")  # 128 B
        self.fmt_pool = space.static_array(32, 16, "fmt_strings")  # 512 B rodata
        self.buf = space.heap_array(1, self.BUF_BYTES, "stdout_buf")
        self.pos = 0

    def printf(self, m: "Recorder", nbytes: int, fmt_id: int) -> None:
        m.load_elem(self.fmt_pool, fmt_id % self.fmt_pool.length)
        m.load_elem(self.file_struct, 0)  # flags / write pointer
        m.load_elem(self.file_struct, 3)
        # vfprintf's own frame: a real printf burns ~0.5 KiB of stack for
        # format state and a conversion work buffer, re-touched every call.
        frame = m.space.push_frame(640)
        work = frame.local_array("work", 8, 64)
        for i in range(0, 64, 8):
            m.store_elem(work, i)
            m.load_elem(work, i)
        for off in range(0, nbytes, 8):
            if self.pos >= self.BUF_BYTES:
                # Flush: the write(2) path reads the buffer back out.
                for b in range(0, self.BUF_BYTES, 32):
                    m.load(self.buf.addr(b))
                self.pos = 0
            m.store(self.buf.addr(self.pos))
            self.pos += 8
        m.space.pop_frame()
        m.store_elem(self.file_struct, 0)  # update the write pointer


def record(
    kernel: Callable[[Recorder], None],
    name: str,
    seed: int = 0,
    ref_limit: int | None = None,
    thread: int = 0,
    meta: dict | None = None,
) -> Trace:
    """Run ``kernel(recorder)`` to completion or to the reference limit."""
    rec = Recorder(name, seed=seed, ref_limit=ref_limit, thread=thread)
    if meta:
        rec.builder.meta.update(meta)
    try:
        kernel(rec)
    except TraceComplete:
        pass
    trace = rec.build()
    if ref_limit is not None and len(trace) > ref_limit:
        trace = trace.head(ref_limit)
    if thread != 0:
        trace = Trace(
            trace.addresses,
            trace.is_write,
            np.full(len(trace), thread, dtype=np.int16),
            name=trace.name,
            meta=trace.meta,
        )
    return trace
