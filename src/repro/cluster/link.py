"""One multiplexed persistent connection from the router to a worker.

A :class:`WorkerLink` owns a single TCP connection speaking the service's
JSON-lines protocol and multiplexes any number of concurrent router-side
requests over it: each request gets a link-local id, a background reader
task dispatches incoming frames by id (event frames to the request's
callback, the terminal frame resolving its future).

Transport failures are the *failover signal*: when the connection drops —
refused dial, reset, EOF mid-request — every outstanding request on the
link fails with :class:`WorkerDown`, and the router re-routes those keys
to the next node in ring-preference order.  Structured errors *from* the
worker (``overloaded``/``timeout``/``bad_request``/``internal``) are not
transport failures: the worker is alive and answered, so they propagate
to the client unchanged rather than triggering failover.

A link reconnects lazily: the next ``request``/``probe`` after a failure
dials again, so a rebooted worker rejoins the ring as soon as the health
prober's probe succeeds.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any, Callable

from ..service.protocol import MAX_FRAME_BYTES, decode_frame, encode_frame

__all__ = ["WorkerDown", "WorkerLink"]


class WorkerDown(ConnectionError):
    """The worker's transport failed; the key should fail over."""

    def __init__(self, node: str, reason: str):
        super().__init__(f"worker {node} is down: {reason}")
        self.node = node
        self.reason = reason


class WorkerLink:
    """Multiplexed JSON-lines connection to one worker daemon."""

    def __init__(self, node: str, host: str, port: int):
        self.node = node
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._connect_lock = asyncio.Lock()
        self._write_lock = asyncio.Lock()
        #: request id → (future for the terminal frame, event callback).
        self._pending: dict[
            str,
            tuple[asyncio.Future, Callable[[dict[str, Any]], None] | None],
        ] = {}
        self._next_id = 0
        self._closed = False

    @property
    def connected(self) -> bool:
        return self._writer is not None

    # -- connection lifecycle -------------------------------------------------------

    async def _ensure_connected(self) -> None:
        if self._closed:
            raise WorkerDown(self.node, "link closed")
        async with self._connect_lock:
            if self._writer is not None:
                return
            try:
                reader, writer = await asyncio.open_connection(
                    self.host, self.port, limit=MAX_FRAME_BYTES + 1024
                )
            except OSError as exc:
                raise WorkerDown(self.node, f"connect failed: {exc}") from exc
            self._reader = reader
            self._writer = writer
            self._reader_task = asyncio.create_task(self._read_loop(reader))

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        reason = "connection closed by worker"
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    frame = decode_frame(line)
                except Exception:
                    continue  # an undecodable frame is dropped, not fatal
                rid = frame.get("id")
                entry = self._pending.get(rid)
                if entry is None:
                    continue
                future, on_event = entry
                if frame.get("type") == "event":
                    if on_event is not None:
                        with contextlib.suppress(Exception):
                            on_event(frame)
                    continue
                self._pending.pop(rid, None)
                if not future.done():
                    future.set_result(frame)
        except (ConnectionError, asyncio.IncompleteReadError, OSError) as exc:
            reason = f"read failed: {exc}"
        except asyncio.CancelledError:
            reason = "link reset"
        finally:
            self._teardown(reason)

    def _teardown(self, reason: str) -> None:
        """Drop the transport and fail every outstanding request."""
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            writer.close()
        pending, self._pending = self._pending, {}
        for future, _cb in pending.values():
            if not future.done():
                future.set_exception(WorkerDown(self.node, reason))

    def reset(self, reason: str = "probe failed") -> None:
        """Force-drop the connection (health prober ejecting the node)."""
        task = self._reader_task
        self._reader_task = None
        if task is not None and not task.done():
            task.cancel()
        self._teardown(reason)

    async def close(self) -> None:
        self._closed = True
        self.reset("link closed")

    # -- requests ---------------------------------------------------------------------

    async def request(
        self,
        payload: dict[str, Any],
        on_event: Callable[[dict[str, Any]], None] | None = None,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Send one frame; await its terminal frame (result *or* error).

        Raises :class:`WorkerDown` on any transport failure, and
        :class:`asyncio.TimeoutError` when ``timeout`` elapses first (the
        caller decides whether a slow answer means a dead worker).
        """
        await self._ensure_connected()
        self._next_id += 1
        rid = f"x{self._next_id}"
        payload = {**payload, "id": rid}
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending[rid] = (future, on_event)
        try:
            writer = self._writer
            if writer is None:
                raise WorkerDown(self.node, "connection lost before send")
            try:
                async with self._write_lock:
                    writer.write(encode_frame(payload))
                    await writer.drain()
            except (ConnectionError, OSError) as exc:
                raise WorkerDown(self.node, f"send failed: {exc}") from exc
            if timeout is not None:
                return await asyncio.wait_for(future, timeout)
            return await future
        finally:
            self._pending.pop(rid, None)

    async def probe(self, timeout: float = 2.0) -> dict[str, Any]:
        """A bounded ``health`` round-trip (the liveness check)."""
        try:
            frame = await self.request({"type": "health"}, timeout=timeout)
        except asyncio.TimeoutError as exc:
            raise WorkerDown(self.node, "health probe timed out") from exc
        if not frame.get("ok"):
            raise WorkerDown(self.node, "health probe answered an error")
        return frame.get("health", {})
