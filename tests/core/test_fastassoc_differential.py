"""Differential tests: the fastassoc engine ≡ the sequential engine.

Third instalment of the differential-testing contract (see DESIGN.md): the
set-decomposed programmable-associativity fast paths in
:mod:`repro.core.fastassoc` must be *bit-identical* to the sequential
reference engine driving the real cache models — equal
:class:`~repro.core.simulator.SimulationResult` (totals, lookup cycles,
per-slot histograms, ``extra`` hit/miss classes) **and** equal post-run
cache-object state, across:

* :class:`~repro.core.caches.ColumnAssociativeCache` — every registered
  indexing scheme as the primary index, both ``protect_conventional``
  variants, random + adversarial traces;
* :class:`~repro.core.caches.BalancedCache` — several (mapping factor, BAS)
  operating points, LRU stamps and programmable-index registers included;
* :class:`~repro.core.caches.PartnerIndexCache` — rebalance periods chosen
  to exercise none/one/many windows, link tables and window counters
  included;
* :class:`~repro.core.caches.AdaptiveGroupAssociativeCache` — the hoisted
  (but still sequential-order) transliteration, SHT/OUT/cold-pool dict
  *ordering* included;
* the :func:`~repro.core.fastassoc.simulate_progassoc` dispatcher —
  ``auto`` ≡ ``sequential``, fallbacks for warmup / invariant checking /
  non-LRU policies, and rejection of unknown engines.

``check_invariants()`` is spot-checked on the fast-path cache objects: the
reconstructed state must satisfy each model's own structural invariants.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.address import CacheGeometry
from repro.core.caches import (
    AdaptiveGroupAssociativeCache,
    BalancedCache,
    ColumnAssociativeCache,
    PartnerIndexCache,
)
from repro.core.fastassoc import (
    has_fast_path,
    simulate_adaptive,
    simulate_bcache,
    simulate_column_associative,
    simulate_partner,
    simulate_progassoc,
)
from repro.core.indexing import (
    BitSelectIndexing,
    GivargisIndexing,
    GivargisXorIndexing,
    ModuloIndexing,
    OddMultiplierIndexing,
    PatelIndexing,
    PrimeModuloIndexing,
    XorIndexing,
)
from repro.core.simulator import simulate
from repro.trace import Trace

TINY = CacheGeometry(capacity_bytes=128, line_bytes=16, ways=1, address_bits=16)
SMALL = CacheGeometry(capacity_bytes=1024, line_bytes=16, ways=1)


# -- trace zoo --------------------------------------------------------------------


def random_trace(geometry: CacheGeometry, n: int = 4000, seed: int = 7) -> Trace:
    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, 1 << geometry.address_bits, size=n, dtype=np.uint64)
    return Trace(addrs, name="random")


def hot_trace(geometry: CacheGeometry, n: int = 4000, seed: int = 9) -> Trace:
    """Zipf-ish reuse: the MRU-compression sweet spot."""
    rng = np.random.default_rng(seed)
    pool = rng.integers(0, 1 << geometry.address_bits, size=64, dtype=np.uint64)
    addrs = pool[rng.integers(0, len(pool), size=n)]
    return Trace(addrs, name="hot")


def pair_pingpong_trace(geometry: CacheGeometry, n: int = 1200) -> Trace:
    """A, B, A, B on one column-associative pair: every access swaps/rehashes."""
    line = geometry.line_bytes
    half = geometry.num_sets // 2 or 1
    a = np.uint64(3 * line)
    b = np.uint64((3 + half) * line)  # same pair {s, s ^ MSB}, other half
    c = np.uint64((3 + 2 * half * geometry.num_sets) * line)  # conflicts with a
    addrs = np.empty(n, dtype=np.uint64)
    addrs[0::3] = a
    addrs[1::3] = c
    addrs[2::3] = b
    return Trace(addrs % np.uint64(1 << geometry.address_bits), name="pingpong")


def repeat_heavy_trace(geometry: CacheGeometry, n: int = 2000, seed: int = 13) -> Trace:
    """Long runs of the same block — stresses the repeat compression."""
    rng = np.random.default_rng(seed)
    out = []
    while len(out) < n:
        addr = int(rng.integers(0, 1 << geometry.address_bits))
        out.extend([addr] * int(rng.integers(1, 9)))
    return Trace(np.array(out[:n], dtype=np.uint64), name="repeats")


def empty_trace() -> Trace:
    return Trace(np.empty(0, dtype=np.uint64), name="empty")


def single_access_trace(geometry: CacheGeometry) -> Trace:
    return Trace(np.array([7 * geometry.line_bytes], dtype=np.uint64), name="single")


def trace_zoo(geometry: CacheGeometry) -> list[Trace]:
    return [
        random_trace(geometry),
        hot_trace(geometry),
        pair_pingpong_trace(geometry),
        repeat_heavy_trace(geometry),
        empty_trace(),
        single_access_trace(geometry),
    ]


def scheme_lineup(geometry: CacheGeometry, fit_trace: Trace) -> list:
    """Every registered scheme (trainables fitted); geometry-rejects skipped."""
    fit_addrs = fit_trace.addresses
    bit_positions = tuple(
        range(geometry.offset_bits, geometry.offset_bits + geometry.index_bits)
    )[::-1]
    factories = [
        lambda: ModuloIndexing(geometry),
        lambda: XorIndexing(geometry),
        lambda: OddMultiplierIndexing(geometry, 9),
        lambda: PrimeModuloIndexing(geometry),
        lambda: BitSelectIndexing(geometry, bit_positions),
        lambda: GivargisIndexing(geometry).fit(fit_addrs),
        lambda: GivargisXorIndexing(geometry).fit(fit_addrs),
        lambda: PatelIndexing(geometry, max_swap_moves=4).fit(fit_addrs),
    ]
    schemes = []
    for make in factories:
        try:
            schemes.append(make())
        except ValueError:
            pass
    return schemes


# -- equality helpers -------------------------------------------------------------


def assert_results_identical(fast, slow, ctx: str) -> None:
    assert fast.model == slow.model, ctx
    assert fast.trace_name == slow.trace_name, ctx
    assert fast.accesses == slow.accesses, ctx
    assert fast.hits == slow.hits, ctx
    assert fast.misses == slow.misses, ctx
    assert fast.lookup_cycles == slow.lookup_cycles, ctx
    assert fast.extra == slow.extra, ctx
    np.testing.assert_array_equal(fast.slot_accesses, slow.slot_accesses, err_msg=ctx)
    np.testing.assert_array_equal(fast.slot_hits, slow.slot_hits, err_msg=ctx)
    np.testing.assert_array_equal(fast.slot_misses, slow.slot_misses, err_msg=ctx)


def assert_colassoc_state_identical(fast_cache, slow_cache, ctx: str) -> None:
    np.testing.assert_array_equal(fast_cache._blocks, slow_cache._blocks, err_msg=ctx)
    np.testing.assert_array_equal(fast_cache._rehash, slow_cache._rehash, err_msg=ctx)
    assert fast_cache.stats.extra == slow_cache.stats.extra, ctx


def assert_bcache_state_identical(fast_cache, slow_cache, ctx: str) -> None:
    np.testing.assert_array_equal(fast_cache._blocks, slow_cache._blocks, err_msg=ctx)
    np.testing.assert_array_equal(fast_cache._pi_reg, slow_cache._pi_reg, err_msg=ctx)
    np.testing.assert_array_equal(
        fast_cache.policy._stamp, slow_cache.policy._stamp, err_msg=ctx
    )
    assert fast_cache.policy._clock == slow_cache.policy._clock, ctx


def assert_partner_state_identical(fast_cache, slow_cache, ctx: str) -> None:
    np.testing.assert_array_equal(fast_cache._blocks, slow_cache._blocks, err_msg=ctx)
    np.testing.assert_array_equal(fast_cache._stamp, slow_cache._stamp, err_msg=ctx)
    np.testing.assert_array_equal(fast_cache._linked, slow_cache._linked, err_msg=ctx)
    np.testing.assert_array_equal(fast_cache._partner, slow_cache._partner, err_msg=ctx)
    np.testing.assert_array_equal(
        fast_cache._is_donor, slow_cache._is_donor, err_msg=ctx
    )
    np.testing.assert_array_equal(
        fast_cache._window_accesses, slow_cache._window_accesses, err_msg=ctx
    )
    np.testing.assert_array_equal(
        fast_cache._window_misses, slow_cache._window_misses, err_msg=ctx
    )
    assert fast_cache._clock == slow_cache._clock, ctx
    assert fast_cache._since_rebalance == slow_cache._since_rebalance, ctx


def assert_adaptive_state_identical(fast_cache, slow_cache, ctx: str) -> None:
    np.testing.assert_array_equal(fast_cache._blocks, slow_cache._blocks, err_msg=ctx)
    np.testing.assert_array_equal(
        fast_cache._out_of_position, slow_cache._out_of_position, err_msg=ctx
    )
    np.testing.assert_array_equal(
        fast_cache._disposable, slow_cache._disposable, err_msg=ctx
    )
    # Dict *ordering* matters: SHT/OUT/cold-pool are recency structures.
    assert list(fast_cache._sht.items()) == list(slow_cache._sht.items()), ctx
    assert list(fast_cache._out.items()) == list(slow_cache._out.items()), ctx
    assert list(fast_cache._cold_pool.items()) == list(slow_cache._cold_pool.items()), ctx


# -- column-associative -----------------------------------------------------------


class TestColumnAssociative:
    @pytest.mark.parametrize("protect", [True, False], ids=["protect", "noprotect"])
    @pytest.mark.parametrize("geometry", [TINY, SMALL], ids=["tiny", "small"])
    def test_all_schemes_all_traces(self, geometry, protect):
        fit = random_trace(geometry, n=2000, seed=99)
        for scheme in scheme_lineup(geometry, fit):
            for trace in trace_zoo(geometry):
                ctx = f"{scheme.name}/{trace.name}/protect={protect}"
                fast_cache = ColumnAssociativeCache(
                    geometry, indexing=scheme, protect_conventional=protect
                )
                slow_cache = ColumnAssociativeCache(
                    geometry, indexing=scheme, protect_conventional=protect
                )
                fast = simulate_column_associative(fast_cache, trace)
                slow = simulate(slow_cache, trace)
                assert_results_identical(fast, slow, ctx)
                assert_colassoc_state_identical(fast_cache, slow_cache, ctx)
                fast_cache.check_invariants()

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_randomized_seeds(self, seed):
        trace = random_trace(SMALL, n=8000, seed=seed)
        fast_cache = ColumnAssociativeCache(SMALL)
        slow_cache = ColumnAssociativeCache(SMALL)
        fast = simulate_column_associative(fast_cache, trace)
        slow = simulate(slow_cache, trace)
        assert_results_identical(fast, slow, f"seed={seed}")
        assert_colassoc_state_identical(fast_cache, slow_cache, f"seed={seed}")

    def test_extras_partition_totals(self):
        trace = hot_trace(SMALL, n=5000)
        res = simulate_column_associative(ColumnAssociativeCache(SMALL), trace)
        e = res.extra
        assert e.get("first_probe_hits", 0) + e.get("rehash_hits", 0) == res.hits
        assert e.get("direct_misses", 0) + e.get("rehash_misses", 0) == res.misses


# -- B-cache ----------------------------------------------------------------------


class TestBCache:
    @pytest.mark.parametrize("mf,bas", [(2, 2), (2, 4), (4, 2), (4, 4)])
    @pytest.mark.parametrize("geometry", [TINY, SMALL], ids=["tiny", "small"])
    def test_operating_points_all_traces(self, geometry, mf, bas):
        for trace in trace_zoo(geometry):
            ctx = f"mf={mf}/bas={bas}/{trace.name}"
            try:
                fast_cache = BalancedCache(geometry, mapping_factor=mf, bas=bas)
                slow_cache = BalancedCache(geometry, mapping_factor=mf, bas=bas)
            except ValueError:
                pytest.skip(f"geometry rejects {ctx}")
            fast = simulate_bcache(fast_cache, trace)
            slow = simulate(slow_cache, trace)
            assert_results_identical(fast, slow, ctx)
            assert_bcache_state_identical(fast_cache, slow_cache, ctx)
            fast_cache.check_invariants()

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_randomized_seeds(self, seed):
        trace = random_trace(SMALL, n=8000, seed=seed)
        fast_cache = BalancedCache(SMALL)
        slow_cache = BalancedCache(SMALL)
        fast = simulate_bcache(fast_cache, trace)
        slow = simulate(slow_cache, trace)
        assert_results_identical(fast, slow, f"seed={seed}")
        assert_bcache_state_identical(fast_cache, slow_cache, f"seed={seed}")

    def test_non_lru_policy_rejected(self):
        cache = BalancedCache(SMALL, policy="random")
        with pytest.raises(ValueError):
            simulate_bcache(cache, random_trace(SMALL, n=10))

    def test_every_hit_is_a_direct_hit(self):
        trace = hot_trace(SMALL, n=5000)
        res = simulate_bcache(BalancedCache(SMALL), trace)
        assert res.extra.get("direct_hits", 0) == res.hits
        assert res.lookup_cycles == res.accesses  # single-cycle decode


# -- partner cache ----------------------------------------------------------------


class TestPartnerCache:
    @pytest.mark.parametrize("period", [16, 64, 257, 100_000])
    @pytest.mark.parametrize("geometry", [TINY, SMALL], ids=["tiny", "small"])
    def test_rebalance_periods_all_traces(self, geometry, period):
        for trace in trace_zoo(geometry):
            ctx = f"period={period}/{trace.name}"
            fast_cache = PartnerIndexCache(geometry, rebalance_period=period)
            slow_cache = PartnerIndexCache(geometry, rebalance_period=period)
            fast = simulate_partner(fast_cache, trace)
            slow = simulate(slow_cache, trace)
            assert_results_identical(fast, slow, ctx)
            assert_partner_state_identical(fast_cache, slow_cache, ctx)
            fast_cache.stats.check_invariants()

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_randomized_seeds_many_windows(self, seed):
        trace = random_trace(SMALL, n=8000, seed=seed)
        fast_cache = PartnerIndexCache(SMALL, rebalance_period=97)
        slow_cache = PartnerIndexCache(SMALL, rebalance_period=97)
        fast = simulate_partner(fast_cache, trace)
        slow = simulate(slow_cache, trace)
        assert_results_identical(fast, slow, f"seed={seed}")
        assert_partner_state_identical(fast_cache, slow_cache, f"seed={seed}")

    def test_mid_window_resume(self):
        """Running two traces back to back equals running their concatenation
        (the fast path must leave ``_since_rebalance`` mid-window exact)."""
        t1 = random_trace(SMALL, n=111, seed=5)
        t2 = random_trace(SMALL, n=222, seed=6)
        both = Trace(
            np.concatenate([t1.addresses, t2.addresses]), name=t2.name
        )
        split_cache = PartnerIndexCache(SMALL, rebalance_period=70)
        simulate_partner(split_cache, t1)
        split = simulate_partner(split_cache, t2)
        whole_cache = PartnerIndexCache(SMALL, rebalance_period=70)
        simulate(whole_cache, t1)
        whole = simulate(whole_cache, t2)
        assert_results_identical(split, whole, "mid-window resume")
        assert_partner_state_identical(split_cache, whole_cache, "mid-window resume")

    def test_extras_partition_hits(self):
        trace = random_trace(SMALL, n=6000, seed=8)
        res = simulate_partner(PartnerIndexCache(SMALL, rebalance_period=64), trace)
        e = res.extra
        assert e.get("direct_hits", 0) + e.get("partner_hits", 0) == res.hits
        assert e.get("partner_misses", 0) <= res.misses


# -- adaptive (hoisted sequential) ------------------------------------------------


class TestAdaptive:
    @pytest.mark.parametrize("geometry", [TINY, SMALL], ids=["tiny", "small"])
    def test_all_traces(self, geometry):
        for trace in trace_zoo(geometry):
            fast_cache = AdaptiveGroupAssociativeCache(geometry)
            slow_cache = AdaptiveGroupAssociativeCache(geometry)
            fast = simulate_adaptive(fast_cache, trace)
            slow = simulate(slow_cache, trace)
            assert_results_identical(fast, slow, trace.name)
            assert_adaptive_state_identical(fast_cache, slow_cache, trace.name)
            fast_cache.check_invariants()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_seeds_paper_fractions(self, seed):
        trace = random_trace(SMALL, n=8000, seed=seed)
        kw = dict(sht_fraction=3 / 8, out_fraction=4 / 16)
        fast_cache = AdaptiveGroupAssociativeCache(SMALL, **kw)
        slow_cache = AdaptiveGroupAssociativeCache(SMALL, **kw)
        fast = simulate_adaptive(fast_cache, trace)
        slow = simulate(slow_cache, trace)
        assert_results_identical(fast, slow, f"seed={seed}")
        assert_adaptive_state_identical(fast_cache, slow_cache, f"seed={seed}")


# -- the dispatcher ---------------------------------------------------------------


class TestSimulateProgassoc:
    def _models(self, geometry):
        return [
            ColumnAssociativeCache(geometry),
            ColumnAssociativeCache(geometry, protect_conventional=False),
            BalancedCache(geometry),
            PartnerIndexCache(geometry, rebalance_period=64),
            AdaptiveGroupAssociativeCache(geometry),
        ]

    def test_auto_equals_sequential(self):
        trace = random_trace(SMALL, n=5000, seed=23)
        for auto_cache, seq_cache in zip(self._models(SMALL), self._models(SMALL)):
            auto = simulate_progassoc(auto_cache, trace, engine="auto")
            seq = simulate_progassoc(seq_cache, trace, engine="sequential")
            assert_results_identical(auto, seq, type(auto_cache).__name__)

    def test_has_fast_path(self):
        for cache in self._models(SMALL):
            assert has_fast_path(cache), type(cache).__name__
        assert not has_fast_path(BalancedCache(SMALL, policy="random"))

    def test_warmup_falls_back_but_agrees(self):
        trace = random_trace(SMALL, n=3000, seed=29)
        fast = simulate_progassoc(ColumnAssociativeCache(SMALL), trace, warmup=500)
        slow = simulate(ColumnAssociativeCache(SMALL), trace, warmup=500)
        assert (fast.accesses, fast.hits, fast.misses) == (
            slow.accesses,
            slow.hits,
            slow.misses,
        )

    def test_invariant_checking_falls_back(self):
        trace = random_trace(SMALL, n=1000, seed=31)
        res = simulate_progassoc(
            BalancedCache(SMALL), trace, check_invariants_every=100
        )
        seq = simulate(BalancedCache(SMALL), trace)
        assert res.misses == seq.misses

    def test_non_lru_bcache_takes_sequential_under_auto(self):
        trace = random_trace(SMALL, n=2000, seed=37)
        rand_cache = BalancedCache(SMALL, policy="random", seed=4)
        ref_cache = BalancedCache(SMALL, policy="random", seed=4)
        auto = simulate_progassoc(rand_cache, trace)
        seq = simulate(ref_cache, trace)
        assert_results_identical(auto, seq, "rand-policy fallback")

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            simulate_progassoc(
                ColumnAssociativeCache(SMALL), random_trace(SMALL, n=10), engine="turbo"
            )
