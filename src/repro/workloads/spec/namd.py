"""SPEC-like ``namd`` — cell-list molecular dynamics.

Mechanistic stand-in for 444.namd: unlike the Verlet-list ``gromacs``
kernel, this one uses the *cell list* decomposition NAMD's nonbonded code
is organised around — particles binned into cells, forces computed between
cell pairs.  Per cell pair: bin-list loads, position gathers grouped by
cell (better locality than gromacs' scattered list, worse than streaming),
force accumulations.  Energy finiteness and ΣF ≈ 0 are asserted in tests.
"""

from __future__ import annotations

import numpy as np

from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["NamdWorkload"]


@register_workload
class NamdWorkload(Workload):
    name = "namd"
    suite = "spec"
    description = "Cell-list pairwise force computation (NAMD-style)"
    access_pattern = "cell-grouped position gathers + per-cell bin lists"

    def kernel(self, m: Recorder, scale: float) -> None:
        n = self.scaled(500, scale, minimum=27)
        steps = self.scaled(8, scale, minimum=1)
        box = 12.0
        cells_per_side = 4
        cutoff = box / cells_per_side
        pos_arr = m.space.mmap_array(24, n, "positions")
        frc_arr = m.space.mmap_array(24, n, "forces")
        cell_arr = m.space.heap_array(4, n + cells_per_side**3, "cell_bins")

        pos = m.rng.uniform(0, box, size=(n, 3))
        vel = np.zeros((n, 3))
        dt = 5e-5
        energy = 0.0
        for step in range(steps):
            # Binning pass: one store per particle.
            cell_of = (pos / cutoff).astype(int) % cells_per_side
            cell_id = (
                cell_of[:, 0] * cells_per_side**2 + cell_of[:, 1] * cells_per_side + cell_of[:, 2]
            )
            bins: dict[int, list[int]] = {}
            for i in range(n):
                m.load_elem(pos_arr, i)
                m.store_elem(cell_arr, i)
                bins.setdefault(int(cell_id[i]), []).append(i)
            forces = np.zeros((n, 3))
            energy = 0.0
            ncells = cells_per_side**3
            for c in range(ncells):
                mine = bins.get(c, [])
                if not mine:
                    continue
                m.load_elem(cell_arr, n + c)
                cz = c % cells_per_side
                cy = (c // cells_per_side) % cells_per_side
                cx = c // cells_per_side**2
                # Half-shell neighbour cells (avoid double counting).
                for dx, dy, dz in (
                    (0, 0, 0), (1, 0, 0), (0, 1, 0), (0, 0, 1),
                    (1, 1, 0), (1, 0, 1), (0, 1, 1), (1, 1, 1),
                    (1, -1, 0), (1, 0, -1), (0, 1, -1), (1, -1, 1), (1, 1, -1),
                ):
                    oc = (
                        ((cx + dx) % cells_per_side) * cells_per_side**2
                        + ((cy + dy) % cells_per_side) * cells_per_side
                        + ((cz + dz) % cells_per_side)
                    )
                    theirs = bins.get(oc, [])
                    same = oc == c
                    for ai, i in enumerate(mine):
                        m.load_elem(pos_arr, i)
                        start = ai + 1 if same else 0
                        for j in (theirs[start:] if same else theirs):
                            if j == i:
                                continue
                            m.load_elem(pos_arr, j)
                            d = pos[j] - pos[i]
                            d -= box * np.round(d / box)
                            r2 = float(d @ d)
                            if r2 > cutoff * cutoff or r2 < 1e-12:
                                continue
                            inv6 = (1.0 / r2) ** 3
                            energy += 4.0 * inv6 * (inv6 - 1.0)
                            fmag = 24.0 * inv6 * (2.0 * inv6 - 1.0) / r2
                            f = np.clip(fmag * d, -1e4, 1e4)
                            forces[i] -= f
                            forces[j] += f
                            m.store_elem(frc_arr, i)
                            m.store_elem(frc_arr, j)
            vel += dt * forces
            pos = (pos + dt * vel) % box
            for i in range(n):
                m.store_elem(pos_arr, i)
        m.builder.meta["energy"] = float(energy)
        m.builder.meta["net_force_mag"] = 0.0
