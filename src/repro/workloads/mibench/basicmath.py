"""MiBench ``basicmath`` — cubic roots, integer square roots, angle
conversions.

Compute-dominated with a small memory footprint: tight stack frames per
solver call, small coefficient/result arrays.  The stack lines are
re-touched constantly, so a handful of sets take nearly all accesses —
non-uniform *accesses* but almost all hits, the case the paper's intro
singles out (non-uniformity alone does not imply misses).

The cubic solver is Cardano's method, verified against ``numpy.roots``.
"""

from __future__ import annotations

import math

from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["BasicmathWorkload", "solve_cubic"]


def solve_cubic(a: float, b: float, c: float, d: float) -> list[float]:
    """Real roots of ``a x³ + b x² + c x + d`` (Cardano; a ≠ 0)."""
    b, c, d = b / a, c / a, d / a
    q = (3.0 * c - b * b) / 9.0
    r = (-27.0 * d + b * (9.0 * c - 2.0 * b * b)) / 54.0
    disc = q**3 + r * r
    shift = -b / 3.0
    if disc > 0:
        s = math.copysign(abs(r + math.sqrt(disc)) ** (1 / 3), r + math.sqrt(disc))
        t = math.copysign(abs(r - math.sqrt(disc)) ** (1 / 3), r - math.sqrt(disc))
        return [shift + s + t]
    if abs(disc) < 1e-12:
        s = math.copysign(abs(r) ** (1 / 3), r)
        return [shift + 2 * s, shift - s]
    theta = math.acos(r / math.sqrt(-(q**3)))
    mag = 2.0 * math.sqrt(-q)
    return [
        shift + mag * math.cos(theta / 3.0),
        shift + mag * math.cos((theta + 2.0 * math.pi) / 3.0),
        shift + mag * math.cos((theta + 4.0 * math.pi) / 3.0),
    ]


def isqrt_newton(x: int) -> int:
    """Integer square root by the benchmark's bit-by-bit method."""
    if x < 0:
        raise ValueError("negative")
    root, rem = 0, 0
    for _ in range(16):
        root <<= 1
        rem = (rem << 2) | (x >> 30)
        x = (x << 2) & 0xFFFFFFFF
        root += 1
        if root <= rem:
            rem -= root
            root += 1
        else:
            root -= 1
    return root >> 1


@register_workload
class BasicmathWorkload(Workload):
    name = "basicmath"
    suite = "mibench"
    description = "Cubic solving, integer sqrt and deg/rad conversion loops"
    access_pattern = "hot stack frames + small coefficient arrays"

    def kernel(self, m: Recorder, scale: float) -> None:
        iters = self.scaled(6000, scale, minimum=8)
        coeffs = m.space.static_array(8, 4, "coeffs")
        results = m.space.heap_array(8, 3 * iters, "roots")
        out_idx = 0
        for it in range(iters):
            frame = m.space.push_frame(128)
            a_s = frame.local("a")
            q_s = frame.local("q")
            r_s = frame.local("r")
            a = 1.0
            b = float(m.rng.uniform(-20, 20))
            c = float(m.rng.uniform(-100, 100))
            d = float(m.rng.uniform(-100, 100))
            for i in range(4):
                m.load_elem(coeffs, i)
            m.store(a_s)
            m.store(q_s)
            m.store(r_s)
            roots = solve_cubic(a, b, c, d)
            m.printf(40, fmt_id=0)  # "Solutions:" line per equation
            for root in roots:
                m.load(q_s)
                m.load(r_s)
                m.store_elem(results, out_idx)
                out_idx += 1
            # Integer sqrt sub-loop (usqrt phase of the benchmark).
            x = int(m.rng.integers(0, 1 << 30))
            sq_s = frame.local("sq")
            for _ in range(4):
                m.store(sq_s)
                m.load(sq_s)
            _ = isqrt_newton(x)
            m.printf(24, fmt_id=1)  # "sqrt(%lu) = %u" line
            # Degree/radian conversion phase: short strided sweeps.
            deg_arr = frame.local_array("deg", 8, 8)
            for i in range(8):
                m.store_elem(deg_arr, i)
                m.load_elem(deg_arr, i)
            m.space.pop_frame()
        m.builder.meta["roots_emitted"] = out_idx
