"""MiBench ``crc`` — CRC-32 over a file read in stdio chunks.

Faithful to the benchmark's structure: the file is processed through a
*reused* 1 KiB read buffer (``fread`` refills it chunk after chunk), with a
hot 256-entry table consulted per byte and the running CRC on the stack.
The hot working set is tiny — one buffer, one table, a few stack slots —
and under conventional indexing these objects occupy *disjoint* sets, so
the baseline shows almost no conflict misses (the paper's Figure 4/6 crc
bars sit at ≈0).

That same structure is exactly what makes crc dangerous for profile-driven
and hashed indexing in the paper: any index function that happens to map a
buffer line onto a table line makes the per-byte load pair ping-pong once
per input byte, multiplying the near-zero baseline misses by orders of
magnitude (the paper's -1200% Givargis bar).

The CRC computed is the real IEEE 802.3 value (tested against
``zlib.crc32``).
"""

from __future__ import annotations

import numpy as np

from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["CRCWorkload", "crc32_table"]

_POLY = 0xEDB88320
_CHUNK = 1024


def crc32_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table.append(crc)
    return table


@register_workload
class CRCWorkload(Workload):
    name = "crc"
    suite = "mibench"
    description = "CRC-32 of a file streamed through a reused 1 KiB buffer"
    access_pattern = "tiny hot working set: chunk buffer + table + stack"

    def kernel(self, m: Recorder, scale: float) -> None:
        file_bytes = self.scaled(64 * 1024, scale, minimum=_CHUNK)
        buf = m.space.heap_array(1, _CHUNK, "read_buffer")
        table = m.space.static_array(4, 256, "crc_table")
        data = m.rng.integers(0, 256, size=file_bytes, dtype=int)
        tbl = crc32_table()
        frame = m.space.push_frame(64)
        crc_slot = frame.local("crc", 4)
        crc = 0xFFFFFFFF
        m.store(crc_slot)
        if m.bulk:
            # Per-chunk emission unit, identical to the scalar loop's order:
            # [128 refill stores, crc spill-in load, (buf load, table load)
            # per byte, crc spill-out store].  The table index sequence is
            # data-dependent (crc recurrence), so it is computed in a tight
            # Python loop over plain ints; everything else is vectorised.
            refill = buf.addrs(np.arange(0, _CHUNK, 8))
            spill = np.array([crc_slot], dtype=np.uint64)
            for chunk_start in range(0, file_bytes, _CHUNK):
                chunk = data[chunk_start : chunk_start + _CHUNK]
                idxs = []
                append = idxs.append
                for byte in chunk.tolist():
                    idx = (crc ^ byte) & 0xFF
                    append(idx)
                    crc = (crc >> 8) ^ tbl[idx]
                size = chunk.size
                body = np.empty(2 * size, dtype=np.uint64)
                body[0::2] = buf.addrs(np.arange(size))
                body[1::2] = table.addrs(np.asarray(idxs))
                addresses = np.concatenate((refill, spill, body, spill))
                flags = np.zeros(addresses.size, dtype=bool)
                flags[: refill.size] = True
                flags[-1] = True
                m.pattern_stream(addresses, flags)
        else:
            for chunk_start in range(0, file_bytes, _CHUNK):
                # fread refill: the library writes the buffer word by word.
                for w in range(0, _CHUNK, 8):
                    m.store(buf.addr(w))
                chunk = data[chunk_start : chunk_start + _CHUNK]
                # The running crc lives in a register inside the byte loop and
                # is spilled once per chunk (as a compiler would emit it).
                m.load(crc_slot)
                for i in range(chunk.size):
                    m.load_elem(buf, i)
                    idx = (crc ^ int(chunk[i])) & 0xFF
                    m.load_elem(table, idx)
                    crc = (crc >> 8) ^ tbl[idx]
                m.store(crc_slot)
        m.space.pop_frame()
        m.builder.meta["crc"] = crc ^ 0xFFFFFFFF
        m.builder.meta["file_bytes"] = file_bytes
