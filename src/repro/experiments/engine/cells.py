"""Cell specs: one picklable description per independent simulation.

A :class:`SimCell` names everything a worker process needs to recompute one
bar of a figure from scratch: the workload (regenerated or loaded through
the shared on-disk :class:`~repro.trace.io.TraceCache`), the scheme or
cache-model to build, and the configuration parameters that influence the
outcome.  ``execute_cell`` is the single entry point used by both the
sequential fallback and the process-pool workers, so ``jobs=1`` and
``jobs=N`` run byte-for-byte the same code per cell.

Cell kinds
----------
``baseline``
    Conventional modulo-indexed direct-mapped run (vectorised fast path).
``indexing``
    One Figure-4 scheme (XOR / odd-multiplier / prime-modulo / Givargis /
    Givargis-XOR) over a direct-mapped cache; trainable schemes are fitted
    on the profiling trace inside the worker (deterministic given seeds).
``progassoc``
    One Figure-6 programmable-associativity model (adaptive / B-cache /
    column-associative).  B-cache and column-associative route through the
    set-decomposed :mod:`repro.core.fastassoc` engine under
    ``config.engine == "auto"``; the adaptive cache's SHT/OUT state is
    global, so it always takes the sequential reference loop.
``colassoc``
    Figure-8 column-associative cache with a non-conventional primary
    index; label ``ColAssoc_Base`` is the conventionally-indexed baseline.
    All variants take the pair-decomposed fastassoc engine under ``auto``.
``setassoc``
    One scheme × geometry × ways grid point: a k-way LRU cache simulated by
    the vectorised stack-distance kernel (labels ``2way``/``4way``/…, or
    ``FullAssoc`` for the single-set LRU bound).
``assocsweep``
    One point of a fixed-sets associativity sweep (label ``<k>way``): a
    k-way LRU cache over ``geometry.with_fixed_sets(k)``, so every point of
    the sweep shares the base geometry's set mapping.  That shared mapping
    is what lets the engine's family batcher answer a whole sweep from one
    stack-distance pass (Mattson); per-cell execution is an ordinary
    ``simulate_set_associative`` call and stays the bit-identity reference.
``bounds``
    One ext-bounds comparison column.  Set-associative and fully-associative
    labels route through the ``setassoc`` fast path; B-cache and
    column-associative take the fastassoc engine under ``auto``; the
    remaining stateful structures (skewed, victim, adaptive, Belady) are
    driven by the sequential reference engine.
``policysweep``
    One point of a replacement-policy sweep (label ``<scheme>:<policy>``,
    e.g. ``xor:plru``): the config geometry's k-way cache under an
    untrainable indexing scheme and any registered replacement policy,
    simulated by the exact set-decomposed replay kernels of
    :mod:`repro.core.fastpolicy` under ``config.engine == "auto"`` and by
    the sequential reference loop under ``"sequential"``.  Cells identical
    up to the policy form the engine's "policy" sweep-family axis: one
    decode + one index computation + one set-grouping pass answers the
    whole policy grid.
``auxsweep``
    One auxiliary-structure composition (label ``<scheme>:<combo><depth>``,
    e.g. ``xor:vc4`` or ``modulo:vc+sb8``): a direct-mapped cache under an
    untrainable indexing scheme augmented with victim-buffer / miss-cache /
    stream-buffer structures (:mod:`repro.core.aux`), simulated by the
    exact miss-event replay under ``config.engine == "auto"`` and by the
    sequential reference wrapper under ``"sequential"``.  Aux cells ride
    the engine's "decode" sweep-family axis (one shared trace open per
    workload; the replay itself is already the fast path per cell).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ...core.aux import AUX_COMBOS, simulate_aux
from ...core.caches import ColumnAssociativeCache
from ...core.fastassoc import simulate_progassoc
from ...core.fastpolicy import simulate_policy_set_associative
from ...core.replacement import POLICIES
from ...core.indexing import (
    GivargisIndexing,
    GivargisXorIndexing,
    ModuloIndexing,
    OddMultiplierIndexing,
    PrimeModuloIndexing,
    XorIndexing,
)
from ...core.simulator import (
    SimulationResult,
    simulate,
    simulate_fully_associative,
    simulate_indexing,
    simulate_set_associative,
)
from ..config import PaperConfig

__all__ = [
    "SimCell",
    "KernelSpec",
    "make_cell",
    "execute_cell",
    "timed_execute_cell",
    "kernel_cell_spec",
    "build_kernel_scheme",
    "PolicySpec",
    "policy_cell_spec",
    "build_policy_scheme",
    "build_aux_scheme",
    "CellExecutionError",
    "CELL_KINDS",
]

CELL_KINDS = (
    "baseline",
    "indexing",
    "progassoc",
    "colassoc",
    "setassoc",
    "assocsweep",
    "bounds",
    "policysweep",
    "auxsweep",
)

#: ``setassoc``/``bounds`` labels handled by the vectorised k-way LRU kernel.
_WAYS_LABELS = {"2way": 2, "4way": 4, "8way": 8}

#: Indexing-cell labels that require an off-line profiling (training) run.
_TRAINABLE_LABELS = frozenset({"Givargis", "Givargis_Xor"})

#: Schemes a ``policysweep`` or ``auxsweep`` label may name.  Untrainable
#: only: every member must see the same index stream with no profiling run.
_POLICY_SCHEMES = ("modulo", "xor", "odd_multiplier", "prime_modulo")


def _parse_ways_label(label: str) -> int | None:
    """``"<k>way"`` → ``k`` (``"8way"`` → 8), else ``None``."""
    if label.endswith("way") and label[:-3].isdigit():
        return int(label[:-3])
    return None


def _parse_policy_label(label: str) -> tuple[str, str]:
    """``"<scheme>:<policy>"`` → the validated pair; raises on bad labels."""
    scheme_name, sep, policy = label.partition(":")
    if not sep or not scheme_name or not policy:
        raise ValueError(
            f"unknown policy-sweep cell label {label!r} (expected '<scheme>:<policy>')"
        )
    if scheme_name not in _POLICY_SCHEMES:
        raise ValueError(
            f"policy-sweep scheme {scheme_name!r} not supported; "
            f"known: {_POLICY_SCHEMES}"
        )
    if policy not in POLICIES:
        raise ValueError(
            f"unknown replacement policy {policy!r}; known: {sorted(POLICIES)}"
        )
    return scheme_name, policy


def _parse_aux_label(label: str) -> tuple[str, str, int]:
    """``"<scheme>:<combo><depth>"`` → the validated triple; raises on bad
    labels (``"xor:vc4"`` → ``("xor", "vc", 4)``)."""
    scheme_name, sep, spec = label.partition(":")
    if not sep or not scheme_name or not spec:
        raise ValueError(
            f"unknown aux-sweep cell label {label!r} "
            "(expected '<scheme>:<combo><depth>')"
        )
    if scheme_name not in _POLICY_SCHEMES:
        raise ValueError(
            f"aux-sweep scheme {scheme_name!r} not supported; "
            f"known: {_POLICY_SCHEMES}"
        )
    combo = spec.rstrip("0123456789")
    digits = spec[len(combo):]
    if combo not in AUX_COMBOS:
        raise ValueError(
            f"unknown aux combo {combo!r} in label {label!r}; known: {AUX_COMBOS}"
        )
    if not digits or int(digits) < 1:
        raise ValueError(
            f"aux-sweep label {label!r} needs a positive depth suffix (e.g. 'vc4')"
        )
    return scheme_name, combo, int(digits)


class CellExecutionError(RuntimeError):
    """A cell failed; the message names the (workload, scheme) pair.

    Raised by the engine (never inside a worker process, so there is no
    cross-process pickling of custom exception constructors) with the
    original exception chained as ``__cause__``.
    """


@dataclass(frozen=True)
class SimCell:
    """One independent (workload, technique) simulation."""

    kind: str
    workload: str
    label: str
    #: Canonical ``(name, value)`` pairs folded into the result-cache key;
    #: everything (beyond the trace itself) that influences the outcome.
    params: tuple = ()
    #: Whether the worker must also materialise the profiling trace.
    needs_profile: bool = False
    #: Associativity of the simulated structure (None = the config geometry's
    #: own ``ways``); folded into the result-cache key.
    ways: int | None = None
    #: Replacement policy of the simulated structure; part of the cache key.
    policy: str = "lru"

    @property
    def name(self) -> str:
        return f"{self.workload}/{self.label}"


def make_cell(kind: str, workload: str, label: str, config: PaperConfig) -> SimCell:
    """Build a cell, capturing the config knobs relevant to ``kind``/``label``."""
    if kind not in CELL_KINDS:
        raise ValueError(f"unknown cell kind {kind!r}; known: {CELL_KINDS}")
    params: list[tuple] = []
    needs_profile = False
    ways: int | None = None
    policy = "lru"
    if kind == "indexing":
        if label == "Odd_Multiplier":
            params.append(("odd_multiplier", config.odd_multiplier))
        if label in _TRAINABLE_LABELS:
            needs_profile = True
            params.append(("profile_seed_offset", config.profile_seed_offset))
    elif kind == "progassoc":
        if label == "Adaptive_Cache":
            params.append(("sht_fraction", config.sht_fraction))
            params.append(("out_fraction", config.out_fraction))
        elif label == "B_Cache":
            params.append(("mapping_factor", config.bcache_mapping_factor))
            params.append(("bas", config.bcache_bas))
        elif label == "Column_associative":
            params.append(("protect_conventional", config.protect_conventional))
    elif kind == "colassoc":
        if label == "ColAssoc_Odd_Multiplier":
            params.append(("odd_multiplier", config.odd_multiplier))
        # The swap policy changes outcomes for every column-associative cell.
        params.append(("protect_conventional", config.protect_conventional))
    elif kind == "assocsweep":
        ways = _parse_ways_label(label)
        if ways is None:
            raise ValueError(
                f"unknown associativity-sweep cell label {label!r} (expected '<k>way')"
            )
        # Validate the sweep geometry eagerly so a bad label fails at
        # grid-declaration time, not inside a worker.
        config.geometry.with_fixed_sets(ways)
    elif kind in ("setassoc", "bounds"):
        if label in _WAYS_LABELS:
            ways = _WAYS_LABELS[label]
        elif label == "FullAssoc":
            ways = config.geometry.num_lines
        elif kind == "setassoc":
            raise ValueError(f"unknown set-associative cell label {label!r}")
        elif label == "Skewed2":
            params.append(("skew_ways", 2))
        elif label == "Victim8":
            params.append(("victim_lines", config.victim_lines))
        elif label == "Adaptive":
            params.append(("sht_fraction", config.sht_fraction))
            params.append(("out_fraction", config.out_fraction))
        elif label == "B_Cache":
            params.append(("mapping_factor", config.bcache_mapping_factor))
            params.append(("bas", config.bcache_bas))
        elif label == "ColAssoc":
            params.append(("protect_conventional", config.protect_conventional))
        elif label != "Belady":
            raise ValueError(f"unknown bounds cell label {label!r}")
    elif kind == "policysweep":
        scheme_name, policy = _parse_policy_label(label)
        if scheme_name == "odd_multiplier":
            params.append(("odd_multiplier", config.odd_multiplier))
        if policy == "random":
            # The generator seed changes random-policy outcomes, so it must
            # reach the result-cache key; other policies ignore it.
            params.append(("policy_seed", config.policy_seed))
    elif kind == "auxsweep":
        scheme_name, combo, _depth = _parse_aux_label(label)
        if config.geometry.ways != 1:
            raise ValueError("aux structures augment a direct-mapped geometry")
        if scheme_name == "odd_multiplier":
            params.append(("odd_multiplier", config.odd_multiplier))
        if "sb" in combo.split("+"):
            # Stream-buffer shape knobs change outcomes, so they must reach
            # the result-cache key; vc/mc-only cells ignore them.
            params.append(("aux_streams", config.aux_streams))
            params.append(("aux_allocate", config.aux_allocate))
    return SimCell(
        kind=kind,
        workload=workload,
        label=label,
        params=tuple(params),
        needs_profile=needs_profile,
        ways=ways,
        policy=policy,
    )


# -- execution (runs in the parent at jobs=1, in pool workers otherwise) ----------

def _trace_at(path, name: str, config: PaperConfig | None = None):
    """The trace stored at ``path``, renamed to ``name``, via the arena.

    Pool workers run many cells of the same workload back to back;
    opening the (content-addressed, read-only) file once per process
    instead of once per cell is the point of shipping *paths* rather than
    pickled address arrays.  The process-wide
    :class:`~repro.trace.arena.TraceArena` replaces the old unbounded
    per-module memo: raw-format entries map zero-copy (forked workers
    share the parent's page-cache pages), legacy npz entries decode, and
    a byte-budgeted LRU keeps long-lived service/cluster processes from
    accumulating every trace they ever touched.  ``config`` (when the
    caller has one) carries the budget, ``trace_arena_bytes``.
    """
    from ...trace.arena import get_arena

    arena = get_arena()
    if config is not None and config.trace_arena_bytes:
        arena.configure(config.trace_arena_bytes)
    return arena.get(path, name)


def _build_indexing_scheme(cell: SimCell, config: PaperConfig, profile_path=None):
    g = config.geometry
    if cell.label == "XOR":
        return XorIndexing(g)
    if cell.label == "Odd_Multiplier":
        return OddMultiplierIndexing(g, config.odd_multiplier)
    if cell.label == "Prime_Modulo":
        return PrimeModuloIndexing(g)
    if cell.label in _TRAINABLE_LABELS:
        if profile_path is not None:
            fit_addrs = _trace_at(profile_path, cell.workload, config).addresses
        else:
            from ..runner import profile_trace

            fit_addrs = profile_trace(cell.workload, config).addresses
        cls = GivargisIndexing if cell.label == "Givargis" else GivargisXorIndexing
        return cls(g).fit(fit_addrs)
    raise ValueError(f"unknown indexing-cell label {cell.label!r}")


def _build_colassoc_index(cell: SimCell, config: PaperConfig):
    g = config.geometry
    if cell.label == "ColAssoc_Base":
        return None
    if cell.label == "ColAssoc_XOR":
        return XorIndexing(g)
    if cell.label == "ColAssoc_Odd_Multiplier":
        return OddMultiplierIndexing(g, config.odd_multiplier)
    if cell.label == "ColAssoc_Prime_Modulo":
        return PrimeModuloIndexing(g)
    raise ValueError(f"unknown column-associative cell label {cell.label!r}")


def _execute_bounds_cell(cell: SimCell, trace, config: PaperConfig) -> SimulationResult:
    """One ``setassoc``/``bounds`` cell: fast path where exact, sequential else."""
    g = config.geometry
    if cell.label in _WAYS_LABELS:
        gk = g.with_ways(_WAYS_LABELS[cell.label])
        return simulate_set_associative(ModuloIndexing(gk), trace, gk)
    if cell.label == "FullAssoc":
        return simulate_fully_associative(trace, g)
    # Stateful structures: only the sequential reference engine is exact.
    from ...core.caches import (
        AdaptiveGroupAssociativeCache,
        BalancedCache,
        BeladyCache,
        SkewedAssociativeCache,
        VictimCache,
    )

    if cell.label == "Skewed2":
        return simulate(SkewedAssociativeCache(g, ways=2), trace)
    if cell.label == "Victim8":
        from ...core.aux import simulate_augmented

        return simulate_augmented(
            VictimCache(g, victim_lines=config.victim_lines),
            trace,
            engine=config.engine,
        )
    if cell.label == "Adaptive":
        return simulate_progassoc(
            AdaptiveGroupAssociativeCache(
                g, sht_fraction=config.sht_fraction, out_fraction=config.out_fraction
            ),
            trace,
            engine=config.engine,
        )
    if cell.label == "B_Cache":
        return simulate_progassoc(
            BalancedCache(
                g, mapping_factor=config.bcache_mapping_factor, bas=config.bcache_bas
            ),
            trace,
            engine=config.engine,
        )
    if cell.label == "ColAssoc":
        return simulate_progassoc(
            ColumnAssociativeCache(
                g, protect_conventional=config.protect_conventional
            ),
            trace,
            engine=config.engine,
        )
    if cell.label == "Belady":
        blocks = trace.blocks(g.offset_bits).astype("int64")
        return simulate(BeladyCache(g, blocks), trace)
    raise ValueError(f"unknown bounds cell label {cell.label!r}")


def execute_cell(
    cell: SimCell,
    config: PaperConfig,
    trace_path=None,
    profile_path=None,
) -> SimulationResult:
    """Run one cell from its spec alone (pure, deterministic).

    The workload trace is materialised through the shared on-disk trace
    cache — the engine pre-warms it in the parent so worker processes only
    ever read.  When the engine passes the pre-warmed ``trace_path`` /
    ``profile_path``, the worker maps those files directly through the
    process-wide trace arena (zero-copy for raw-format entries) instead
    of re-deriving the cache key; results are bit-identical because
    ``workload_trace`` itself returns a load of the very same file on a
    warm cache, and the raw format round-trips every field byte-for-byte
    (``tests/trace/test_raw_format.py``).
    """
    from ..runner import progassoc_lineup, workload_trace

    if trace_path is not None:
        trace = _trace_at(trace_path, cell.workload, config)
    else:
        trace = workload_trace(cell.workload, config)
    g = config.geometry
    if cell.kind == "baseline":
        if g.ways != 1:
            return simulate_set_associative(ModuloIndexing(g), trace, g)
        return simulate_indexing(ModuloIndexing(g), trace, g)
    if cell.kind == "indexing":
        scheme = _build_indexing_scheme(cell, config, profile_path)
        if g.ways != 1:
            return simulate_set_associative(scheme, trace, g)
        return simulate_indexing(scheme, trace, g)
    if cell.kind == "assocsweep":
        gk = g.with_fixed_sets(cell.ways)
        return simulate_set_associative(ModuloIndexing(gk), trace, gk)
    if cell.kind == "policysweep":
        scheme, gp = build_policy_scheme(cell, config)
        return simulate_policy_set_associative(
            scheme,
            trace,
            gp,
            policy=cell.policy,
            seed=config.policy_seed,
            engine=config.engine,
        )
    if cell.kind == "auxsweep":
        scheme, combo, depth, ga = build_aux_scheme(cell, config)
        return simulate_aux(
            scheme,
            trace,
            ga,
            combo=combo,
            depth=depth,
            streams=config.aux_streams,
            allocate=config.aux_allocate,
            engine=config.engine,
        )
    if cell.kind in ("setassoc", "bounds"):
        return _execute_bounds_cell(cell, trace, config)
    if cell.kind == "progassoc":
        try:
            factory = progassoc_lineup(config)[cell.label]
        except KeyError:
            raise ValueError(f"unknown programmable-associativity label {cell.label!r}") from None
        return simulate_progassoc(factory(), trace, engine=config.engine)
    if cell.kind == "colassoc":
        indexing = _build_colassoc_index(cell, config)
        cache = ColumnAssociativeCache(
            g,
            indexing=indexing,
            protect_conventional=config.protect_conventional,
        )
        return simulate_progassoc(cache, trace, engine=config.engine)
    raise ValueError(f"unknown cell kind {cell.kind!r}")


def timed_execute_cell(
    cell: SimCell,
    config: PaperConfig,
    trace_path=None,
    profile_path=None,
) -> tuple[SimulationResult, float]:
    """``execute_cell`` plus wall-clock seconds (the pool-worker entry point)."""
    t0 = time.perf_counter()
    if config.cell_delay:
        # Load-generator knob: deterministic service-time floor so cluster
        # scaling benches are capacity-bound, not machine-bound.
        time.sleep(config.cell_delay)
    result = execute_cell(cell, config, trace_path, profile_path)
    return result, time.perf_counter() - t0


# -- sweep-family kernel classification ------------------------------------------


@dataclass(frozen=True)
class KernelSpec:
    """How one cell maps onto the shared stack-distance kernel.

    ``signature`` names the cell's *set-mapping identity*: two cells of the
    same workload with equal signatures see byte-identical ``(blocks,
    indices)`` streams, so one :func:`~repro.core.fastsim.lru_stack_distances`
    pass answers both — the exactness condition of the "assoc" batching
    axis.  ``ways`` is the threshold applied to that pass and ``style``
    ("direct" or "setassoc") the per-cell packaging convention
    :func:`~repro.core.simulator.simulate_lru_sweep` must reproduce.
    """

    signature: tuple
    ways: int
    style: str


def kernel_cell_spec(cell: SimCell, config: PaperConfig) -> KernelSpec | None:
    """Classify a cell for the shared-kernel sweep path; ``None`` = not exact.

    Only stateless-lookup LRU cells qualify (the Mattson inclusion property
    holds for LRU alone).  The signature folds in everything that shapes
    the per-access index stream: the scheme identity and its parameters,
    the set count, and the block granularity.  Trainable schemes
    (Givargis) fold in the profiling-run identity instead of the fitted
    table — exact because families never mix workloads and the profiling
    trace is a pure function of (workload, config).
    """
    if cell.policy != "lru":
        return None
    g = config.geometry
    geo_sig = (g.num_sets, g.offset_bits, g.address_bits)
    if cell.kind == "baseline":
        style = "direct" if g.ways == 1 else "setassoc"
        return KernelSpec(("modulo",) + geo_sig, g.ways, style)
    if cell.kind == "indexing":
        style = "direct" if g.ways == 1 else "setassoc"
        if cell.label == "XOR":
            return KernelSpec(("xor",) + geo_sig, g.ways, style)
        if cell.label == "Odd_Multiplier":
            return KernelSpec(
                ("odd_multiplier", config.odd_multiplier) + geo_sig, g.ways, style
            )
        if cell.label == "Prime_Modulo":
            return KernelSpec(("prime_modulo",) + geo_sig, g.ways, style)
        if cell.label in _TRAINABLE_LABELS:
            return KernelSpec(
                (cell.label.lower(), config.profile_seed_offset) + geo_sig,
                g.ways,
                style,
            )
        return None
    if cell.kind == "assocsweep":
        # with_fixed_sets keeps num_sets (hence the mapping) equal to the
        # base geometry's: every sweep point shares the base signature.
        return KernelSpec(("modulo",) + geo_sig, cell.ways, "setassoc")
    if cell.kind in ("setassoc", "bounds") and cell.label in _WAYS_LABELS:
        # Equal-capacity k-way points: with_ways *changes* num_sets, so the
        # signature differs per k — such cells never share a pass (they can
        # still join the decode axis), but classifying them keeps the
        # partition property total and uniformly tested.
        gk = g.with_ways(_WAYS_LABELS[cell.label])
        return KernelSpec(
            ("modulo", gk.num_sets, gk.offset_bits, gk.address_bits),
            gk.ways,
            "setassoc",
        )
    return None


def build_kernel_scheme(cell: SimCell, config: PaperConfig, profile_path=None):
    """Build the (scheme, geometry) a kernel cell's per-cell path would use.

    The family executor calls this on *one* representative member; equal
    :class:`KernelSpec` signatures guarantee any member yields the same
    index stream (and the scheme ``name``s that label the results are
    geometry-independent class attributes, so model strings match too).
    """
    g = config.geometry
    if cell.kind == "baseline":
        return ModuloIndexing(g), g
    if cell.kind == "indexing":
        return _build_indexing_scheme(cell, config, profile_path), g
    if cell.kind == "assocsweep":
        gk = g.with_fixed_sets(cell.ways)
        return ModuloIndexing(gk), gk
    if cell.kind in ("setassoc", "bounds") and cell.label in _WAYS_LABELS:
        gk = g.with_ways(_WAYS_LABELS[cell.label])
        return ModuloIndexing(gk), gk
    raise ValueError(f"cell ({cell.workload}, {cell.label}) is not a kernel cell")


@dataclass(frozen=True)
class PolicySpec:
    """How one cell maps onto the shared policy-sweep decomposition.

    ``signature`` names everything *but* the policy that shapes the cell's
    outcome: the scheme identity and parameters, the geometry's mapping
    and associativity, and the random-policy seed.  Two same-workload
    cells with equal signatures see byte-identical grouped access streams,
    so one set-decomposition pass feeds every member's policy kernel — the
    exactness condition of the "policy" batching axis.
    """

    signature: tuple
    policy: str


def policy_cell_spec(cell: SimCell, config: PaperConfig) -> PolicySpec | None:
    """Classify a cell for the shared policy-sweep path; ``None`` = not one.

    Only ``policysweep`` cells qualify (their label pins an untrainable
    scheme, so the index stream is a pure function of (workload, config));
    the LRU member of a policy grid batches here too — the replay kernel
    is exact for LRU as well, and keeping the grid together is the point.
    """
    if cell.kind != "policysweep":
        return None
    g = config.geometry
    scheme_name = cell.label.partition(":")[0]
    sig: list = [scheme_name]
    if scheme_name == "odd_multiplier":
        sig.append(config.odd_multiplier)
    sig += [g.num_sets, g.offset_bits, g.address_bits, g.ways, config.policy_seed]
    return PolicySpec(tuple(sig), cell.policy)


def _untrainable_scheme(scheme_name: str, config: PaperConfig):
    """Build one of the profiling-free schemes a sweep label may name."""
    g = config.geometry
    if scheme_name == "modulo":
        return ModuloIndexing(g)
    if scheme_name == "xor":
        return XorIndexing(g)
    if scheme_name == "odd_multiplier":
        return OddMultiplierIndexing(g, config.odd_multiplier)
    if scheme_name == "prime_modulo":
        return PrimeModuloIndexing(g)
    return None


def build_policy_scheme(cell: SimCell, config: PaperConfig):
    """Build the (scheme, geometry) a ``policysweep`` cell simulates under."""
    scheme = _untrainable_scheme(cell.label.partition(":")[0], config)
    if scheme is None:
        raise ValueError(f"cell ({cell.workload}, {cell.label}) is not a policy cell")
    return scheme, config.geometry


def build_aux_scheme(cell: SimCell, config: PaperConfig):
    """Build the (scheme, combo, depth, geometry) an ``auxsweep`` cell
    simulates under."""
    scheme_name, combo, depth = _parse_aux_label(cell.label)
    scheme = _untrainable_scheme(scheme_name, config)
    if scheme is None:
        raise ValueError(f"cell ({cell.workload}, {cell.label}) is not an aux cell")
    return scheme, combo, depth, config.geometry
