"""Trace persistence.

Three formats:

* **raw** (binary, the cache's native format) — a page-aligned,
  mmap-able struct-of-arrays container: an 8-byte magic, a JSON header
  (field layout, name/meta, SHA-256 content digest), then one contiguous
  page-aligned section per field (``addresses`` uint64, ``is_write``
  bool, ``thread`` int16).  :func:`load_raw` maps the sections read-only
  with zero copies, so opening a cached trace costs microseconds instead
  of a full decompress — and every process mapping the same file shares
  one copy of physical RAM through the page cache.
* **NPZ** (binary, legacy cache format and export format) — the
  struct-of-arrays dumped via :func:`numpy.savez_compressed`, with
  metadata as a JSON sidecar entry.  Loads back bit-identical; the
  :class:`TraceCache` migrates npz entries to raw transparently on first
  read (see below).
* **din** (text) — the classic Dinero-style ``<op> <hex-address>`` lines
  (0 = read, 1 = write, one access per line, ``#`` comments), for eyeballing
  traces and interoperating with external cache tools.

All cache writes are atomic (unique sibling temp file + ``os.replace``),
so concurrent writers can never leave a truncated file at the final path.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import uuid
import zipfile
from pathlib import Path

import numpy as np

from .event import Trace

__all__ = [
    "RAW_MAGIC",
    "RAW_SUFFIX",
    "save_npz",
    "load_npz",
    "save_raw",
    "load_raw",
    "load_trace",
    "read_raw_header",
    "save_din",
    "load_din",
    "TraceCache",
]

#: First 8 bytes of every raw trace file (version baked into the magic).
RAW_MAGIC = b"RTRACE1\n"
RAW_SUFFIX = ".rtr"
_PAGE = 4096

#: The raw header must decode before anything else is trusted; cap its
#: size so a corrupt length field cannot trigger a huge allocation.
_MAX_HEADER = 1 << 20

#: ``(field, numpy dtype string)`` in on-disk section order.  Little-endian
#: fixed-width dtypes: the file is a portable format, not a memory dump.
_RAW_FIELDS = (("addresses", "<u8"), ("is_write", "|b1"), ("thread", "<i2"))

#: Errors that mean "this cache file cannot be trusted" for either format.
_CACHE_ERRORS = (zipfile.BadZipFile, OSError, ValueError, KeyError, EOFError)


def save_npz(trace: Trace, path: str | Path) -> Path:
    """Persist ``trace`` at ``path`` atomically.

    The archive is written to a unique sibling temp file and moved into
    place with :func:`os.replace`, so concurrent writers (e.g. two test
    processes warming the same :class:`TraceCache` key, or the parallel
    experiment engine racing a foreground run) can never leave a
    truncated npz at the final path — readers see either the old file or
    a complete new one.
    """
    path = Path(path)
    if path.suffix != ".npz":
        # np.savez appends .npz when absent; normalise up front so the
        # atomic rename targets the real destination.
        path = path.with_suffix(path.suffix + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.stem}.{uuid.uuid4().hex}.tmp.npz")
    try:
        np.savez_compressed(
            tmp,
            addresses=trace.addresses,
            is_write=trace.is_write,
            thread=trace.thread,
            meta=np.frombuffer(
                json.dumps({"name": trace.name, **trace.meta}).encode(), dtype=np.uint8
            ),
        )
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # savez failed mid-write; don't leak temp files
            tmp.unlink()
    return path


def load_npz(path: str | Path) -> Trace:
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta"]).decode()) if "meta" in data else {}
        name = meta.pop("name", "")
        return Trace(
            data["addresses"].copy(),
            data["is_write"].copy(),
            data["thread"].copy(),
            name=name,
            meta=meta,
        )


# -- raw (mmap-able) format -------------------------------------------------------


def _content_digest(trace: Trace) -> str:
    """SHA-256 over the field bytes, in section order.

    Deliberately the same formula as
    :func:`repro.experiments.engine.cache.trace_fingerprint` (addresses,
    then write flags, then thread tags), so the digest stored in a raw
    header *is* the engine's trace fingerprint — warm runs can key their
    result cache without re-hashing megabytes of trace
    (``tests/trace/test_raw_format.py`` pins the two together).
    """
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(trace.addresses).tobytes())
    h.update(np.ascontiguousarray(trace.is_write).tobytes())
    h.update(np.ascontiguousarray(trace.thread).tobytes())
    return h.hexdigest()


def _raw_layout(n: int, name: str, meta: dict, digest: str) -> tuple[bytes, dict]:
    """Serialized header + section table for an ``n``-reference trace.

    Section offsets depend on the header's own (padded) size, which in
    turn depends on the serialized offsets; the loop below converges in
    one or two rounds because padding quantizes the header region to
    whole pages.
    """
    itemsize = {f: np.dtype(d).itemsize for f, d in _RAW_FIELDS}
    pages = 1
    while True:
        sections = {}
        offset = pages * _PAGE
        for field, dtype in _RAW_FIELDS:
            sections[field] = {"offset": offset, "dtype": dtype, "n": n}
            offset = -(-(offset + n * itemsize[field]) // _PAGE) * _PAGE
        header = {
            "format": "repro-raw-trace",
            "version": 1,
            "n": n,
            "name": name,
            "meta": meta,
            "digest": digest,
            "sections": sections,
            # Total size lets a reader spot truncation before touching any
            # section (the last section's padding is not written to disk).
            "size": sections["thread"]["offset"] + n * itemsize["thread"],
        }
        blob = json.dumps(header, sort_keys=True).encode()
        if len(RAW_MAGIC) + 8 + len(blob) <= pages * _PAGE:
            return blob, header
        pages += 1


def save_raw(trace: Trace, path: str | Path) -> Path:
    """Persist ``trace`` as a page-aligned raw container, atomically."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    blob, header = _raw_layout(
        len(trace), trace.name, dict(trace.meta), _content_digest(trace)
    )
    tmp = path.with_name(f".{path.stem}.{uuid.uuid4().hex}.tmp{RAW_SUFFIX}")
    try:
        with tmp.open("wb") as fh:
            fh.write(RAW_MAGIC)
            fh.write(len(blob).to_bytes(8, "little"))
            fh.write(blob)
            for (field, dtype), arr in zip(
                _RAW_FIELDS, (trace.addresses, trace.is_write, trace.thread)
            ):
                section = header["sections"][field]
                fh.seek(section["offset"])
                fh.write(np.ascontiguousarray(arr, dtype=np.dtype(dtype)).tobytes())
            # Seek past EOF only materialises on write; pad an empty (or
            # short-tailed) file out to the declared total size explicitly.
            fh.truncate(header["size"])
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def read_raw_header(path: str | Path) -> dict:
    """Decode and structurally validate a raw file's header.

    Raises :class:`ValueError` on anything that proves the file cannot be
    trusted: wrong magic, truncated header, truncated sections (total
    size mismatch), or a malformed section table.
    """
    path = Path(path)
    with path.open("rb") as fh:
        prefix = fh.read(len(RAW_MAGIC) + 8)
        if len(prefix) < len(RAW_MAGIC) + 8 or prefix[: len(RAW_MAGIC)] != RAW_MAGIC:
            raise ValueError(f"{path}: not a raw trace file")
        hlen = int.from_bytes(prefix[len(RAW_MAGIC) :], "little")
        if not 0 < hlen <= _MAX_HEADER:
            raise ValueError(f"{path}: implausible raw header length {hlen}")
        blob = fh.read(hlen)
        if len(blob) < hlen:
            raise ValueError(f"{path}: truncated raw header")
        try:
            header = json.loads(blob)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: undecodable raw header: {exc}") from exc
        if header.get("version") != 1 or header.get("format") != "repro-raw-trace":
            raise ValueError(f"{path}: unknown raw trace version")
        n = header.get("n")
        sections = header.get("sections")
        if not isinstance(n, int) or n < 0 or not isinstance(sections, dict):
            raise ValueError(f"{path}: malformed raw header")
        for field, dtype in _RAW_FIELDS:
            sec = sections.get(field)
            if (
                not isinstance(sec, dict)
                or sec.get("dtype") != dtype
                or sec.get("n") != n
                or not isinstance(sec.get("offset"), int)
            ):
                raise ValueError(f"{path}: malformed raw section table ({field})")
        actual = os.fstat(fh.fileno()).st_size
        if actual != header.get("size"):
            raise ValueError(
                f"{path}: truncated raw trace ({actual} bytes, header says "
                f"{header.get('size')})"
            )
    return header


def load_raw(path: str | Path, *, mmap_sections: bool = True, verify: bool = False) -> Trace:
    """Load a raw trace, zero-copy by default.

    With ``mmap_sections=True`` (the default) the field arrays are
    read-only views over one shared :class:`mmap.mmap` of the file — no
    bytes are copied or decoded, the OS pages data in lazily, and every
    process mapping the same file shares physical RAM.  With ``False``
    the sections are read into private arrays (useful when the file is
    about to be deleted on a platform that can't unlink mapped files).

    ``verify=True`` re-hashes the mapped content against the header's
    SHA-256 digest (reads every page; meant for integrity audits, not the
    hot path — structural truncation is always detected via the header's
    total size, digest or not).
    """
    path = Path(path)
    header = read_raw_header(path)
    n = header["n"]
    arrays: dict[str, np.ndarray] = {}
    if n == 0:
        for field, dtype in _RAW_FIELDS:
            arrays[field] = np.empty(0, dtype=np.dtype(dtype))
    elif mmap_sections:
        with path.open("rb") as fh:
            mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        # The arrays hold the mapping alive through their .base chain; the
        # file descriptor itself can close immediately.
        for field, dtype in _RAW_FIELDS:
            sec = header["sections"][field]
            arrays[field] = np.frombuffer(
                mapped, dtype=np.dtype(sec["dtype"]), count=n, offset=sec["offset"]
            )
    else:
        with path.open("rb") as fh:
            for field, dtype in _RAW_FIELDS:
                sec = header["sections"][field]
                fh.seek(sec["offset"])
                dt = np.dtype(sec["dtype"])
                buf = fh.read(n * dt.itemsize)
                if len(buf) < n * dt.itemsize:
                    raise ValueError(f"{path}: truncated {field} section")
                arrays[field] = np.frombuffer(buf, dtype=dt, count=n).copy()
    trace = Trace(
        arrays["addresses"],
        arrays["is_write"],
        arrays["thread"],
        name=header.get("name", ""),
        meta=dict(header.get("meta") or {}),
    )
    if verify and _content_digest(trace) != header.get("digest"):
        raise ValueError(f"{path}: raw trace content digest mismatch")
    return trace


def load_trace(path: str | Path) -> Trace:
    """Load a trace from either cache format, sniffed by magic bytes.

    The engine ships bare paths to worker processes and cluster nodes;
    this is the single entry point they re-open those paths through, so a
    mixed-era cache (raw entries next to not-yet-migrated npz ones) is
    handled uniformly: raw maps zero-copy, npz decodes as before.
    """
    path = Path(path)
    with path.open("rb") as fh:
        magic = fh.read(len(RAW_MAGIC))
    if magic == RAW_MAGIC:
        return load_raw(path)
    return load_npz(path)


def save_din(trace: Trace, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        fh.write(f"# trace: {trace.name} ({len(trace)} refs)\n")
        for a, w in zip(trace.addresses, trace.is_write):
            fh.write(f"{1 if w else 0} {int(a):x}\n")
    return path


def load_din(path: str | Path, name: str = "") -> Trace:
    ops: list[int] = []
    addrs: list[int] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            op, addr = line.split()
            ops.append(int(op))
            addrs.append(int(addr, 16))
    return Trace(
        np.array(addrs, dtype=np.uint64),
        np.array(ops, dtype=bool),
        name=name or Path(path).stem,
    )


class TraceCache:
    """Content-addressed on-disk cache of generated traces.

    Keys are ``(name, seed, ref_limit, extra params)``; a miss runs the
    supplied generator and persists the result, so repeated experiment runs
    pay trace generation once.

    **Storage format is a cache-internal detail, never part of a key.**
    Entries are persisted in the raw mmap-able format; legacy ``.npz``
    entries (from earlier releases, or written by older cluster nodes
    over a shared directory) are *migrated* transparently: the first read
    decodes the npz once, writes the raw sibling, and every later read
    maps it zero-copy.  Content is bit-identical across formats by
    construction (and by differential test), so cache keys, trace
    fingerprints and the golden content hashes are unchanged.

    Any zero-length, truncated or otherwise corrupt entry — either
    format, e.g. a partial write surviving a crash — is deleted and
    regenerated, never trusted; a corrupt raw file with an intact npz
    sibling self-heals from the sibling without regenerating.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _raw_path(self, key: str) -> Path:
        return self.root / f"{key}{RAW_SUFFIX}"

    def _npz_path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def path_for(self, key: str) -> Path:
        """On-disk path for ``key`` (the file may not exist yet).

        The parallel experiment engine ships this path — not the trace
        arrays — to worker processes, which re-open it locally through
        the trace arena (:func:`load_trace` sniffs the format).  Resolves
        to whichever format is on disk, preferring raw; a missing key
        resolves to the raw path :meth:`get_or_create` would write.
        """
        raw = self._raw_path(key)
        if raw.exists():
            return raw
        npz = self._npz_path(key)
        if npz.exists():
            return npz
        return raw

    @staticmethod
    def key_for(name: str, **params) -> str:
        parts = [name] + [f"{k}={params[k]}" for k in sorted(params)]
        return "_".join(parts).replace("/", "-").replace(" ", "")

    def get_or_create(self, key: str, generator) -> Trace:
        raw = self._raw_path(key)
        if raw.exists():
            try:
                return load_raw(raw)
            except _CACHE_ERRORS:
                # Corrupted or truncated raw entry: deleted, then healed
                # from the npz sibling below (if any) or regenerated.
                raw.unlink(missing_ok=True)
        npz = self._npz_path(key)
        if npz.exists():
            try:
                trace = load_npz(npz)
            except _CACHE_ERRORS:
                # Same discipline as the result cache: a corrupted or
                # truncated entry is deleted and regenerated, never trusted.
                npz.unlink(missing_ok=True)
            else:
                # Transparent migration: decode once, map forever after.
                # The npz stays behind for older readers until `trace gc`.
                save_raw(trace, raw)
                return load_raw(raw)
        trace = generator()
        save_raw(trace, raw)
        # Serve the mapped copy rather than the generator's private arrays
        # so even the generating process shares pages with its siblings.
        return load_raw(raw)

    # -- maintenance ---------------------------------------------------------------

    def stats(self) -> dict:
        """Per-format entry counts and byte totals (plus migratable npz)."""
        raw_files = list(self.root.glob(f"*{RAW_SUFFIX}"))
        npz_files = list(self.root.glob("*.npz"))
        migrated = sum(1 for p in npz_files if self._raw_path(p.stem).exists())
        return {
            "root": str(self.root),
            "raw_entries": len(raw_files),
            "raw_bytes": sum(p.stat().st_size for p in raw_files),
            "npz_entries": len(npz_files),
            "npz_bytes": sum(p.stat().st_size for p in npz_files),
            "npz_migrated": migrated,
        }

    def gc(self) -> tuple[int, int]:
        """Delete npz entries that already have a raw sibling.

        Returns ``(files_removed, bytes_reclaimed)``.  Only migrated
        entries are touched — an npz without a raw sibling is still the
        sole copy of its trace and is left alone.
        """
        removed = reclaimed = 0
        for npz in self.root.glob("*.npz"):
            if self._raw_path(npz.stem).exists():
                reclaimed += npz.stat().st_size
                npz.unlink()
                removed += 1
        return removed, reclaimed

    def clear(self) -> None:
        for pattern in ("*.npz", f"*{RAW_SUFFIX}"):
            for p in self.root.glob(pattern):
                p.unlink()
