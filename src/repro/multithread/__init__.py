"""Multithreaded (SMT) cache models for the paper's Section IV.E."""

from .partitioned import (
    PartitionedAdaptiveCache,
    PartitionedResult,
    StaticPartitionedCache,
    simulate_partitioned,
)
from .smt import SMTResult, SMTSharedCache, simulate_smt

__all__ = [
    "SMTSharedCache",
    "SMTResult",
    "simulate_smt",
    "StaticPartitionedCache",
    "PartitionedAdaptiveCache",
    "PartitionedResult",
    "simulate_partitioned",
]
