"""3C miss-classification tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.address import PAPER_L1_GEOMETRY, CacheGeometry
from repro.core.caches import DirectMappedCache, SetAssociativeCache
from repro.core.three_c import classify, cold_miss_count
from repro.trace import Trace, ping_pong_trace, sequential_sweep, uniform_trace

G = PAPER_L1_GEOMETRY


class TestColdMisses:
    def test_counts_unique_blocks(self):
        t = sequential_sweep(100, stride=32)
        assert cold_miss_count(t, G) == 100

    def test_repeats_do_not_count(self):
        t = Trace(np.array([0, 0, 32, 0], dtype=np.uint64))
        assert cold_miss_count(t, G) == 2


class TestClassify:
    def test_pure_cold_trace(self):
        """A single resident sweep: every miss is compulsory."""
        t = sequential_sweep(512, stride=32)  # 16 KiB, fits the cache
        b = classify(DirectMappedCache(G), t, G)
        assert b.total == b.cold == 512
        assert b.capacity == 0
        assert b.conflict == 0

    def test_pure_conflict_trace(self):
        """Two aliasing blocks: everything beyond the 2 cold misses is
        conflict (the fully-associative cache holds both)."""
        t = ping_pong_trace(1000)
        b = classify(DirectMappedCache(G), t, G)
        assert b.cold == 2
        assert b.capacity == 0
        assert b.conflict == b.total - 2
        assert b.share("conflict") > 0.99

    def test_pure_capacity_trace(self):
        """A cyclic sweep of 2x the cache: LRU full-assoc misses everything,
        so the direct-mapped 'conflict' component is ~0."""
        blocks = np.tile(np.arange(2048, dtype=np.uint64) * 32, 5)
        t = Trace(blocks, name="cyclic2x")
        b = classify(DirectMappedCache(G), t, G)
        assert b.capacity > 0
        # Direct-mapped placement actually *beats* LRU on cyclic sweeps:
        # conflict may be <= 0 (the documented caveat).
        assert b.conflict <= 0

    def test_components_sum_to_total(self):
        t = uniform_trace(20_000, seed=5)
        b = classify(DirectMappedCache(G), t, G)
        assert b.cold + b.capacity + b.conflict == b.total
        assert 0.0 <= b.miss_rate <= 1.0

    def test_higher_associativity_shrinks_conflict(self):
        t = ping_pong_trace(1000)
        dm = classify(DirectMappedCache(G), t, G)
        sa = classify(SetAssociativeCache(G.with_ways(2)), t, G)
        assert sa.conflict < dm.conflict

    def test_as_dict(self):
        t = ping_pong_trace(100)
        d = classify(DirectMappedCache(G), t, G).as_dict()
        assert set(d) == {"total", "cold", "capacity", "conflict", "miss_rate"}
