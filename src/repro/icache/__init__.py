"""Instruction-cache side: code layout, I-fetch trace generation, and the
procedure-placement optimisation the paper discusses (its reference [16])."""

from .code import CallProfile, CodeLayout, Procedure
from .generator import generate_itrace, synthetic_call_sequence
from .placement import optimize_placement, weighted_overlap_cost

__all__ = [
    "Procedure",
    "CodeLayout",
    "CallProfile",
    "generate_itrace",
    "synthetic_call_sequence",
    "optimize_placement",
    "weighted_overlap_cost",
]
