#!/usr/bin/env python
"""Quickstart: simulate one workload under every technique in the paper.

Generates the MiBench-style FFT trace (the paper's Figure-1 example), runs
it through the conventional direct-mapped cache, the four main indexing
schemes (Section II) and the three programmable-associativity caches
(Section III), and prints miss rates, AMAT and uniformity metrics.

Run:  python examples/quickstart.py [workload] [refs]
"""

from __future__ import annotations

import sys

from repro import PAPER_L1_GEOMETRY, TimingModel, simulate, simulate_indexing
from repro.core.amat import (
    amat_adaptive,
    amat_column_associative,
    amat_direct_mapped,
)
from repro.core.caches import (
    AdaptiveGroupAssociativeCache,
    BalancedCache,
    ColumnAssociativeCache,
)
from repro.core.indexing import (
    GivargisIndexing,
    ModuloIndexing,
    OddMultiplierIndexing,
    PrimeModuloIndexing,
    XorIndexing,
)
from repro.core.uniformity import uniformity_report
from repro.experiments.report import sparkline
from repro.workloads import get_workload


def main() -> int:
    workload = sys.argv[1] if len(sys.argv) > 1 else "fft"
    refs = int(sys.argv[2]) if len(sys.argv) > 2 else 100_000
    geometry = PAPER_L1_GEOMETRY
    timing = TimingModel()

    print(f"Workload: {workload}  ({refs} references)")
    print(f"Cache:    {geometry.describe()}\n")
    trace = get_workload(workload).generate(seed=2011, ref_limit=refs)

    # -- baseline -------------------------------------------------------------
    base = simulate_indexing(ModuloIndexing(geometry), trace, geometry)
    rep = uniformity_report(base.slot_accesses)
    print(f"conventional modulo indexing: miss rate {base.miss_rate:.4f}")
    print(f"  per-set accesses: {sparkline(base.slot_accesses)}")
    print(
        f"  uniformity: {rep.below_half_pct:.1f}% of sets below half the "
        f"average, {rep.above_double_pct:.1f}% above double "
        f"(kurtosis {rep.kurtosis:.1f}, gini {rep.gini:.2f})\n"
    )

    # -- indexing schemes (Section II) ----------------------------------------
    print("Indexing schemes (paper Figure 4):")
    schemes = {
        "xor": XorIndexing(geometry),
        "odd_multiplier(9)": OddMultiplierIndexing(geometry, 9),
        "prime_modulo(1021)": PrimeModuloIndexing(geometry),
        "givargis": GivargisIndexing(geometry).fit(trace.addresses),
    }
    for name, scheme in schemes.items():
        res = simulate_indexing(scheme, trace, geometry)
        delta = 100.0 * (base.misses - res.misses) / max(base.misses, 1)
        print(f"  {name:20s} miss rate {res.miss_rate:.4f}  ({delta:+.1f}% misses)")

    # -- programmable associativity (Section III) ------------------------------
    print("\nProgrammable associativity (paper Figures 6-7):")
    base_amat = amat_direct_mapped(base.miss_rate, timing)
    adaptive = AdaptiveGroupAssociativeCache(geometry)
    res_a = simulate(adaptive, trace)
    amat_a = amat_adaptive(res_a.fraction("direct_hits", "accesses"), res_a.miss_rate, timing)
    column = ColumnAssociativeCache(geometry)
    res_c = simulate(column, trace)
    amat_c = amat_column_associative(
        res_c.fraction("rehash_hits", "accesses"),
        res_c.fraction("rehash_misses", "misses"),
        res_c.miss_rate,
        timing,
    )
    res_b = simulate(BalancedCache(geometry), trace)
    amat_b = amat_direct_mapped(res_b.miss_rate, timing)
    for name, res, amat in (
        ("adaptive (SHT/OUT)", res_a, amat_a),
        ("B-cache (MF=2,BAS=2)", res_b, amat_b),
        ("column-associative", res_c, amat_c),
    ):
        dm = 100.0 * (base.misses - res.misses) / max(base.misses, 1)
        da = 100.0 * (base_amat - amat) / base_amat
        print(
            f"  {name:22s} miss rate {res.miss_rate:.4f} ({dm:+.1f}% misses, "
            f"AMAT {amat:.2f} = {da:+.1f}%)"
        )
    print(f"\n(direct-mapped baseline AMAT: {base_amat:.2f} cycles)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
