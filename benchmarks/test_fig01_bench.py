"""Figure 1 bench: per-set access non-uniformity of FFT."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment


def test_fig01_nonuniformity(benchmark, config):
    result = run_once(benchmark, lambda: run_experiment("fig1", config))
    print()
    print(result)
    # Shape: majority of sets under-utilised, hot minority, heavy tail.
    assert result.value("sets_below_half_avg_%", "value") > 50.0
    assert result.value("kurtosis", "value") > 3.0
