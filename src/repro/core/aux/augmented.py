"""The composition wrapper: base cache × auxiliary structures.

:class:`AugmentedCache` drives any base
:class:`~repro.core.caches.base.CacheModel` and consults its auxiliary
structures on every base miss, in composition order (probe priority).
The wrapper owns the composed statistics — every access is attributed to
its primary slot with a hit class naming the servicing structure
(``direct``/``rehash``/... from the base on a base hit, the structure's
``hit_class`` on an absorbed miss) — while the base model's own stats
keep counting the *main-array view* (a base miss absorbed by a victim
buffer is still a main-array miss), so both layers stay individually
consistent and per-structure rates fall out of the ``extra`` counters.

Semantics on a main-array miss (see :mod:`.structures` for the protocol):
the structures are probed in order and the first hit services the access
— the block is installed in the main array either way, because the base
model already allocated it on its miss path (a victim-buffer hit is
therefore a *swap*: the probe removed the block from the buffer and the
displaced main-array line is offered to the eviction chain).  The line
displaced from the main array flows down :meth:`AuxStructure.on_eviction`
(a victim buffer absorbs it and yields its own overflow), so combined
configurations route MC/SB-serviced displacements into the victim buffer
too.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..caches.base import AccessResult, CacheModel
from .structures import AuxStructure

__all__ = ["AugmentedCache"]


class AugmentedCache(CacheModel):
    """A base cache model composed with one or more auxiliary structures."""

    name = "augmented"

    def __init__(
        self,
        base: CacheModel,
        structures: Sequence[AuxStructure],
        name: str | None = None,
    ):
        structures = tuple(structures)
        if not structures:
            raise ValueError("an augmented cache needs at least one aux structure")
        seen: set[str] = set()
        for st in structures:
            if st.name in seen:
                raise ValueError(f"duplicate aux structure {st.name!r}")
            seen.add(st.name)
        super().__init__(base.geometry, num_slots=base.stats.num_slots)
        self.base = base
        self.structures = structures
        #: Convenience mirror of the base's indexing scheme (when it has one).
        self.indexing = getattr(base, "indexing", None)
        self.name = name if name is not None else (
            f"augmented[{base.name}+{'+'.join(st.label for st in structures)}]"
        )

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        base = self.base
        base.stats.accesses += 1
        res = base._access_block(block, is_write)
        slot = res.primary_slot
        self.stats.record_probe(slot)
        if res.hit:
            self.stats.record_hit(slot, res.hit_class or "direct")
            return res
        stats = self.stats
        structures = self.structures
        hit_st = None
        for st in structures:
            if st.probe(block, stats):
                hit_st = st
                break
        leaving = res.evicted_block
        if leaving is not None:
            for st in structures:
                leaving = st.on_eviction(leaving, stats)
                if leaving is None:
                    break
        for st in structures:
            if st is not hit_st:
                st.on_main_miss(block, stats)
        if hit_st is not None:
            stats.record_hit(slot, hit_st.hit_class)
            return AccessResult(
                True,
                hit_st.hit_cycles,
                slot,
                slot,
                evicted_block=leaving,
                hit_class=hit_st.hit_class,
            )
        for st in structures:
            st.on_full_miss(block, stats)
        stats.record_miss(slot)
        return AccessResult(False, 1, slot, slot, evicted_block=leaving)

    # -- management ---------------------------------------------------------------

    def contents(self) -> set[int]:
        out = self.base.contents()
        for st in self.structures:
            out |= st.contents()
        return out

    def reset_stats(self) -> None:
        super().reset_stats()
        self.base.reset_stats()

    def flush(self) -> None:
        self.base.flush()
        for st in self.structures:
            st.flush()

    def check_invariants(self) -> None:
        main = self.base.contents()
        for st in self.structures:
            if st.exclusive:
                overlap = main & st.contents()
                assert not overlap, (
                    f"block resident in both main array and {st.name}: {overlap}"
                )
            st.check_invariants()
        self.stats.check_invariants()

    def describe(self) -> str:
        aux = " + ".join(st.label for st in self.structures)
        return f"{self.base.describe()} + {aux}"
