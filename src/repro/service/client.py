"""Blocking Python client for the simulation job server.

A :class:`ServiceClient` speaks the JSON-lines protocol over one TCP
connection.  It is deliberately synchronous (plain sockets, no asyncio):
examples, tests, the ``repro submit`` CLI verb and throughput benches all
drive it from ordinary threads, and N client instances across N threads is
exactly the concurrency shape the server's coalescing is built for.

Structured server errors surface as typed exceptions:

* :class:`ServiceOverloaded` — admission rejected (backpressure); back off
  and retry;
* :class:`ServiceTimeout` — the request's deadline elapsed server-side;
* :class:`ServiceUnavailable` — the cluster router found no live worker
  for the key (retriable once workers rejoin);
* :class:`ServiceError` — everything else, with ``.code`` preserved.

Streaming progress events are delivered to an optional ``on_event``
callback while the terminal frame is awaited.
"""

from __future__ import annotations

import socket
from typing import Any, Callable

from .protocol import (
    E_OVERLOADED,
    E_TIMEOUT,
    E_UNAVAILABLE,
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
)

__all__ = [
    "ServiceClient",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceTimeout",
    "ServiceUnavailable",
]


class ServiceError(RuntimeError):
    """A structured error frame from the server."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message

    @staticmethod
    def from_frame(frame: dict[str, Any]) -> "ServiceError":
        err = frame.get("error") or {}
        code = err.get("code", "internal")
        message = err.get("message", "unknown error")
        if code == E_OVERLOADED:
            return ServiceOverloaded(code, message)
        if code == E_TIMEOUT:
            return ServiceTimeout(code, message)
        if code == E_UNAVAILABLE:
            return ServiceUnavailable(code, message)
        return ServiceError(code, message)


class ServiceOverloaded(ServiceError):
    """The server's admission queue is full; retry after a backoff."""


class ServiceTimeout(ServiceError):
    """The request exceeded its deadline server-side."""


class ServiceUnavailable(ServiceError):
    """No live worker can serve the request right now; retriable."""


class ServiceClient:
    """One blocking connection to a :class:`~repro.service.server.ReproServer`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7411, timeout: float | None = 120.0
    ):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # -- plumbing -------------------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(
        self,
        payload: dict[str, Any],
        on_event: Callable[[dict[str, Any]], None] | None = None,
    ) -> dict[str, Any]:
        """Send one request and block until its terminal frame.

        Event frames for this request id are handed to ``on_event`` as they
        arrive; the terminal result payload is returned, and error frames
        raise the matching :class:`ServiceError` subclass.
        """
        self._next_id += 1
        rid = f"r{self._next_id}"
        payload = {**payload, "id": rid}
        self._file.write(encode_frame(payload))
        self._file.flush()
        while True:
            line = self._file.readline(MAX_FRAME_BYTES + 2)
            if not line:
                raise ConnectionError("server closed the connection mid-request")
            frame = decode_frame(line)
            if frame.get("id") != rid:
                # A frame for a request this (sequential) client is not
                # waiting on — e.g. a late event from a prior request.
                continue
            if frame.get("type") == "event":
                if on_event is not None:
                    on_event(frame)
                continue
            if frame.get("ok"):
                return frame
            raise ServiceError.from_frame(frame)

    # -- verbs ----------------------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self.request({"type": "health"})["health"]

    def stats(self) -> dict[str, Any]:
        return self.request({"type": "stats"})["stats"]

    def shutdown(self) -> bool:
        return bool(self.request({"type": "shutdown"}).get("shutting_down"))

    def submit_cell(
        self,
        kind: str,
        workload: str,
        label: str,
        *,
        config: dict[str, Any] | None = None,
        deadline: float | None = None,
        arrays: bool = False,
    ) -> dict[str, Any]:
        """Submit one engine cell; returns ``{"result": ..., "meta": ...}``."""
        payload: dict[str, Any] = {
            "type": "cell",
            "kind": kind,
            "workload": workload,
            "label": label,
            "arrays": arrays,
        }
        if config:
            payload["config"] = config
        if deadline is not None:
            payload["deadline"] = deadline
        return self.request(payload)

    def sweep(
        self,
        workload: str,
        schemes: list[str],
        *,
        config: dict[str, Any] | None = None,
        deadline: float | None = None,
        arrays: bool = False,
        on_event: Callable[[dict[str, Any]], None] | None = None,
    ) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "type": "sweep",
            "workload": workload,
            "schemes": list(schemes),
            "arrays": arrays,
        }
        if config:
            payload["config"] = config
        if deadline is not None:
            payload["deadline"] = deadline
        return self.request(payload, on_event=on_event)

    def run_experiment(
        self,
        experiment_id: str,
        *,
        config: dict[str, Any] | None = None,
        deadline: float | None = None,
        on_event: Callable[[dict[str, Any]], None] | None = None,
    ) -> dict[str, Any]:
        """Run a registered figure; returns ``{"experiment": ..., "meta": ...}``."""
        payload: dict[str, Any] = {"type": "experiment", "experiment": experiment_id}
        if config:
            payload["config"] = config
        if deadline is not None:
            payload["deadline"] = deadline
        return self.request(payload, on_event=on_event)
