"""Ablation: column-associative relocation guard.

DESIGN.md §5 / the class docs — the unguarded textbook clobber policy can
lose to direct-mapped on capacity-streaming workloads; the guarded variant
(the default, matching the paper's all-non-negative Figure 6) cannot, while
both fix the conflict pathologies.
"""

from __future__ import annotations

from conftest import run_once

from repro.core.caches import ColumnAssociativeCache, DirectMappedCache
from repro.core.simulator import simulate
from repro.experiments.runner import workload_trace
from repro.trace import ping_pong_trace


def test_guard_on_vs_off(benchmark, config):
    g = config.geometry
    benches = ["dijkstra", "patricia", "rijndael", "fft"]

    def run():
        rows = {}
        for name in benches:
            trace = workload_trace(name, config)
            dm = simulate(DirectMappedCache(g), trace).misses
            guarded = simulate(ColumnAssociativeCache(g), trace).misses
            unguarded = simulate(
                ColumnAssociativeCache(g, protect_conventional=False), trace
            ).misses
            rows[name] = (dm, guarded, unguarded)
        return rows

    rows = run_once(benchmark, run)
    print()
    for name, (dm, guarded, unguarded) in rows.items():
        print(f"{name:10s} dm={dm:6d} guarded={guarded:6d} unguarded={unguarded:6d}")
        # The guard keeps the cache from losing to direct-mapped.
        assert guarded <= dm * 1.02
    # Both variants still crush the conflict pathology.
    pp = ping_pong_trace(4000)
    for protect in (True, False):
        res = simulate(ColumnAssociativeCache(g, protect_conventional=protect), pp)
        assert res.miss_rate < 0.01
