"""Figures 6 & 7 — programmable associativity: miss rate and AMAT.

Figure 6: % reduction in miss rate of the adaptive cache, B-cache and
column-associative cache vs the direct-mapped baseline (paper shape: all
non-negative, column-associative best for most benchmarks, B-cache
smallest, ≈0 for bitcount/crc/qsort).

Figure 7: % reduction in AMAT using the paper's formulas — Eq. (8) for the
adaptive cache, Eq. (9) for the column-associative cache, and the textbook
form for the B-cache (its lookup is single-cycle).  Paper shape: the same
ordering carries over, column-associative posting the largest AMAT
reduction.

Both figures come from the same three sequential simulations per benchmark,
so one runner computes them and the fig7 entry point reuses its cache.

Under ``config.batch_sweeps`` each bench's four cells (baseline + three
models) travel as one "decode" sweep family — one trace decode per bench
per worker, unchanged per-cell execution paths, keys and results.
"""

from __future__ import annotations

from ..core.amat import (
    amat_adaptive,
    amat_column_associative,
    amat_direct_mapped,
)
from ..core.uniformity import percent_reduction
from ..workloads.mibench import MIBENCH_ORDER
from .config import PaperConfig
from .engine import ExperimentEngine, make_cell
from .report import ExperimentResult
from .runner import register_experiment

__all__ = ["run_fig06", "run_fig07", "PROGASSOC_COLUMNS"]

PROGASSOC_COLUMNS = ["Adaptive_Cache", "B_Cache", "Column_associative"]


def _run_progassoc(config: PaperConfig) -> tuple[ExperimentResult, ExperimentResult]:
    miss_res = ExperimentResult(
        experiment_id="fig6",
        title="% reduction in miss rate, programmable associativity vs DM",
        columns=PROGASSOC_COLUMNS,
    )
    amat_res = ExperimentResult(
        experiment_id="fig7",
        title="% reduction in AMAT, programmable associativity vs DM (Eqs. 8-9)",
        columns=PROGASSOC_COLUMNS,
    )
    timing = config.timing
    # Each (benchmark, model) pair is one engine cell, memoized and parallel;
    # B-cache and column-associative cells take the set-decomposed fastassoc
    # engine (core/fastassoc.py) under engine="auto", leaving only the
    # globally-coupled adaptive cache on the sequential reference loop.
    cells = []
    for bench in MIBENCH_ORDER:
        cells.append(make_cell("baseline", bench, "baseline", config))
        cells.extend(
            make_cell("progassoc", bench, label, config) for label in PROGASSOC_COLUMNS
        )
    sims, stats = ExperimentEngine(config).run(cells)
    for bench in MIBENCH_ORDER:
        base = sims[(bench, "baseline")]
        base_amat = amat_direct_mapped(base.miss_rate, timing)
        miss_row: dict[str, float] = {}
        amat_row: dict[str, float] = {}
        for label in PROGASSOC_COLUMNS:
            sim = sims[(bench, label)]
            miss_row[label] = percent_reduction(sim.misses, base.misses)
            if label == "Adaptive_Cache":
                f_direct = sim.fraction("direct_hits", "accesses")
                amat = amat_adaptive(f_direct, sim.miss_rate, timing)
            elif label == "Column_associative":
                f_rh = sim.fraction("rehash_hits", "accesses")
                f_rm = sim.fraction("rehash_misses", "misses")
                amat = amat_column_associative(f_rh, f_rm, sim.miss_rate, timing)
            else:
                amat = amat_direct_mapped(sim.miss_rate, timing)
            amat_row[label] = percent_reduction(amat, base_amat)
            miss_res.arrays[f"{bench}/{label}/misses_per_set"] = sim.slot_misses
        miss_res.arrays[f"{bench}/baseline/misses_per_set"] = base.slot_misses
        miss_res.add_row(bench, miss_row)
        amat_res.add_row(bench, amat_row)
    miss_res.add_average_row()
    amat_res.add_average_row()
    miss_res.note("paper shape: all >= 0; column-assoc best for most; B-cache smallest")
    amat_res.note("paper shape: column-assoc posts the greatest AMAT reduction")
    miss_res.engine_stats = stats.as_dict()
    amat_res.engine_stats = stats.as_dict()
    return miss_res, amat_res


_CACHE: dict[tuple, tuple[ExperimentResult, ExperimentResult]] = {}


def _cached(config: PaperConfig) -> tuple[ExperimentResult, ExperimentResult]:
    key = (config.ref_limit, config.seed, config.workload_scale, config.bcache_bas)
    if key not in _CACHE:
        _CACHE.clear()  # keep at most one configuration resident
        _CACHE[key] = _run_progassoc(config)
    return _CACHE[key]


@register_experiment("fig6")
def run_fig06(config: PaperConfig) -> ExperimentResult:
    return _cached(config)[0]


@register_experiment("fig7")
def run_fig07(config: PaperConfig) -> ExperimentResult:
    return _cached(config)[1]


from .warm import provides_traces, workload_spec  # noqa: E402


@provides_traces("fig6")
def fig06_traces(config: PaperConfig):
    return [workload_spec(b, config) for b in MIBENCH_ORDER]


@provides_traces("fig7")
def fig07_traces(config: PaperConfig):
    return [workload_spec(b, config) for b in MIBENCH_ORDER]
