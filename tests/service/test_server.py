"""End-to-end daemon tests over real TCP connections.

The acceptance contract of ISSUE 5, locked executable:

* 32 concurrent clients submitting the identical cell -> it is simulated
  exactly once and every client gets a bit-identical result, which is
  itself bit-identical to the in-process engine's answer;
* sweeps stream per-cell events and mark coalesced duplicates;
* an oversized burst is rejected with structured ``overloaded`` errors
  (never a hang), and the rejection is retriable;
* deadlines surface as structured ``timeout`` errors and the server keeps
  answering afterwards;
* ``health``/``stats`` expose version, protocol, queue depth, coalescing
  and cache-hit counters;
* ``shutdown`` stops the daemon cleanly.
"""

from __future__ import annotations

import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

import repro
import repro.service.scheduler as scheduler_mod
from repro.experiments import run_experiment
from repro.experiments.engine import make_cell, plan_cells
from repro.experiments.engine.cells import execute_cell
from repro.service import (
    PROTOCOL_VERSION,
    ServiceClient,
    ServiceError,
    ServiceOverloaded,
    ServiceTimeout,
)
from repro.service.protocol import decode_frame, encode_frame

N_CLIENTS = 32


class TestConcurrentClients:
    def test_32_clients_identical_cell_executes_exactly_once(
        self, server, service_config
    ):
        """The headline serving property, end to end over TCP."""

        barrier = threading.Barrier(N_CLIENTS)

        def one_client(_i: int) -> dict:
            with server.client() as client:
                barrier.wait(timeout=60)
                return client.submit_cell("indexing", "fft", "XOR", arrays=True)

        with ThreadPoolExecutor(max_workers=N_CLIENTS) as pool:
            replies = list(pool.map(one_client, range(N_CLIENTS)))

        # Exactly-once: one real simulation across all 32 clients; everyone
        # else coalesced onto the flight or hit the cache it populated.
        assert server.stats.cells_executed == 1
        assert server.stats.cells_submitted == N_CLIENTS
        assert (
            server.stats.cells_coalesced + server.stats.cells_cache_hits
            == N_CLIENTS - 1
        )

        # Bit-identical fan-out: all wire results equal...
        results = [r["result"] for r in replies]
        assert all(r == results[0] for r in results)
        assert len({r["meta"]["key"] for r in replies}) == 1

        # ...and equal to the in-process engine's own answer for the cell.
        cell = make_cell("indexing", "fft", "XOR", service_config)
        plan = plan_cells([cell], service_config, jobs=1)
        local = execute_cell(
            cell,
            service_config,
            plan.trace_paths["fft"],
        )
        wire = results[0]
        assert wire["misses"] == int(local.misses)
        assert wire["hits"] == int(local.hits)
        assert wire["accesses"] == int(local.accesses)
        assert wire["lookup_cycles"] == int(local.lookup_cycles)
        assert wire["slot_misses"] == np.asarray(local.slot_misses).astype(int).tolist()

    def test_pipelined_requests_on_one_connection(self, server):
        """Many ids in flight on a single socket; answers correlate by id."""
        with server.client() as client:
            sock_file = client._file
            for i in range(6):
                sock_file.write(
                    encode_frame(
                        {
                            "id": f"p{i}",
                            "type": "cell",
                            "kind": "indexing",
                            "workload": "fft",
                            "label": "XOR",
                        }
                    )
                )
            sock_file.flush()
            seen = {}
            while len(seen) < 6:
                frame = decode_frame(sock_file.readline())
                if frame.get("type") == "result":
                    seen[frame["id"]] = frame
            assert set(seen) == {f"p{i}" for i in range(6)}
            assert all(f["ok"] for f in seen.values())
        assert server.stats.cells_executed == 1  # all six coalesced/cached


class TestSweep:
    def test_duplicate_labels_coalesce_and_stream_events(self, server):
        events = []
        with server.client() as client:
            reply = client.sweep(
                "fft", ["baseline", "XOR", "XOR"], on_event=events.append
            )
        rows = reply["rows"]
        assert [row["label"] for row in rows] == ["baseline", "XOR", "XOR"]
        assert all(row["ok"] for row in rows)
        # The duplicate XOR joined the first XOR's flight.
        assert [row["coalesced"] for row in rows] == [False, False, True]
        # Identical labels -> identical results.
        assert rows[1]["result"] == rows[2]["result"]
        # One event per settled cell, done counting up to total.
        assert len(events) == 3
        assert sorted(e["done"] for e in events) == [1, 2, 3]
        assert all(e["total"] == 3 for e in events)
        assert server.stats.cells_coalesced >= 1


class TestBackpressure:
    def test_burst_beyond_max_pending_is_rejected_not_hung(self, make_server):
        server = make_server(max_pending=1)
        with server.client() as client:
            reply = client.sweep("fft", ["baseline", "XOR", "Prime_Modulo"])
        rows = reply["rows"]
        # The admitted row finished; the burst overflow was *rejected* with
        # a structured, retriable error -- not buffered, not hung.
        assert rows[0]["ok"] is True
        for row in rows[1:]:
            assert row["ok"] is False
            assert row["error"]["code"] == "overloaded"
        assert server.stats.cells_rejected == 2

        # Retriability: the same labels succeed once the queue has drained.
        with server.client() as client:
            for label in ("XOR", "Prime_Modulo"):
                assert client.submit_cell("indexing", "fft", label)["result"]

    def test_single_cell_overload_raises_typed_error(
        self, make_server, monkeypatch
    ):
        gate = threading.Event()

        def slow(cell, config, trace_path=None, profile_path=None):
            from repro.experiments.engine.cells import timed_execute_cell

            assert gate.wait(20)
            return timed_execute_cell(cell, config, trace_path, profile_path)

        monkeypatch.setattr(scheduler_mod, "timed_execute_cell", slow)
        server = make_server(max_pending=1)
        try:
            with server.client() as blocker, server.client() as probe:
                blocker._file.write(
                    encode_frame(
                        {
                            "id": "r1",
                            "type": "cell",
                            "kind": "indexing",
                            "workload": "fft",
                            "label": "XOR",
                        }
                    )
                )
                blocker._file.flush()
                # Wait until the slow flight occupies the only slot.
                deadline = time.time() + 20
                while server.scheduler.queue_depth == 0:
                    assert time.time() < deadline
                    time.sleep(0.01)
                with pytest.raises(ServiceOverloaded):
                    probe.submit_cell("indexing", "fft", "Prime_Modulo")
        finally:
            gate.set()


class TestDeadlines:
    def test_deadline_is_a_structured_timeout(self, make_server, monkeypatch):
        release = threading.Event()

        def stuck(cell, config, trace_path=None, profile_path=None):
            assert release.wait(30)
            raise RuntimeError("released after test")

        monkeypatch.setattr(scheduler_mod, "timed_execute_cell", stuck)
        server = make_server()
        try:
            with server.client() as client:
                t0 = time.perf_counter()
                with pytest.raises(ServiceTimeout):
                    client.submit_cell("indexing", "fft", "XOR", deadline=0.2)
                assert time.perf_counter() - t0 < 20  # error, not a hang
                # The server is still healthy and answering.
                assert client.health()["status"] == "ok"
            assert server.stats.deadline_timeouts == 1
        finally:
            release.set()


class TestObservability:
    def test_health_reports_version_and_protocol(self, server):
        with server.client() as client:
            health = client.health()
        assert health["status"] == "ok"
        assert health["version"] == repro.__version__
        assert health["protocol"] == PROTOCOL_VERSION
        assert health["uptime_seconds"] >= 0
        assert {"queue_depth", "in_flight", "max_pending"} <= set(health)

    def test_stats_counters_move(self, server):
        with server.client() as client:
            client.submit_cell("indexing", "fft", "XOR")
            client.submit_cell("indexing", "fft", "XOR")  # cache hit
            stats = client.stats()
        cells = stats["cells"]
        assert cells["submitted"] == 2
        assert cells["executed"] == 1
        assert cells["cache_hits"] == 1
        assert cells["cache_hit_ratio"] == 0.5
        assert stats["requests"]["cell"] == 2
        assert stats["requests"]["stats"] == 1
        assert stats["connections"]["total"] >= 1
        hist = stats["latency"]["cell"]
        assert hist["count"] == 2
        assert hist["p99_seconds"] >= hist["p50_seconds"] >= 0


class TestExperiments:
    def test_experiment_matches_in_process_run(self, server, service_config):
        events = []
        with server.client() as client:
            reply = client.run_experiment("fig1", on_event=events.append)
        wire = reply["experiment"]
        local = run_experiment("fig1", service_config)
        assert wire["experiment_id"] == local.experiment_id == "fig1"
        assert wire["columns"] == list(local.columns)
        assert wire["rows"] == {k: dict(v) for k, v in local.rows.items()}
        # Progress streamed: one event per settled cell, monotone `done`.
        assert events, "no progress events streamed"
        assert events[-1]["done"] == events[-1]["total"]
        assert [e["done"] for e in events] == sorted(e["done"] for e in events)
        # And the in-process follow-up was pure cache hits (key parity).
        assert local.engine_stats["cache_misses"] == 0

    def test_second_submission_is_all_cache(self, server):
        with server.client() as client:
            client.run_experiment("fig1")
            again = client.run_experiment("fig1")["experiment"]
        assert again["engine_stats"]["cache_misses"] == 0
        assert again["engine_stats"]["cache_hits"] == (
            again["engine_stats"]["cells_total"]
        )


class TestErrors:
    def test_unknown_request_type(self, server):
        with server.client() as client:
            with pytest.raises(ServiceError) as exc_info:
                client.request({"type": "teleport"})
        assert exc_info.value.code == "bad_request"

    def test_unknown_workload_and_experiment(self, server):
        with server.client() as client:
            with pytest.raises(ServiceError) as exc_info:
                client.submit_cell("indexing", "nope", "XOR")
            assert exc_info.value.code == "bad_request"
            with pytest.raises(ServiceError) as exc_info:
                client.run_experiment("fig99")
            assert exc_info.value.code == "bad_request"

    def test_disallowed_config_override(self, server):
        with server.client() as client:
            with pytest.raises(ServiceError) as exc_info:
                client.submit_cell(
                    "indexing", "fft", "XOR", config={"result_cache_dir": "/pwn"}
                )
        assert exc_info.value.code == "bad_request"
        assert "not allowed" in exc_info.value.message

    def test_malformed_json_gets_an_error_frame(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
            f = sock.makefile("rwb")
            f.write(b"this is not json\n")
            f.flush()
            frame = decode_frame(f.readline())
        assert frame["ok"] is False
        assert frame["error"]["code"] == "bad_request"

    def test_worker_failure_is_an_internal_error(self, server, monkeypatch):
        def boom(cell, config, trace_path=None, profile_path=None):
            raise ValueError("synthetic cell failure")

        monkeypatch.setattr(scheduler_mod, "timed_execute_cell", boom)
        with server.client() as client:
            with pytest.raises(ServiceError) as exc_info:
                client.submit_cell("indexing", "fft", "Prime_Modulo")
            assert exc_info.value.code == "internal"
            assert "synthetic cell failure" in exc_info.value.message
            # Still alive afterwards.
            assert client.health()["status"] == "ok"


class TestDisconnectAndShutdown:
    def test_client_disconnect_cancels_its_flight(self, server, monkeypatch):
        release = threading.Event()

        def stuck(cell, config, trace_path=None, profile_path=None):
            assert release.wait(30)
            raise RuntimeError("released after test")

        monkeypatch.setattr(scheduler_mod, "timed_execute_cell", stuck)
        try:
            sock = socket.create_connection(("127.0.0.1", server.port), timeout=10)
            sock.sendall(
                encode_frame(
                    {
                        "id": "gone",
                        "type": "cell",
                        "kind": "indexing",
                        "workload": "fft",
                        "label": "XOR",
                    }
                )
            )
            deadline = time.time() + 20
            while server.scheduler.queue_depth == 0:
                assert time.time() < deadline, "request never reached the scheduler"
                time.sleep(0.01)
            sock.close()  # the only waiter walks away
            while server.scheduler.queue_depth > 0:
                assert time.time() < deadline, "flight was not cancelled"
                time.sleep(0.01)
            assert server.stats.cells_cancelled >= 1
        finally:
            release.set()

    def test_shutdown_verb_stops_the_daemon(self, make_server):
        server = make_server()
        with server.client() as client:
            assert client.shutdown() is True
        server._thread.join(30)
        assert not server._thread.is_alive()
        # The port is actually released: a fresh connect fails.
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", server.port), timeout=1)
