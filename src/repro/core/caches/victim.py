"""Victim cache (Jouppi 1990; the paper's reference [14]).

A direct-mapped cache backed by a small fully-associative buffer that holds
recently evicted lines.  The paper frames the adaptive group-associative
cache as *selective* victim caching, so the plain victim cache is the natural
comparison point and is included in the extended benches.

A miss in the main array that hits the victim buffer swaps the two blocks
(1 extra cycle, recorded as a ``victim`` hit class).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..address import CacheGeometry
from ..indexing.base import IndexingScheme
from ..indexing.modulo import ModuloIndexing
from .base import EMPTY, AccessResult, CacheModel

__all__ = ["VictimCache"]


class VictimCache(CacheModel):
    """Direct-mapped array + ``victim_lines`` fully-associative LRU buffer."""

    name = "victim"

    def __init__(
        self,
        geometry: CacheGeometry,
        victim_lines: int = 8,
        indexing: IndexingScheme | None = None,
    ):
        if geometry.ways != 1:
            raise ValueError("the victim cache augments a direct-mapped geometry")
        if victim_lines < 1:
            raise ValueError("victim buffer needs at least one line")
        super().__init__(geometry, num_slots=geometry.num_sets)
        self.indexing = indexing if indexing is not None else ModuloIndexing(geometry)
        self.victim_lines = victim_lines
        self._blocks = np.full(geometry.num_sets, EMPTY, dtype=np.int64)
        self._victims: OrderedDict[int, None] = OrderedDict()
        self._offset_bits = geometry.offset_bits

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        slot = self.indexing.index_of(block << self._offset_bits)
        self.stats.record_probe(slot)
        if self._blocks[slot] == block:
            self.stats.record_hit(slot, "direct")
            return AccessResult(True, 1, slot, slot, hit_class="direct")
        if block in self._victims:
            # Swap the victim-buffer line with the conflicting main line.
            del self._victims[block]
            displaced = int(self._blocks[slot])
            self._blocks[slot] = block
            if displaced != EMPTY:
                self._insert_victim(displaced)
            self.stats.record_hit(slot, "victim")
            return AccessResult(True, 2, slot, slot, hit_class="victim")
        evicted: int | None = None
        displaced = int(self._blocks[slot])
        if displaced != EMPTY:
            evicted = self._insert_victim(displaced)
        self._blocks[slot] = block
        self.stats.record_miss(slot)
        return AccessResult(False, 1, slot, slot, evicted_block=evicted)

    def _insert_victim(self, block: int) -> int | None:
        """Push a displaced block into the buffer; return any overflow."""
        overflow = None
        if len(self._victims) >= self.victim_lines:
            overflow, _ = self._victims.popitem(last=False)
        self._victims[block] = None
        return overflow

    @property
    def fraction_victim_hits(self) -> float:
        if not self.stats.hits:
            return 0.0
        return self.stats.extra.get("victim_hits", 0) / self.stats.hits

    def contents(self) -> set[int]:
        main = {int(b) for b in self._blocks if b != EMPTY}
        return main | set(self._victims)

    def check_invariants(self) -> None:
        main = {int(b) for b in self._blocks if b != EMPTY}
        assert not (main & set(self._victims)), "block resident in both structures"
        assert len(self._victims) <= self.victim_lines
        self.stats.check_invariants()

    def flush(self) -> None:
        self._blocks.fill(EMPTY)
        self._victims.clear()
