"""Trace container and builder tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace import MemoryAccess, Trace, TraceBuilder


class TestTrace:
    def test_basic_construction(self):
        t = Trace(np.array([1, 2, 3], dtype=np.uint64), name="t")
        assert len(t) == 3
        assert t.num_threads == 1
        assert not t.is_write.any()

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trace(np.array([1, 2], dtype=np.uint64), is_write=np.array([True]))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            Trace(np.zeros((2, 2), dtype=np.uint64))

    def test_immutable(self):
        t = Trace(np.array([1], dtype=np.uint64))
        with pytest.raises(ValueError):
            t.addresses[0] = 5

    def test_iteration_yields_accesses(self):
        t = Trace(
            np.array([10, 20], dtype=np.uint64),
            is_write=np.array([False, True]),
            thread=np.array([0, 1], dtype=np.int16),
        )
        events = list(t)
        assert events[0] == MemoryAccess(10, False, 0)
        assert events[1] == MemoryAccess(20, True, 1)

    def test_slicing(self):
        t = Trace(np.arange(10, dtype=np.uint64))
        assert len(t[2:5]) == 3
        with pytest.raises(TypeError):
            t[3]  # integer indexing unsupported

    def test_blocks(self):
        t = Trace(np.array([0, 31, 32, 64], dtype=np.uint64))
        assert t.blocks(5).tolist() == [0, 0, 1, 2]
        assert t.unique_blocks(5).tolist() == [0, 1, 2]
        assert t.footprint_bytes(5) == 3 * 32

    def test_write_fraction(self):
        t = Trace(np.arange(4, dtype=np.uint64), is_write=np.array([1, 0, 0, 1], dtype=bool))
        assert t.write_fraction() == 0.5

    def test_for_thread(self):
        t = Trace(
            np.array([1, 2, 3, 4], dtype=np.uint64),
            thread=np.array([0, 1, 0, 1], dtype=np.int16),
        )
        t0 = t.for_thread(0)
        assert t0.addresses.tolist() == [1, 3]
        assert t0.num_threads == 1

    def test_concat(self):
        a = Trace(np.array([1], dtype=np.uint64), name="a")
        b = Trace(np.array([2], dtype=np.uint64), name="b")
        c = a.concat(b)
        assert c.addresses.tolist() == [1, 2]

    def test_with_name(self):
        t = Trace(np.array([1], dtype=np.uint64), name="old")
        assert t.with_name("new").name == "new"


class TestTraceBuilder:
    def test_append_and_build(self):
        b = TraceBuilder("x")
        b.append(0x10)
        b.append(0x20, is_write=True)
        t = b.build()
        assert t.addresses.tolist() == [0x10, 0x20]
        assert t.is_write.tolist() == [False, True]
        assert t.name == "x"

    def test_chunk_boundary(self):
        n = TraceBuilder.CHUNK + 7
        b = TraceBuilder()
        for i in range(n):
            b.append(i)
        t = b.build()
        assert len(t) == n
        assert t.addresses[-1] == n - 1

    def test_extend_bulk(self):
        b = TraceBuilder()
        b.append(1)
        b.extend(np.array([2, 3], dtype=np.uint64), is_write=True)
        b.append(4)
        t = b.build()
        assert t.addresses.tolist() == [1, 2, 3, 4]
        assert t.is_write.tolist() == [False, True, True, False]

    def test_empty_build(self):
        t = TraceBuilder().build()
        assert len(t) == 0
        assert t.num_threads == 0

    def test_len_tracks_total(self):
        b = TraceBuilder()
        for i in range(100):
            b.append(i)
        assert len(b) == 100
