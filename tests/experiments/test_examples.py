"""Example-script smoke tests: every shipped example must run end-to-end.

Each example is executed in-process (import + ``main``) with small
arguments, in a temp working directory so trace caches do not pollute the
repo.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(monkeypatch, tmp_path, name: str, argv: list[str]):
    monkeypatch.chdir(tmp_path)
    monkeypatch.setattr(sys, "argv", [name] + argv)
    # runpy gives each example a fresh __main__ namespace.
    with pytest.raises(SystemExit) as exc:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    assert exc.value.code == 0


class TestExamples:
    def test_quickstart(self, monkeypatch, tmp_path, capsys):
        run_example(monkeypatch, tmp_path, "quickstart.py", ["crc", "8000"])
        out = capsys.readouterr().out
        assert "Indexing schemes" in out and "Programmable associativity" in out

    def test_smt_cache_design(self, monkeypatch, tmp_path, capsys):
        run_example(monkeypatch, tmp_path, "smt_cache_design.py", ["crc", "sha", "6000"])
        out = capsys.readouterr().out
        assert "partitioned adaptive" in out

    def test_custom_workload(self, monkeypatch, tmp_path, capsys):
        run_example(monkeypatch, tmp_path, "custom_workload.py", [])
        out = capsys.readouterr().out
        assert "hashjoin" in out

    def test_instruction_placement(self, monkeypatch, tmp_path, capsys):
        run_example(monkeypatch, tmp_path, "instruction_placement.py", ["3"])
        out = capsys.readouterr().out
        assert "optimised layout" in out

    def test_service_client(self, monkeypatch, tmp_path, capsys):
        run_example(monkeypatch, tmp_path, "service_client.py", ["fft", "6000"])
        out = capsys.readouterr().out
        assert "job server listening" in out
        assert "coalesced" in out and "cache hits" in out
        assert "server stopped" in out

    def test_replay_paper_single_small(self, monkeypatch, tmp_path, capsys):
        # Full replay is exercised by the benches; here just check the
        # script's plumbing with a tiny ref count would take minutes, so we
        # only validate argument parsing + one figure via the CLI instead.
        from repro.cli import main

        md = tmp_path / "out.md"
        monkeypatch.chdir(tmp_path)
        assert main(["run", "fig1", "--refs", "8000", "--out", str(md)]) == 0
        assert md.exists()
