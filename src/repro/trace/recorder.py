"""Workload recorder: the bridge between an algorithm and its trace.

A :class:`Recorder` owns an :class:`~repro.trace.memory.AddressSpace` and a
:class:`~repro.trace.event.TraceBuilder`, and exposes ``load``/``store``
verbs the workload kernels call as they execute.  The kernels therefore read
like the C programs they model::

    m = Recorder("fft", seed=1)
    data = m.space.heap_array(8, n, "data")
    ...
    x = values[i]          # real computation on Python values
    m.load(data.addr(i))   # and the memory reference it implies

A ``ref_limit`` turns long-running kernels into bounded traces: once the
limit is reached the recorder raises :class:`TraceComplete`, which
:func:`record` catches — so kernels never need their own trace-length logic.

Emission paths
--------------
Every reference can be emitted two ways, and both produce bit-identical
traces (locked by ``tests/trace/test_golden_hashes.py``):

* **scalar** — one Python call per reference (``load``/``store``); the
  reference semantics, and what every kernel did originally;
* **bulk** — thousands of references per call through the composable vector
  emitters: :meth:`Recorder.pattern_stream` (flat address array with
  per-event write flags), :meth:`Recorder.interleaved_stream` (load/store
  columns zipped row-major, e.g. the STREAM triad's ``R,R,W`` repeating
  unit), :meth:`Recorder.elem_stream` (vectorised ``load_elem`` /
  ``store_elem``) and :meth:`Recorder.strided_loop` (affine address sweeps).

All bulk emitters honour ``ref_limit`` *exactly*: a stream that crosses the
limit is truncated at the same event index where the scalar loop would have
raised, then :class:`TraceComplete` propagates — so kernels may freely mix
scalar and bulk emission and still cut bit-identically.

``Recorder.bulk`` tells a kernel whether to take its vectorised path;
``record(..., bulk=False)`` forces the scalar reference path (used by the
differential tests and the trace-generation benchmark denominators).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .event import Trace, TraceBuilder
from .memory import AddressSpace, Array

__all__ = [
    "Recorder",
    "PendingStream",
    "TraceComplete",
    "record",
    "interleave_streams",
]


class TraceComplete(Exception):
    """Raised internally when the recorder hits its reference limit."""


def interleave_streams(
    *columns: "tuple[np.ndarray, np.ndarray | bool]",
) -> tuple[np.ndarray, np.ndarray]:
    """Zip equal-length reference columns row-major into one event stream.

    Each column is ``(addresses, is_write)`` where ``is_write`` is a scalar
    flag or a per-row flag array.  Row *i* of the result is column 0's event
    *i*, then column 1's event *i*, ... — the flattened order of the classic
    ``for i: load b[i]; load c[i]; store a[i]`` loop.  Returns
    ``(addresses, flags)`` ready for :meth:`Recorder.pattern_stream`.
    """
    if not columns:
        raise ValueError("interleave_streams needs at least one column")
    addrs = [np.asarray(a, dtype=np.uint64).ravel() for a, _ in columns]
    n = addrs[0].size
    if any(a.size != n for a in addrs):
        raise ValueError("interleaved columns must have equal lengths")
    k = len(columns)
    out_addr = np.empty(n * k, dtype=np.uint64)
    out_write = np.empty(n * k, dtype=bool)
    for j, (a, (_, w)) in enumerate(zip(addrs, columns)):
        out_addr[j::k] = a
        out_write[j::k] = w if np.ndim(w) == 0 else np.asarray(w, dtype=bool).ravel()
    return out_addr, out_write


class Recorder:
    """Trace-emitting memory interface handed to workload kernels."""

    def __init__(
        self,
        name: str,
        seed: int = 0,
        ref_limit: int | None = None,
        thread: int = 0,
        bulk: bool = True,
    ):
        self.name = name
        self.rng = np.random.default_rng(seed)
        self.space = AddressSpace(thread=thread)
        self.builder = TraceBuilder(name=name, meta={"seed": seed}, thread=thread)
        self.ref_limit = ref_limit
        #: Whether kernels should take their bulk-emission fast path.  Both
        #: paths emit bit-identical traces (the golden-hash contract); the
        #: flag exists so differential tests and benches can pin the scalar
        #: reference behaviour.
        self.bulk = bulk
        #: In bulk mode every scalar ``load``/``store`` is deferred into this
        #: buffer (plain-int appends) and flushed as one ``pattern_stream``
        #: whenever a bulk emitter runs, the buffer crosses its threshold, or
        #: the trace is built — so kernels can mix scalar and bulk emission
        #: freely without fragmenting the trace builder.
        self.pend: "PendingStream | None" = PendingStream(self) if bulk else None
        self._stdio: "_StdioModel | None" = None

    # -- stdio -------------------------------------------------------------------

    def printf(self, nbytes: int = 24, fmt_id: int = 0) -> None:
        """Model a formatted print (MiBench programs print constantly).

        Touches the hot stdio working set a real ``printf`` does: the format
        string (rodata), the ``FILE`` structure, and a run of stores into the
        stdout buffer; a full buffer is "flushed" (re-read for the write
        syscall).  These recurring hot lines, scattered across segments, are
        a major source of the conflict misses the paper's techniques target.
        """
        if self._stdio is None:
            self._stdio = _StdioModel(self.space)
        self._stdio.printf(self, nbytes, fmt_id)

    # -- scalar references -----------------------------------------------------------

    def load(self, address: int) -> None:
        self._emit(address, False)

    def store(self, address: int) -> None:
        self._emit(address, True)

    def _emit(self, address: int, is_write: bool) -> None:
        if self.pend is not None:
            # Bulk mode: defer.  The ref-limit cut is applied at flush time
            # by the stream emitter, at the same event index.
            if is_write:
                self.pend.store(address)
            else:
                self.pend.load(address)
            return
        self.builder.append(address, is_write)
        if self.ref_limit is not None and len(self.builder) >= self.ref_limit:
            raise TraceComplete

    # -- array convenience -------------------------------------------------------------

    def load_elem(self, array: Array, index: int) -> None:
        self.load(array.addr(index))

    def store_elem(self, array: Array, index: int) -> None:
        self.store(array.addr(index))

    def load_field(self, array: Array, index: int, offset: int) -> None:
        self.load(array.field_addr(index, offset))

    def store_field(self, array: Array, index: int, offset: int) -> None:
        self.store(array.field_addr(index, offset))

    # -- bulk references ----------------------------------------------------------------

    def load_stream(self, addresses: np.ndarray) -> None:
        """Vectorised sequence of loads (bounded by the ref limit)."""
        self.pattern_stream(addresses, False)

    def store_stream(self, addresses: np.ndarray) -> None:
        self.pattern_stream(addresses, True)

    def pattern_stream(
        self, addresses: np.ndarray, is_write: "np.ndarray | bool" = False
    ) -> None:
        """Emit a flat event stream with per-event write flags.

        The bulk primitive everything else reduces to.  ``is_write`` is a
        scalar flag or a boolean array aligned with ``addresses`` — so one
        call can carry an arbitrary interleaving of loads and stores, not
        one flag per block.  Honours ``ref_limit`` exactly: if the stream
        crosses the limit it is truncated at the same event index where the
        equivalent scalar loop would have raised :class:`TraceComplete`.
        """
        if self.pend is not None and self.pend._addrs:
            self.pend.flush()
        self._stream_raw(addresses, is_write)

    def _stream_raw(
        self, addresses: np.ndarray, is_write: "np.ndarray | bool"
    ) -> None:
        """:meth:`pattern_stream` without the pending-buffer flush (the
        flush itself lands here)."""
        addresses = np.asarray(addresses, dtype=np.uint64).ravel()
        scalar_flag = np.ndim(is_write) == 0
        if not scalar_flag:
            is_write = np.asarray(is_write, dtype=bool).ravel()
            if is_write.size != addresses.size:
                raise ValueError(
                    f"per-event write flags ({is_write.size}) must match "
                    f"addresses ({addresses.size})"
                )
        if self.ref_limit is not None:
            room = self.ref_limit - len(self.builder)
            if room <= 0:
                raise TraceComplete
            if addresses.size > room:
                self.builder.extend(
                    addresses[:room],
                    is_write if scalar_flag else is_write[:room],
                )
                raise TraceComplete
        self.builder.extend(addresses, is_write)
        if self.ref_limit is not None and len(self.builder) >= self.ref_limit:
            raise TraceComplete

    def interleaved_stream(
        self, *columns: "tuple[np.ndarray, np.ndarray | bool]"
    ) -> None:
        """Emit equal-length load/store columns zipped row-major.

        ``interleaved_stream((b, False), (c, False), (a, True))`` is the
        bulk form of ``for i: load b[i]; load c[i]; store a[i]``.
        """
        self.pattern_stream(*interleave_streams(*columns))

    def elem_stream(
        self, array: Array, indices: np.ndarray, is_write: "np.ndarray | bool" = False
    ) -> None:
        """Vectorised :meth:`load_elem`/:meth:`store_elem` over ``indices``."""
        self.pattern_stream(array.addrs(indices), is_write)

    def strided_loop(
        self,
        start: int,
        stride: int,
        count: int,
        is_write: "np.ndarray | bool" = False,
    ) -> None:
        """Affine address sweep: ``start + k*stride`` for ``k`` in ``[0, count)``.

        The bulk form of the canonical array-walk loop (negative strides
        model downward sweeps).  Flags may be per-event, so a strided
        read-modify-write pattern is one call.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        addresses = (
            np.int64(start) + np.arange(count, dtype=np.int64) * np.int64(stride)
        ).astype(np.uint64)
        self.pattern_stream(addresses, is_write)

    # -- finishing -----------------------------------------------------------------------

    def build(self) -> Trace:
        if self.pend is not None:
            try:
                self.pend.flush()
            except TraceComplete:
                pass
        return self.builder.build()


class PendingStream:
    """Buffered scalar emission: list appends now, one bulk flush later.

    The deferral mechanism behind bulk mode's scalar verbs: ``load``/
    ``store`` cost a plain-int list append instead of a trace-builder call,
    and :meth:`flush` — triggered past ``threshold``, by any bulk emitter on
    the owning recorder, or at trace build — converts the buffer to one
    :meth:`Recorder._stream_raw` call.  Append order is preserved, so the
    trace is bit-identical to emitting directly — including the
    ``ref_limit`` cut, which the stream emitter applies at flush time.

    Kernels whose reference sequence is decided event by event (qsort's
    ``strcmp`` scans, printf's buffer runs) can also append to it directly
    via :attr:`Recorder.pend` and the batched helpers below.
    """

    __slots__ = ("_rec", "_addrs", "_write_marks", "threshold")

    def __init__(self, rec: Recorder, threshold: int = 1 << 15):
        self._rec = rec
        self.threshold = threshold
        self._addrs: list[int] = []
        self._write_marks: list[int] = []

    def __len__(self) -> int:
        return len(self._addrs)

    def load(self, address: int) -> None:
        addrs = self._addrs
        addrs.append(address)
        if len(addrs) >= self.threshold:
            self.flush()

    def store(self, address: int) -> None:
        addrs = self._addrs
        self._write_marks.append(len(addrs))
        addrs.append(address)
        if len(addrs) >= self.threshold:
            self.flush()

    def loads(self, addresses: "Sequence[int]") -> None:
        """Append a pre-built run of load addresses (one ``extend``)."""
        addrs = self._addrs
        addrs.extend(addresses)
        if len(addrs) >= self.threshold:
            self.flush()

    def stores(self, addresses: "Sequence[int]") -> None:
        """Append a pre-built run of store addresses."""
        addrs = self._addrs
        base = len(addrs)
        addrs.extend(addresses)
        self._write_marks.extend(range(base, len(addrs)))
        if len(addrs) >= self.threshold:
            self.flush()

    def events(
        self, addresses: "Sequence[int]", write_marks: "Sequence[int]"
    ) -> None:
        """Append a mixed run; ``write_marks`` are store positions relative
        to the start of ``addresses``."""
        addrs = self._addrs
        base = len(addrs)
        addrs.extend(addresses)
        if write_marks:
            wm = self._write_marks
            for k in write_marks:
                wm.append(base + k)
        if len(addrs) >= self.threshold:
            self.flush()

    def flush(self) -> None:
        if not self._addrs:
            return
        addresses = np.array(self._addrs, dtype=np.uint64)
        if self._write_marks:
            flags: "np.ndarray | bool" = np.zeros(addresses.size, dtype=bool)
            flags[self._write_marks] = True
        else:
            flags = False
        self._addrs = []
        self._write_marks = []
        self._rec._stream_raw(addresses, flags)


class _StdioModel:
    """Hot stdio state: FILE struct, stdout buffer, format-string pool.

    ``printf`` has two emission paths producing identical event streams: the
    scalar loop (the original reference behaviour), and a deferred path for
    bulk mode.  A call's *entire* event block — fmt/FILE loads, the
    conversion-buffer ping-pong, the buffer stores (plus any flush
    re-read) and the FILE update — is a pure function of the stack
    pointer, the format index, the buffer position and the byte count, so
    the bulk path memoizes whole blocks on that key and replays each call
    as a single batched append to the recorder's pending buffer.
    """

    BUF_BYTES = 4096

    def __init__(self, space: AddressSpace):
        self.file_struct = space.static_array(8, 16, "_IO_FILE")  # 128 B
        self.fmt_pool = space.static_array(32, 16, "fmt_strings")  # 512 B rodata
        self.buf = space.heap_array(1, self.BUF_BYTES, "stdout_buf")
        self.pos = 0
        #: (stack_ptr, fmt_idx, pos, nbytes) -> whole-call event block as
        #: (addresses, store positions, buffer position after the call).
        self._blocks: dict[
            tuple[int, int, int, int], tuple[list[int], tuple[int, ...], int]
        ] = {}
        #: write(2) re-reads the buffer at line granularity on flush.
        self._flush_loads = [self.buf.base + b for b in range(0, self.BUF_BYTES, 32)]

    def printf(self, m: "Recorder", nbytes: int, fmt_id: int) -> None:
        if m.pend is not None:
            self._printf_pend(m, m.pend, nbytes, fmt_id)
            return
        m.load_elem(self.fmt_pool, fmt_id % self.fmt_pool.length)
        m.load_elem(self.file_struct, 0)  # flags / write pointer
        m.load_elem(self.file_struct, 3)
        # vfprintf's own frame: a real printf burns ~0.5 KiB of stack for
        # format state and a conversion work buffer, re-touched every call.
        frame = m.space.push_frame(640)
        work = frame.local_array("work", 8, 64)
        for i in range(0, 64, 8):
            m.store_elem(work, i)
            m.load_elem(work, i)
        for off in range(0, nbytes, 8):
            if self.pos >= self.BUF_BYTES:
                # Flush: the write(2) path reads the buffer back out.
                for b in range(0, self.BUF_BYTES, 32):
                    m.load(self.buf.addr(b))
                self.pos = 0
            m.store(self.buf.addr(self.pos))
            self.pos += 8
        m.space.pop_frame()
        m.store_elem(self.file_struct, 0)  # update the write pointer

    def _printf_pend(
        self, m: "Recorder", pend: "PendingStream", nbytes: int, fmt_id: int
    ) -> None:
        """Deferred ``printf``: identical event stream, one batched append.

        The vfprintf frame the scalar path pushes sits at a base fully
        determined by the current stack pointer, and the frame is popped
        before the tail FILE store — pushing it for real has no observable
        effect beyond the addresses it implies, so the bulk path computes
        those addresses directly and leaves the stack untouched.
        """
        fmt_idx = fmt_id % self.fmt_pool.length
        key = (m.space.stack_ptr, fmt_idx, self.pos, nbytes)
        block = self._blocks.get(key)
        if block is None:
            block = self._build_block(*key)
            self._blocks[key] = block
        addrs, marks, pos_after = block
        pend.events(addrs, marks)
        self.pos = pos_after

    def _build_block(
        self, stack_ptr: int, fmt_idx: int, pos: int, nbytes: int
    ) -> tuple[list[int], tuple[int, ...], int]:
        """Replay the scalar ``printf`` loop symbolically into one block."""
        # push_frame(640): 640 is already 16-aligned; the work array is the
        # frame's first (and only) allocation, so it starts at frame.base.
        work_base = stack_ptr - 640
        file0 = self.file_struct.addr(0)
        addrs = [self.fmt_pool.addr(fmt_idx), file0, self.file_struct.addr(3)]
        for i in range(0, 64, 8):
            a = work_base + 8 * i
            addrs.append(a)  # conversion-buffer store ...
            addrs.append(a)  # ... and re-load
        marks = list(range(3, 19, 2))
        buf_base = self.buf.base
        for _ in range(0, nbytes, 8):
            if pos >= self.BUF_BYTES:
                addrs.extend(self._flush_loads)
                pos = 0
            marks.append(len(addrs))
            addrs.append(buf_base + pos)
            pos += 8
        marks.append(len(addrs))
        addrs.append(file0)  # update the write pointer
        return addrs, tuple(marks), pos


def record(
    kernel: Callable[[Recorder], None],
    name: str,
    seed: int = 0,
    ref_limit: int | None = None,
    thread: int = 0,
    meta: dict | None = None,
    bulk: bool = True,
) -> Trace:
    """Run ``kernel(recorder)`` to completion or to the reference limit.

    The builder itself bounds the trace at ``ref_limit`` (every emission
    path truncates exactly and raises :class:`TraceComplete`), and stamps
    thread ids at build time — no post-hoc ``head()`` re-slice or
    whole-trace thread rebuild.
    """
    rec = Recorder(name, seed=seed, ref_limit=ref_limit, thread=thread, bulk=bulk)
    if meta:
        rec.builder.meta.update(meta)
    try:
        kernel(rec)
    except TraceComplete:
        pass
    trace = rec.build()
    assert ref_limit is None or len(trace) <= ref_limit, (
        "TraceBuilder must bound the trace at ref_limit"
    )
    return trace
