"""Property-based tests for the fastassoc engine (Hypothesis).

The differential suite pins the fast paths to the sequential reference on a
fixed trace zoo; this file pins the *structural claims* the engine's
docstring proves, over machine-generated traces:

* **MRU-repeat invariance** (column-associative): duplicating any access in
  place adds exactly one first-probe hit — one access, one hit, one lookup
  cycle on the primary slot — and changes nothing else, including the final
  tag/rehash state.  This is the compression theorem the fast path relies
  on, tested *behaviourally* rather than by reading the implementation.
* **Run-repeat invariance** (B-cache): duplicating an access adds exactly
  one direct hit and leaves every other access's outcome unchanged (the
  duplicate re-touches the cluster's already-most-recent line, preserving
  all relative LRU orders).
* **Per-group outcome independence** (column-associative): replaying each
  set-pair's substream alone, on a fresh cache, reproduces the full run's
  counters exactly when summed — no information flows between pairs.
* **Extras partition totals** for every model in the family.
* A randomized mini-differential for the partner cache's windowed
  decomposition (rebalance period drawn by Hypothesis).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.address import CacheGeometry
from repro.core.caches import (
    AdaptiveGroupAssociativeCache,
    BalancedCache,
    ColumnAssociativeCache,
    PartnerIndexCache,
)
from repro.core.fastassoc import (
    simulate_bcache,
    simulate_column_associative,
    simulate_partner,
    simulate_progassoc,
)
from repro.core.simulator import simulate
from repro.trace import Trace

TINY = CacheGeometry(capacity_bytes=128, line_bytes=16, ways=1, address_bits=16)

#: Small address universes force heavy aliasing inside few pairs/clusters.
trace_arrays = st.integers(min_value=1, max_value=300).flatmap(
    lambda n: st.lists(
        st.integers(min_value=0, max_value=(1 << 12) - 1), min_size=n, max_size=n
    )
)


def make_trace(raw: list[int]) -> Trace:
    return Trace(np.array(raw, dtype=np.uint64) * np.uint64(TINY.line_bytes), name="h")


def duplicated(trace: Trace, pos: int) -> Trace:
    addrs = trace.addresses
    dup = np.insert(addrs, pos + 1, addrs[pos])
    return Trace(dup, name=trace.name)


class TestMruRepeatInvariance:
    @given(trace_arrays, st.integers(min_value=0, max_value=10_000), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_duplicate_access_is_one_first_probe_hit(self, raw, pos_seed, protect):
        trace = make_trace(raw)
        pos = pos_seed % len(trace)
        base_cache = ColumnAssociativeCache(TINY, protect_conventional=protect)
        dup_cache = ColumnAssociativeCache(TINY, protect_conventional=protect)
        base = simulate_column_associative(base_cache, trace)
        dup = simulate_column_associative(dup_cache, duplicated(trace, pos))
        assert dup.accesses == base.accesses + 1
        assert dup.hits == base.hits + 1
        assert dup.misses == base.misses
        assert dup.lookup_cycles == base.lookup_cycles + 1
        assert dup.extra.get("first_probe_hits", 0) == base.extra.get(
            "first_probe_hits", 0
        ) + 1
        for key in ("rehash_hits", "direct_misses", "rehash_misses"):
            assert dup.extra.get(key, 0) == base.extra.get(key, 0), key
        # The duplicate's slot bump lands on the block's *primary* index.
        slot = base_cache.indexing.index_of(int(trace.addresses[pos]))
        delta_acc = dup.slot_accesses - base.slot_accesses
        delta_hit = dup.slot_hits - base.slot_hits
        assert delta_acc[slot] == 1 and int(np.abs(delta_acc).sum()) == 1
        assert delta_hit[slot] == 1 and int(np.abs(delta_hit).sum()) == 1
        np.testing.assert_array_equal(dup.slot_misses, base.slot_misses)
        # Zero state change.
        np.testing.assert_array_equal(base_cache._blocks, dup_cache._blocks)
        np.testing.assert_array_equal(base_cache._rehash, dup_cache._rehash)


class TestBCacheRunRepeatInvariance:
    @given(trace_arrays, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_duplicate_access_is_one_direct_hit(self, raw, pos_seed):
        trace = make_trace(raw)
        pos = pos_seed % len(trace)
        base = simulate_bcache(BalancedCache(TINY), trace)
        dup = simulate_bcache(BalancedCache(TINY), duplicated(trace, pos))
        assert dup.accesses == base.accesses + 1
        assert dup.hits == base.hits + 1
        assert dup.misses == base.misses
        assert dup.lookup_cycles == base.lookup_cycles + 1
        assert dup.extra["direct_hits"] == base.extra.get("direct_hits", 0) + 1
        np.testing.assert_array_equal(dup.slot_misses, base.slot_misses)


class TestPerGroupIndependence:
    @given(trace_arrays, st.booleans())
    @settings(max_examples=50, deadline=None)
    def test_pair_substreams_replay_independently(self, raw, protect):
        trace = make_trace(raw)
        full_cache = ColumnAssociativeCache(TINY, protect_conventional=protect)
        full = simulate_column_associative(full_cache, trace)

        indexing = full_cache.indexing
        b1 = indexing.indices_of(trace.addresses)
        half = TINY.num_sets // 2
        pair = b1 & (half - 1)

        acc = np.zeros(TINY.num_sets, dtype=np.int64)
        hit = np.zeros(TINY.num_sets, dtype=np.int64)
        mis = np.zeros(TINY.num_sets, dtype=np.int64)
        totals = {"accesses": 0, "hits": 0, "misses": 0, "lookup_cycles": 0}
        extras: dict[str, int] = {}
        for p in np.unique(pair):
            sub = Trace(trace.addresses[pair == p], name="sub")
            res = simulate_column_associative(
                ColumnAssociativeCache(TINY, protect_conventional=protect), sub
            )
            acc += res.slot_accesses
            hit += res.slot_hits
            mis += res.slot_misses
            for k in totals:
                totals[k] += getattr(res, k)
            for k, v in res.extra.items():
                extras[k] = extras.get(k, 0) + v

        assert totals["accesses"] == full.accesses
        assert totals["hits"] == full.hits
        assert totals["misses"] == full.misses
        assert totals["lookup_cycles"] == full.lookup_cycles
        assert extras == full.extra
        np.testing.assert_array_equal(acc, full.slot_accesses)
        np.testing.assert_array_equal(hit, full.slot_hits)
        np.testing.assert_array_equal(mis, full.slot_misses)


class TestExtrasPartitionTotals:
    @given(trace_arrays)
    @settings(max_examples=40, deadline=None)
    def test_every_model(self, raw):
        trace = make_trace(raw)
        col = simulate_progassoc(ColumnAssociativeCache(TINY), trace)
        assert (
            col.extra.get("first_probe_hits", 0) + col.extra.get("rehash_hits", 0)
            == col.hits
        )
        assert (
            col.extra.get("direct_misses", 0) + col.extra.get("rehash_misses", 0)
            == col.misses
        )
        bc = simulate_progassoc(BalancedCache(TINY), trace)
        assert bc.extra.get("direct_hits", 0) == bc.hits
        pc = simulate_progassoc(PartnerIndexCache(TINY, rebalance_period=32), trace)
        assert (
            pc.extra.get("direct_hits", 0) + pc.extra.get("partner_hits", 0) == pc.hits
        )
        ad = simulate_progassoc(AdaptiveGroupAssociativeCache(TINY), trace)
        assert ad.extra.get("direct_hits", 0) + ad.extra.get("out_hits", 0) == ad.hits
        for res in (col, bc, pc, ad):
            assert res.hits + res.misses == res.accesses


class TestPartnerWindowedDifferential:
    @given(trace_arrays, st.integers(min_value=1, max_value=40))
    @settings(max_examples=50, deadline=None)
    def test_fast_equals_sequential_for_drawn_periods(self, raw, period):
        trace = make_trace(raw)
        fast_cache = PartnerIndexCache(TINY, rebalance_period=period)
        slow_cache = PartnerIndexCache(TINY, rebalance_period=period)
        fast = simulate_partner(fast_cache, trace)
        slow = simulate(slow_cache, trace)
        assert (fast.accesses, fast.hits, fast.misses, fast.lookup_cycles) == (
            slow.accesses,
            slow.hits,
            slow.misses,
            slow.lookup_cycles,
        )
        assert fast.extra == slow.extra
        np.testing.assert_array_equal(fast.slot_misses, slow.slot_misses)
        np.testing.assert_array_equal(fast_cache._blocks, slow_cache._blocks)
        assert fast_cache._since_rebalance == slow_cache._since_rebalance
