"""Experiment registry and shared plumbing.

Each figure module registers a runner ``(PaperConfig) -> ExperimentResult``
under its id ("fig1" ... "fig14").  This module adds the pieces they share:
cached workload traces, fitted trainable schemes, the standard scheme and
cache-model line-ups, and the sequential-simulation helper with the
geometry's paper defaults.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Callable

from ..core.address import CacheGeometry
from ..core.caches import (
    AdaptiveGroupAssociativeCache,
    BalancedCache,
    ColumnAssociativeCache,
    DirectMappedCache,
)
from ..core.indexing import (
    GivargisIndexing,
    GivargisXorIndexing,
    IndexingScheme,
    ModuloIndexing,
    OddMultiplierIndexing,
    PrimeModuloIndexing,
    XorIndexing,
)
from ..core.simulator import SimulationResult, simulate, simulate_indexing
from ..trace.event import Trace
from ..trace.io import TraceCache
from ..workloads import get_workload
from .config import PaperConfig
from .report import ExperimentResult

__all__ = [
    "register_experiment",
    "run_experiment",
    "available_experiments",
    "EXPERIMENT_REGISTRY",
    "workload_trace",
    "workload_trace_path",
    "profile_trace_path",
    "indexing_lineup",
    "progassoc_lineup",
    "baseline_result",
]

EXPERIMENT_REGISTRY: dict[str, Callable[[PaperConfig], ExperimentResult]] = {}


def register_experiment(experiment_id: str):
    """Decorator: register ``runner`` under ``experiment_id``."""

    def decorator(fn: Callable[[PaperConfig], ExperimentResult]):
        if experiment_id in EXPERIMENT_REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        EXPERIMENT_REGISTRY[experiment_id] = fn
        return fn

    return decorator


def run_experiment(
    experiment_id: str,
    config: PaperConfig | None = None,
    *,
    jobs: int | None = None,
) -> ExperimentResult:
    """Run one registered experiment.

    ``jobs`` overrides ``config.jobs`` for the parallel engine (``1`` =
    sequential fallback, ``0`` = all cores); results are bit-identical
    either way.
    """
    config = config or PaperConfig()
    if jobs is not None:
        config = replace(config, jobs=jobs)
    try:
        fn = EXPERIMENT_REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENT_REGISTRY)}"
        ) from None
    return fn(config)


def available_experiments() -> list[str]:
    def key(eid: str) -> tuple:
        digits = "".join(ch for ch in eid if ch.isdigit())
        return (int(digits) if digits else 0, eid)

    return sorted(EXPERIMENT_REGISTRY, key=key)


# -- shared plumbing ---------------------------------------------------------------


def workload_trace(
    name: str, config: PaperConfig, thread: int = 0, seed: int | None = None
) -> Trace:
    """Workload trace via the on-disk cache (keyed by all generation knobs)."""
    cache = TraceCache(config.trace_cache_dir)
    seed = config.seed if seed is None else seed
    key = TraceCache.key_for(
        name, seed=seed, limit=config.ref_limit, scale=config.workload_scale
    )
    trace = cache.get_or_create(
        key,
        lambda: get_workload(name).generate(
            seed=seed, ref_limit=config.ref_limit, scale=config.workload_scale
        ),
    )
    return trace.with_name(name)


def profile_trace(name: str, config: PaperConfig) -> Trace:
    """The off-line profiling run used to fit trainable schemes (Figure-5
    flow): same workload, a different input seed."""
    if config.profile_seed_offset == 0:
        return workload_trace(name, config)
    return workload_trace(name, config, seed=config.seed + config.profile_seed_offset)


def workload_trace_path(
    name: str, config: PaperConfig, seed: int | None = None
) -> Path:
    """On-disk path of the cached workload trace, materialising it if absent.

    The parallel engine hands this path to pool workers instead of pickling
    the full address arrays per cell; workers re-open the file read-only
    through the process-wide trace arena (bit-identical by construction —
    ``workload_trace`` itself returns a load of the same file on every
    warm call).  New entries are written in the raw mmap-able format
    (``.rtr``); a legacy ``.npz`` entry migrates transparently inside
    ``get_or_create``.

    Always warms through :func:`workload_trace` rather than a bare
    existence check: ``TraceCache.get_or_create`` validates the entry and
    regenerates corrupted/truncated files, so the returned path is
    guaranteed loadable.
    """
    seed = config.seed if seed is None else seed
    cache = TraceCache(config.trace_cache_dir)
    key = TraceCache.key_for(
        name, seed=seed, limit=config.ref_limit, scale=config.workload_scale
    )
    workload_trace(name, config, seed=seed)
    return cache.path_for(key)


def profile_trace_path(name: str, config: PaperConfig) -> Path:
    """On-disk path of the cached profiling trace (see :func:`profile_trace`)."""
    if config.profile_seed_offset == 0:
        return workload_trace_path(name, config)
    return workload_trace_path(name, config, seed=config.seed + config.profile_seed_offset)


def indexing_lineup(
    geometry: CacheGeometry, trace: Trace, config: PaperConfig, train_trace: Trace | None = None
) -> dict[str, IndexingScheme]:
    """The paper's Figure-4 scheme line-up.

    Trainable schemes are fitted on ``train_trace`` (the profiling run) when
    given, else on the evaluation trace itself.
    """
    fit_addrs = (train_trace if train_trace is not None else trace).addresses
    return {
        "XOR": XorIndexing(geometry),
        "Odd_Multiplier": OddMultiplierIndexing(geometry, config.odd_multiplier),
        "Prime_Modulo": PrimeModuloIndexing(geometry),
        "Givargis": GivargisIndexing(geometry).fit(fit_addrs),
        "Givargis_Xor": GivargisXorIndexing(geometry).fit(fit_addrs),
    }


def progassoc_lineup(config: PaperConfig) -> dict[str, Callable[[], object]]:
    """Factories for the paper's Figure-6 cache line-up (fresh per trace)."""
    g = config.geometry
    return {
        "Adaptive_Cache": lambda: AdaptiveGroupAssociativeCache(
            g, sht_fraction=config.sht_fraction, out_fraction=config.out_fraction
        ),
        "B_Cache": lambda: BalancedCache(
            g, mapping_factor=config.bcache_mapping_factor, bas=config.bcache_bas
        ),
        "Column_associative": lambda: ColumnAssociativeCache(
            g, protect_conventional=config.protect_conventional
        ),
    }


def baseline_result(trace: Trace, config: PaperConfig) -> SimulationResult:
    """The conventional direct-mapped baseline (vectorised)."""
    return simulate_indexing(ModuloIndexing(config.geometry), trace, config.geometry)


def sequential_baseline(trace: Trace, config: PaperConfig) -> SimulationResult:
    """Sequential baseline (used where lookup-cycle accounting is needed)."""
    return simulate(DirectMappedCache(config.geometry), trace)
