"""HPC ``spmv`` — sparse matrix-vector product over a random CSR matrix.

Unlike calculix's banded grid Laplacian, this matrix has *uniformly random*
column positions, so the ``x[col]`` gathers scatter across the whole source
vector — the irregular-gather pattern of graph/ML sparse kernels.  The
product is verified against ``scipy.sparse`` in the tests.
"""

from __future__ import annotations

import numpy as np

from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["SpmvWorkload", "random_csr"]


def random_csr(n: int, nnz_per_row: int, rng: np.random.Generator):
    """(row_ptr, col_idx, values) with sorted random columns per row."""
    cols = []
    rows = [0]
    for _ in range(n):
        picks = np.sort(rng.choice(n, size=min(nnz_per_row, n), replace=False))
        cols.extend(int(c) for c in picks)
        rows.append(len(cols))
    values = rng.normal(0, 1, size=len(cols))
    return np.array(rows, dtype=np.int64), np.array(cols, dtype=np.int64), values


@register_workload
class SpmvWorkload(Workload):
    name = "spmv"
    suite = "hpc"
    description = "CSR sparse matrix-vector product, random sparsity"
    access_pattern = "CSR streaming + random x[col] gathers"

    def kernel(self, m: Recorder, scale: float) -> None:
        n = self.scaled(2048, scale, minimum=32)
        nnz_per_row = self.scaled(16, scale, minimum=2)
        iters = self.scaled(3, scale, minimum=1)
        row_ptr, col_idx, values = random_csr(n, nnz_per_row, m.rng)
        rp_arr = m.space.heap_array(8, n + 1, "row_ptr")
        ci_arr = m.space.heap_array(4, col_idx.size, "col_idx")
        va_arr = m.space.heap_array(8, values.size, "values")
        x_arr = m.space.heap_array(8, n, "x")
        y_arr = m.space.heap_array(8, n, "y")

        x = m.rng.normal(0, 1, size=n)
        y = np.zeros(n)
        for _ in range(iters):
            for i in range(n):
                m.load_elem(rp_arr, i)
                m.load_elem(rp_arr, i + 1)
                acc = 0.0
                for k in range(int(row_ptr[i]), int(row_ptr[i + 1])):
                    m.load_elem(ci_arr, k)
                    m.load_elem(va_arr, k)
                    j = int(col_idx[k])
                    m.load_elem(x_arr, j)
                    acc += float(values[k]) * x[j]
                y[i] = acc
                m.store_elem(y_arr, i)
        m.builder.meta["checksum"] = float(y.sum())
        m.builder.meta["n"] = n
        m.builder.meta["nnz"] = int(col_idx.size)
