#!/usr/bin/env python
"""End-to-end smoke of the simulation job server, as CI runs it.

Boots a *real* ``repro-cache serve`` daemon as a subprocess (thread pool,
ephemeral port, caches in a temp directory) and exercises the serving
contract over TCP:

1.  ``health`` answers with the package version and protocol 1;
2.  ``fig1`` submitted twice — the first run simulates, the second is
    answered entirely from the result cache (zero cell simulations);
3.  a duplicate-label sweep coalesces the duplicates onto one flight;
4.  the same cell twice — the resubmission is a cache hit;
5.  an oversized burst against ``--max-pending`` is rejected with
    structured, retriable ``overloaded`` errors (and the retry succeeds);
6.  ``stats`` shows the counters that prove all of the above;
7.  ``shutdown`` stops the daemon cleanly (exit code 0).

Run:  PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import repro  # noqa: E402
from repro.service import ServiceClient, ServiceOverloaded  # noqa: E402

MAX_PENDING = 2
STARTUP_TIMEOUT = 120.0


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"serve-smoke FAILED: {message}")
    print(f"  ok: {message}")


def start_daemon(workdir: Path) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"), PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--jobs",
            "2",
            "--threads",
            "--max-pending",
            str(MAX_PENDING),
            "--refs",
            "6000",
            "--scale",
            "0.1",
        ],
        cwd=workdir,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )

    # Watchdog: never let a wedged daemon hang the smoke forever.
    watchdog = threading.Timer(STARTUP_TIMEOUT, proc.kill)
    watchdog.daemon = True
    watchdog.start()
    try:
        assert proc.stdout is not None
        line = proc.stdout.readline()
    finally:
        watchdog.cancel()
    match = re.search(r"listening on [\d.]+:(\d+)", line)
    if match is None:
        proc.kill()
        raise SystemExit(f"serve-smoke FAILED: unexpected startup line {line!r}")
    print(f"daemon up: {line.strip()}")
    return proc, int(match.group(1))


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro_serve_smoke_") as tmp:
        proc, port = start_daemon(Path(tmp))
        # Drain daemon stdout in the background so it can never block on a
        # full pipe while we talk to it over TCP.
        drain = threading.Thread(
            target=lambda: proc.stdout.read(), daemon=True  # type: ignore[union-attr]
        )
        drain.start()
        try:
            with ServiceClient("127.0.0.1", port, timeout=300.0) as client:
                # 1. health
                health = client.health()
                check(health["status"] == "ok", "health answers ok")
                check(
                    health["version"] == repro.__version__,
                    f"health reports version {repro.__version__}",
                )
                check(health["protocol"] == 1, "health reports protocol 1")

                # 2. fig1 twice: cold then all-cache-hit
                first = client.run_experiment("fig1")["experiment"]
                check(
                    first["engine_stats"]["cache_misses"] > 0,
                    "first fig1 actually simulated",
                )
                second = client.run_experiment("fig1")["experiment"]
                check(
                    second["engine_stats"]["cache_misses"] == 0,
                    "second fig1 is answered entirely from the result cache",
                )
                check(second["rows"] == first["rows"], "fig1 reruns bit-identical")

                # 3. duplicate-label sweep coalesces
                sweep = client.sweep("fft", ["XOR", "XOR"])
                flags = [row["coalesced"] for row in sweep["rows"]]
                check(flags == [False, True], "duplicate sweep labels coalesce")
                check(
                    sweep["rows"][0]["result"] == sweep["rows"][1]["result"],
                    "coalesced rows fan out one result",
                )

                # 4. identical cell resubmission hits the cache
                meta = client.submit_cell("indexing", "crc", "Prime_Modulo")["meta"]
                again = client.submit_cell("indexing", "crc", "Prime_Modulo")["meta"]
                check(again["cache_hit"] is True, "cell resubmission is a cache hit")
                check(again["key"] == meta["key"], "resubmission derives the same key")

                # 5. burst beyond --max-pending -> structured overloaded rows
                burst = client.sweep(
                    "sha", ["baseline", "XOR", "Odd_Multiplier", "Prime_Modulo"]
                )
                codes = [
                    row["error"]["code"]
                    for row in burst["rows"]
                    if not row["ok"]
                ]
                check(
                    codes and set(codes) == {"overloaded"},
                    f"oversized burst rejected with overloaded ({len(codes)} rows)",
                )
                check(
                    sum(1 for row in burst["rows"] if row["ok"]) >= 1,
                    "admitted burst rows still completed (fail-soft)",
                )
                # ... and the rejection is retriable once the queue drains.
                for row in burst["rows"]:
                    if not row["ok"]:
                        retried = client.sweep("sha", [row["label"]])
                        check(
                            retried["rows"][0]["ok"],
                            f"rejected label {row['label']} succeeds on retry",
                        )

                # 6. stats counters prove the serving disciplines fired
                stats = client.stats()
                cells = stats["cells"]
                check(cells["coalesced"] >= 1, "stats counted coalesced submissions")
                check(cells["cache_hits"] >= 1, "stats counted cache hits")
                check(cells["rejected"] >= 1, "stats counted overloaded rejections")
                check(cells["executed"] >= 1, "stats counted real simulations")
                check(stats["queue_depth"] == 0, "queue drained")
                check(
                    stats["latency"]["cell"]["count"] >= 2,
                    "latency histogram populated",
                )

                # 7. clean shutdown
                check(client.shutdown() is True, "shutdown acknowledged")

            code = proc.wait(timeout=60)
            check(code == 0, f"daemon exited cleanly (code {code})")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
    print("serve-smoke PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
