"""Figure 8 bench: indexed column-associative caches on SPEC-like workloads."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment
from repro.workloads.spec import SPEC_ORDER


def test_fig08_colassoc_indexing(benchmark, config):
    result = run_once(benchmark, lambda: run_experiment("fig8", config))
    print()
    print(result)
    values = [v for b in SPEC_ORDER for v in result.rows[b].values()]
    # Shape: modest swings in both directions (paper range roughly ±30%).
    assert any(v < 0 for v in values)
    assert all(abs(v) < 60 for v in values)
