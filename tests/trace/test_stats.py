"""Trace statistics tests (stride histogram, reuse distance)."""

from __future__ import annotations

import numpy as np

from repro.trace import Trace, reuse_distances, sequential_sweep, stride_histogram, summarize


class TestStrideHistogram:
    def test_pure_stride(self):
        t = sequential_sweep(100, stride=16)
        hist = stride_histogram(t, top_k=1)
        assert hist[0] == (16, 1.0)

    def test_short_trace(self):
        assert stride_histogram(Trace(np.array([1], dtype=np.uint64))) == ()

    def test_mixed_strides(self):
        addrs = [0, 8, 16, 24, 1000, 1008]
        hist = dict(stride_histogram(Trace(np.array(addrs, dtype=np.uint64)), top_k=2))
        assert hist[8] == 0.8


class TestSummarize:
    def test_fields(self):
        t = sequential_sweep(320, stride=32)
        s = summarize(t, offset_bits=5)
        assert s.length == 320
        assert s.unique_blocks == 320
        assert s.footprint_bytes == 320 * 32
        assert s.num_threads == 1
        assert "strides" in str(s)


class TestReuseDistance:
    def test_cold_is_minus_one(self):
        t = sequential_sweep(10, stride=32)
        assert (reuse_distances(t, 5) == -1).all()

    def test_immediate_reuse_zero(self):
        addrs = np.array([0, 0], dtype=np.uint64)
        d = reuse_distances(Trace(addrs), 5)
        assert d.tolist() == [-1, 0]

    def test_classic_stack_distances(self):
        # blocks: A B C B A -> distances: -1 -1 -1 1 2
        addrs = np.array([0, 32, 64, 32, 0], dtype=np.uint64)
        d = reuse_distances(Trace(addrs), 5)
        assert d.tolist() == [-1, -1, -1, 1, 2]

    def test_limit(self):
        t = sequential_sweep(100, stride=32)
        assert reuse_distances(t, 5, limit=10).size == 10

    def test_matches_naive_oracle(self, rng):
        blocks = rng.integers(0, 12, size=150)
        addrs = (blocks.astype(np.uint64)) << np.uint64(5)
        d = reuse_distances(Trace(addrs), 5)
        last_seen: dict[int, int] = {}
        for i, b in enumerate(blocks):
            b = int(b)
            if b in last_seen:
                expected = len(set(blocks[last_seen[b] + 1 : i].tolist()))
                assert d[i] == expected
            else:
                assert d[i] == -1
            last_seen[b] = i
