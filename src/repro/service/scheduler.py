"""Single-flight cell scheduler: the bridge between asyncio and the engine.

The scheduler owns one **persistent** worker pool (processes by default,
threads for in-process embedding/tests) for the daemon's whole lifetime —
the warm-pool amortization the per-request engine cannot provide — and
schedules individual engine cells onto it with three serving disciplines:

Single-flight coalescing
    Concurrent submissions of the *same* result-cache key share one
    computation: the first waiter creates a *flight* (an asyncio task that
    checks the content-addressed :class:`ResultCache`, simulates on a miss,
    and stores the result); every later identical submission joins the
    existing flight and fans the one result out.  Identical concurrent
    cells are therefore simulated exactly once (``stats.cells_executed``
    counts real simulations, so the property is observable).

Bounded admission / backpressure
    At most ``max_pending`` flights may exist at once.  A submission that
    would create flight ``max_pending + 1`` is rejected immediately with
    :class:`Overloaded` — an explicit, retriable signal instead of
    unbounded buffering.  Joining an existing flight is always admitted
    (it adds no work).

Deadlines and cooperative cancellation
    Each waiter may carry a deadline; the flight itself is *shielded*, so
    one impatient waiter never kills a computation others still want.
    When the **last** waiter leaves (deadline hit or client disconnect)
    the flight is cancelled: queued work is released before it ever
    reaches a worker.  Work already running on a process worker cannot be
    preempted — it runs to completion and lands in the result cache
    (useful: a retry becomes a cache hit); ``config.cell_timeout`` bounds
    it engine-side where that matters.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from ..experiments.config import PaperConfig
from ..experiments.engine.cells import SimCell, timed_execute_cell
from ..experiments.engine.store import ResultStore, make_store
from ..experiments.engine.parallel import CellPlan, plan_cells
from .stats import ServiceStats

__all__ = [
    "CellScheduler",
    "DeadlineExceeded",
    "FlightCancelled",
    "Overloaded",
    "SubmitOutcome",
]


class Overloaded(RuntimeError):
    """Admission queue full; the caller should back off and retry."""


class DeadlineExceeded(TimeoutError):
    """The waiter's deadline elapsed before its flight completed."""


class FlightCancelled(RuntimeError):
    """The shared flight was cancelled underneath a live waiter (shutdown)."""


@dataclass
class _Flight:
    """One in-flight computation, shared by all waiters of its key."""

    key: str
    task: asyncio.Task
    waiters: int = 0
    #: Set by the flight body right before it is handed to the pool.
    executing: bool = False


@dataclass
class SubmitOutcome:
    """One waiter's view of a settled flight."""

    result: Any
    key: str
    #: Answered from the on-disk result cache (no simulation this flight).
    cache_hit: bool
    #: This waiter joined a flight another waiter had already created.
    coalesced: bool
    #: Seconds this waiter spent waiting on the flight.
    seconds: float


@dataclass
class _FlightResult:
    result: Any
    cache_hit: bool
    seconds: float = 0.0
    extras: dict[str, Any] = field(default_factory=dict)


class CellScheduler:
    """Schedule engine cells onto a persistent pool with serving semantics."""

    def __init__(
        self,
        config: PaperConfig,
        *,
        workers: int = 1,
        max_pending: int = 64,
        use_processes: bool = True,
        stats: ServiceStats | None = None,
        executor: Executor | None = None,
    ):
        self.config = config
        self.max_pending = max_pending
        self.stats = stats if stats is not None else ServiceStats()
        if executor is not None:
            self.executor = executor
            self._owns_executor = False
        elif use_processes:
            self.executor = ProcessPoolExecutor(max_workers=max(1, workers))
            self._owns_executor = True
        else:
            self.executor = ThreadPoolExecutor(
                max_workers=max(1, workers), thread_name_prefix="repro-cell"
            )
            self._owns_executor = True
        self.result_cache: ResultStore | None = make_store(config)
        self._flights: dict[str, _Flight] = {}

    # -- introspection --------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Flights admitted but not yet settled (the backpressure quantity)."""
        return len(self._flights)

    @property
    def in_flight(self) -> int:
        """Flights whose cell has actually been handed to the worker pool."""
        return sum(1 for f in self._flights.values() if f.executing)

    # -- planning -------------------------------------------------------------------

    async def plan(self, cells: list[SimCell], config: PaperConfig) -> CellPlan:
        """Warm traces + derive result-cache keys, off the event loop.

        Delegates to the engine's own :func:`plan_cells` — the service never
        re-implements key derivation (``tests/service/test_key_parity.py``).
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, plan_cells, cells, config, 1)

    # -- submission -----------------------------------------------------------------

    async def submit(
        self,
        cell: SimCell,
        config: PaperConfig,
        plan: CellPlan,
        deadline: float | None = None,
    ) -> SubmitOutcome:
        """Await one cell's result with coalescing/backpressure/deadline.

        Raises :class:`Overloaded` at admission, :class:`DeadlineExceeded`
        when ``deadline`` elapses, and re-raises worker exceptions.
        """
        key = plan.keys[cell]
        self.stats.cells_submitted += 1
        flight = self._flights.get(key)
        if flight is not None and flight.task.cancelling():
            # A dying flight (its last waiter just left) is not joinable;
            # treat the key as absent and race a fresh flight in.
            flight = None
        coalesced = flight is not None
        if coalesced:
            self.stats.cells_coalesced += 1
        else:
            if len(self._flights) >= self.max_pending and key not in self._flights:
                self.stats.cells_rejected += 1
                raise Overloaded(
                    f"queue full ({self.max_pending} flights in progress); retry later"
                )
            flight = _Flight(
                key=key,
                task=asyncio.create_task(self._fly(cell, config, plan)),
            )
            self._flights[key] = flight

            def _cleanup(_task, k=key, fl=flight):
                if self._flights.get(k) is fl:
                    del self._flights[k]

            flight.task.add_done_callback(_cleanup)

        flight.waiters += 1
        t0 = time.perf_counter()
        try:
            # Shield: one waiter's deadline/disconnect must not cancel a
            # computation other waiters still share.
            if deadline is not None:
                settled = await asyncio.wait_for(
                    asyncio.shield(flight.task), timeout=deadline
                )
            else:
                settled = await asyncio.shield(flight.task)
        except asyncio.TimeoutError:
            self.stats.deadline_timeouts += 1
            raise DeadlineExceeded(
                f"deadline of {deadline:g}s elapsed waiting for cell "
                f"{cell.name} (key {key[:12]}…)"
            ) from None
        except asyncio.CancelledError:
            current = asyncio.current_task()
            if flight.task.cancelled() and (
                current is None or not current.cancelling()
            ):
                # The flight died (scheduler shutdown) but *this* waiter was
                # not cancelled: surface a structured error, not a silent
                # cancellation of the caller.
                raise FlightCancelled(
                    f"flight for cell {cell.name} was cancelled"
                ) from None
            raise
        finally:
            flight.waiters -= 1
            if flight.waiters <= 0 and not flight.task.done():
                # Last waiter left: release non-coalesced work.  Queued pool
                # items are cancelled before reaching a worker; running ones
                # finish and (usefully) populate the result cache.
                flight.task.cancel()
                self.stats.cells_cancelled += 1
        return SubmitOutcome(
            result=settled.result,
            key=key,
            cache_hit=settled.cache_hit,
            coalesced=coalesced,
            seconds=time.perf_counter() - t0,
        )

    async def _fly(
        self, cell: SimCell, config: PaperConfig, plan: CellPlan
    ) -> _FlightResult:
        """Flight body: cache probe, then one pool execution, then store."""
        loop = asyncio.get_running_loop()
        key = plan.keys[cell]
        if self.result_cache is not None:
            cached = await loop.run_in_executor(None, self.result_cache.load, key)
            if cached is not None:
                self.stats.cells_cache_hits += 1
                return _FlightResult(result=cached, cache_hit=True)
        flight = self._flights.get(key)
        if flight is not None:
            flight.executing = True
        t0 = time.perf_counter()
        try:
            result, seconds = await loop.run_in_executor(
                self.executor,
                timed_execute_cell,
                cell,
                config,
                plan.trace_paths.get(cell.workload),
                plan.profile_paths.get(cell.workload) if cell.needs_profile else None,
            )
        except asyncio.CancelledError:
            raise
        except Exception:
            self.stats.cells_failed += 1
            raise
        self.stats.cells_executed += 1
        if self.result_cache is not None:
            await loop.run_in_executor(
                None, self.result_cache.store, key, result
            )
        return _FlightResult(
            result=result,
            cache_hit=False,
            seconds=time.perf_counter() - t0,
            extras={"worker_seconds": seconds},
        )

    # -- lifecycle ------------------------------------------------------------------

    async def close(self) -> None:
        """Cancel outstanding flights and shut the pool down."""
        for flight in list(self._flights.values()):
            flight.task.cancel()
        pending = [f.task for f in self._flights.values()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        self._flights.clear()
        if self._owns_executor:
            self.executor.shutdown(wait=False, cancel_futures=True)
        if self.result_cache is not None:
            # Drain a write-behind store so every computed result is
            # cluster-visible before the daemon reports itself down.
            await asyncio.get_running_loop().run_in_executor(
                None, self.result_cache.close
            )
