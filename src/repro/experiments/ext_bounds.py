"""Extension experiment: the paper's techniques against classical bounds.

The paper's Section III opens with the fully-associative cache as the
theoretical anchor, and frames the adaptive cache as *selective victim
caching* (its reference [14], Jouppi).  This experiment makes those anchors
explicit: for each MiBench workload, the direct-mapped baseline and the
three programmable-associativity schemes are compared against

* 2/4/8-way set-associative LRU caches of equal capacity,
* a 2-way skewed-associative cache (Seznec — per-way index functions,
  unifying the paper's two technique families in one structure),
* a direct-mapped cache with an 8-line victim buffer (Jouppi),
* the fully-associative LRU cache, and
* the clairvoyant Belady/MIN bound.

All columns report % reduction in misses vs the direct-mapped baseline, so
the table reads as "how much of the achievable headroom does each technique
capture".

Note the k-way columns here hold *capacity* fixed (``with_ways``), so each
has a different set mapping and they can only share a trace decode (the
"decode" sweep-family axis) — the fixed-sets Mattson sweep that shares one
stack-distance pass lives in ``ext-assoc``.
"""

from __future__ import annotations

from ..core.uniformity import percent_reduction
from ..workloads.mibench import MIBENCH_ORDER
from .config import PaperConfig
from .engine import ExperimentEngine, make_cell
from .report import ExperimentResult
from .runner import register_experiment

__all__ = ["run_ext_bounds"]

EXT_BOUNDS_COLUMNS = [
    "2way",
    "4way",
    "8way",
    "Skewed2",
    "Victim8",
    "Adaptive",
    "B_Cache",
    "ColAssoc",
    "FullAssoc",
    "Belady",
]


@register_experiment("ext-bounds")
def run_ext_bounds(config: PaperConfig) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ext-bounds",
        title="% miss reduction vs DM: paper techniques against classical bounds",
        columns=EXT_BOUNDS_COLUMNS,
    )
    # Every comparison point is one engine cell: the k-way LRU and
    # fully-associative columns ride the vectorised stack-distance kernel,
    # the stateful structures the sequential engine — all memoized in the
    # on-disk result cache and fanned out over --jobs workers.
    cells = []
    for bench in MIBENCH_ORDER:
        cells.append(make_cell("baseline", bench, "baseline", config))
        cells.extend(
            make_cell("bounds", bench, label, config) for label in EXT_BOUNDS_COLUMNS
        )
    sims, stats = ExperimentEngine(config).run(cells)
    for bench in MIBENCH_ORDER:
        base = sims[(bench, "baseline")]
        row = {
            label: percent_reduction(sims[(bench, label)].misses, base.misses)
            for label in EXT_BOUNDS_COLUMNS
        }
        result.add_row(bench, row)
    result.add_average_row()
    result.note("Belady is the clairvoyant optimum; FullAssoc the realisable LRU bound")
    result.note("Adaptive ~ selective victim caching (paper Section III.B remark)")
    result.engine_stats = stats.as_dict()
    return result


from .warm import provides_traces, workload_spec  # noqa: E402


@provides_traces("ext-bounds")
def ext_bounds_traces(config: PaperConfig):
    return [workload_spec(b, config) for b in MIBENCH_ORDER]
