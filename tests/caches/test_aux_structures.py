"""Unit tests for the aux-structure subsystem (victim/miss-cache/stream).

Covers the structure protocol semantics in isolation, the
:class:`~repro.core.aux.AugmentedCache` wrapper on direct-mapped *and*
set-associative bases, the migrated :class:`~repro.core.caches.VictimCache`
(including bit-identity snapshot hashes against the legacy hand-rolled
model this class replaced), and the new indexing-scheme pass-through the
migration unlocked.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.core.address import PAPER_L1_GEOMETRY, CacheGeometry
from repro.core.aux import (
    AugmentedCache,
    MissCache,
    StreamBuffer,
    VictimBuffer,
    make_aux_structures,
)
from repro.core.caches import DirectMappedCache, SetAssociativeCache, VictimCache
from repro.core.caches.base import CacheStats
from repro.core.indexing import XorIndexing
from repro.core.simulator import simulate
from repro.trace import ping_pong_trace, zipf_trace

G = PAPER_L1_GEOMETRY
SMALL = CacheGeometry(capacity_bytes=2048, line_bytes=16, ways=1, address_bits=16)


def stats():
    return CacheStats(4)


class TestVictimBuffer:
    def test_probe_removes_entry(self):
        vb, s = VictimBuffer(2), stats()
        assert vb.on_eviction(10, s) is None
        assert vb.probe(10, s)
        assert vb.contents() == set()
        assert not vb.probe(10, s)

    def test_fifo_overflow(self):
        vb, s = VictimBuffer(2), stats()
        assert vb.on_eviction(1, s) is None
        assert vb.on_eviction(2, s) is None
        assert vb.on_eviction(3, s) == 1  # oldest out first
        assert vb.contents() == {2, 3}

    def test_rejects_zero_lines(self):
        with pytest.raises(ValueError, match="at least one line"):
            VictimBuffer(0)

    def test_label_and_flush(self):
        vb, s = VictimBuffer(4), stats()
        assert vb.label == "vc4"
        vb.on_eviction(7, s)
        vb.flush()
        assert vb.contents() == set()


class TestMissCache:
    def test_allocates_on_full_miss_only(self):
        mc, s = MissCache(2), stats()
        mc.on_eviction(5, s)  # pass-through, no allocation
        assert mc.contents() == set()
        mc.on_full_miss(5, s)
        assert mc.contents() == {5}

    def test_probe_keeps_entry_lru(self):
        mc, s = MissCache(2), stats()
        mc.on_full_miss(1, s)
        mc.on_full_miss(2, s)
        assert mc.probe(1, s)  # refreshes 1
        assert mc.contents() == {1, 2}
        mc.on_full_miss(3, s)  # evicts 2 (LRU), not 1
        assert mc.contents() == {1, 3}

    def test_eviction_passes_through(self):
        mc, s = MissCache(1), stats()
        assert mc.on_eviction(9, s) == 9

    def test_rejects_zero_lines(self):
        with pytest.raises(ValueError, match="at least one line"):
            MissCache(0)


class TestStreamBuffer:
    def test_head_only_hits(self):
        sb, s = StreamBuffer(4, streams=1), stats()
        sb.on_full_miss(10, s)  # queue = [11, 12, 13, 14]
        assert not sb.probe(12, s)  # not the head
        assert sb.probe(11, s)  # head hit advances + refills
        assert sb.contents() == {12, 13, 14, 15}
        assert s.extra["stream_prefetches"] == 4 + 1

    def test_lru_stream_replacement(self):
        sb, s = StreamBuffer(2, streams=2), stats()
        sb.on_full_miss(10, s)
        sb.on_full_miss(20, s)
        assert sb.probe(21, s)  # stream 20 becomes MRU
        sb.on_full_miss(30, s)  # replaces stream 10 (LRU)
        assert not sb.probe(11, s)
        assert sb.probe(22, s) and sb.probe(31, s)

    def test_allocate_modes(self):
        s = stats()
        miss_mode = StreamBuffer(2, streams=1, allocate="miss")
        miss_mode.on_main_miss(10, s)
        assert miss_mode.contents() == set()  # "miss" ignores serviced misses
        miss_mode.on_full_miss(10, s)
        assert miss_mode.contents() == {11, 12}
        always = StreamBuffer(2, streams=1, allocate="always")
        always.on_main_miss(10, s)
        assert always.contents() == {11, 12}

    def test_rejections(self):
        with pytest.raises(ValueError, match="depth"):
            StreamBuffer(0)
        with pytest.raises(ValueError, match="queue"):
            StreamBuffer(2, streams=0)
        with pytest.raises(ValueError, match="allocate"):
            StreamBuffer(2, allocate="sometimes")

    def test_label_uses_depth(self):
        assert StreamBuffer(8, streams=2).label == "sb8"


class TestMakeAuxStructures:
    def test_combo_order_is_probe_priority(self):
        structures = make_aux_structures("vc+sb", 4)
        assert [st.name for st in structures] == ["vc", "sb"]

    def test_rejects_unknown_combo(self):
        for bad in ("vc+vc", "zz", "vc+mc", ""):
            with pytest.raises(ValueError, match="unknown aux combo"):
                make_aux_structures(bad, 4)


class TestAugmentedCache:
    def test_requires_structures_and_unique_names(self):
        base = DirectMappedCache(SMALL)
        with pytest.raises(ValueError, match="at least one aux structure"):
            AugmentedCache(base, ())
        with pytest.raises(ValueError, match="duplicate"):
            AugmentedCache(base, (VictimBuffer(2), VictimBuffer(4)))

    def test_hit_class_attribution(self):
        cache = AugmentedCache(DirectMappedCache(SMALL), (VictimBuffer(2),))
        line, span = SMALL.line_bytes, SMALL.num_sets * SMALL.line_bytes
        assert not cache.access(0).hit  # cold miss
        assert cache.access(0).hit_class == "direct"
        cache.access(span)  # conflict: block 0 into the buffer
        r = cache.access(0)
        assert r.hit and r.hit_class == "victim" and r.cycles == 2
        assert cache.stats.extra == {"direct_hits": 1, "victim_hits": 1}

    def test_set_associative_base_composes_sequentially(self):
        """Any base CacheModel composes; non-DM bases just have no replay
        fast path."""
        g2 = CacheGeometry(2048, 16, ways=2, address_bits=16)
        cache = AugmentedCache(SetAssociativeCache(g2), (VictimBuffer(4),))
        trace = zipf_trace(8_000, seed=5)
        aug = simulate(cache, trace)
        plain = simulate(SetAssociativeCache(g2), trace)
        assert aug.misses <= plain.misses
        cache.check_invariants()

    def test_reset_and_flush_cover_both_layers(self):
        cache = AugmentedCache(DirectMappedCache(SMALL), (MissCache(2),))
        cache.access(0)
        cache.access(SMALL.num_sets * SMALL.line_bytes)
        assert cache.contents()
        cache.reset_stats()
        assert cache.stats.accesses == 0 and cache.base.stats.accesses == 0
        cache.flush()
        assert cache.contents() == set()


class TestVictimCacheMigration:
    #: sha256 snapshots of the legacy hand-rolled VictimCache's results
    #: (model, totals, cycles, extras, per-set arrays), captured at the
    #: commit before the aux-subsystem migration.  The composed class must
    #: reproduce them bit for bit.
    LEGACY_HASHES = {
        ("zipf", 2): "4ed4447e3a3c20b1",
        ("zipf", 8): "35f92113f8f170d9",
        ("ping_pong", 2): "19c4b59ecbc40a80",
        ("ping_pong", 8): "19c4b59ecbc40a80",
    }

    @staticmethod
    def result_hash(res) -> str:
        blob = repr(
            (
                res.model,
                res.accesses,
                res.hits,
                res.misses,
                res.lookup_cycles,
                sorted(res.extra.items()),
            )
        ).encode()
        blob += res.slot_accesses.tobytes()
        blob += res.slot_hits.tobytes()
        blob += res.slot_misses.tobytes()
        return hashlib.sha256(blob).hexdigest()[:16]

    @pytest.mark.parametrize("trace_name,lines", sorted(LEGACY_HASHES))
    def test_bit_identical_to_legacy_model(self, trace_name, lines):
        trace = (
            zipf_trace(60_000, seed=7)
            if trace_name == "zipf"
            else ping_pong_trace(10_000)
        )
        res = simulate(VictimCache(G, victim_lines=lines), trace)
        assert self.result_hash(res) == self.LEGACY_HASHES[(trace_name, lines)]

    def test_accepts_custom_indexing(self):
        """The migration's point: any registered scheme passes through."""
        trace = zipf_trace(30_000, seed=7)
        xor_vc = simulate(VictimCache(G, victim_lines=4, indexing=XorIndexing(G)), trace)
        mod_vc = simulate(VictimCache(G, victim_lines=4), trace)
        xor_dm = simulate(DirectMappedCache(G, indexing=XorIndexing(G)), trace)
        assert xor_vc.misses != mod_vc.misses  # the scheme reached the base
        assert xor_vc.misses <= xor_dm.misses  # and the buffer still absorbs

    def test_public_surface_preserved(self):
        cache = VictimCache(G, victim_lines=3)
        assert cache.name == "victim"
        assert cache.victim_lines == 3
        assert cache.fraction_victim_hits == 0.0
        simulate(cache, ping_pong_trace(2_000))
        assert 0.0 < cache.fraction_victim_hits <= 1.0
        with pytest.raises(ValueError, match="direct-mapped"):
            VictimCache(CacheGeometry(2048, 16, ways=2, address_bits=16))
