"""Set-decomposed fast engine for the programmable-associativity caches.

The programmable-associativity structures (paper Section III) are stateful,
so they cannot use the offline kernels in :mod:`repro.core.fastsim`.  They
do, however, share one structural property the sequential engine ignores:
**every access touches a bounded, statically known group of lines**, and no
information flows between groups.

* The column-associative cache couples exactly the pair ``{s, s ^ MSB}``:
  every probe, swap and relocation of an access with primary index ``s``
  stays inside its pair, so the trace decomposes into one independent
  substream per pair.
* A B-cache access touches exactly one NPI *cluster* of ``BAS`` lines (the
  programmable decoder never crosses clusters), so the trace decomposes per
  cluster.  Under LRU the policy clock is global, but each access performs
  exactly **one** policy operation (a touch on a hit, a fill on a miss), so
  the stamp written by the access at trace position ``i`` is always
  ``clock0 + i + 1`` — a pure function of the position, reconstructible
  inside each cluster's substream without simulating the others.
* The partner cache couples a hot line with its donor — but the pairing is
  re-drawn at every global rebalance.  Between two rebalances the grouping
  is static, so the engine decomposes each *window* independently and
  replays the cache's own ``_rebalance()`` at the boundaries (bit-identical
  tie-breaking, since it runs the very same ``np.argsort`` over the very
  same counter arrays).

Decomposition turns the hot loop into tiny closed-state loops over
pre-extracted plain-``int`` lists: no ``IndexingScheme.index_of`` call, no
``AccessResult`` allocation, no ``CacheStats`` method dispatch per access.
Index computation is vectorised once per trace via ``indices_of``; grouping
uses the packed-key sort from :mod:`repro.core.fastsim`.

**MRU-repeat compression (column-associative).**  A repeated access to the
pair's last-touched block is provably a first-probe hit that changes no
state, so it can be counted without entering the loop.  Proof.  Maintain
the invariant *I*: for every line ``s``, (a) ``rehash[s]`` implies the
block at ``s`` has primary index ``s ^ MSB``, and (b) ``not rehash[s]``
with ``s`` non-empty implies the block at ``s`` has primary index ``s``.
*I* holds initially (all lines empty) and every transition preserves it:
a first-probe hit changes nothing; a rehash-claim and a both-miss install
the new block at its own primary ``b1`` with ``rehash[b1]`` cleared
(preserving (b)) and relocate ``b1``'s previous occupant — which by (b)
had primary ``b1`` — to ``b2 = b1 ^ MSB`` with ``rehash[b2]`` set
(preserving (a)); a rehash hit swaps the block to its primary ``b1``
(clearing ``rehash[b1]``, case (b)) and marks the displaced block — by (b)
primary-``b1`` resident — as rehashed at ``b2`` (case (a)).  Now observe
that *after any access to block X*, X sits in its primary line ``b1(X)``
with ``rehash[b1(X)]`` cleared — every branch above ends in that state.
Hence an immediately following access to X **in the same pair substream**
(no other access can touch the pair's lines) finds X on the first probe:
a 1-cycle ``first_probe`` hit whose handler performs no state change.
Dropping it from the replay and adding its counters in bulk is therefore
exact.  The analogous compression for the B-cache keeps one loop iteration
per *run* of equal adjacent (cluster, block) accesses: each repeat is a hit
on the same line whose only state change is re-stamping that line's LRU
timestamp, so the run collapses to its head plus a final stamp of
``clock0 + last_position + 1``.  The partner cache gets **no** compression:
a repeated access may be serviced by the donor line (a 2-cycle ``partner``
hit that re-stamps the donor), and a rebalance between the two accesses can
change the outcome entirely.

Every function reproduces the sequential engine *exactly*: equal
:class:`~repro.core.simulator.SimulationResult` (including per-slot
histograms, ``extra`` counters and lookup cycles) **and** equal post-run
cache-object state (``_blocks``, rehash/PI/stamp arrays, policy clock, SHT/
OUT directories).  The differential suite in
``tests/core/test_fastassoc_differential.py`` asserts both.
"""

from __future__ import annotations

import numpy as np

from ..trace.event import Trace
from .caches.adaptive import AdaptiveGroupAssociativeCache
from .caches.base import EMPTY, CacheModel
from .caches.bcache import BalancedCache
from .caches.column_associative import ColumnAssociativeCache
from .caches.partner import PartnerIndexCache
from .replacement import LRUPolicy
from .simulator import SimulationResult, _result_from_stats, simulate

__all__ = [
    "simulate_column_associative",
    "simulate_bcache",
    "simulate_partner",
    "simulate_adaptive",
    "simulate_progassoc",
    "has_fast_path",
]


def _grouped_order(gids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Stable sort by group id; returns ``(order, sorted_gids)``.

    Uses the packed-key ``np.sort`` trick from :mod:`repro.core.fastsim`
    (key = gid * n + position is unique and decodes both outputs) with a
    stable-argsort fallback for pathological id ranges.
    """
    n = gids.size
    gids64 = np.ascontiguousarray(gids, dtype=np.int64)
    max_gid = int(gids64.max()) if n else 0
    if n and max_gid < (1 << 62) // max(n, 1):
        key = np.sort(gids64 * np.int64(n) + np.arange(n, dtype=np.int64))
        sorted_gids = key // n
        order = key - sorted_gids * n
    else:
        order = np.argsort(gids64, kind="stable")
        sorted_gids = gids64[order]
    return order, sorted_gids


def _group_bounds(sorted_gids: np.ndarray) -> np.ndarray:
    """Boundaries of equal-id runs: ``starts`` such that groups are
    ``[starts[k], starts[k+1])``; includes the terminal ``n``."""
    n = sorted_gids.size
    if n == 0:
        return np.zeros(1, dtype=np.int64)
    changes = np.flatnonzero(sorted_gids[1:] != sorted_gids[:-1]) + 1
    return np.concatenate(([0], changes, [n]))


def _primary_indices(cache: CacheModel, trace: Trace) -> np.ndarray:
    """Vectorised primary indices, identical to the sequential engine's
    per-access ``index_of(block << offset_bits)`` calls.

    The sequential engine truncates the address to its block before
    indexing, so the fast path feeds ``indices_of`` the offset-zeroed
    addresses — bit-identical even for a scheme that (incorrectly) read
    offset bits.
    """
    off = cache.geometry.offset_bits
    addrs0 = (trace.blocks(off) << np.uint64(off)).astype(np.uint64)
    indices = np.ascontiguousarray(cache.indexing.indices_of(addrs0), dtype=np.int64)
    if indices.size and (indices.min() < 0 or indices.max() >= cache.geometry.num_sets):
        raise ValueError("indexing scheme produced an out-of-range set index")
    return indices


def _finalize(
    cache: CacheModel,
    trace: Trace,
    *,
    accesses: int,
    hits: int,
    misses: int,
    cycles: int,
    slot_accesses: list[int],
    slot_hits: list[int],
    slot_misses: list[int],
    extra: dict[str, int],
) -> SimulationResult:
    """Install fresh stats on the cache (as ``simulate`` would have) and
    package the :class:`SimulationResult`."""
    cache.reset_stats()
    stats = cache.stats
    stats.accesses = accesses
    stats.hits = hits
    stats.misses = misses
    stats.extra = {k: v for k, v in extra.items() if v}
    stats.slot_accesses[:] = slot_accesses
    stats.slot_hits[:] = slot_hits
    stats.slot_misses[:] = slot_misses
    return _result_from_stats(cache.name, trace.name, stats, cycles)


# -- column-associative ----------------------------------------------------------------


def simulate_column_associative(
    cache: ColumnAssociativeCache, trace: Trace
) -> SimulationResult:
    """Exact set-pair-decomposed replay of a column-associative cache.

    Bit-identical to ``simulate(cache, trace)``: same result, same post-run
    ``_blocks``/``_rehash``.  The trace is partitioned by the pair id
    ``b1 & (MSB - 1)`` (both members of ``{s, s ^ MSB}`` share it), each
    pair substream is MRU-repeat-compressed (see the module docstring for
    the proof) and replayed through a closed two-line state machine.
    """
    n = len(trace)
    b1_all = _primary_indices(cache, trace)
    blocks_all = trace.blocks(cache.geometry.offset_bits).astype(np.int64)
    msb = cache._msb_mask
    protect = cache.protect_conventional

    num_sets = cache.geometry.num_sets
    acc_l = [0] * num_sets
    hit_l = [0] * num_sets
    mis_l = [0] * num_sets
    hits = misses = cycles = 0
    fp = dm = rh = rm = 0

    if n:
        pair = b1_all & np.int64(msb - 1)
        order, sorted_pair = _grouped_order(pair)
        sorted_b1 = b1_all[order]
        sorted_blk = blocks_all[order]

        # MRU-repeat compression: drop accesses repeating the previous
        # access of their pair — provably 1-cycle first-probe hits with no
        # state change — and account for them in bulk.
        repeat = np.zeros(n, dtype=bool)
        repeat[1:] = (sorted_pair[1:] == sorted_pair[:-1]) & (
            sorted_blk[1:] == sorted_blk[:-1]
        )
        n_rep = int(repeat.sum())
        if n_rep:
            rep_slots = sorted_b1[repeat]
            rep_counts = np.bincount(rep_slots, minlength=num_sets)
            for s in np.flatnonzero(rep_counts):
                c = int(rep_counts[s])
                acc_l[s] += c
                hit_l[s] += c
            fp += n_rep  # hits/cycles are derived from fp at the end

        keep = ~repeat
        kept_pair = sorted_pair[keep]
        kept_side = ((sorted_b1[keep] & msb) != 0).astype(np.int8).tolist()
        kept_blk = sorted_blk[keep].tolist()
        bounds = _group_bounds(kept_pair)
        blk_state = cache._blocks.tolist()
        rh_state = cache._rehash.tolist()

        # Closed two-line state machine per pair; branch structure mirrors
        # ColumnAssociativeCache._access_block exactly.  Lookup cycles and
        # global hit/miss totals are pure functions of the class counters
        # (first_probe/direct-miss = 1 cycle, rehash hit/miss = 2), so the
        # hot loop tracks only per-side probes/hits/misses as scalars.
        for k in range(bounds.size - 1):
            a, b = int(bounds[k]), int(bounds[k + 1])
            lo = int(kept_pair[a])
            hi = lo | msb
            b_lo = blk_state[lo]
            b_hi = blk_state[hi]
            r_lo = rh_state[lo]
            r_hi = rh_state[hi]
            a0 = h0 = m0 = a1 = h1 = m1 = 0
            for p, blk in zip(kept_side[a:b], kept_blk[a:b]):
                if p == 0:
                    a0 += 1
                    if b_lo == blk:
                        h0 += 1
                        fp += 1
                    elif r_lo:
                        # Out-of-place occupant: claim b1, skip the b2 probe.
                        b_lo = blk
                        r_lo = False
                        m0 += 1
                        dm += 1
                    else:
                        a1 += 1
                        if b_hi == blk:
                            # Rehash hit: swap so the block is primary next.
                            b_hi = b_lo
                            b_lo = blk
                            r_lo = False
                            r_hi = b_hi != EMPTY
                            h1 += 1
                            rh += 1
                        else:
                            # Miss in both: relocate b1's occupant if allowed.
                            if r_hi or b_hi == EMPTY or not protect:
                                b_hi = b_lo
                                r_hi = b_hi != EMPTY
                            b_lo = blk
                            r_lo = False
                            m0 += 1
                            rm += 1
                else:
                    a1 += 1
                    if b_hi == blk:
                        h1 += 1
                        fp += 1
                    elif r_hi:
                        b_hi = blk
                        r_hi = False
                        m1 += 1
                        dm += 1
                    else:
                        a0 += 1
                        if b_lo == blk:
                            b_lo = b_hi
                            b_hi = blk
                            r_hi = False
                            r_lo = b_lo != EMPTY
                            h0 += 1
                            rh += 1
                        else:
                            if r_lo or b_lo == EMPTY or not protect:
                                b_lo = b_hi
                                r_lo = b_lo != EMPTY
                            b_hi = blk
                            r_hi = False
                            m1 += 1
                            rm += 1
            blk_state[lo] = b_lo
            blk_state[hi] = b_hi
            rh_state[lo] = r_lo
            rh_state[hi] = r_hi
            acc_l[lo] += a0
            hit_l[lo] += h0
            mis_l[lo] += m0
            acc_l[hi] += a1
            hit_l[hi] += h1
            mis_l[hi] += m1

        hits = fp + rh
        misses = dm + rm
        cycles = fp + dm + 2 * (rh + rm)

        cache._blocks[:] = blk_state
        cache._rehash[:] = rh_state

    return _finalize(
        cache,
        trace,
        accesses=n,
        hits=hits,
        misses=misses,
        cycles=cycles,
        slot_accesses=acc_l,
        slot_hits=hit_l,
        slot_misses=mis_l,
        extra={
            "first_probe_hits": fp,
            "rehash_hits": rh,
            "direct_misses": dm,
            "rehash_misses": rm,
        },
    )


# -- B-cache ---------------------------------------------------------------------------


def simulate_bcache(cache: BalancedCache, trace: Trace) -> SimulationResult:
    """Exact cluster-decomposed replay of a B-cache (LRU policy only).

    Bit-identical to ``simulate(cache, trace)``: same result and same
    post-run ``_blocks``/``_pi_reg``/policy stamps and clock.  Requires an
    LRU policy — only LRU's one-op-per-access clock makes the global
    timestamps a pure function of trace position (see module docstring);
    ``RandomPolicy``'s shared RNG stream is order-dependent across
    clusters and is rejected.
    """
    if type(cache.policy) is not LRUPolicy:
        raise ValueError(
            "the decomposed B-cache path is exact only for LRU; got policy "
            f"{cache.policy.name!r} — drive BalancedCache through simulate() instead"
        )
    n = len(trace)
    blocks_all = trace.blocks(cache.geometry.offset_bits).astype(np.int64)
    bas = cache.bas
    npi_bits = cache.npi_bits
    clock0 = cache.policy._clock

    num_lines = cache.stats.num_slots
    acc_l = [0] * num_lines
    hit_l = [0] * num_lines
    mis_l = [0] * num_lines
    hits = misses = cycles = 0

    if n:
        clusters = (blocks_all & np.int64(cache._cluster_mask)).astype(np.int64)
        order, sorted_cluster = _grouped_order(clusters)
        sorted_blk = blocks_all[order]

        # Run compression: adjacent equal (cluster, block) accesses collapse
        # to their head plus `run_len - 1` guaranteed hits on the same line;
        # the line's final LRU stamp is the clock of the run's *last* member.
        repeat = np.zeros(n, dtype=bool)
        repeat[1:] = (sorted_cluster[1:] == sorted_cluster[:-1]) & (
            sorted_blk[1:] == sorted_blk[:-1]
        )
        kept_pos = np.flatnonzero(~repeat)
        run_len = np.diff(np.concatenate((kept_pos, [n])))
        # Stamp of the run's last member: policy clock after the access at
        # trace position order[last] (each access bumps the clock once).
        last_pos = kept_pos + run_len - 1
        stamps = (order[last_pos] + (clock0 + 1)).tolist()
        extra_hits = (run_len - 1).tolist()
        kept_cluster = sorted_cluster[kept_pos]
        kept_blk = sorted_blk[kept_pos].tolist()
        kept_pi = (
            (sorted_blk[kept_pos] >> np.int64(npi_bits)) & np.int64(cache._pi_mask)
        ).tolist()
        bounds = _group_bounds(kept_cluster)

        blocks_state = cache._blocks
        pi_state = cache._pi_reg
        stamp_state = cache.policy._stamp
        way_range = range(bas)

        for k in range(bounds.size - 1):
            a, b = int(bounds[k]), int(bounds[k + 1])
            cl = int(kept_cluster[a])
            base = cl * bas
            blks = blocks_state[cl].tolist()
            pis = pi_state[cl].tolist()
            sts = stamp_state[cl].tolist()
            for j in range(a, b):
                blk = kept_blk[j]
                pi = kept_pi[j]
                rep = extra_hits[j]
                # Programmable decode: at most one line matches the PI value.
                way = -1
                for w in way_range:
                    if pis[w] == pi:
                        way = w
                        break
                if way >= 0 and blks[way] == blk:
                    sts[way] = stamps[j]
                    line = base + way
                    acc_l[line] += 1 + rep
                    hit_l[line] += 1 + rep
                    hits += 1 + rep
                    continue
                # Miss: forced victim on a PI match, else first empty line,
                # else the cluster's LRU line (np.argmin == first minimum).
                if way < 0:
                    way = -1
                    for w in way_range:
                        if blks[w] == EMPTY:
                            way = w
                            break
                    if way < 0:
                        way = 0
                        best = sts[0]
                        for w in way_range:
                            if sts[w] < best:
                                best = sts[w]
                                way = w
                blks[way] = blk
                pis[way] = pi
                sts[way] = stamps[j]
                line = base + way
                acc_l[line] += 1 + rep
                mis_l[line] += 1
                hit_l[line] += rep
                misses += 1
                hits += rep
            blocks_state[cl] = blks
            pi_state[cl] = pis
            stamp_state[cl] = sts

        cache.policy._clock = clock0 + n
        cycles = n  # every B-cache lookup is a single-cycle decode

    return _finalize(
        cache,
        trace,
        accesses=n,
        hits=hits,
        misses=misses,
        cycles=cycles,
        slot_accesses=acc_l,
        slot_hits=hit_l,
        slot_misses=mis_l,
        extra={"direct_hits": hits},
    )


# -- partner cache ---------------------------------------------------------------------


def simulate_partner(cache: PartnerIndexCache, trace: Trace) -> SimulationResult:
    """Exact window-decomposed replay of the partner-index cache.

    Between two rebalances the hot/donor pairing is static, so each window
    decomposes into independent pair (hot + donor) and singleton substreams.
    The rebalances themselves are replayed by calling the cache's own
    ``_rebalance()`` on the very same counter arrays the sequential engine
    would see, reproducing its (non-stable) ``np.argsort`` tie-breaking
    bit for bit.  No MRU compression here — a repeat may be a 2-cycle
    partner hit, and an interleaved rebalance can change its outcome.
    """
    n = len(trace)
    slots_all = _primary_indices(cache, trace)
    blocks_all = trace.blocks(cache.geometry.offset_bits).astype(np.int64)
    num_sets = cache.geometry.num_sets
    period = cache.rebalance_period
    clock0 = cache._clock
    s0 = cache._since_rebalance

    acc_l = [0] * num_sets
    hit_l = [0] * num_sets
    mis_l = [0] * num_sets
    hits = misses = cycles = 0
    dh = ph = pm = 0

    # Fire positions: the access at `j` rebalances *before* it is served
    # whenever the running since-rebalance counter reaches the period.
    first_fire = max(0, period - 1 - s0)
    fires = list(range(first_fire, n, period)) if first_fire < n else []
    boundaries = [0] + fires + [n]

    blk_state = cache._blocks.tolist()
    st_state = cache._stamp.tolist()

    for w in range(len(boundaries) - 1):
        a, b = boundaries[w], boundaries[w + 1]
        if w > 0:
            # `a` is a fire position: the previous window's counters are
            # already in the cache arrays; replay the global rebalance.
            cache._rebalance()
        if a == b:
            continue
        slots_w = slots_all[a:b]
        # Group id: donors map to their hot line's group, all else to itself.
        linked_hot = np.flatnonzero(cache._linked)
        group_of = np.arange(num_sets, dtype=np.int64)
        if linked_hot.size:
            group_of[cache._partner[linked_hot]] = linked_hot
        gids = group_of[slots_w]
        order, sorted_gid = _grouped_order(gids)
        sorted_slot = slots_w[order].tolist()
        sorted_blk = blocks_all[a:b][order].tolist()
        # Policy clock of each access: one bump per access, program order.
        sorted_clock = (order + (clock0 + a + 1)).tolist()
        bounds = _group_bounds(sorted_gid)
        partner_of = cache._partner
        win_acc = cache._window_accesses
        win_mis = cache._window_misses

        for k in range(bounds.size - 1):
            ga, gb = int(bounds[k]), int(bounds[k + 1])
            h = int(sorted_gid[ga])
            d = int(partner_of[h]) if cache._linked[h] else -1
            hb = blk_state[h]
            sh = st_state[h]
            if d >= 0:
                db = blk_state[d]
                sd = st_state[d]
            else:
                db = sd = 0  # unused
            a_h = h_h = m_h = 0  # per-slot stat increments (probes/hits/misses)
            a_d = h_d = m_d = 0
            wa_h = wm_h = wa_d = wm_d = 0  # window counters
            for j in range(ga, gb):
                slot = sorted_slot[j]
                blk = sorted_blk[j]
                c = sorted_clock[j]
                if slot == h:
                    wa_h += 1
                    a_h += 1
                    if hb == blk:
                        sh = c
                        h_h += 1
                        dh += 1
                    elif d >= 0:
                        a_d += 1  # partner probe
                        if db == blk:
                            sd = c
                            h_d += 1
                            ph += 1
                        else:
                            # Pair miss: allocate into the LRU of the two.
                            if sh <= sd:
                                hb = blk
                                sh = c
                            else:
                                db = blk
                                sd = c
                            wm_h += 1
                            m_h += 1
                            pm += 1
                    else:
                        hb = blk
                        sh = c
                        wm_h += 1
                        m_h += 1
                else:
                    # Donor-primary access: the donor line is *not* linked,
                    # so it behaves as a plain direct-mapped line.
                    wa_d += 1
                    a_d += 1
                    if db == blk:
                        sd = c
                        h_d += 1
                        dh += 1
                    else:
                        db = blk
                        sd = c
                        wm_d += 1
                        m_d += 1
            blk_state[h] = hb
            st_state[h] = sh
            acc_l[h] += a_h
            hit_l[h] += h_h
            mis_l[h] += m_h
            win_acc[h] += wa_h
            win_mis[h] += wm_h
            if d >= 0:
                blk_state[d] = db
                st_state[d] = sd
                acc_l[d] += a_d
                hit_l[d] += h_d
                mis_l[d] += m_d
                win_acc[d] += wa_d
                win_mis[d] += wm_d
            hits += h_h + h_d
            misses += m_h + m_d

    # Direct hits and unlinked misses cost 1 cycle; partner hits and pair
    # misses probe both lines (2 cycles).
    cycles = dh + 2 * ph + pm + misses

    cache._blocks[:] = blk_state
    cache._stamp[:] = st_state
    cache._clock = clock0 + n
    cache._since_rebalance = (n - 1 - fires[-1]) if fires else s0 + n

    return _finalize(
        cache,
        trace,
        accesses=n,
        hits=hits,
        misses=misses,
        cycles=cycles,
        slot_accesses=acc_l,
        slot_hits=hit_l,
        slot_misses=mis_l,
        extra={"direct_hits": dh, "partner_hits": ph, "partner_misses": pm},
    )


# -- adaptive (AGAC): sequential semantics, hoisted hot loop --------------------------


def simulate_adaptive(cache: AdaptiveGroupAssociativeCache, trace: Trace) -> SimulationResult:
    """Hoisted sequential replay of the adaptive group-associative cache.

    The AGAC does **not** decompose: its SHT and OUT directories are global
    LRU structures, so every access can move state shared by all sets.  The
    replay therefore stays strictly sequential — this is a transliteration
    of ``AdaptiveGroupAssociativeCache._access_block`` — but hoists all the
    per-access overhead out of the loop: indices are vectorised up front,
    the line arrays become plain-``int`` lists, and the stats/``AccessResult``
    machinery is replaced by local counters.  Bit-identical to
    ``simulate(cache, trace)``, including the post-run SHT/OUT/cold-pool
    ordering.
    """
    n = len(trace)
    slots = _primary_indices(cache, trace).tolist()
    blocks = trace.blocks(cache.geometry.offset_bits).astype(np.int64).tolist()

    num_sets = cache.geometry.num_sets
    acc_l = [0] * num_sets
    hit_l = [0] * num_sets
    mis_l = [0] * num_sets
    hits = misses = cycles = 0
    dh = oh = 0

    blk_state = cache._blocks.tolist()
    disp = cache._disposable.tolist()
    oop = cache._out_of_position.tolist()
    sht = cache._sht
    out = cache._out
    cold_pool = cache._cold_pool
    sht_cap = cache.sht_capacity
    out_cap = cache.out_capacity
    out_cycles = cache.OUT_HIT_CYCLES
    sht_move = sht.move_to_end
    cold_move = cold_pool.move_to_end
    out_get = out.get
    out_pop = out.pop
    cold_pop = cold_pool.pop

    for i in range(n):
        slot = slots[i]
        blk = blocks[i]
        acc_l[slot] += 1  # record_probe(slot)

        if blk_state[slot] == blk:
            # _sht_touch(slot)
            if slot in sht:
                sht_move(slot)
            else:
                sht[slot] = None
                if len(sht) > sht_cap:
                    cold, _ = sht.popitem(last=False)
                    if not disp[cold]:  # _make_disposable(cold)
                        disp[cold] = True
                        cold_pool[cold] = None
                        cold_move(cold)
            disp[slot] = False
            cold_pop(slot, None)
            hits += 1
            hit_l[slot] += 1
            dh += 1
            cycles += 1
            continue

        alt = out_get(blk)
        if alt is not None and blk_state[alt] == blk:
            acc_l[alt] += 1  # record_probe(alt)
            del out[blk]
            displaced = blk_state[slot]
            blk_state[slot] = blk
            oop[slot] = False
            if displaced != EMPTY:
                blk_state[alt] = displaced
                oop[alt] = True
                disp[alt] = False
                cold_pop(alt, None)
                out[displaced] = alt
                out.move_to_end(displaced)
                while len(out) > out_cap:  # _trim_out()
                    t_blk, t_dest = out.popitem(last=False)
                    if blk_state[t_dest] == t_blk and not disp[t_dest]:
                        disp[t_dest] = True
                        cold_pool[t_dest] = None
                        cold_move(t_dest)
            else:
                blk_state[alt] = EMPTY
                oop[alt] = False
                if not disp[alt]:  # _make_disposable(alt)
                    disp[alt] = True
                    cold_pool[alt] = None
                    cold_move(alt)
            # _sht_touch(slot)
            if slot in sht:
                sht_move(slot)
            else:
                sht[slot] = None
                if len(sht) > sht_cap:
                    cold, _ = sht.popitem(last=False)
                    if not disp[cold]:
                        disp[cold] = True
                        cold_pool[cold] = None
                        cold_move(cold)
            disp[slot] = False
            cold_pop(slot, None)
            hits += 1
            hit_l[alt] += 1
            oh += 1
            cycles += out_cycles
            continue
        if alt is not None:
            del out[blk]  # stale directory entry

        # True miss.
        victim = blk_state[slot]
        if victim != EMPTY and not disp[slot] and not oop[slot]:
            # _select_relocation_target(slot)
            if len(out) >= out_cap and out:
                dest = next(iter(out.values()))  # LRU end
            else:
                dest = None
                for cand in cold_pool:
                    if cand != slot:
                        dest = cand
                        break
            if dest is not None:
                evicted_from_dest = blk_state[dest]
                if evicted_from_dest != EMPTY:
                    out_pop(evicted_from_dest, None)
                blk_state[dest] = victim
                disp[dest] = False
                cold_pop(dest, None)
                oop[dest] = True
                out[victim] = dest
                out.move_to_end(victim)
                while len(out) > out_cap:  # _trim_out()
                    t_blk, t_dest = out.popitem(last=False)
                    if blk_state[t_dest] == t_blk and not disp[t_dest]:
                        disp[t_dest] = True
                        cold_pool[t_dest] = None
                        cold_move(t_dest)
            else:
                out_pop(victim, None)
        elif victim != EMPTY:
            out_pop(victim, None)
        blk_state[slot] = blk
        oop[slot] = False
        # _sht_touch(slot)
        if slot in sht:
            sht_move(slot)
        else:
            sht[slot] = None
            if len(sht) > sht_cap:
                cold, _ = sht.popitem(last=False)
                if not disp[cold]:
                    disp[cold] = True
                    cold_pool[cold] = None
                    cold_move(cold)
        disp[slot] = False
        cold_pop(slot, None)
        misses += 1
        mis_l[slot] += 1
        cycles += 1

    cache._blocks[:] = blk_state
    cache._disposable[:] = disp
    cache._out_of_position[:] = oop

    return _finalize(
        cache,
        trace,
        accesses=n,
        hits=hits,
        misses=misses,
        cycles=cycles,
        slot_accesses=acc_l,
        slot_hits=hit_l,
        slot_misses=mis_l,
        extra={"direct_hits": dh, "out_hits": oh},
    )


# -- dispatch --------------------------------------------------------------------------


def has_fast_path(cache: CacheModel) -> bool:
    """True when ``simulate_progassoc(engine="auto")`` will vectorise.

    Exact-type checks, as in the fastsim dispatchers: a subclass may
    override any hook, which would silently break bit-identity.
    """
    if type(cache) is ColumnAssociativeCache or type(cache) is PartnerIndexCache:
        return True
    if type(cache) is BalancedCache:
        return type(cache.policy) is LRUPolicy
    if type(cache) is AdaptiveGroupAssociativeCache:
        return True
    return False


def simulate_progassoc(
    cache: CacheModel,
    trace: Trace,
    engine: str = "auto",
    warmup: int = 0,
    check_invariants_every: int = 0,
) -> SimulationResult:
    """Engine dispatcher for the programmable-associativity family.

    ``engine="auto"`` routes to the decomposed fast paths when they are
    provably bit-identical (exact model type; LRU policy for the B-cache;
    no warmup or periodic invariant checking requested) and falls back to
    the sequential reference otherwise; ``engine="sequential"`` forces the
    reference loop.  Results are identical either way — asserted by
    ``tests/core/test_fastassoc_differential.py`` — so callers may treat
    the flag as a pure performance knob.
    """
    if engine not in ("auto", "sequential"):
        raise ValueError(f"unknown engine {engine!r}; expected 'auto' or 'sequential'")
    if engine == "auto" and warmup == 0 and check_invariants_every == 0:
        if type(cache) is ColumnAssociativeCache:
            return simulate_column_associative(cache, trace)
        if type(cache) is BalancedCache and type(cache.policy) is LRUPolicy:
            return simulate_bcache(cache, trace)
        if type(cache) is PartnerIndexCache:
            return simulate_partner(cache, trace)
        if type(cache) is AdaptiveGroupAssociativeCache:
            return simulate_adaptive(cache, trace)
    return simulate(
        cache, trace, warmup=warmup, check_invariants_every=check_invariants_every
    )
