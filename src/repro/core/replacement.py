"""Replacement policies for associative cache structures.

Every associative structure in the package (set-associative caches, the
B-cache's clusters, the adaptive cache's OUT directory, the victim cache)
delegates victim selection to one of these policies.  A policy instance
manages *all* sets of one cache: calls carry an explicit set index, which
keeps per-set state in flat arrays and avoids one Python object per set.

The protocol is deliberately tiny:

* ``touch(set_index, way)``   -- the line was referenced (hit or fill).
* ``victim(set_index)``       -- choose the way to evict from a full set.
* ``invalidate(set_index, way)`` -- the line was removed.

Policies are deterministic given their seed; ``RandomPolicy`` takes an
explicit RNG seed so simulations reproduce bit-for-bit.

Tie-break determinism is part of each policy's contract (the fast replay
kernels in :mod:`repro.core.fastpolicy` replicate it exactly, and
``tests/core/test_replacement.py`` locks it down): every argmin/argmax
victim walk resolves ties toward the **lowest way index**, and
``RandomPolicy`` replays word-for-word across ``reset()``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "PLRUPolicy",
    "MRUPolicy",
    "LFUPolicy",
    "make_policy",
    "POLICIES",
]


class ReplacementPolicy(ABC):
    """Victim selection for a cache with ``num_sets`` sets of ``ways`` ways."""

    name: str = "abstract"

    def __init__(self, num_sets: int, ways: int):
        if num_sets <= 0 or ways <= 0:
            raise ValueError("num_sets and ways must be positive")
        self.num_sets = num_sets
        self.ways = ways

    @abstractmethod
    def touch(self, set_index: int, way: int) -> None:
        """Record a reference to ``way`` of ``set_index``."""

    @abstractmethod
    def victim(self, set_index: int) -> int:
        """Return the way to evict from a full ``set_index``."""

    def fill(self, set_index: int, way: int) -> None:
        """Record that ``way`` was (re)filled; defaults to a touch."""
        self.touch(set_index, way)

    def invalidate(self, set_index: int, way: int) -> None:  # noqa: B027
        """Forget state for a removed line (optional)."""

    def reset(self) -> None:
        """Restore the just-constructed state."""
        self.__init__(self.num_sets, self.ways)  # type: ignore[misc]


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used via a per-(set, way) timestamp matrix."""

    name = "lru"

    def __init__(self, num_sets: int, ways: int):
        super().__init__(num_sets, ways)
        # Timestamps start negative so untouched ways lose to any touched way.
        self._stamp = np.full((num_sets, ways), -1, dtype=np.int64)
        self._clock = 0

    def touch(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._stamp[set_index, way] = self._clock

    def victim(self, set_index: int) -> int:
        return int(np.argmin(self._stamp[set_index]))

    def invalidate(self, set_index: int, way: int) -> None:
        self._stamp[set_index, way] = -1


class FIFOPolicy(ReplacementPolicy):
    """First-in first-out: only fills advance a line's age.

    The clock is global across sets; within one set the victim is the way
    with the oldest (re)fill, ``np.argmin`` resolving the never-filled
    ``-1`` stamps toward the lowest way index.  Since cold fills take the
    lowest empty way first (see ``SetAssociativeCache``), a full set's
    victims cycle through the ways in fill order — the rotation the FIFO
    fast kernel exploits.
    """

    name = "fifo"

    def __init__(self, num_sets: int, ways: int):
        super().__init__(num_sets, ways)
        self._stamp = np.full((num_sets, ways), -1, dtype=np.int64)
        self._clock = 0

    def touch(self, set_index: int, way: int) -> None:
        # Hits do not reorder a FIFO queue.
        pass

    def fill(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._stamp[set_index, way] = self._clock

    def victim(self, set_index: int) -> int:
        return int(np.argmin(self._stamp[set_index]))

    def invalidate(self, set_index: int, way: int) -> None:
        self._stamp[set_index, way] = -1


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim with an explicit seed for reproducibility.

    One seeded PCG64 generator serves **all** sets, so the victim sequence
    is coupled to the global interleaving of evictions (the property that
    forces the fast kernel to replay in program order rather than per set).
    ``reset()`` restores the generator to its seed, making the draw stream
    word-for-word identical across resets; only ``victim()`` consumes
    randomness (touches and fills never do).
    """

    name = "random"

    def __init__(self, num_sets: int, ways: int, seed: int = 0):
        super().__init__(num_sets, ways)
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def touch(self, set_index: int, way: int) -> None:
        pass

    def victim(self, set_index: int) -> int:
        return int(self._rng.integers(self.ways))

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)


class PLRUPolicy(ReplacementPolicy):
    """Tree pseudo-LRU, the common hardware LRU approximation.

    Requires ``ways`` to be a power of two.  Each set keeps ``ways - 1``
    internal tree bits; a touch flips the bits along the path *away* from the
    touched way, and the victim walk follows the bits.  Fully deterministic:
    all-zero bits steer the first victim walk to way 0, and re-touching the
    most recently touched way is idempotent (it rewrites the same bits) —
    the property that lets the fast kernel collapse hit runs.
    """

    name = "plru"

    def __init__(self, num_sets: int, ways: int):
        super().__init__(num_sets, ways)
        if ways & (ways - 1):
            raise ValueError("PLRU requires a power-of-two way count")
        self._levels = max(ways.bit_length() - 1, 0)
        self._bits = np.zeros((num_sets, max(ways - 1, 1)), dtype=np.uint8)

    def touch(self, set_index: int, way: int) -> None:
        node = 0
        for level in range(self._levels):
            bit = (way >> (self._levels - 1 - level)) & 1
            # Point the node away from the touched child.
            self._bits[set_index, node] = 1 - bit
            node = 2 * node + 1 + bit

    def victim(self, set_index: int) -> int:
        node = 0
        way = 0
        for _ in range(self._levels):
            bit = int(self._bits[set_index, node])
            way = (way << 1) | bit
            node = 2 * node + 1 + bit
        return way


class MRUPolicy(ReplacementPolicy):
    """Evict the most-recently-used line (useful for streaming workloads).

    Never-touched ways (stamp ``-1``) are filled first, lowest index first;
    once every way is touched the victim is ``np.argmax`` over the stamps —
    unique because the clock is strictly increasing, so the victim is
    exactly the way touched by the set's previous access.
    """

    name = "mru"

    def __init__(self, num_sets: int, ways: int):
        super().__init__(num_sets, ways)
        self._stamp = np.full((num_sets, ways), -1, dtype=np.int64)
        self._clock = 0

    def touch(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._stamp[set_index, way] = self._clock

    def victim(self, set_index: int) -> int:
        stamps = self._stamp[set_index]
        untouched = np.flatnonzero(stamps < 0)
        if untouched.size:
            # Prefer filling never-used ways before evicting the MRU one.
            return int(untouched[0])
        return int(np.argmax(stamps))

    def invalidate(self, set_index: int, way: int) -> None:
        self._stamp[set_index, way] = -1


class LFUPolicy(ReplacementPolicy):
    """Evict the least-frequently-used line; ties break toward lower ways.

    ``touch`` increments a per-(set, way) count, ``fill`` resets it to 1
    (the new line's first use), and ``victim`` is ``np.argmin`` over the
    counts — the *first* way of minimal count, so equal-count ties always
    resolve toward the lowest way index.
    """

    name = "lfu"

    def __init__(self, num_sets: int, ways: int):
        super().__init__(num_sets, ways)
        self._count = np.zeros((num_sets, ways), dtype=np.int64)

    def touch(self, set_index: int, way: int) -> None:
        self._count[set_index, way] += 1

    def fill(self, set_index: int, way: int) -> None:
        self._count[set_index, way] = 1

    def victim(self, set_index: int) -> int:
        return int(np.argmin(self._count[set_index]))

    def invalidate(self, set_index: int, way: int) -> None:
        self._count[set_index, way] = 0


POLICIES: dict[str, type[ReplacementPolicy]] = {
    cls.name: cls
    for cls in (LRUPolicy, FIFOPolicy, RandomPolicy, PLRUPolicy, MRUPolicy, LFUPolicy)
}


def make_policy(name: str, num_sets: int, ways: int, seed: int = 0) -> ReplacementPolicy:
    """Instantiate a policy by registry name (see :data:`POLICIES`)."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise KeyError(f"unknown replacement policy {name!r}; known: {sorted(POLICIES)}") from None
    if cls is RandomPolicy:
        return RandomPolicy(num_sets, ways, seed=seed)
    return cls(num_sets, ways)
