"""Scheme-selector tests (the paper's Figure-5 mechanism)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.address import PAPER_L1_GEOMETRY
from repro.core.selector import SchemeSelector, profile_schemes
from repro.trace import Trace, ping_pong_trace, uniform_trace

G = PAPER_L1_GEOMETRY


class TestProfileSchemes:
    def test_scores_sorted_best_first(self, zipf):
        scores = profile_schemes(zipf, G, ["xor", "odd_multiplier", "prime_modulo"])
        misses = [s.misses for s in scores]
        assert misses == sorted(misses)

    def test_ping_pong_prefers_any_hash(self, ping_pong):
        scores = profile_schemes(ping_pong, G, ["xor", "modulo"])
        assert scores[0].scheme_name == "xor"
        assert scores[0].reduction_vs_baseline_pct > 90

    def test_accepts_scheme_specs(self, zipf):
        scores = profile_schemes(
            zipf, G, [("odd_multiplier", {"multiplier": 61}), "xor"]
        )
        assert {s.scheme_name for s in scores} == {"odd_multiplier", "xor"}

    def test_trainable_schemes_fitted(self, zipf):
        scores = profile_schemes(zipf, G, ["givargis"])
        assert scores[0].scheme_name == "givargis"


class TestSchemeSelector:
    def test_defaults_to_baseline_when_no_gain(self):
        """Conventional indexing stays the default (paper's Figure 5)."""
        t = uniform_trace(20_000, seed=5, name="uniform-app")
        sel = SchemeSelector(G, ["xor", "odd_multiplier"])
        choice = sel.choose(t)
        # On a uniform trace no scheme helps; selector keeps modulo.
        if choice.reduction_vs_baseline_pct <= 0:
            assert choice.scheme_name == "modulo"

    def test_picks_winner_for_pathological_app(self, ping_pong):
        sel = SchemeSelector(G, ["xor"])
        choice = sel.choose(ping_pong)
        assert choice.scheme_name == "xor"

    def test_choice_cached_per_application(self, ping_pong):
        sel = SchemeSelector(G, ["xor"])
        first = sel.choose(ping_pong)
        assert sel.choose(ping_pong) is first
        assert ping_pong.name in sel.choices
