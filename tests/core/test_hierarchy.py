"""Two-level hierarchy tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.address import PAPER_L1_GEOMETRY, PAPER_L2_GEOMETRY, CacheGeometry
from repro.core.amat import TimingModel
from repro.core.caches import ColumnAssociativeCache, DirectMappedCache
from repro.core.hierarchy import CacheHierarchy
from repro.trace import Trace, sequential_sweep, zipf_trace

G = PAPER_L1_GEOMETRY


class TestHierarchy:
    def test_l2_filters_l1_misses(self, zipf):
        h = CacheHierarchy(DirectMappedCache(G))
        res = h.run(zipf)
        assert res.l2.accesses == res.l1.misses
        assert res.l2.misses <= res.l1.misses

    def test_amat_between_l1_and_memory(self, zipf):
        t = TimingModel(miss_penalty=18, l2_miss_penalty=120)
        h = CacheHierarchy(DirectMappedCache(G), timing=t)
        res = h.run(zipf)
        assert 1.0 <= res.amat <= 1.0 + 120.0

    def test_effective_miss_penalty_bounds(self, zipf):
        t = TimingModel(miss_penalty=18, l2_miss_penalty=120)
        h = CacheHierarchy(DirectMappedCache(G), timing=t)
        res = h.run(zipf)
        assert 18.0 <= res.effective_miss_penalty <= 120.0

    def test_l2_inclusive_of_reuse(self):
        """A block that bounces out of L1 should still hit in L2."""
        # Two blocks conflict in L1 (32 KiB apart) but live in different
        # L2 sets (8-way 1024-set L2: 32 KiB apart => different sets? same
        # index? 256KiB/32B/8 = 1024 sets; blocks 1024 apart alias in L2 too.
        # Use 3 conflicting blocks: L1 thrashes, L2 8-way holds all.
        blocks = np.array([0, 32 * 1024, 64 * 1024] * 50, dtype=np.uint64)
        t = Trace(blocks, name="alias3")
        h = CacheHierarchy(DirectMappedCache(G))
        res = h.run(t)
        assert res.l1.miss_rate > 0.9
        assert res.l2.misses == 3  # cold only

    def test_better_l1_reduces_total_cycles(self, ping_pong):
        base = CacheHierarchy(DirectMappedCache(G)).run(ping_pong)
        col = CacheHierarchy(ColumnAssociativeCache(G)).run(ping_pong)
        assert col.total_cycles < base.total_cycles

    def test_custom_l2_geometry(self, zipf):
        small_l2 = CacheGeometry(64 * 1024, 32, 4)
        h = CacheHierarchy(DirectMappedCache(G), l2_geometry=small_l2)
        res = h.run(zipf)
        big = CacheHierarchy(DirectMappedCache(G)).run(zipf)
        assert res.l2.misses >= big.l2.misses

    def test_empty_trace(self):
        h = CacheHierarchy(DirectMappedCache(G))
        res = h.run(Trace(np.array([], dtype=np.uint64)))
        assert res.amat == 0.0
