"""AMAT formula tests (paper Eqs. 8 and 9), cross-validated against the
simulator's exact cycle accounting."""

from __future__ import annotations

import pytest

from repro.core.address import PAPER_L1_GEOMETRY
from repro.core.amat import (
    TimingModel,
    amat_adaptive,
    amat_column_associative,
    amat_direct_mapped,
    amat_from_cycles,
)
from repro.core.caches import (
    AdaptiveGroupAssociativeCache,
    ColumnAssociativeCache,
    DirectMappedCache,
)
from repro.core.simulator import simulate
from repro.trace import zipf_trace

G = PAPER_L1_GEOMETRY
T = TimingModel(miss_penalty=18.0)


class TestDirectMappedForm:
    def test_no_misses(self):
        assert amat_direct_mapped(0.0, T) == 1.0

    def test_linear_in_miss_rate(self):
        assert amat_direct_mapped(0.5, T) == 1.0 + 0.5 * 18.0

    def test_matches_cycle_accounting(self):
        t = zipf_trace(10_000, seed=2)
        res = simulate(DirectMappedCache(G), t)
        assert res.amat(T) == pytest.approx(amat_direct_mapped(res.miss_rate, T))


class TestAdaptiveForm:
    def test_all_direct_hits(self):
        assert amat_adaptive(1.0, 0.0, T) == 1.0

    def test_eq8_structure(self):
        # f=0.8, mr=0.1: 0.8*1 + 0.2*3 + 0.1*18 = 3.2
        assert amat_adaptive(0.8, 0.1, T) == pytest.approx(3.2)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            amat_adaptive(1.5, 0.1, T)

    def test_consistent_with_cycle_accounting(self):
        """Eq. (8) charges misses 3 cycles of lookup (they search the OUT);
        the simulator charges them 1.  The two agree when re-based."""
        t = zipf_trace(10_000, seed=3)
        cache = AdaptiveGroupAssociativeCache(G)
        res = simulate(cache, t)
        f_direct = res.fraction("direct_hits", "accesses")
        eq8 = amat_adaptive(f_direct, res.miss_rate, T)
        # Rebase: simulator cycles + (3-1) extra cycles per miss and per
        # OUT hit... OUT hits already cost 3 in the simulator, so only the
        # misses differ.
        rebased = (res.lookup_cycles + 2 * res.misses) / res.accesses + res.miss_rate * T.miss_penalty
        assert eq8 == pytest.approx(rebased)


class TestColumnAssociativeForm:
    def test_no_rehash_traffic_reduces_to_direct(self):
        assert amat_column_associative(0.0, 0.0, 0.1, T) == pytest.approx(
            amat_direct_mapped(0.1, T)
        )

    def test_eq9_structure(self):
        # f_rh=0.2, f_rm=0.5, mr=0.1:
        # hits: 0.2*2 + 0.8*1 = 1.2
        # misses: 0.5*0.1*19 + 0.5*0.1*18 = 1.85
        assert amat_column_associative(0.2, 0.5, 0.1, T) == pytest.approx(1.2 + 1.85)

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            amat_column_associative(-0.1, 0.0, 0.0, T)
        with pytest.raises(ValueError):
            amat_column_associative(0.0, 1.1, 0.0, T)

    def test_consistent_with_cycle_accounting(self):
        """Eq. (9) and the simulator's exact cycles must agree once the
        same events are priced identically."""
        t = zipf_trace(10_000, seed=4)
        cache = ColumnAssociativeCache(G)
        res = simulate(cache, t)
        f_rh = res.extra.get("rehash_hits", 0) / res.accesses
        f_rm = res.extra.get("rehash_misses", 0) / res.misses if res.misses else 0.0
        eq9 = amat_column_associative(f_rh, f_rm, res.miss_rate, T)
        # Simulator: rehash hits cost 2, rehash misses cost 2 (1 + extra
        # probe), direct misses cost 1 — identical pricing to Eq. 9 where
        # the miss's extra probe appears as (penalty + 1).
        exact = amat_from_cycles(res.lookup_cycles, res.misses, res.accesses, T)
        assert eq9 == pytest.approx(exact)


class TestTimingModel:
    def test_scaled(self):
        t2 = T.scaled(100.0)
        assert t2.miss_penalty == 100.0
        assert t2.hit_cycles == T.hit_cycles

    def test_amat_from_cycles_empty(self):
        assert amat_from_cycles(0, 0, 0, T) == 0.0
