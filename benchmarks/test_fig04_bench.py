"""Figure 4 bench: indexing schemes vs conventional, 11 MiBench workloads."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import render_bars, run_experiment
from repro.workloads.mibench import MIBENCH_ORDER


def test_fig04_indexing_missrate(benchmark, config):
    result = run_once(benchmark, lambda: run_experiment("fig4", config))
    print()
    print(result)
    print(render_bars(result, "Odd_Multiplier"))
    # Shape: mixed signs, no universal winner.
    signs = {col: [result.rows[b][col] for b in MIBENCH_ORDER] for col in result.columns}
    assert any(any(v < 0 for v in vals) for vals in signs.values())
    assert any(any(v > 10 for v in vals) for vals in signs.values())
    # fft benefits massively from every hashing scheme (aliasing arrays).
    assert min(result.rows["fft"].values()) > 30.0
