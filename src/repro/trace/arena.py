"""Process-wide trace arena: a bounded LRU of opened (mapped) traces.

Every consumer that re-opens cached trace files by path — the in-process
experiment engine, process-pool workers, the job server, cluster worker
nodes — goes through one shared arena per process instead of a private
per-module memo.  The arena

* opens each path **once** per process (raw entries map zero-copy via
  :func:`~repro.trace.io.load_raw`; legacy npz entries decode via
  :func:`~repro.trace.io.load_npz` — :func:`~repro.trace.io.load_trace`
  sniffs the format);
* accounts bytes (``sum(arr.nbytes)`` of the three field arrays) and
  evicts least-recently-used entries once a configurable budget
  (``PaperConfig.trace_arena_bytes``) is exceeded, so a long-lived
  ``repro serve`` / cluster process touching an unbounded stream of
  distinct traces holds a bounded working set — the unbounded
  ``_TRACE_MEMO`` dict this replaces grew forever;
* invalidates on file change (mtime/size), so a cache entry healed or
  rewritten underneath a running process is re-opened, never served
  stale.

For mapped raw entries the accounted bytes are *virtual*: the OS pages
content in lazily and forked pool workers share the parent's page-cache
pages, so N workers touching one trace cost roughly one copy of physical
RAM.  The budget therefore bounds mapped address space and worst-case
residency, not guaranteed RSS.

Thread-safe; the eviction-side lock is held across loads for simplicity
(per-process consumers are overwhelmingly single-threaded, and the
serving layer executes cells in separate processes).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from .event import Trace
from .io import load_trace

__all__ = ["ArenaStats", "TraceArena", "get_arena", "reset_arena"]

#: Default byte budget (1 GiB): ~24 full-length paper traces, far above
#: any single figure grid's working set, well below service-host RAM.
DEFAULT_ARENA_BYTES = 1 << 30


@dataclass(frozen=True)
class ArenaStats:
    """Point-in-time counters (cheap; safe to render in stats verbs)."""

    entries: int
    bytes: int
    max_bytes: int
    hits: int
    misses: int
    evictions: int
    invalidations: int


@dataclass
class _Entry:
    trace: Trace
    nbytes: int
    mtime_ns: int
    size: int


def _trace_nbytes(trace: Trace) -> int:
    return int(
        trace.addresses.nbytes + trace.is_write.nbytes + trace.thread.nbytes
    )


class TraceArena:
    """Bounded LRU of traces keyed by on-disk path."""

    def __init__(self, max_bytes: int = DEFAULT_ARENA_BYTES):
        self.max_bytes = int(max_bytes)
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self._hits = self._misses = self._evictions = self._invalidations = 0

    # -- the one hot entry point ---------------------------------------------------

    def get(self, path: str | Path, name: str | None = None) -> Trace:
        """The trace stored at ``path``, opened at most once per process.

        ``name`` renames the returned view (a cheap array-sharing
        wrapper) without touching the cached entry, mirroring the
        engine's convention of labelling one shared trace per consuming
        workload.
        """
        key = str(path)
        st = os.stat(key)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and (entry.mtime_ns, entry.size) == (
                st.st_mtime_ns,
                st.st_size,
            ):
                self._entries.move_to_end(key)
                self._hits += 1
                trace = entry.trace
            else:
                if entry is not None:
                    # File changed underneath us (healed / rewritten):
                    # drop the stale mapping and re-open.
                    self._bytes -= entry.nbytes
                    del self._entries[key]
                    self._invalidations += 1
                self._misses += 1
                trace = load_trace(key)
                entry = _Entry(trace, _trace_nbytes(trace), st.st_mtime_ns, st.st_size)
                self._entries[key] = entry
                self._bytes += entry.nbytes
                self._evict_over_budget()
            return trace if name is None else trace.with_name(name)

    # -- sizing / maintenance ------------------------------------------------------

    def _evict_over_budget(self) -> None:
        # Never evict the most-recent entry: the caller is about to use
        # it, so a single over-budget trace is admitted transiently (the
        # retained set shrinks back under budget on the next insert).
        while self._bytes > self.max_bytes and len(self._entries) > 1:
            _key, victim = self._entries.popitem(last=False)
            self._bytes -= victim.nbytes
            self._evictions += 1

    def configure(self, max_bytes: int) -> None:
        """Adopt a byte budget, evicting immediately if it shrank."""
        max_bytes = int(max_bytes)
        with self._lock:
            if max_bytes != self.max_bytes:
                self.max_bytes = max_bytes
                self._evict_over_budget()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> ArenaStats:
        with self._lock:
            return ArenaStats(
                entries=len(self._entries),
                bytes=self._bytes,
                max_bytes=self.max_bytes,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
            )


#: One arena per process (pool workers fork/spawn their own); guarded so
#: concurrent first touches from server threads build exactly one.
_ARENA: TraceArena | None = None
_ARENA_LOCK = threading.Lock()


def get_arena() -> TraceArena:
    global _ARENA
    if _ARENA is None:
        with _ARENA_LOCK:
            if _ARENA is None:
                _ARENA = TraceArena()
    return _ARENA


def reset_arena() -> None:
    """Drop the process-wide arena (tests use this for isolation)."""
    global _ARENA
    with _ARENA_LOCK:
        _ARENA = None
