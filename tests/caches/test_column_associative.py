"""Column-associative cache tests (paper Section III.A)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.address import PAPER_L1_GEOMETRY, CacheGeometry
from repro.core.caches import ColumnAssociativeCache, DirectMappedCache
from repro.core.indexing import PrimeModuloIndexing, XorIndexing
from repro.core.simulator import simulate
from repro.trace import Trace, ping_pong_trace, zipf_trace

G = PAPER_L1_GEOMETRY


class TestAlternateLocation:
    def test_flips_msb(self):
        c = ColumnAssociativeCache(G)
        assert c.alternate_of(0) == 512
        assert c.alternate_of(512) == 0
        assert c.alternate_of(5) == 517

    def test_involution(self):
        c = ColumnAssociativeCache(G)
        for s in range(0, 1024, 37):
            assert c.alternate_of(c.alternate_of(s)) == s

    def test_two_sets_minimum(self):
        with pytest.raises(ValueError):
            ColumnAssociativeCache(CacheGeometry(32, 32, 1, address_bits=16))

    def test_rejects_multiway(self):
        with pytest.raises(ValueError):
            ColumnAssociativeCache(CacheGeometry(1024, 32, 2))


class TestBehaviour:
    def test_fixes_ping_pong(self, ping_pong):
        """Two blocks aliasing one set: direct-mapped thrashes, the
        column-associative pair holds both."""
        dm = simulate(DirectMappedCache(G), ping_pong)
        col = simulate(ColumnAssociativeCache(G), ping_pong)
        assert dm.miss_rate == 1.0
        assert col.miss_rate < 0.01

    def test_rehash_hits_counted(self, ping_pong):
        c = ColumnAssociativeCache(G)
        simulate(c, ping_pong)
        assert c.stats.extra.get("rehash_hits", 0) > 0
        assert 0.0 < c.fraction_rehash_hits <= 1.0

    def test_swap_promotes_to_primary(self):
        c = ColumnAssociativeCache(G)
        a, b = 0, 32 * 1024  # same primary set 0
        c.access(a)  # a at set 0
        c.access(b)  # b to set 0, a relocated to 512
        r = c.access(a)  # rehash hit at 512, swap back
        assert r.hit and r.cycles == 2 and r.hit_class == "rehash"
        r2 = c.access(a)  # now a primary hit again
        assert r2.hit and r2.cycles == 1

    def test_rehash_marked_line_replaced_without_probe(self):
        c = ColumnAssociativeCache(G)
        a, b = 0, 32 * 1024
        c.access(a)
        c.access(b)  # a rehashed to set 512
        # A block whose primary set is 512 misses there; rehash bit is set,
        # so it claims the line directly (1 cycle, 'direct' miss class).
        d = 512 * 32
        r = c.access(d)
        assert not r.hit and r.cycles == 1
        assert c.stats.extra.get("direct_misses", 0) == 1

    def test_three_way_aliasing_still_bounded(self):
        """Three blocks on one set can't all live in two lines, but the
        cache must not lose blocks entirely."""
        c = ColumnAssociativeCache(G)
        blocks = [0, 32 * 1024, 64 * 1024]
        for _ in range(50):
            for a in blocks:
                c.access(a)
        c.check_invariants()

    def test_no_duplicate_blocks_property(self):
        rng = np.random.default_rng(3)
        c = ColumnAssociativeCache(G)
        # Adversarial: few sets, many tags.
        addrs = (rng.integers(0, 8, size=3000) * 32 * 1024
                 + rng.integers(0, 4, size=3000) * 32)
        for a in addrs:
            c.access(int(a))
        c.check_invariants()

    def test_never_worse_than_direct_mapped_guarded(self):
        """With the relocation guard, column-associative should not lose
        to direct-mapped on representative traces."""
        for seed in range(4):
            t = zipf_trace(15_000, seed=seed)
            dm = simulate(DirectMappedCache(G), t)
            col = simulate(ColumnAssociativeCache(G), t)
            assert col.misses <= dm.misses * 1.02, f"seed {seed}"

    def test_unguarded_variant_runs(self, zipf):
        c = ColumnAssociativeCache(G, protect_conventional=False)
        res = simulate(c, zipf)
        assert res.accesses == len(zipf)
        c.check_invariants()


class TestWithAlternateIndexing:
    def test_xor_primary_index(self, zipf):
        c = ColumnAssociativeCache(G, indexing=XorIndexing(G))
        res = simulate(c, zipf)
        assert res.accesses == len(zipf)
        c.check_invariants()

    def test_prime_modulo_alternate_reaches_fragmented_sets(self):
        """With prime-modulo primary indexing, rehashing can place blocks in
        the 3 fragmented sets (1021..1023) — reclaiming dead capacity."""
        c = ColumnAssociativeCache(G, indexing=PrimeModuloIndexing(G))
        rng = np.random.default_rng(0)
        for a in rng.integers(0, 1 << 26, size=30_000, dtype=np.uint64):
            c.access(int(a))
        touched = np.flatnonzero(c.stats.slot_accesses)
        assert touched.max() >= 1021


class TestAmatFractions:
    def test_fractions_zero_when_idle(self):
        c = ColumnAssociativeCache(G)
        assert c.fraction_rehash_hits == 0.0
        assert c.fraction_rehash_misses == 0.0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_fraction_bounds(self, seed):
        rng = np.random.default_rng(seed)
        c = ColumnAssociativeCache(G)
        for a in rng.integers(0, 1 << 22, size=500, dtype=np.uint64):
            c.access(int(a))
        assert 0.0 <= c.fraction_rehash_hits <= 1.0
        assert 0.0 <= c.fraction_rehash_misses <= 1.0
