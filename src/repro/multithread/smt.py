"""Shared-L1 SMT cache with per-thread indexing (paper Section IV.E, Fig. 13).

An SMT core's threads share the L1; the paper's proposal gives each thread
its *own* indexing function (their experiments use odd-multiplier with a
different multiplier per thread) so the threads' hot lines land on
different sets instead of fighting over the same ones.

:class:`SMTSharedCache` is a direct-mapped shared array whose set index is
computed by the accessing thread's scheme from a
:class:`~repro.core.selector.ThreadSchemeTable`.  Lines store full block
identities, so correctness holds even though different threads hash
differently (threads have disjoint address spaces in our workloads, as
separate processes under SMT do).

:func:`simulate_smt` drives it from an interleaved multi-thread trace and
reports global and per-thread miss statistics.  Because the structure is a
direct-mapped array whose index stream is a pure per-thread function of the
addresses, the whole simulation vectorises: ``engine="auto"`` (the default)
computes the miss vector with
:func:`~repro.core.fastsim.direct_mapped_miss_flags` over per-thread index
arrays and recovers the cross-eviction count from the previous-access-to-
the-same-slot relation — bit-identical to the sequential loop (locked down
by the differential tests), including the final cache contents and stats.
``engine="sequential"`` forces the reference loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.address import CacheGeometry
from ..core.caches.base import EMPTY, CacheStats
from ..core.fastsim import direct_mapped_miss_flags, per_set_counts
from ..core.selector import ThreadSchemeTable
from ..trace.event import Trace

__all__ = ["SMTSharedCache", "SMTResult", "simulate_smt"]


class SMTSharedCache:
    """Direct-mapped shared L1 with a per-thread index function."""

    name = "smt_shared"

    def __init__(self, geometry: CacheGeometry, schemes: ThreadSchemeTable):
        if geometry.ways != 1:
            raise ValueError("the SMT shared cache models a direct-mapped L1")
        for s in schemes.schemes:
            if s.geometry.num_sets != geometry.num_sets:
                raise ValueError("per-thread scheme geometry mismatch")
        self.geometry = geometry
        self.schemes = schemes
        self.stats = CacheStats(geometry.num_sets)
        self._blocks = np.full(geometry.num_sets, EMPTY, dtype=np.int64)
        self._owner = np.full(geometry.num_sets, -1, dtype=np.int16)
        self._offset_bits = geometry.offset_bits
        self.thread_hits = np.zeros(len(schemes), dtype=np.int64)
        self.thread_misses = np.zeros(len(schemes), dtype=np.int64)
        self.cross_evictions = 0  # thread A evicting thread B's line

    def access(self, address: int, thread: int, is_write: bool = False) -> bool:
        """Returns True on hit."""
        block = address >> self._offset_bits
        slot = self.schemes.scheme_for(thread).index_of(address)
        self.stats.accesses += 1
        self.stats.record_probe(slot)
        if self._blocks[slot] == block:
            self.stats.record_hit(slot, "direct")
            self.thread_hits[thread] += 1
            self._owner[slot] = thread
            return True
        if self._blocks[slot] != EMPTY and self._owner[slot] != thread:
            self.cross_evictions += 1
        self._blocks[slot] = block
        self._owner[slot] = thread
        self.stats.record_miss(slot)
        self.thread_misses[thread] += 1
        return False

    def flush(self) -> None:
        self._blocks.fill(EMPTY)
        self._owner.fill(-1)


@dataclass
class SMTResult:
    """Outcome of a shared-cache SMT simulation."""

    accesses: int
    misses: int
    thread_hits: np.ndarray
    thread_misses: np.ndarray
    cross_evictions: int
    slot_accesses: np.ndarray
    slot_misses: np.ndarray
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def thread_miss_rate(self, thread: int) -> float:
        total = self.thread_hits[thread] + self.thread_misses[thread]
        return float(self.thread_misses[thread] / total) if total else 0.0


def _previous_same_slot(slots: np.ndarray) -> np.ndarray:
    """``prev[i]`` = latest ``t < i`` touching the same slot, else ``-1``."""
    n = slots.size
    prev = np.full(n, -1, dtype=np.int64)
    if n < 2:
        return prev
    order = np.argsort(slots, kind="stable")
    same = slots[order[1:]] == slots[order[:-1]]
    prev[order[1:][same]] = order[:-1][same]
    return prev


def _last_occupancy(slots: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per touched slot, the position of its final access (``(slots, pos)``)."""
    n = slots.size
    uniq, first_in_reversed = np.unique(slots[::-1], return_index=True)
    return uniq, n - 1 - first_in_reversed


def _simulate_smt_fast(cache: SMTSharedCache, trace: Trace) -> SMTResult:
    """Vectorised path: requires a fresh (never-accessed) shared cache."""
    addresses = trace.addresses
    threads = np.asarray(trace.thread)
    n = addresses.size
    n_threads = len(cache.schemes)
    blocks = trace.blocks(cache._offset_bits).astype(np.int64)
    slots = np.zeros(n, dtype=np.int64)
    for t, scheme in enumerate(cache.schemes.schemes):
        mask = threads == t
        if np.any(mask):
            slots[mask] = np.asarray(scheme.indices_of(addresses[mask]), dtype=np.int64)
    # The shared array stores full block identities, so hit/miss is exactly
    # the direct-mapped recurrence over the interleaved (slot, block) stream.
    miss = direct_mapped_miss_flags(blocks, slots)
    # Owner of a slot before access i is the thread of the previous access to
    # that slot (every access, hit or miss, takes ownership); a cross
    # eviction is a miss on a previously-touched slot owned by another thread.
    prev = _previous_same_slot(slots)
    warm = prev >= 0
    cross = miss & warm & (threads[np.maximum(prev, 0)] != threads)
    hit = ~miss
    thread_hits = np.bincount(threads[hit], minlength=n_threads).astype(np.int64)
    thread_misses = np.bincount(threads[miss], minlength=n_threads).astype(np.int64)
    slot_accesses, slot_misses = per_set_counts(slots, miss, cache.geometry.num_sets)
    slot_hits = slot_accesses - slot_misses
    hits = int(hit.sum())
    misses = n - hits
    cross_evictions = int(np.count_nonzero(cross))
    # Leave the cache object exactly as the sequential loop would: counters,
    # per-slot stats, ownership and final contents all match.
    stats = cache.stats
    stats.accesses += n
    stats.hits += hits
    stats.misses += misses
    if hits:
        stats.bump("direct_hits", hits)
    stats.slot_accesses += slot_accesses
    stats.slot_hits += slot_hits
    stats.slot_misses += slot_misses
    cache.thread_hits += thread_hits
    cache.thread_misses += thread_misses
    cache.cross_evictions += cross_evictions
    touched, last_pos = _last_occupancy(slots)
    cache._blocks[touched] = blocks[last_pos]
    cache._owner[touched] = threads[last_pos]
    return SMTResult(
        accesses=n,
        misses=misses,
        thread_hits=thread_hits,
        thread_misses=thread_misses,
        cross_evictions=cross_evictions,
        slot_accesses=slot_accesses,
        slot_misses=slot_misses,
    )


def simulate_smt(cache: SMTSharedCache, trace: Trace, engine: str = "auto") -> SMTResult:
    """Drive a shared cache from an interleaved multi-thread trace.

    ``engine="auto"`` (default) uses the vectorised fast path whenever it is
    exact — a plain :class:`SMTSharedCache` (not a subclass) starting from a
    fresh state; ``engine="sequential"`` forces the one-access-at-a-time
    reference loop (used by the differential tests).
    """
    if engine not in ("auto", "sequential"):
        raise ValueError("engine must be 'auto' or 'sequential'")
    addresses = trace.addresses
    threads = trace.thread
    is_write = trace.is_write
    n_threads = len(cache.schemes)
    if len(trace) and int(threads.max()) >= n_threads:
        raise ValueError("trace references a thread with no indexing scheme")
    if (
        engine == "auto"
        and type(cache) is SMTSharedCache
        and cache.stats.accesses == 0
    ):
        return _simulate_smt_fast(cache, trace)
    for i in range(addresses.size):
        cache.access(int(addresses[i]), int(threads[i]), bool(is_write[i]))
    return SMTResult(
        accesses=cache.stats.accesses,
        misses=cache.stats.misses,
        thread_hits=cache.thread_hits.copy(),
        thread_misses=cache.thread_misses.copy(),
        cross_evictions=cache.cross_evictions,
        slot_accesses=cache.stats.slot_accesses.copy(),
        slot_misses=cache.stats.slot_misses.copy(),
    )
