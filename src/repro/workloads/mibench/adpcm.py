"""MiBench ``adpcm`` — IMA ADPCM speech encoder.

Streams 16-bit PCM samples through the real IMA ADPCM compression loop:
sequential input reads, half-rate output writes, a hot 89-entry step-size
table, a 16-entry index-adjust table and a coder state struct that is
loaded/stored every sample.  Streaming with a tiny pinned working set —
uniform accesses, minimal conflict misses (the paper's Figure 4 shows 0%
change for most indexing schemes on adpcm).
"""

from __future__ import annotations

import math

from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["AdpcmWorkload", "STEP_SIZES", "INDEX_ADJUST"]

STEP_SIZES = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
    50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230,
    253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658, 724, 796, 876, 963,
    1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272, 2499, 2749, 3024, 3327,
    3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493, 10442,
    11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794,
    32767,
]

INDEX_ADJUST = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8]


def encode_samples(samples: list[int]) -> list[int]:
    """Reference IMA ADPCM encoder (the kernel's arithmetic, trace-free)."""
    valprev, index = 0, 0
    out = []
    for s in samples:
        step = STEP_SIZES[index]
        diff = s - valprev
        sign = 8 if diff < 0 else 0
        if sign:
            diff = -diff
        delta = 0
        vpdiff = step >> 3
        if diff >= step:
            delta = 4
            diff -= step
            vpdiff += step
        if diff >= step >> 1:
            delta |= 2
            diff -= step >> 1
            vpdiff += step >> 1
        if diff >= step >> 2:
            delta |= 1
            vpdiff += step >> 2
        valprev = valprev - vpdiff if sign else valprev + vpdiff
        valprev = max(-32768, min(32767, valprev))
        delta |= sign
        index = max(0, min(len(STEP_SIZES) - 1, index + INDEX_ADJUST[delta]))
        out.append(delta)
    return out


def decode_samples(deltas: list[int]) -> list[int]:
    """Reference IMA ADPCM decoder, for the round-trip correctness test."""
    valprev, index = 0, 0
    out = []
    for delta in deltas:
        step = STEP_SIZES[index]
        sign = delta & 8
        mag = delta & 7
        vpdiff = step >> 3
        if mag & 4:
            vpdiff += step
        if mag & 2:
            vpdiff += step >> 1
        if mag & 1:
            vpdiff += step >> 2
        valprev = valprev - vpdiff if sign else valprev + vpdiff
        valprev = max(-32768, min(32767, valprev))
        index = max(0, min(len(STEP_SIZES) - 1, index + INDEX_ADJUST[delta]))
        out.append(valprev)
    return out


@register_workload
class AdpcmWorkload(Workload):
    name = "adpcm"
    suite = "mibench"
    description = "IMA ADPCM encoding of a synthesised speech-like signal"
    access_pattern = "input/output streaming + hot step tables + coder state"

    def kernel(self, m: Recorder, scale: float) -> None:
        n = self.scaled(40_000, scale, minimum=64)
        pcm = m.space.heap_array(2, n, "pcm_in")
        out = m.space.heap_array(1, (n + 1) // 2, "adpcm_out")
        step_tbl = m.space.static_array(2, len(STEP_SIZES), "step_sizes")
        adj_tbl = m.space.static_array(1, 16, "index_adjust")
        state = m.space.static_array(4, 2, "coder_state")  # valprev, index

        # Speech-ish signal: a few modulated tones plus noise.
        samples = [
            int(8000 * math.sin(0.03 * i) * math.sin(0.0011 * i) + m.rng.normal(0, 300))
            for i in range(n)
        ]
        valprev, index = 0, 0
        nibble_hi = 0
        for i in range(n):
            m.load_elem(pcm, i)
            m.load_elem(state, 0)
            m.load_elem(state, 1)
            m.load_elem(step_tbl, index)
            step = STEP_SIZES[index]
            diff = samples[i] - valprev
            sign = 8 if diff < 0 else 0
            if sign:
                diff = -diff
            # Real IMA quantisation (3-bit magnitude via successive halves).
            delta = 0
            vpdiff = step >> 3
            if diff >= step:
                delta = 4
                diff -= step
                vpdiff += step
            if diff >= step >> 1:
                delta |= 2
                diff -= step >> 1
                vpdiff += step >> 1
            if diff >= step >> 2:
                delta |= 1
                vpdiff += step >> 2
            valprev = valprev - vpdiff if sign else valprev + vpdiff
            valprev = max(-32768, min(32767, valprev))
            delta |= sign
            m.load_elem(adj_tbl, delta)
            index = max(0, min(len(STEP_SIZES) - 1, index + INDEX_ADJUST[delta]))
            m.store_elem(state, 0)
            m.store_elem(state, 1)
            if i & 1:
                m.store_elem(out, i // 2)  # pack two nibbles per byte
            else:
                nibble_hi = delta
        m.builder.meta["final_index"] = index
        m.builder.meta["final_valprev"] = valprev
        del nibble_hi
