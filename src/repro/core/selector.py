"""Per-application indexing-scheme selection (the paper's Figure 5).

The paper proposes profiling each application off-line against the candidate
indexing schemes and programming the chosen one into the cache before the
application runs (conventional indexing as the default).  This module is
that selector: :func:`profile_schemes` scores every candidate on a profiling
trace with the vectorised simulator, :class:`SchemeSelector` caches the
per-application choice, and :class:`ThreadSchemeTable` carries per-thread
assignments into the SMT experiments (Figure 13 uses it with odd-multiplier
variants).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trace.event import Trace
from .address import CacheGeometry
from .indexing.base import IndexingScheme, TrainableIndexingScheme, make_scheme
from .simulator import simulate_indexing

__all__ = ["SchemeScore", "profile_schemes", "SchemeSelector", "ThreadSchemeTable"]


@dataclass(frozen=True)
class SchemeScore:
    scheme_name: str
    misses: int
    miss_rate: float
    reduction_vs_baseline_pct: float


def _instantiate(spec, geometry: CacheGeometry) -> IndexingScheme:
    """Accept a scheme instance, a name, or a (name, kwargs) pair."""
    if isinstance(spec, IndexingScheme):
        return spec
    if isinstance(spec, str):
        return make_scheme(spec, geometry)
    name, kwargs = spec
    return make_scheme(name, geometry, **kwargs)


def profile_schemes(
    trace: Trace,
    geometry: CacheGeometry,
    candidates: list,
    baseline: str = "modulo",
    train_on: Trace | None = None,
) -> list[SchemeScore]:
    """Score candidate schemes on ``trace``; best (fewest misses) first.

    Trainable schemes are fitted on ``train_on`` (default: the evaluation
    trace itself, matching the paper's whole-run profiling).
    """
    base_scheme = make_scheme(baseline, geometry)
    base = simulate_indexing(base_scheme, trace, geometry)
    scores: list[SchemeScore] = []
    fit_trace = train_on if train_on is not None else trace
    for spec in candidates:
        scheme = _instantiate(spec, geometry)
        if isinstance(scheme, TrainableIndexingScheme) and not scheme.fitted:
            scheme.fit(fit_trace.addresses)
        res = simulate_indexing(scheme, trace, geometry)
        reduction = (
            100.0 * (base.misses - res.misses) / base.misses if base.misses else 0.0
        )
        scores.append(SchemeScore(scheme.name, res.misses, res.miss_rate, reduction))
    scores.sort(key=lambda s: s.misses)
    return scores


class SchemeSelector:
    """Profile-once, reuse-forever scheme choice per application name."""

    def __init__(self, geometry: CacheGeometry, candidates: list, baseline: str = "modulo"):
        self.geometry = geometry
        self.candidates = candidates
        self.baseline = baseline
        self._choices: dict[str, SchemeScore] = {}

    def choose(self, trace: Trace) -> SchemeScore:
        """Best scheme for this application; only accepts improvements over
        the baseline (otherwise the conventional default is kept, as the
        paper prescribes)."""
        key = trace.name
        if key not in self._choices:
            scores = profile_schemes(trace, self.geometry, self.candidates, self.baseline)
            best = scores[0]
            if best.reduction_vs_baseline_pct <= 0.0:
                base = simulate_indexing(make_scheme(self.baseline, self.geometry), trace)
                best = SchemeScore(self.baseline, base.misses, base.miss_rate, 0.0)
            self._choices[key] = best
        return self._choices[key]

    @property
    def choices(self) -> dict[str, SchemeScore]:
        return dict(self._choices)


class ThreadSchemeTable:
    """Per-thread indexing assignment for the SMT cache (paper Figure 13)."""

    def __init__(self, schemes: list[IndexingScheme]):
        if not schemes:
            raise ValueError("need at least one per-thread scheme")
        num_sets = {s.geometry.num_sets for s in schemes}
        if len(num_sets) != 1:
            raise ValueError("all per-thread schemes must target the same cache")
        self.schemes = list(schemes)

    def scheme_for(self, thread: int) -> IndexingScheme:
        if not 0 <= thread < len(self.schemes):
            raise IndexError(f"no scheme registered for thread {thread}")
        return self.schemes[thread]

    def __len__(self) -> int:
        return len(self.schemes)
