"""The cluster router daemon (``repro route``).

A :class:`ClusterRouter` is a :class:`~repro.service.server.ReproServer`
that owns no simulation workers of its own: it speaks the identical wire
protocol to clients, but serves ``cell``/``sweep``/``experiment`` requests
by consistent-hashing their result-cache keys onto a ring of ordinary
worker daemons and forwarding the frames.  Because keys are
content-addressed, any worker computes the identical ``.npz`` payload —
placement is purely a locality/caching decision, which is what makes the
whole design safe:

routing
    ``cell`` requests forward to the key's ring owner.  ``sweep`` requests
    are *split* into one sub-sweep per owning worker and the streamed
    progress events are re-merged/renumbered.  ``experiment`` requests run
    the unmodified figure runner in a router thread with a
    :class:`ClusterExecutor` injected through the engine's pool hook, so
    each of the figure's cells is routed cluster-wide (``batch_sweeps`` is
    forced off: every unit of routed work must be one wire-expressible
    cell; figures that bypass the engine, fig13/fig14, simply execute
    router-locally).

router-level single-flight
    Identical concurrent keys coalesce into one in-flight forward *before*
    ever dialing a worker — the cluster-wide analogue of the scheduler's
    flight map.

health + failover
    A background prober health-checks every worker; a failed probe ejects
    the node (alive-set filtering over the static ring — placement of
    every other key is untouched, and a later successful probe rejoins
    it).  A transport failure mid-request (:class:`WorkerDown`) re-routes
    the key to the next node in ring-preference order.  *Structured*
    worker errors (``overloaded``/``timeout``/``bad_request``/
    ``internal``) mean the worker is alive and answered: they propagate to
    the client unchanged.  When no live worker remains the client gets a
    retriable ``unavailable`` error.

exactly-once
    Failover can at worst re-*submit* a key, never duplicate a *result*:
    the store is key-addressed with atomic whole-file replaces, so each
    key resolves to exactly one entry, and a re-routed worker that finds
    the key already published answers from the store without simulating
    (the smoke test audits precisely this).

With ``result_store="shared"`` the router probes the shared store itself
and answers warm keys without dialing any worker at all.
"""

from __future__ import annotations

import asyncio
import contextlib
from concurrent.futures import Executor, ThreadPoolExecutor
from dataclasses import replace
from typing import Any

from .. import __version__
from ..experiments.config import PaperConfig
from ..experiments.engine.cells import SimCell, timed_execute_cell
from ..service import protocol
from ..service.protocol import (
    CONFIG_OVERRIDES,
    E_INTERNAL,
    E_UNAVAILABLE,
    PROTOCOL_VERSION,
    ProtocolError,
)
from ..service.server import ReproServer, Send
from .link import WorkerDown, WorkerLink
from .ring import DEFAULT_VNODES, HashRing

__all__ = ["ClusterExecutor", "ClusterRouter", "Unavailable", "parse_worker"]


class Unavailable(ProtocolError):
    """No live worker can serve the key; retriable (code ``unavailable``)."""

    def __init__(self, message: str):
        super().__init__(message, code=E_UNAVAILABLE)


def parse_worker(addr: str) -> tuple[str, str, int]:
    """``host:port`` → (node name, host, port); the address is the name."""
    host, sep, port = addr.rpartition(":")
    if not sep or not host:
        raise ValueError(f"worker address {addr!r} is not host:port")
    try:
        return addr, host, int(port)
    except ValueError as exc:
        raise ValueError(f"worker address {addr!r} has a bad port") from exc


class ClusterExecutor(Executor):
    """Bridge from the engine's pool hook onto the router's ring.

    ``run_cells`` submits ``timed_execute_cell(cell, config, ...)`` units
    to whatever executor :func:`engine_pool_scope` injected; this executor
    turns each such unit into a routed ``cell`` request on the router's
    event loop and hands back a :class:`concurrent.futures.Future` (via
    ``run_coroutine_threadsafe``), so the engine's own timeout/cancel
    bookkeeping keeps working unchanged.  Anything that is not a plain
    cell unit falls back to a local thread — correctness first.
    """

    def __init__(self, router: "ClusterRouter", loop: asyncio.AbstractEventLoop):
        self._router = router
        self._loop = loop
        self._fallback = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-route-local"
        )

    def submit(self, fn, /, *args, **kwargs):
        if fn is timed_execute_cell and not kwargs and len(args) >= 2:
            cell, config = args[0], args[1]
            return asyncio.run_coroutine_threadsafe(
                self._router.route_engine_cell(cell, config), self._loop
            )
        return self._fallback.submit(fn, *args, **kwargs)

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        self._fallback.shutdown(wait=wait, cancel_futures=cancel_futures)


class ClusterRouter(ReproServer):
    """Consistent-hash routing front-end over worker daemons."""

    def __init__(
        self,
        workers: list[str],
        config: PaperConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_pending: int = 256,
        default_deadline: float | None = None,
        probe_interval: float = 1.0,
        probe_timeout: float = 2.0,
        vnodes: int = DEFAULT_VNODES,
    ):
        # workers=1/use_processes=False: the parent's scheduler pool is a
        # single idle thread — the router never simulates on it; it reuses
        # the scheduler only for plan() (key derivation) and the store.
        super().__init__(
            config,
            host,
            port,
            workers=1,
            max_pending=max_pending,
            use_processes=False,
            default_deadline=default_deadline,
        )
        parsed = [parse_worker(addr) for addr in workers]
        self.ring = HashRing([node for node, _h, _p in parsed], vnodes=vnodes)
        self.links: dict[str, WorkerLink] = {
            node: WorkerLink(node, h, p) for node, h, p in parsed
        }
        #: Optimistic liveness: a configured worker is assumed up until a
        #: probe or a forward says otherwise (failover covers the gap).
        self.alive: dict[str, bool] = {node: True for node in self.ring.nodes}
        self.probe_interval = probe_interval
        self.probe_timeout = probe_timeout
        self.cluster_stats: dict[str, int] = {
            "routes_forwarded": 0,
            "routes_coalesced": 0,
            "router_cache_hits": 0,
            "routes_failed_over": 0,
            "routes_unavailable": 0,
            "workers_ejected": 0,
            "workers_rejoined": 0,
        }
        self._route_flights: dict[tuple[str, bool], asyncio.Task] = {}
        self._prober_task: asyncio.Task | None = None
        self._cluster_executor: ClusterExecutor | None = None
        self._event_tasks: set[asyncio.Task] = set()

    # -- lifecycle ------------------------------------------------------------------

    async def start(self) -> None:
        await super().start()
        self._prober_task = asyncio.create_task(self._probe_loop())

    async def close(self) -> None:
        if self._prober_task is not None:
            self._prober_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._prober_task
            self._prober_task = None
        for flight in list(self._route_flights.values()):
            flight.cancel()
        for link in self.links.values():
            await link.close()
        if self._cluster_executor is not None:
            self._cluster_executor.shutdown(wait=False, cancel_futures=True)
        await super().close()

    # -- health probing ---------------------------------------------------------------

    def _mark_dead(self, node: str, reason: str) -> None:
        if self.alive.get(node, False):
            self.alive[node] = False
            self.cluster_stats["workers_ejected"] += 1
        self.links[node].reset(reason)

    def _mark_alive(self, node: str) -> None:
        if not self.alive.get(node, True):
            self.alive[node] = True
            self.cluster_stats["workers_rejoined"] += 1

    def _alive_nodes(self) -> list[str]:
        return [n for n in self.ring.nodes if self.alive.get(n, False)]

    async def probe_workers(self) -> dict[str, bool]:
        """One probe round over every configured worker; returns liveness."""

        async def one(node: str) -> None:
            try:
                await self.links[node].probe(self.probe_timeout)
            except (WorkerDown, asyncio.TimeoutError) as exc:
                self._mark_dead(node, getattr(exc, "reason", str(exc)))
            else:
                self._mark_alive(node)

        await asyncio.gather(*(one(node) for node in self.ring.nodes))
        return dict(self.alive)

    async def _probe_loop(self) -> None:
        while True:
            with contextlib.suppress(Exception):
                await self.probe_workers()
            await asyncio.sleep(self.probe_interval)

    # -- core routing -----------------------------------------------------------------

    async def _forward_payload(
        self, key: str, payload: dict[str, Any], on_event=None
    ) -> tuple[str, dict[str, Any]]:
        """Forward along the key's preference order; (node, terminal frame).

        Transport failures eject the node and try the next preference; a
        structured answer — success *or* worker-reported error — returns.
        """
        attempts: list[str] = []
        tried = 0
        for node in self.ring.preference(key):
            if not self.alive.get(node, False):
                attempts.append(f"{node}: ejected")
                continue
            try:
                frame = await self.links[node].request(payload, on_event=on_event)
            except WorkerDown as exc:
                self._mark_dead(node, exc.reason)
                self.cluster_stats["routes_failed_over"] += 1
                attempts.append(f"{node}: {exc.reason}")
                tried += 1
                continue
            if (
                not frame.get("ok")
                and (frame.get("error") or {}).get("code") == protocol.E_CANCELLED
            ):
                # The *worker* abandoned the request (it is shutting down
                # and cancelled its in-flight work) — our waiter is still
                # here.  That is a node failure, not an answer: eject and
                # fail the key over like any transport death.
                self._mark_dead(node, "cancelled in-flight work (shutting down)")
                self.cluster_stats["routes_failed_over"] += 1
                attempts.append(f"{node}: cancelled in-flight work")
                tried += 1
                continue
            return node, frame
        self.cluster_stats["routes_unavailable"] += 1
        detail = "; ".join(attempts) if attempts else "no workers configured"
        raise Unavailable(
            f"no live worker for key {key[:12]}… "
            f"({tried} transport failure(s); {detail}); retry later"
        )

    async def _route_cell_body(
        self, key: str, payload: dict[str, Any], cell_name: str
    ) -> dict[str, Any]:
        """One routed cell: store probe, then forward-with-failover."""
        arrays = bool(payload.get("arrays"))
        store = self.scheduler.result_cache
        if store is not None:
            loop = asyncio.get_running_loop()
            cached = await loop.run_in_executor(None, store.load, key)
            if cached is not None:
                self.cluster_stats["router_cache_hits"] += 1
                self.stats.cells_cache_hits += 1
                return {
                    "result": protocol.result_to_wire(
                        cached, include_arrays=arrays
                    ),
                    "meta": {
                        "cell": cell_name,
                        "key": key,
                        "cache_hit": True,
                        "coalesced": False,
                        "worker": None,
                        "seconds": 0.0,
                    },
                }
        node, frame = await self._forward_payload(key, payload)
        if not frame.get("ok"):
            err = frame.get("error") or {}
            raise ProtocolError(
                f"worker {node}: {err.get('message', 'unspecified error')}",
                code=err.get("code", E_INTERNAL),
            )
        out = {k: v for k, v in frame.items() if k not in ("id", "ok", "type")}
        meta = dict(out.get("meta") or {})
        worker_key = meta.get("key")
        if worker_key is not None and worker_key != key:
            # The worker derived a different content key for the same cell:
            # its base config diverges from the router's.  Serving that
            # silently would break bit-identity — fail loudly instead.
            raise ProtocolError(
                f"worker {node} keyed this cell {worker_key[:12]}… but the "
                f"router keyed it {key[:12]}…; node configs diverge",
                code=E_INTERNAL,
            )
        meta["worker"] = node
        out["meta"] = meta
        self.cluster_stats["routes_forwarded"] += 1
        return out

    async def _route_flight(
        self, key: str, payload: dict[str, Any], cell_name: str
    ) -> dict[str, Any]:
        """Router-level single-flight around :meth:`_route_cell_body`."""
        fkey = (key, bool(payload.get("arrays")))
        flight = self._route_flights.get(fkey)
        coalesced = flight is not None
        if coalesced:
            self.cluster_stats["routes_coalesced"] += 1
            self.stats.cells_coalesced += 1
        else:
            flight = asyncio.create_task(
                self._route_cell_body(key, payload, cell_name)
            )
            self._route_flights[fkey] = flight

            def _cleanup(task: asyncio.Task, k=fkey) -> None:
                if self._route_flights.get(k) is task:
                    del self._route_flights[k]

            flight.add_done_callback(_cleanup)
        settled = await asyncio.shield(flight)
        # Per-waiter meta: joining waiters see coalesced=True without
        # mutating the shared flight payload.
        out = dict(settled)
        meta = dict(out.get("meta") or {})
        meta["coalesced"] = bool(meta.get("coalesced")) or coalesced
        out["meta"] = meta
        return out

    # -- request handlers --------------------------------------------------------------

    async def _handle_cell(self, req: dict, send: Send) -> dict:
        cell, config = protocol.normalize_cell_request(req, self.config)
        deadline = protocol.parse_deadline(req, self.default_deadline)
        self.stats.cells_submitted += 1
        plan = await self.scheduler.plan([cell], config)
        key = plan.keys[cell]
        payload = {k: v for k, v in req.items() if k != "id"}
        if deadline is not None:
            payload["deadline"] = deadline
        return await self._route_flight(key, payload, cell.name)

    async def _handle_sweep(self, req: dict, send: Send) -> dict:
        cells, config = protocol.normalize_sweep_request(req, self.config)
        deadline = protocol.parse_deadline(req, self.default_deadline)
        rid = req.get("id")
        arrays = bool(req.get("arrays"))
        schemes = list(req.get("schemes"))
        plan = await self.scheduler.plan(cells, config)
        total = len(cells)
        self.stats.cells_submitted += total
        settled = 0
        rows: list[dict[str, Any] | None] = [None] * total
        event_tasks: list[asyncio.Task] = []

        def emit(cell_name: str, ok: bool) -> None:
            # Sync context (worker event callbacks), so the send is a task;
            # the handler drains `event_tasks` before its terminal frame so
            # clients always see every event first.
            nonlocal settled
            settled += 1
            task = asyncio.get_running_loop().create_task(
                send(
                    {
                        "id": rid,
                        "type": "event",
                        "event": "cell",
                        "cell": cell_name,
                        "ok": ok,
                        "done": settled,
                        "total": total,
                    }
                )
            )
            event_tasks.append(task)
            self._event_tasks.add(task)
            task.add_done_callback(self._event_tasks.discard)

        # Split the sweep by owning worker (ejected nodes excluded up
        # front; a node dying mid-sub-sweep fails over per-cell below).
        alive = self._alive_nodes()
        groups: dict[str | None, list[int]] = {}
        for i, cell in enumerate(cells):
            owner: str | None
            try:
                owner = self.ring.owner(plan.keys[cell], alive=alive)
            except LookupError:
                owner = None
            groups.setdefault(owner, []).append(i)

        async def route_one_cell(i: int) -> dict[str, Any]:
            """Per-cell fallback path (failover / no owner)."""
            cell = cells[i]
            payload: dict[str, Any] = {
                "type": "cell",
                "kind": cell.kind,
                "workload": cell.workload,
                "label": cell.label,
                "arrays": arrays,
            }
            if req.get("config"):
                payload["config"] = req["config"]
            if deadline is not None:
                payload["deadline"] = deadline
            try:
                out = await self._route_flight(
                    plan.keys[cell], payload, cell.name
                )
            except asyncio.CancelledError:
                raise
            except ProtocolError as exc:
                self.stats.count_error(exc.code)
                return {
                    "ok": False,
                    "label": schemes[i],
                    "cell": cell.name,
                    "error": {"code": exc.code, "message": str(exc)},
                }
            except Exception as exc:  # noqa: BLE001 — row-level fail-soft
                self.stats.count_error(E_INTERNAL)
                return {
                    "ok": False,
                    "label": schemes[i],
                    "cell": cell.name,
                    "error": {"code": E_INTERNAL, "message": str(exc)},
                }
            meta = out.get("meta") or {}
            return {
                "ok": True,
                "label": schemes[i],
                "cell": cell.name,
                "result": out["result"],
                "cache_hit": bool(meta.get("cache_hit")),
                "coalesced": bool(meta.get("coalesced")),
            }

        async def run_group(owner: str | None, idxs: list[int]) -> None:
            if owner is None:
                self.cluster_stats["routes_unavailable"] += len(idxs)
                for i in idxs:
                    rows[i] = {
                        "ok": False,
                        "label": schemes[i],
                        "cell": cells[i].name,
                        "error": {
                            "code": E_UNAVAILABLE,
                            "message": "no live worker in the ring",
                        },
                    }
                    emit(cells[i].name, False)
                return
            sub: dict[str, Any] = {
                "type": "sweep",
                "workload": req["workload"],
                "schemes": [schemes[i] for i in idxs],
                "arrays": arrays,
            }
            if req.get("config"):
                sub["config"] = req["config"]
            if deadline is not None:
                sub["deadline"] = deadline

            def on_worker_event(frame: dict[str, Any]) -> None:
                # Renumber: the worker's done/total covers its sub-sweep
                # only; the client sees router-wide progress.
                if frame.get("event") == "cell":
                    emit(frame.get("cell", "?"), bool(frame.get("ok")))

            async def fail_over(reason: str) -> None:
                self._mark_dead(owner, reason)
                self.cluster_stats["routes_failed_over"] += len(idxs)
                # The owner died mid-sub-sweep: re-route each member
                # individually (the per-key preference order decides the
                # new homes; the key-addressed store keeps it exactly-once).
                for i in idxs:
                    rows[i] = await route_one_cell(i)
                    emit(cells[i].name, bool(rows[i].get("ok")))

            try:
                frame = await self.links[owner].request(
                    sub, on_event=on_worker_event
                )
            except WorkerDown as exc:
                await fail_over(exc.reason)
                return
            if (
                not frame.get("ok")
                and (frame.get("error") or {}).get("code") == protocol.E_CANCELLED
            ):
                await fail_over("cancelled in-flight work (shutting down)")
                return
            if not frame.get("ok"):
                err = frame.get("error") or {}
                code = err.get("code", E_INTERNAL)
                self.stats.count_error(code)
                for i in idxs:
                    rows[i] = {
                        "ok": False,
                        "label": schemes[i],
                        "cell": cells[i].name,
                        "error": {
                            "code": code,
                            "message": f"worker {owner}: "
                            f"{err.get('message', 'unspecified error')}",
                        },
                    }
                return
            sub_rows = frame.get("rows") or []
            self.cluster_stats["routes_forwarded"] += len(idxs)
            for j, i in enumerate(idxs):
                rows[i] = sub_rows[j] if j < len(sub_rows) else {
                    "ok": False,
                    "label": schemes[i],
                    "cell": cells[i].name,
                    "error": {
                        "code": E_INTERNAL,
                        "message": f"worker {owner} returned too few rows",
                    },
                }

        await asyncio.gather(*(run_group(o, idxs) for o, idxs in groups.items()))
        if event_tasks:
            await asyncio.gather(*event_tasks, return_exceptions=True)
        return {
            "rows": list(rows),
            "meta": {
                "cells_total": total,
                "shards": {
                    owner or "(unavailable)": len(idxs)
                    for owner, idxs in groups.items()
                },
            },
        }

    # -- routed experiments -------------------------------------------------------------

    def _experiment_config(self, config: PaperConfig) -> PaperConfig:
        # Every routed unit of work must be one wire-expressible cell, so
        # family batching (whose units are multi-cell) is forced off.
        # Results and keys are bit-identical either way by the families
        # module's contract.
        return replace(config, batch_sweeps=False)

    def _experiment_engine_pool(self) -> ClusterExecutor:
        if self._cluster_executor is None:
            self._cluster_executor = ClusterExecutor(
                self, asyncio.get_running_loop()
            )
        return self._cluster_executor

    async def route_engine_cell(self, cell: SimCell, config: PaperConfig):
        """Route one engine-submitted cell; returns ``(result, seconds)``.

        Mirrors ``timed_execute_cell``'s contract for the
        :class:`ClusterExecutor` bridge.  Overrides are sent as absolute
        values for every whitelisted knob, so runner-level config
        variation in those knobs survives the wire; everything else
        (geometry, table fractions, ...) must match across the cluster's
        base configs — the key cross-check in ``_route_cell_body`` turns
        any divergence into a loud structured error.
        """
        overrides = {name: getattr(config, name) for name in CONFIG_OVERRIDES}
        payload = {
            "type": "cell",
            "kind": cell.kind,
            "workload": cell.workload,
            "label": cell.label,
            "config": overrides,
            "arrays": True,
        }
        plan = await self.scheduler.plan([cell], config)
        out = await self._route_flight(plan.keys[cell], payload, cell.name)
        result = protocol.result_from_wire(out["result"])
        seconds = float((out.get("meta") or {}).get("seconds") or 0.0)
        return result, seconds

    # -- observability ------------------------------------------------------------------

    async def _handle_health(self, req: dict, send: Send) -> dict:
        return {
            "health": self.stats.health(
                __version__,
                extra={
                    "protocol": PROTOCOL_VERSION,
                    "role": "router",
                    "queue_depth": len(self._route_flights),
                    "workers": {
                        node: {
                            "alive": self.alive.get(node, False),
                            "connected": self.links[node].connected,
                        }
                        for node in self.ring.nodes
                    },
                    "workers_alive": len(self._alive_nodes()),
                    "ring": {
                        "nodes": len(self.ring.nodes),
                        "vnodes": self.ring.vnodes,
                    },
                },
            )
        }

    async def _handle_stats(self, req: dict, send: Send) -> dict:
        async def fetch(node: str) -> dict[str, Any] | None:
            if not self.alive.get(node, False):
                return None
            try:
                frame = await self.links[node].request(
                    {"type": "stats"}, timeout=self.probe_timeout
                )
            except (WorkerDown, asyncio.TimeoutError):
                return None
            return frame.get("stats") if frame.get("ok") else None

        per_worker = dict(
            zip(
                self.ring.nodes,
                await asyncio.gather(*(fetch(n) for n in self.ring.nodes)),
            )
        )
        totals: dict[str, int] = {}
        for snap in per_worker.values():
            for name, value in ((snap or {}).get("cells") or {}).items():
                if isinstance(value, (int, float)) and name != "cache_hit_ratio":
                    totals[name] = totals.get(name, 0) + int(value)
        return {
            "stats": self.stats.snapshot(
                queue_depth=len(self._route_flights),
                in_flight=len(self._route_flights),
                extra={
                    "version": __version__,
                    "protocol": PROTOCOL_VERSION,
                    "role": "router",
                    "cluster": {
                        "alive": self._alive_nodes(),
                        "routing": dict(self.cluster_stats),
                        "workers": per_worker,
                        "worker_cell_totals": totals,
                    },
                },
            )
        }
