"""k-way set-associative cache with pluggable replacement and indexing.

Used for the unified L2 (256 KiB LRU per the paper's Section IV), for the
higher-associativity comparison points the paper's introduction discusses,
and — via a thin wrapper — for the fully-associative lower bound of
Section III's opening.
"""

from __future__ import annotations

import numpy as np

from ..address import CacheGeometry
from ..indexing.base import IndexingScheme
from ..indexing.modulo import ModuloIndexing
from ..replacement import ReplacementPolicy, make_policy
from .base import EMPTY, AccessResult, CacheModel

__all__ = ["SetAssociativeCache"]


class SetAssociativeCache(CacheModel):
    """``num_sets`` sets of ``ways`` lines; per-slot stats at set granularity."""

    name = "set_associative"

    def __init__(
        self,
        geometry: CacheGeometry,
        indexing: IndexingScheme | None = None,
        policy: ReplacementPolicy | str = "lru",
        seed: int = 0,
    ):
        super().__init__(geometry, num_slots=geometry.num_sets)
        self.indexing = indexing if indexing is not None else ModuloIndexing(geometry)
        if self.indexing.geometry.num_sets != geometry.num_sets:
            raise ValueError("indexing scheme geometry does not match the cache")
        if isinstance(policy, str):
            policy = make_policy(policy, geometry.num_sets, geometry.ways, seed=seed)
        if policy.num_sets != geometry.num_sets or policy.ways != geometry.ways:
            raise ValueError("replacement policy shape does not match the cache")
        self.policy = policy
        self._blocks = np.full((geometry.num_sets, geometry.ways), EMPTY, dtype=np.int64)
        self._offset_bits = geometry.offset_bits

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        slot = self.indexing.index_of(block << self._offset_bits)
        self.stats.record_probe(slot)
        row = self._blocks[slot]
        ways = np.flatnonzero(row == block)
        if ways.size:
            way = int(ways[0])
            self.policy.touch(slot, way)
            self.stats.record_hit(slot, "direct")
            return AccessResult(True, 1, slot, slot, hit_class="direct")
        # Miss: fill an invalid way first, else consult the policy.
        empties = np.flatnonzero(row == EMPTY)
        way = int(empties[0]) if empties.size else self.policy.victim(slot)
        evicted = int(row[way])
        row[way] = block
        self.policy.fill(slot, way)
        self.stats.record_miss(slot)
        return AccessResult(
            False, 1, slot, slot, evicted_block=None if evicted == EMPTY else evicted
        )

    def contents(self) -> set[int]:
        resident = self._blocks[self._blocks != EMPTY]
        return {int(b) for b in resident}

    def flush(self) -> None:
        self._blocks.fill(EMPTY)
        self.policy.reset()
