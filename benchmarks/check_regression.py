#!/usr/bin/env python
"""Benchmark regression gate for the engine micro-benchmarks.

Compares a freshly produced ``pytest-benchmark`` JSON report against the
committed ``BENCH_*.json`` baseline in the repository root and exits
non-zero when any shared benchmark regressed by more than the threshold
(default 25%, override with ``BENCH_REGRESSION_THRESHOLD``, e.g. ``1.25``).

Times are compared on the per-round **minimum**, the most repeatable
statistic across machines (means absorb scheduler noise and GC pauses).
Benchmarks present in only one file are reported but never fail the gate —
adding or retiring a canary must not require touching the baseline in the
same commit.

Usage::

    python benchmarks/check_regression.py NEW.json [BASELINE.json]

When ``BASELINE.json`` is omitted, the newest committed ``BENCH_*.json``
(by its embedded timestamp) is used; if none exists the gate passes with a
notice, so the very first baseline commit does not deadlock CI.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_THRESHOLD = 1.25


def load_stats(path: Path) -> dict[str, float]:
    """Map fully-qualified benchmark name -> min time in seconds."""
    with path.open() as fh:
        payload = json.load(fh)
    out: dict[str, float] = {}
    for bench in payload.get("benchmarks", []):
        name = bench.get("fullname") or bench["name"]
        out[name] = float(bench["stats"]["min"])
    return out


def find_baseline() -> Path | None:
    """Newest committed BENCH_*.json by its embedded run timestamp."""
    candidates = sorted(REPO_ROOT.glob("BENCH_*.json"))
    if not candidates:
        return None

    def run_date(p: Path) -> str:
        try:
            with p.open() as fh:
                return json.load(fh).get("datetime", "")
        except (OSError, json.JSONDecodeError):
            return ""

    return max(candidates, key=lambda p: (run_date(p), p.name))


def main(argv: list[str]) -> int:
    if not 2 <= len(argv) <= 3:
        print(__doc__)
        return 2
    new_path = Path(argv[1])
    baseline_path = Path(argv[2]) if len(argv) == 3 else find_baseline()
    if baseline_path is None:
        print("check_regression: no committed BENCH_*.json baseline; passing.")
        return 0
    if baseline_path.resolve() == new_path.resolve():
        print(f"check_regression: {new_path} is the baseline itself; passing.")
        return 0
    threshold = float(os.environ.get("BENCH_REGRESSION_THRESHOLD", DEFAULT_THRESHOLD))

    new = load_stats(new_path)
    base = load_stats(baseline_path)
    shared = sorted(set(new) & set(base))
    only_new = sorted(set(new) - set(base))
    only_base = sorted(set(base) - set(new))

    print(f"baseline : {baseline_path.name}")
    print(f"candidate: {new_path}")
    print(f"threshold: >{(threshold - 1) * 100:.0f}% slower fails\n")

    failures: list[str] = []
    width = max((len(n) for n in shared), default=10)
    for name in shared:
        ratio = new[name] / base[name] if base[name] > 0 else float("inf")
        verdict = "ok"
        if ratio > threshold:
            verdict = "REGRESSION"
            failures.append(name)
        print(
            f"{name:<{width}}  {base[name] * 1e3:>12.3f}ms -> "
            f"{new[name] * 1e3:>12.3f}ms  x{ratio:5.2f}  {verdict}"
        )
    for name in only_new:
        print(f"{name:<{width}}  (new benchmark, no baseline — not gated)")
    for name in only_base:
        print(f"{name:<{width}}  (baseline only — retired? not gated)")

    if not shared:
        print("check_regression: no shared benchmarks to compare; passing.")
        return 0
    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed beyond the threshold:")
        for name in failures:
            print(f"  - {name}")
        return 1
    print(f"\nAll {len(shared)} shared benchmarks within threshold.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
