"""B-cache / balanced cache (paper Section III.C; Zhang, ISCA'06).

The combined index of a B-cache splits into non-programmable (NPI) and
programmable (PI) bits.  NPI bits decode conventionally and select a
*cluster* of ``BAS`` lines; the PI bits drive a small *programmable
decoder*: each line in the cluster carries a programmable register holding
one PI value, and an access selects the (at most one) line whose register
matches the address's PI field — so the lookup remains direct-mapped
(single line, single tag compare, 1 cycle), which is Zhang's core claim.

The paper's Eqs. (6)/(7) relate the split to two parameters:

* mapping factor ``MF = 2**(PI+NPI) / 2**OI`` — how many decode values the
  programmable index space offers relative to a direct-mapped cache.  With
  ``MF = 1`` every PI value owns exactly one line and the B-cache *is* the
  conventional direct-mapped cache; ``MF > 1`` gives each cluster more PI
  classes than lines, letting heavily used classes borrow lines from idle
  ones — the "balancing";
* B-cache associativity ``BAS = 2**OI / 2**NPI`` — lines per cluster, i.e.
  how far the borrowing can reach.

Replacement maintains the decoder invariant (valid lines of a cluster hold
distinct PI values): on a miss whose PI value is already programmed on some
line, that line is the *forced* victim (two lines may never match one PI
value); otherwise the cluster's LRU line (the paper states LRU) is
re-programmed to the new PI value.

Consequently two blocks sharing the full PI+NPI index still conflict as in
a direct-mapped cache, while blocks in different PI classes share the
cluster adaptively — strictly between direct-mapped and BAS-way behaviour.
This is why the paper measures the B-cache as the *smallest* improvement of
the three programmable-associativity schemes at a small operating point,
while large MF·BAS approaches set-associative behaviour (Zhang's 8-way
claim; reproduced in the ablation bench).

Per-slot statistics are kept at *line* granularity (1024 slots for the
paper's geometry) so uniformity metrics remain comparable with the
direct-mapped baseline.
"""

from __future__ import annotations

import numpy as np

from ..address import CacheGeometry, ilog2
from ..replacement import ReplacementPolicy, make_policy
from .base import EMPTY, AccessResult, CacheModel

__all__ = ["BalancedCache"]


class BalancedCache(CacheModel):
    """Clustered cache with a programmable (PI) index decoder."""

    name = "bcache"

    def __init__(
        self,
        geometry: CacheGeometry,
        mapping_factor: int = 2,
        bas: int = 2,
        policy: str = "lru",
        seed: int = 0,
    ):
        if geometry.ways != 1:
            raise ValueError("the B-cache augments a direct-mapped geometry")
        super().__init__(geometry, num_slots=geometry.num_lines)
        oi = geometry.index_bits
        if bas < 2 or bas & (bas - 1):
            raise ValueError("BAS must be a power of two >= 2")
        if mapping_factor < 1 or mapping_factor & (mapping_factor - 1):
            raise ValueError("mapping factor must be a power-of-two >= 1")
        bas_bits = ilog2(bas)
        self.npi_bits = oi - bas_bits  # Eq. (7): BAS = 2^OI / 2^NPI
        if self.npi_bits < 0:
            raise ValueError("BAS exceeds the number of traditional indexes")
        # Eq. (6): MF = 2^(PI+NPI) / 2^OI  =>  PI = log2(MF) + OI - NPI.
        self.pi_bits = ilog2(mapping_factor) + oi - self.npi_bits
        if self.pi_bits + self.npi_bits > oi + geometry.tag_bits:
            raise ValueError("PI+NPI exceeds the available address bits")
        self.mapping_factor = mapping_factor
        self.bas = bas
        self.num_clusters = 1 << self.npi_bits
        if isinstance(policy, str):
            policy = make_policy(policy, self.num_clusters, bas, seed=seed)
        self.policy: ReplacementPolicy = policy
        self._blocks = np.full((self.num_clusters, bas), EMPTY, dtype=np.int64)
        self._pi_reg = np.full((self.num_clusters, bas), -1, dtype=np.int64)
        self._cluster_mask = self.num_clusters - 1
        self._pi_mask = (1 << self.pi_bits) - 1

    # -- address fields ------------------------------------------------------------

    def cluster_of(self, block: int) -> int:
        """NPI decode: low block-address bits select the cluster."""
        return block & self._cluster_mask

    def pi_of(self, block: int) -> int:
        """PI field: the bits immediately above the NPI field."""
        return (block >> self.npi_bits) & self._pi_mask

    def _line_number(self, cluster: int, way: int) -> int:
        return cluster * self.bas + way

    # -- access ----------------------------------------------------------------------

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        cluster = self.cluster_of(block)
        pi = self.pi_of(block)
        row = self._blocks[cluster]
        regs = self._pi_reg[cluster]
        # Programmable decode: at most one line matches the PI value.
        matches = np.flatnonzero(regs == pi)
        assert matches.size <= 1, "B-cache decoder invariant violated"
        way = int(matches[0]) if matches.size else -1
        primary = self._line_number(cluster, 0)
        if way >= 0 and row[way] == block:
            line = self._line_number(cluster, way)
            self.stats.record_probe(line)
            self.policy.touch(cluster, way)
            self.stats.record_hit(line, "direct")
            return AccessResult(True, 1, primary, line, hit_class="direct")
        # Miss.  Forced victim when the PI value is already programmed
        # (decoder uniqueness); otherwise an empty line, else cluster LRU.
        if way < 0:
            empties = np.flatnonzero(row == EMPTY)
            way = int(empties[0]) if empties.size else self.policy.victim(cluster)
        line = self._line_number(cluster, way)
        self.stats.record_probe(line)
        evicted = int(row[way])
        row[way] = block
        regs[way] = pi
        self.policy.fill(cluster, way)
        self.stats.record_miss(line)
        return AccessResult(
            False, 1, primary, line, evicted_block=None if evicted == EMPTY else evicted
        )

    def contents(self) -> set[int]:
        resident = self._blocks[self._blocks != EMPTY]
        return {int(b) for b in resident}

    def check_invariants(self) -> None:
        resident = self._blocks[self._blocks != EMPTY]
        assert np.unique(resident).size == resident.size, "duplicate resident block"
        for cluster in range(self.num_clusters):
            valid_regs = [
                int(self._pi_reg[cluster, w])
                for w in range(self.bas)
                if self._blocks[cluster, w] != EMPTY
            ]
            assert len(set(valid_regs)) == len(valid_regs), "duplicate PI value in cluster"
            for way in range(self.bas):
                blk = int(self._blocks[cluster, way])
                if blk != EMPTY:
                    assert self.cluster_of(blk) == cluster
                    assert self.pi_of(blk) == int(self._pi_reg[cluster, way])
        self.stats.check_invariants()

    def flush(self) -> None:
        self._blocks.fill(EMPTY)
        self._pi_reg.fill(-1)
        self.policy.reset()
