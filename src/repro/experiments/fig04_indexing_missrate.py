"""Figure 4 — % reduction in miss rate for the indexing schemes.

For each MiBench benchmark: XOR, odd-multiplier, prime-modulo, Givargis and
Givargis-XOR indexing versus the conventional direct-mapped baseline.
Positive bars = fewer misses.  Paper shape: mixed signs everywhere, no
universal winner, Givargis worst on average (with catastrophic regressions
whose baselines are near zero — their -5e8% bar for susan).

Each bench's six cells (baseline + five schemes) form one "decode" sweep
family under ``config.batch_sweeps``: the engine ships them to a worker as
one unit that decodes the trace once, keeping the per-cell result-cache
keys and outcomes bit-identical (``tests/core/test_sweep_batching_differential.py``).
"""

from __future__ import annotations

from ..core.uniformity import percent_reduction
from ..workloads.mibench import MIBENCH_ORDER
from .config import PaperConfig
from .engine import ExperimentEngine, make_cell
from .report import ExperimentResult
from .runner import register_experiment

__all__ = ["run_fig04", "INDEXING_COLUMNS"]

INDEXING_COLUMNS = ["XOR", "Odd_Multiplier", "Prime_Modulo", "Givargis", "Givargis_Xor"]


_CACHE: dict[tuple, ExperimentResult] = {}


@register_experiment("fig4")
def run_fig04(config: PaperConfig) -> ExperimentResult:
    # Figures 9/10 reuse this sweep's per-set arrays; cache one config.
    key = (config.ref_limit, config.seed, config.workload_scale, config.odd_multiplier)
    if key in _CACHE:
        return _CACHE[key]
    result = _run_fig04(config)
    _CACHE.clear()
    _CACHE[key] = result
    return result


def _run_fig04(config: PaperConfig) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig4",
        title="% reduction in miss rate, indexing schemes vs conventional",
        columns=INDEXING_COLUMNS,
    )
    # Declare the full workload × scheme grid up front; the engine memoizes
    # each cell on disk and fans cache misses out over config.jobs workers.
    cells = []
    for bench in MIBENCH_ORDER:
        cells.append(make_cell("baseline", bench, "baseline", config))
        cells.extend(
            make_cell("indexing", bench, label, config) for label in INDEXING_COLUMNS
        )
    sims, stats = ExperimentEngine(config).run(cells)
    for bench in MIBENCH_ORDER:
        base = sims[(bench, "baseline")]
        row = {}
        for label in INDEXING_COLUMNS:
            sim = sims[(bench, label)]
            row[label] = percent_reduction(sim.misses, base.misses)
            result.arrays[f"{bench}/{label}/misses_per_set"] = sim.slot_misses
        result.arrays[f"{bench}/baseline/misses_per_set"] = base.slot_misses
        result.add_row(bench, row)
    result.add_average_row()
    result.note("paper shape: mixed signs, no universal winner, Givargis worst average")
    result.engine_stats = stats.as_dict()
    return result


from .warm import profile_spec, provides_traces, workload_spec  # noqa: E402


@provides_traces("fig4")
def fig04_traces(config: PaperConfig):
    # The Givargis schemes are fitted on the profiling run, so warming
    # covers both the evaluation and the training trace of every bench.
    return [workload_spec(b, config) for b in MIBENCH_ORDER] + [
        profile_spec(b, config) for b in MIBENCH_ORDER
    ]
