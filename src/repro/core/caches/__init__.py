"""Cache models: baselines plus the paper's programmable-associativity
architectures (Section III)."""

from .adaptive import AdaptiveGroupAssociativeCache
from .base import EMPTY, AccessResult, CacheModel, CacheStats
from .bcache import BalancedCache
from .column_associative import ColumnAssociativeCache
from .direct_mapped import DirectMappedCache
from .fully_associative import BeladyCache, FullyAssociativeCache
from .partner import PartnerIndexCache
from .set_associative import SetAssociativeCache
from .skewed import SkewedAssociativeCache
from .victim import VictimCache

__all__ = [
    "AccessResult",
    "CacheModel",
    "CacheStats",
    "EMPTY",
    "DirectMappedCache",
    "SetAssociativeCache",
    "FullyAssociativeCache",
    "BeladyCache",
    "ColumnAssociativeCache",
    "AdaptiveGroupAssociativeCache",
    "BalancedCache",
    "VictimCache",
    "PartnerIndexCache",
    "SkewedAssociativeCache",
]
