"""Skewed-associative cache (Seznec, ISCA'93) — extension comparator.

Contemporary with the column-associative cache and attacking the same
problem from the opposite direction: instead of one index function and
extra probes, a skewed-associative cache gives *each way its own index
function*.  Two blocks that conflict in way 0 almost never conflict in
way 1, so a 2-way skewed cache behaves like a much more associative one.

It unifies the paper's two technique families — it *is* "indexing +
programmable associativity" in a single structure — which makes it the
natural upper-reference for the hybrid experiments (``ext-hybrid``).

Implementation: the total capacity is split into ``ways`` banks, each a
direct-mapped array of ``capacity / ways`` indexed by its own scheme
(defaults: modulo for bank 0, XOR with increasing tag-slice offsets for the
rest — Seznec's inter-bank dispersion requirement).  Lookup probes all
banks in parallel (1 cycle, like a conventional set-associative cache);
replacement picks the least-recently-touched candidate line across banks.
"""

from __future__ import annotations

import numpy as np

from ..address import CacheGeometry
from ..indexing.base import IndexingScheme
from ..indexing.modulo import ModuloIndexing
from ..indexing.xor import XorIndexing
from .base import EMPTY, AccessResult, CacheModel

__all__ = ["SkewedAssociativeCache"]


class SkewedAssociativeCache(CacheModel):
    """N equal banks, one index function per bank, global-LRU victims.

    ``geometry`` describes the *total* cache (capacity, line size); it must
    be 1-way — the skewing, not the geometry, provides the associativity.
    """

    name = "skewed"

    def __init__(
        self,
        geometry: CacheGeometry,
        ways: int = 2,
        schemes: list[IndexingScheme] | None = None,
    ):
        if geometry.ways != 1:
            raise ValueError("pass the total capacity as a 1-way geometry")
        if ways < 2:
            raise ValueError("a skewed cache needs at least two banks")
        if geometry.capacity_bytes % ways:
            raise ValueError("capacity must divide evenly into the banks")
        bank_geometry = CacheGeometry(
            geometry.capacity_bytes // ways,
            geometry.line_bytes,
            1,
            geometry.address_bits,
        )
        if schemes is None:
            schemes = [ModuloIndexing(bank_geometry)] + [
                XorIndexing(bank_geometry, tag_bit_offset=k - 1) for k in range(1, ways)
            ]
        if len(schemes) != ways:
            raise ValueError("need exactly one index scheme per bank")
        for s in schemes:
            if s.geometry.num_sets != bank_geometry.num_sets:
                raise ValueError("bank scheme geometry mismatch")
        self.bank_geometry = bank_geometry
        self.schemes = schemes
        self.ways = ways
        super().__init__(geometry, num_slots=geometry.num_lines)
        self._bank_sets = bank_geometry.num_sets
        self._blocks = np.full((ways, self._bank_sets), EMPTY, dtype=np.int64)
        self._stamp = np.zeros((ways, self._bank_sets), dtype=np.int64)
        self._clock = 0
        self._offset_bits = geometry.offset_bits

    def _slot(self, bank: int, index: int) -> int:
        return bank * self._bank_sets + index

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        address = block << self._offset_bits
        self._clock += 1
        indices = [s.index_of(address) for s in self.schemes]
        primary = self._slot(0, indices[0])
        for bank in range(self.ways):
            self.stats.record_probe(self._slot(bank, indices[bank]))
        for bank, idx in enumerate(indices):
            if self._blocks[bank, idx] == block:
                self._stamp[bank, idx] = self._clock
                slot = self._slot(bank, idx)
                self.stats.record_hit(slot, "direct")
                return AccessResult(True, 1, primary, slot, hit_class="direct")
        # Miss: fill an invalid candidate first, else the LRU candidate.
        victim_bank = -1
        for bank, idx in enumerate(indices):
            if self._blocks[bank, idx] == EMPTY:
                victim_bank = bank
                break
        if victim_bank < 0:
            stamps = [self._stamp[bank, idx] for bank, idx in enumerate(indices)]
            victim_bank = int(np.argmin(stamps))
        idx = indices[victim_bank]
        evicted = int(self._blocks[victim_bank, idx])
        self._blocks[victim_bank, idx] = block
        self._stamp[victim_bank, idx] = self._clock
        self.stats.record_miss(primary)
        return AccessResult(
            False,
            1,
            primary,
            self._slot(victim_bank, idx),
            evicted_block=None if evicted == EMPTY else evicted,
        )

    def contents(self) -> set[int]:
        resident = self._blocks[self._blocks != EMPTY]
        return {int(b) for b in resident}

    def check_invariants(self) -> None:
        resident = self._blocks[self._blocks != EMPTY]
        assert np.unique(resident).size == resident.size, "duplicate resident block"
        self.stats.check_invariants()

    def flush(self) -> None:
        self._blocks.fill(EMPTY)
        self._stamp.fill(0)
