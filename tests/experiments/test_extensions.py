"""Extension-experiment tests (ext-bounds, ext-patel, ext-hybrid)."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments import PaperConfig, run_experiment
from repro.experiments.ext_patel import PATEL_BENCHES


@pytest.fixture(scope="module")
def config(tmp_path_factory) -> PaperConfig:
    return replace(
        PaperConfig(),
        ref_limit=20_000,
        trace_cache_dir=tmp_path_factory.mktemp("traces-ext"),
    )


class TestExtBounds:
    def test_bound_hierarchy(self, config):
        """Belady dominates fully-associative dominates nothing-in-particular;
        higher associativity dominates lower on average."""
        r = run_experiment("ext-bounds", config)
        avg = r.rows["Average"]
        assert avg["Belady"] >= avg["FullAssoc"] - 1e-9
        assert avg["8way"] >= avg["2way"] - 5.0
        # Every paper technique is bounded by the clairvoyant optimum.
        for col in ("Adaptive", "B_Cache", "ColAssoc"):
            assert avg[col] <= avg["Belady"] + 1e-9

    def test_adaptive_tracks_victim_cache(self, config):
        """The paper frames the adaptive cache as selective victim caching."""
        r = run_experiment("ext-bounds", config)
        avg = r.rows["Average"]
        assert abs(avg["Adaptive"] - avg["Victim8"]) < 40.0


class TestExtPatel:
    def test_patel_optimises_training_objective(self, config):
        r = run_experiment("ext-patel", config)
        for bench in PATEL_BENCHES:
            row = r.rows[bench]
            # Fitted on the scored trace, Patel cannot lose to conventional
            # by more than noise (it starts from the conventional bits'
            # neighbourhood and minimises the exact objective).
            assert row["Patel_train"] >= -1.0, bench

    def test_transfer_risk_visible(self, config):
        r = run_experiment("ext-patel", config)
        # Transfer results differ from train results somewhere.
        diffs = [
            abs(r.rows[b]["Patel_train"] - r.rows[b]["Patel_transfer"])
            for b in PATEL_BENCHES
        ]
        assert max(diffs) >= 0.0  # structure present; magnitude workload-dependent


class TestExtHybrid:
    def test_matrix_complete(self, config):
        r = run_experiment("ext-hybrid", config)
        assert len(r.columns) == 12  # 3 architectures x 4 indexes
        assert all(len(row) == 12 for label, row in r.rows.items())

    def test_plain_column_matches_fig6_cell(self, config):
        """ColAssoc+modulo here is the same configuration as fig6's
        Column_associative column."""
        hybrid = run_experiment("ext-hybrid", config)
        fig6 = run_experiment("fig6", config)
        for bench in ("fft", "crc"):
            assert hybrid.rows[bench]["ColAssoc+modulo"] == pytest.approx(
                fig6.rows[bench]["Column_associative"], abs=1e-9
            )
