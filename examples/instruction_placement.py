#!/usr/bin/env python
"""Instruction-cache conflicts: hardware hashing vs software placement.

The paper's introduction reviews Liang & Mitra's procedure placement as the
software-side answer to cache conflicts.  This example builds a synthetic
program (Zipf-hot procedures, phased call behaviour), shows its I-cache
profile under the paper's 32 KiB direct-mapped geometry, and compares:

* address-hashing schemes (the paper's hardware toolbox) — which barely
  help, because procedure bodies are contiguous and XOR-by-a-constant
  nearly preserves contiguous ranges' set intersections; and
* IBP-style greedy displacement placement — which removes the conflicts at
  their source.

Run:  python examples/instruction_placement.py [seed]
"""

from __future__ import annotations

import sys

from repro import PAPER_L1_GEOMETRY, simulate_indexing
from repro.core.indexing import ModuloIndexing, PrimeModuloIndexing, XorIndexing
from repro.experiments.report import sparkline
from repro.icache import (
    CallProfile,
    generate_itrace,
    optimize_placement,
    weighted_overlap_cost,
)
from repro.experiments.ext_icache import build_program


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    g = PAPER_L1_GEOMETRY
    layout, calls, profile = build_program(seed)
    trace = generate_itrace(layout, calls, line_bytes=g.line_bytes, loop_iterations=2)
    print(f"Synthetic program: {len(layout.procedures)} procedures, "
          f"{len(calls)} calls, {len(trace)} instruction fetches")
    print(f"I-cache: {g.describe()}\n")

    base = simulate_indexing(ModuloIndexing(g), trace, g)
    print(f"natural layout / modulo:  miss rate {base.miss_rate:.4f}")
    print(f"  per-set I-fetches: {sparkline(base.slot_accesses)}")

    for name, scheme in (("xor", XorIndexing(g)), ("prime_modulo", PrimeModuloIndexing(g))):
        res = simulate_indexing(scheme, trace, g)
        delta = 100.0 * (base.misses - res.misses) / max(base.misses, 1)
        print(f"natural layout / {name:13s} miss rate {res.miss_rate:.4f} ({delta:+.1f}%)")

    print("\nrunning greedy displacement placement (Liang & Mitra style)...")
    optimised, cost_before, cost_after = optimize_placement(layout, profile, g)
    print(f"  weighted set-overlap cost: {cost_before:.0f} -> {cost_after:.0f}")
    print(f"  text segment grew {layout.total_span()} -> {optimised.total_span()} bytes "
          f"(displacement gaps)")
    opt_trace = generate_itrace(optimised, calls, line_bytes=g.line_bytes, loop_iterations=2)
    opt = simulate_indexing(ModuloIndexing(g), opt_trace, g)
    delta = 100.0 * (base.misses - opt.misses) / max(base.misses, 1)
    print(f"optimised layout / modulo: miss rate {opt.miss_rate:.4f} ({delta:+.1f}%)")
    print(f"  per-set I-fetches: {sparkline(opt.slot_accesses)}")
    print(
        "\nTakeaway: contiguous code defeats index hashing; placement attacks"
        "\nthe conflicts at their source — which is why the paper cites [16]"
        "\nas a *software* companion to its hardware techniques."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
