"""Scheduler unit tests: single-flight, backpressure, deadlines, cancellation.

These drive :class:`CellScheduler` directly under ``asyncio.run`` with a
*fake* cell executor (monkeypatched ``timed_execute_cell``), so timing is
controlled by events rather than real simulations and every race the
serving semantics promise to handle is forced deterministically.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import replace

import numpy as np
import pytest

import repro.service.scheduler as scheduler_mod
from repro.core.simulator import SimulationResult
from repro.experiments.config import PaperConfig
from repro.experiments.engine import ResultCache, SimCell
from repro.experiments.engine.parallel import CellPlan
from repro.service.scheduler import (
    CellScheduler,
    DeadlineExceeded,
    FlightCancelled,
    Overloaded,
)


def _cell(label: str) -> SimCell:
    return SimCell(kind="indexing", workload="fft", label=label)


def _plan(*cells: SimCell) -> CellPlan:
    """A hand-built plan: fabricated keys, no real traces needed."""
    return CellPlan(
        cells=tuple(cells),
        keys={c: f"deadbeef-{c.label}" for c in cells},
        trace_paths={},
        profile_paths={},
        trace_fingerprints={},
        profile_fingerprints={},
    )


def _result(label: str) -> SimulationResult:
    return SimulationResult(
        model=label,
        trace_name="fft",
        accesses=10,
        hits=8,
        misses=2,
        lookup_cycles=10,
        slot_accesses=np.array([5, 5], dtype=np.int64),
        slot_hits=np.array([4, 4], dtype=np.int64),
        slot_misses=np.array([1, 1], dtype=np.int64),
    )


class FakeExecution:
    """Controllable stand-in for ``timed_execute_cell``.

    Counts invocations and, when ``gate`` is set, blocks each one until
    :meth:`release` — the lever that makes coalescing/deadline/cancel
    scenarios deterministic.
    """

    def __init__(self, gate: bool = False):
        self.calls = 0
        self.started = threading.Event()
        self._release = threading.Event()
        if not gate:
            self._release.set()

    def release(self) -> None:
        self._release.set()

    def __call__(self, cell, config, trace_path=None, profile_path=None):
        self.calls += 1
        self.started.set()
        assert self._release.wait(20), "FakeExecution never released"
        return _result(cell.label), 0.001


@pytest.fixture
def config(tmp_path) -> PaperConfig:
    return replace(PaperConfig(), trace_cache_dir=tmp_path / "traces")


def make_scheduler(config, **kwargs) -> CellScheduler:
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("use_processes", False)
    return CellScheduler(config, **kwargs)


def run(coro):
    return asyncio.run(coro)


class TestSingleFlight:
    def test_concurrent_identical_submissions_execute_once(
        self, config, monkeypatch
    ):
        fake = FakeExecution(gate=True)
        monkeypatch.setattr(scheduler_mod, "timed_execute_cell", fake)
        cell = _cell("XOR")
        plan = _plan(cell)

        async def main():
            sched = make_scheduler(config)
            try:
                waiters = [
                    asyncio.create_task(sched.submit(cell, config, plan))
                    for _ in range(8)
                ]
                await asyncio.sleep(0)  # let every waiter join the flight
                fake.release()
                return await asyncio.gather(*waiters), sched.stats
            finally:
                await sched.close()

        outcomes, stats = run(main())
        assert fake.calls == 1  # the exactly-once property
        assert stats.cells_executed == 1
        assert stats.cells_submitted == 8
        assert stats.cells_coalesced == 7
        assert [o.coalesced for o in outcomes].count(False) == 1
        # Every waiter fans out the *same* result object.
        assert len({id(o.result) for o in outcomes}) == 1

    def test_distinct_keys_do_not_coalesce(self, config, monkeypatch):
        fake = FakeExecution()
        monkeypatch.setattr(scheduler_mod, "timed_execute_cell", fake)
        a, b = _cell("XOR"), _cell("Prime_Modulo")
        plan = _plan(a, b)

        async def main():
            sched = make_scheduler(config)
            try:
                ra, rb = await asyncio.gather(
                    sched.submit(a, config, plan), sched.submit(b, config, plan)
                )
                return ra, rb, sched.stats
            finally:
                await sched.close()

        ra, rb, stats = run(main())
        assert fake.calls == 2
        assert stats.cells_coalesced == 0
        assert ra.result.model == "XOR" and rb.result.model == "Prime_Modulo"

    def test_sequential_resubmission_is_a_cache_hit(self, config, monkeypatch):
        fake = FakeExecution()
        monkeypatch.setattr(scheduler_mod, "timed_execute_cell", fake)
        cell = _cell("XOR")
        plan = _plan(cell)

        async def main():
            sched = make_scheduler(config)
            try:
                first = await sched.submit(cell, config, plan)
                second = await sched.submit(cell, config, plan)
                return first, second, sched.stats
            finally:
                await sched.close()

        first, second, stats = run(main())
        assert fake.calls == 1
        assert first.cache_hit is False and second.cache_hit is True
        assert stats.cells_cache_hits == 1
        # The result round-tripped through the content-addressed cache.
        cache = ResultCache(config.result_cache_path)
        assert plan.keys[cell] in cache

    def test_prewarmed_cache_short_circuits_execution(self, config, monkeypatch):
        fake = FakeExecution()
        monkeypatch.setattr(scheduler_mod, "timed_execute_cell", fake)
        cell = _cell("XOR")
        plan = _plan(cell)
        ResultCache(config.result_cache_path).store(plan.keys[cell], _result("XOR"))

        async def main():
            sched = make_scheduler(config)
            try:
                return await sched.submit(cell, config, plan)
            finally:
                await sched.close()

        outcome = run(main())
        assert outcome.cache_hit is True
        assert fake.calls == 0


class TestBackpressure:
    def test_admission_rejects_beyond_max_pending(self, config, monkeypatch):
        fake = FakeExecution(gate=True)
        monkeypatch.setattr(scheduler_mod, "timed_execute_cell", fake)
        a, b = _cell("XOR"), _cell("Prime_Modulo")
        plan = _plan(a, b)

        async def main():
            sched = make_scheduler(config, max_pending=1)
            try:
                first = asyncio.create_task(sched.submit(a, config, plan))
                await asyncio.sleep(0)  # flight for `a` occupies the only slot
                with pytest.raises(Overloaded):
                    await sched.submit(b, config, plan)
                # Joining the existing flight is *always* admitted.
                joiner = asyncio.create_task(sched.submit(a, config, plan))
                await asyncio.sleep(0)
                fake.release()
                outcomes = await asyncio.gather(first, joiner)
                return outcomes, sched.stats
            finally:
                await sched.close()

        outcomes, stats = run(main())
        assert stats.cells_rejected == 1
        assert [o.coalesced for o in outcomes] == [False, True]
        assert fake.calls == 1

    def test_slot_frees_after_completion(self, config, monkeypatch):
        fake = FakeExecution()
        monkeypatch.setattr(scheduler_mod, "timed_execute_cell", fake)
        a, b = _cell("XOR"), _cell("Prime_Modulo")
        plan = _plan(a, b)

        async def main():
            sched = make_scheduler(config, max_pending=1)
            try:
                await sched.submit(a, config, plan)
                return await sched.submit(b, config, plan), sched
            finally:
                await sched.close()

        outcome, sched = run(main())
        assert outcome.result.model == "Prime_Modulo"
        assert sched.stats.cells_rejected == 0
        assert sched.queue_depth == 0


class TestDeadlinesAndCancellation:
    def test_deadline_raises_and_releases_the_flight(self, config, monkeypatch):
        fake = FakeExecution(gate=True)
        monkeypatch.setattr(scheduler_mod, "timed_execute_cell", fake)
        cell = _cell("XOR")
        plan = _plan(cell)

        async def main():
            sched = make_scheduler(config)
            try:
                t0 = time.perf_counter()
                with pytest.raises(DeadlineExceeded):
                    await sched.submit(cell, config, plan, deadline=0.05)
                waited = time.perf_counter() - t0
                # Give the cancelled flight a beat to unwind.
                await asyncio.sleep(0.01)
                return waited, sched.queue_depth, sched.stats
            finally:
                fake.release()
                await sched.close()

        waited, depth, stats = run(main())
        assert waited < 5.0  # structured error, not a hang
        assert stats.deadline_timeouts == 1
        assert stats.cells_cancelled == 1  # last waiter left -> flight cancelled
        assert depth == 0

    def test_deadline_of_one_waiter_spares_the_shared_flight(
        self, config, monkeypatch
    ):
        fake = FakeExecution(gate=True)
        monkeypatch.setattr(scheduler_mod, "timed_execute_cell", fake)
        cell = _cell("XOR")
        plan = _plan(cell)

        async def main():
            sched = make_scheduler(config)
            try:
                patient = asyncio.create_task(sched.submit(cell, config, plan))
                await asyncio.sleep(0)
                with pytest.raises(DeadlineExceeded):
                    await sched.submit(cell, config, plan, deadline=0.05)
                # The impatient waiter is gone, but the flight must survive
                # for the patient one (shielded task, waiters == 1).
                fake.release()
                return await patient, sched.stats
            finally:
                await sched.close()

        outcome, stats = run(main())
        assert outcome.result.model == "XOR"
        assert stats.cells_cancelled == 0
        assert fake.calls == 1

    def test_close_surfaces_flight_cancellation_to_waiters(
        self, config, monkeypatch
    ):
        fake = FakeExecution(gate=True)
        monkeypatch.setattr(scheduler_mod, "timed_execute_cell", fake)
        cell = _cell("XOR")
        plan = _plan(cell)

        async def main():
            sched = make_scheduler(config)
            waiter = asyncio.create_task(sched.submit(cell, config, plan))
            # Wait (without blocking the loop) until the fake is running.
            deadline = time.perf_counter() + 10
            while not fake.started.is_set():
                assert time.perf_counter() < deadline, "execution never started"
                await asyncio.sleep(0.005)
            await sched.close()
            fake.release()
            with pytest.raises(FlightCancelled):
                await waiter

        run(main())

    def test_worker_exception_propagates_to_every_waiter(
        self, config, monkeypatch
    ):
        def boom(cell, config, trace_path=None, profile_path=None):
            raise ValueError("simulated failure")

        monkeypatch.setattr(scheduler_mod, "timed_execute_cell", boom)
        cell = _cell("XOR")
        plan = _plan(cell)

        async def main():
            sched = make_scheduler(config)
            try:
                waiters = [
                    asyncio.create_task(sched.submit(cell, config, plan))
                    for _ in range(3)
                ]
                results = await asyncio.gather(*waiters, return_exceptions=True)
                return results, sched.stats
            finally:
                await sched.close()

        results, stats = run(main())
        assert all(isinstance(r, ValueError) for r in results)
        assert stats.cells_failed == 1  # one flight, one failure, three answers
