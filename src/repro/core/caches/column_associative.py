"""Column-associative cache (paper Section III.A; Agarwal & Pudar, ISCA'93).

The cache is a direct-mapped array with one *rehash bit* per line.  An access
first probes its primary line ``b1`` (1 cycle).  On a primary miss:

* if ``b1``'s rehash bit is set, the line holds data that was rehashed there
  from some other index, so the alternate probe is skipped: the new block
  replaces ``b1`` and the rehash bit is cleared (the line is conventionally
  indexed again);
* otherwise the alternate line ``b2`` — the primary index with its most
  significant bit flipped — is probed (a second cycle).  A hit there is a
  *rehash hit*: the two lines swap contents so the block sits in its primary
  slot for future 1-cycle hits (the displaced block becomes the rehashed one,
  ``b2``'s rehash bit set).  A miss in both places a new block at ``b1`` and
  *relocates* the previous occupant of ``b1`` to ``b2`` instead of evicting
  it, setting ``b2``'s rehash bit — this is the paper's description verbatim.

By default the relocation is *guarded*: a displaced block may only move into
an invalid or already-rehashed alternate line, never displace a
conventionally resident one (``protect_conventional=True``).  Without the
guard, capacity-miss streams relocate dead lines over live conventionally
placed ones and the cache can lose to plain direct-mapped — whereas the
paper's Figure 6 reports non-negative improvements for every benchmark,
which the guarded variant reproduces.  The unguarded textbook behaviour is
kept as an option and compared in the ablation bench.

Timing classes recorded for the AMAT formula (paper Eq. 9):
``first_probe_hits`` (1 cycle), ``rehash_hits`` (2 cycles),
``rehash_misses`` (missed after probing both locations: miss penalty + 1
extra cycle), plain misses (primary line was rehash-marked; no extra cycle).

The primary index function is pluggable — the paper's Figure 8 measures the
column-associative cache with XOR / odd-multiplier / prime-modulo primary
indexes.  With prime-modulo the flipped-MSB alternate may land in the
fragmented (never-primary) region, which is harmless and in fact recovers
some of the fragmented capacity.
"""

from __future__ import annotations

import numpy as np

from ..address import CacheGeometry
from ..indexing.base import IndexingScheme
from ..indexing.modulo import ModuloIndexing
from .base import EMPTY, AccessResult, CacheModel

__all__ = ["ColumnAssociativeCache"]


class ColumnAssociativeCache(CacheModel):
    """Direct-mapped array + rehash bits + flipped-MSB alternate probing."""

    name = "column_associative"

    def __init__(
        self,
        geometry: CacheGeometry,
        indexing: IndexingScheme | None = None,
        protect_conventional: bool = True,
    ):
        if geometry.ways != 1:
            raise ValueError("column-associative cache is built on a 1-way geometry")
        self.protect_conventional = protect_conventional
        super().__init__(geometry, num_slots=geometry.num_sets)
        self.indexing = indexing if indexing is not None else ModuloIndexing(geometry)
        self._blocks = np.full(geometry.num_sets, EMPTY, dtype=np.int64)
        self._rehash = np.zeros(geometry.num_sets, dtype=bool)
        self._msb_mask = geometry.num_sets >> 1
        if self._msb_mask == 0:
            raise ValueError("need at least 2 sets for flipped-MSB rehashing")
        self._offset_bits = geometry.offset_bits

    def alternate_of(self, slot: int) -> int:
        """The rehash location: primary index with its MSB complemented."""
        return slot ^ self._msb_mask

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        b1 = self.indexing.index_of(block << self._offset_bits)
        self.stats.record_probe(b1)
        if self._blocks[b1] == block:
            self.stats.record_hit(b1, "first_probe")
            # A hit re-establishes the line as conventionally owned.
            return AccessResult(True, 1, b1, b1, hit_class="first_probe")

        if self._rehash[b1]:
            # The line holds out-of-place data; claim it without probing b2.
            evicted = int(self._blocks[b1])
            self._blocks[b1] = block
            self._rehash[b1] = False
            self.stats.record_miss(b1, "direct")
            return AccessResult(
                False, 1, b1, b1, evicted_block=None if evicted == EMPTY else evicted
            )

        b2 = self.alternate_of(b1)
        self.stats.record_probe(b2)
        if self._blocks[b2] == block:
            # Rehash hit: swap so the block is primary next time.
            self._blocks[b2] = self._blocks[b1]
            self._blocks[b1] = block
            self._rehash[b1] = False
            self._rehash[b2] = self._blocks[b2] != EMPTY
            self.stats.record_hit(b2, "rehash")
            return AccessResult(True, 2, b1, b2, hit_class="rehash")

        # Miss in both: new block takes b1; b1's previous occupant is
        # relocated (not evicted) to b2 when permitted (see class docs).
        may_relocate = (not self.protect_conventional) or self._rehash[b2] or self._blocks[b2] == EMPTY
        if may_relocate:
            evicted = int(self._blocks[b2])
            self._blocks[b2] = self._blocks[b1]
            self._rehash[b2] = self._blocks[b2] != EMPTY
        else:
            evicted = int(self._blocks[b1])
        self._blocks[b1] = block
        self._rehash[b1] = False
        self.stats.record_miss(b1, "rehash")
        return AccessResult(
            False, 2, b1, b1, evicted_block=None if evicted == EMPTY else evicted
        )

    # -- AMAT fractions (Eq. 9 inputs) -------------------------------------------

    @property
    def fraction_rehash_hits(self) -> float:
        """Share of *hits* that needed the second probe."""
        return self.stats.extra.get("rehash_hits", 0) / self.stats.hits if self.stats.hits else 0.0

    @property
    def fraction_rehash_misses(self) -> float:
        """Share of *misses* that probed both locations."""
        if not self.stats.misses:
            return 0.0
        return self.stats.extra.get("rehash_misses", 0) / self.stats.misses

    def contents(self) -> set[int]:
        return {int(b) for b in self._blocks if b != EMPTY}

    def check_invariants(self) -> None:
        """No block may reside in two lines at once."""
        resident = self._blocks[self._blocks != EMPTY]
        assert np.unique(resident).size == resident.size, "duplicate resident block"
        self.stats.check_invariants()

    def flush(self) -> None:
        self._blocks.fill(EMPTY)
        self._rehash.fill(False)
