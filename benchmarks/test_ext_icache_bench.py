"""Bench for the instruction-cache placement extension."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment


def test_ext_icache(benchmark, config):
    result = run_once(benchmark, lambda: run_experiment("ext-icache", config))
    print()
    print(result)
    avg = result.rows["Average"]
    # Software placement recovers substantial I-cache conflicts...
    assert avg["Placement"] > 20.0
    # ...while address hashing barely moves contiguous code (see note).
    assert abs(avg["XOR"]) < 10.0
