"""MiBench ``basicmath`` — cubic roots, integer square roots, angle
conversions.

Compute-dominated with a small memory footprint: tight stack frames per
solver call, small coefficient/result arrays.  The stack lines are
re-touched constantly, so a handful of sets take nearly all accesses —
non-uniform *accesses* but almost all hits, the case the paper's intro
singles out (non-uniformity alone does not imply misses).

The cubic solver is Cardano's method, verified against ``numpy.roots``.
"""

from __future__ import annotations

import math

import numpy as np

from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["BasicmathWorkload", "solve_cubic"]


def solve_cubic(a: float, b: float, c: float, d: float) -> list[float]:
    """Real roots of ``a x³ + b x² + c x + d`` (Cardano; a ≠ 0)."""
    b, c, d = b / a, c / a, d / a
    q = (3.0 * c - b * b) / 9.0
    r = (-27.0 * d + b * (9.0 * c - 2.0 * b * b)) / 54.0
    disc = q**3 + r * r
    shift = -b / 3.0
    if disc > 0:
        s = math.copysign(abs(r + math.sqrt(disc)) ** (1 / 3), r + math.sqrt(disc))
        t = math.copysign(abs(r - math.sqrt(disc)) ** (1 / 3), r - math.sqrt(disc))
        return [shift + s + t]
    if abs(disc) < 1e-12:
        s = math.copysign(abs(r) ** (1 / 3), r)
        return [shift + 2 * s, shift - s]
    theta = math.acos(r / math.sqrt(-(q**3)))
    mag = 2.0 * math.sqrt(-q)
    return [
        shift + mag * math.cos(theta / 3.0),
        shift + mag * math.cos((theta + 2.0 * math.pi) / 3.0),
        shift + mag * math.cos((theta + 4.0 * math.pi) / 3.0),
    ]


def _root_counts(rng: np.random.Generator, n: int) -> list[int]:
    """Real-root count per iteration, replaying the scalar rng stream.

    The scalar loop draws, per iteration, three ``uniform`` doubles (one
    raw PCG64 word each) and one ``integers(0, 2**30)``.  The bounded draw
    Lemire-reduces the *low* 32-bit half of a fresh word and buffers the
    high half, which the next bounded draw consumes (``uniform`` bypasses
    the 32-bit buffer) — so the stream is 7 raw words per 2 iterations and
    there is no rejection (the Lemire threshold for a 2**30 range is 0).
    Only the root count feeds the trace, so the bounded values themselves
    are never materialised.  Verified word-exact against the scalar path in
    ``tests/workloads/test_basicmath_draws.py``; falls back to the scalar
    draw loop (restoring rng state) if replay disagrees with a spot check.
    """
    state = rng.bit_generator.state
    try:
        if state["bit_generator"] != "PCG64":
            raise AssertionError("replay model assumes PCG64")
        raw = rng.bit_generator.random_raw(7 * ((n + 1) // 2))
        k = np.arange(n)
        base = 7 * (k // 2) + np.where(k % 2 == 0, 0, 4)
        w = raw[base[:, None] + np.arange(3)]
        dbl = (w >> np.uint64(11)) * (1.0 / (1 << 53))
        # uniform(lo, hi) is lo + (hi - lo) * next_double, bit-for-bit.
        b = (-20.0 + 40.0 * dbl[:, 0]) / 1.0
        c = (-100.0 + 200.0 * dbl[:, 1]) / 1.0
        d = (-100.0 + 200.0 * dbl[:, 2]) / 1.0
        q = (3.0 * c - b * b) / 9.0
        r = (-27.0 * d + b * (9.0 * c - 2.0 * b * b)) / 54.0
        disc = q**3 + r * r
        counts = np.where(disc > 0, 1, np.where(np.abs(disc) < 1e-12, 2, 3))
        # Spot check: replay the first two iterations scalar from a clone
        # of the saved state (two, so the bounded draw's half-word buffer
        # carry into iteration 1 is exercised every call).
        chk = np.random.Generator(np.random.PCG64())
        chk.bit_generator.state = state
        for i in range(min(n, 2)):
            ok = (
                float(chk.uniform(-20, 20)) == b[i]
                and float(chk.uniform(-100, 100)) == c[i]
                and float(chk.uniform(-100, 100)) == d[i]
                and len(solve_cubic(1.0, float(b[i]), float(c[i]), float(d[i])))
                == int(counts[i])
            )
            if not ok:
                raise AssertionError("rng replay mismatch")
            chk.integers(0, 1 << 30)
        return counts.tolist()
    except Exception:
        rng.bit_generator.state = state
        counts_ref = []
        for _ in range(n):
            b_ = float(rng.uniform(-20, 20))
            c_ = float(rng.uniform(-100, 100))
            d_ = float(rng.uniform(-100, 100))
            counts_ref.append(len(solve_cubic(1.0, b_, c_, d_)))
            rng.integers(0, 1 << 30)
        return counts_ref


def isqrt_newton(x: int) -> int:
    """Integer square root by the benchmark's bit-by-bit method."""
    if x < 0:
        raise ValueError("negative")
    root, rem = 0, 0
    for _ in range(16):
        root <<= 1
        rem = (rem << 2) | (x >> 30)
        x = (x << 2) & 0xFFFFFFFF
        root += 1
        if root <= rem:
            rem -= root
            root += 1
        else:
            root -= 1
    return root >> 1


@register_workload
class BasicmathWorkload(Workload):
    name = "basicmath"
    suite = "mibench"
    description = "Cubic solving, integer sqrt and deg/rad conversion loops"
    access_pattern = "hot stack frames + small coefficient arrays"

    def kernel(self, m: Recorder, scale: float) -> None:
        iters = self.scaled(6000, scale, minimum=8)
        coeffs = m.space.static_array(8, 4, "coeffs")
        results = m.space.heap_array(8, 3 * iters, "roots")
        out_idx = 0
        if m.bulk:
            # Every iteration pushes its frame at the same stack depth, so
            # all slot addresses are constants and the frame push itself can
            # be hoisted out of the loop (printf's vfprintf frame then lands
            # at the same base the scalar path gives it).  The per-iteration
            # event sequence is a fixed template except for the advancing
            # results store and the root count.  Everything lands in the
            # recorder's pending buffer (printf included), in scalar order.
            pend = m.pend
            frame = m.space.push_frame(128)
            a_s = frame.local("a")
            q_s = frame.local("q")
            r_s = frame.local("r")
            sq_s = frame.local("sq")
            deg_arr = frame.local_array("deg", 8, 8)
            # [coeffs loads ×4, a/q/r stores] then, later, the sqrt spill
            # pairs and the deg/rad store+load sweep.
            head = (
                [coeffs.addr(i) for i in range(4)] + [a_s, q_s, r_s],
                (4, 5, 6),
            )
            sq_evts = ([sq_s] * 8, (0, 2, 4, 6))
            deg_evts = (
                [deg_arr.addr(i) for i in range(8) for _ in range(2)],
                tuple(range(0, 16, 2)),
            )
            res_base = results.addr(0)
            # Per root: [q load, r load, results store]; the root run and
            # the sqrt spill pairs are adjacent in the event stream, so they
            # share one batched append (result stores patched per call), as
            # do the deg/rad sweep and the next iteration's head.
            roots_sq = {
                k: (
                    [q_s, r_s, 0] * k + [sq_s] * 8,
                    tuple(range(2, 3 * k, 3))
                    + tuple(range(3 * k, 3 * k + 8, 2)),
                    tuple(range(2, 3 * k, 3)),
                )
                for k in (1, 2, 3)
            }
            deg_head = (deg_evts[0] + head[0], deg_evts[1] + (20, 21, 22))
            # All draws the scalar loop makes (three uniforms plus the
            # discarded usqrt input per iteration) replay vectorised; only
            # the per-iteration root count survives into the loop.
            n_roots = _root_counts(m.rng, iters)
            printf, events = m.printf, pend.events
            last = iters - 1
            events(*head)
            for it in range(iters):
                printf(40, fmt_id=0)
                addrs, marks, patch = roots_sq[n_roots[it]]
                addrs = addrs.copy()
                for p in patch:
                    addrs[p] = res_base + 8 * out_idx
                    out_idx += 1
                events(addrs, marks)
                printf(24, fmt_id=1)
                events(*(deg_evts if it == last else deg_head))
            m.space.pop_frame()
            m.builder.meta["roots_emitted"] = out_idx
            return
        for it in range(iters):
            frame = m.space.push_frame(128)
            a_s = frame.local("a")
            q_s = frame.local("q")
            r_s = frame.local("r")
            a = 1.0
            b = float(m.rng.uniform(-20, 20))
            c = float(m.rng.uniform(-100, 100))
            d = float(m.rng.uniform(-100, 100))
            for i in range(4):
                m.load_elem(coeffs, i)
            m.store(a_s)
            m.store(q_s)
            m.store(r_s)
            roots = solve_cubic(a, b, c, d)
            m.printf(40, fmt_id=0)  # "Solutions:" line per equation
            for root in roots:
                m.load(q_s)
                m.load(r_s)
                m.store_elem(results, out_idx)
                out_idx += 1
            # Integer sqrt sub-loop (usqrt phase of the benchmark).
            x = int(m.rng.integers(0, 1 << 30))
            sq_s = frame.local("sq")
            for _ in range(4):
                m.store(sq_s)
                m.load(sq_s)
            _ = isqrt_newton(x)
            m.printf(24, fmt_id=1)  # "sqrt(%lu) = %u" line
            # Degree/radian conversion phase: short strided sweeps.
            deg_arr = frame.local_array("deg", 8, 8)
            for i in range(8):
                m.store_elem(deg_arr, i)
                m.load_elem(deg_arr, i)
            m.space.pop_frame()
        m.builder.meta["roots_emitted"] = out_idx
