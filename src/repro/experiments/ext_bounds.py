"""Extension experiment: the paper's techniques against classical bounds.

The paper's Section III opens with the fully-associative cache as the
theoretical anchor, and frames the adaptive cache as *selective victim
caching* (its reference [14], Jouppi).  This experiment makes those anchors
explicit: for each MiBench workload, the direct-mapped baseline and the
three programmable-associativity schemes are compared against

* 2/4/8-way set-associative LRU caches of equal capacity,
* a 2-way skewed-associative cache (Seznec — per-way index functions,
  unifying the paper's two technique families in one structure),
* a direct-mapped cache with an 8-line victim buffer (Jouppi),
* the fully-associative LRU cache, and
* the clairvoyant Belady/MIN bound.

All columns report % reduction in misses vs the direct-mapped baseline, so
the table reads as "how much of the achievable headroom does each technique
capture".
"""

from __future__ import annotations

from ..core.caches import (
    AdaptiveGroupAssociativeCache,
    BalancedCache,
    BeladyCache,
    ColumnAssociativeCache,
    FullyAssociativeCache,
    SetAssociativeCache,
    SkewedAssociativeCache,
    VictimCache,
)
from ..core.simulator import simulate
from ..core.uniformity import percent_reduction
from ..workloads.mibench import MIBENCH_ORDER
from .config import PaperConfig
from .report import ExperimentResult
from .runner import baseline_result, register_experiment, workload_trace

__all__ = ["run_ext_bounds"]

EXT_BOUNDS_COLUMNS = [
    "2way",
    "4way",
    "8way",
    "Skewed2",
    "Victim8",
    "Adaptive",
    "B_Cache",
    "ColAssoc",
    "FullAssoc",
    "Belady",
]


@register_experiment("ext-bounds")
def run_ext_bounds(config: PaperConfig) -> ExperimentResult:
    g = config.geometry
    result = ExperimentResult(
        experiment_id="ext-bounds",
        title="% miss reduction vs DM: paper techniques against classical bounds",
        columns=EXT_BOUNDS_COLUMNS,
    )
    for bench in MIBENCH_ORDER:
        trace = workload_trace(bench, config)
        base = baseline_result(trace, config)
        blocks = trace.blocks(g.offset_bits).astype("int64")
        runs = {
            "2way": lambda: simulate(SetAssociativeCache(g.with_ways(2)), trace),
            "4way": lambda: simulate(SetAssociativeCache(g.with_ways(4)), trace),
            "8way": lambda: simulate(SetAssociativeCache(g.with_ways(8)), trace),
            "Skewed2": lambda: simulate(SkewedAssociativeCache(g, ways=2), trace),
            "Victim8": lambda: simulate(VictimCache(g, victim_lines=config.victim_lines), trace),
            "Adaptive": lambda: simulate(
                AdaptiveGroupAssociativeCache(
                    g, sht_fraction=config.sht_fraction, out_fraction=config.out_fraction
                ),
                trace,
            ),
            "B_Cache": lambda: simulate(
                BalancedCache(
                    g, mapping_factor=config.bcache_mapping_factor, bas=config.bcache_bas
                ),
                trace,
            ),
            "ColAssoc": lambda: simulate(ColumnAssociativeCache(g), trace),
            "FullAssoc": lambda: simulate(FullyAssociativeCache(g), trace),
            "Belady": lambda: simulate(BeladyCache(g, blocks), trace),
        }
        row = {
            label: percent_reduction(run().misses, base.misses) for label, run in runs.items()
        }
        result.add_row(bench, row)
    result.add_average_row()
    result.note("Belady is the clairvoyant optimum; FullAssoc the realisable LRU bound")
    result.note("Adaptive ~ selective victim caching (paper Section III.B remark)")
    return result
