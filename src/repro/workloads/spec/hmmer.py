"""SPEC-like ``hmmer`` — profile-HMM Viterbi dynamic programming.

Mechanistic stand-in for 456.hmmer's P7Viterbi: three DP rows (match,
insert, delete) swept sequentially per sequence position, per-state
transition and emission score tables indexed by residue.  Row-sequential
with hot score tables — highly regular, which is why hmmer sits in the
"indexing changes little" group of the paper's Figure 8.

The Viterbi score is cross-checked against a NumPy reference in tests.
"""

from __future__ import annotations

import numpy as np

from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["HmmerWorkload", "viterbi_score"]

_NEG = -1e30


def viterbi_score(
    seq: np.ndarray, match_emit: np.ndarray, transitions: np.ndarray
) -> float:
    """Reference DP (vectorised) for the simplified profile HMM used here."""
    n_states = match_emit.shape[0]
    t_mm, t_mi, t_im = transitions
    m_row = np.full(n_states, _NEG)
    i_row = np.full(n_states, _NEG)
    m_row[0] = match_emit[0, seq[0]]
    for pos in range(1, seq.size):
        new_m = np.full(n_states, _NEG)
        new_i = np.full(n_states, _NEG)
        prev_best = np.maximum(m_row, i_row)
        new_m[1:] = prev_best[:-1] + t_mm[1:] + match_emit[1:, seq[pos]]
        new_i = np.maximum(m_row + t_mi, i_row + t_im)
        m_row, i_row = new_m, new_i
    return float(np.maximum(m_row, i_row).max())


@register_workload
class HmmerWorkload(Workload):
    name = "hmmer"
    suite = "spec"
    description = "Profile-HMM Viterbi sweeps over random protein sequences"
    access_pattern = "sequential DP rows + hot emission/transition tables"

    def kernel(self, m: Recorder, scale: float) -> None:
        n_states = self.scaled(120, scale, minimum=8)
        seq_len = self.scaled(400, scale, minimum=16)
        n_seqs = self.scaled(6, scale, minimum=1)
        me_arr = m.space.heap_array(4, n_states * 20, "match_emissions")
        tr_arr = m.space.heap_array(4, 3 * n_states, "transitions")
        mrow_arr = m.space.heap_array(4, n_states, "m_row")
        irow_arr = m.space.heap_array(4, n_states, "i_row")
        seq_arr = m.space.heap_array(1, seq_len, "sequence")

        match_emit = m.rng.normal(0, 1, size=(n_states, 20))
        transitions = m.rng.normal(-1, 0.3, size=(3, n_states))
        t_mm, t_mi, t_im = transitions
        best_overall = _NEG
        for s in range(n_seqs):
            seq = m.rng.integers(0, 20, size=seq_len)
            m_row = np.full(n_states, _NEG)
            i_row = np.full(n_states, _NEG)
            m_row[0] = match_emit[0, seq[0]]
            m.load_elem(seq_arr, 0)
            m.store_elem(mrow_arr, 0)
            for pos in range(1, seq_len):
                m.load_elem(seq_arr, pos)
                res = int(seq[pos])
                new_m = np.full(n_states, _NEG)
                for k in range(1, n_states):
                    m.load_elem(mrow_arr, k - 1)
                    m.load_elem(irow_arr, k - 1)
                    m.load_elem(tr_arr, k)  # t_mm[k]
                    m.load_elem(me_arr, k * 20 + res)
                    new_m[k] = max(m_row[k - 1], i_row[k - 1]) + t_mm[k] + match_emit[k, res]
                    m.store_elem(mrow_arr, k)
                for k in range(n_states):
                    m.load_elem(tr_arr, n_states + k)  # t_mi
                    m.load_elem(tr_arr, 2 * n_states + k)  # t_im
                    i_row[k] = max(m_row[k] + t_mi[k], i_row[k] + t_im[k])
                    m.store_elem(irow_arr, k)
                m_row = new_m
            best = float(np.maximum(m_row, i_row).max())
            best_overall = max(best_overall, best)
        m.builder.meta["best_score"] = best_overall
