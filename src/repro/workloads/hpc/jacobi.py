"""HPC ``jacobi`` — 2-D 5-point Jacobi relaxation with double buffering.

The canonical structured-grid HPC kernel: sweep the grid, read the 4
neighbours + centre from the source buffer, write the destination buffer,
swap.  Row strides of ``8·N`` bytes and the two capacity-offset buffers
give conventional indexing plenty to get wrong.  Convergence of the
relaxation (residual decreases) is asserted in tests.
"""

from __future__ import annotations

import numpy as np

from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["JacobiWorkload"]


@register_workload
class JacobiWorkload(Workload):
    name = "jacobi"
    suite = "hpc"
    description = "2-D 5-point Jacobi relaxation, double-buffered"
    access_pattern = "row-strided stencil reads + alternating buffer writes"

    def kernel(self, m: Recorder, scale: float) -> None:
        n = self.scaled(64, scale, minimum=8)  # grid side; 8*n*n-byte buffers
        sweeps = self.scaled(8, scale, minimum=2)
        # Capacity-aligned buffers: src[i,j] and dst[i,j] share a set, the
        # same double-buffer aliasing real codes hit with power-of-2 grids.
        src_arr = m.space.heap_array(8, n * n, "grid_src", align=32 * 1024)
        dst_arr = m.space.heap_array(8, n * n, "grid_dst", align=32 * 1024)

        grid = m.rng.normal(0, 1, size=(n, n))
        grid[0, :] = grid[-1, :] = grid[:, 0] = grid[:, -1] = 0.0
        residuals = []
        if m.bulk:
            # Interior indices in the scalar loop's row-major order; the
            # per-point emission unit is [centre, north, south, west, east
            # loads, centre store] — one interleaved stream per sweep.
            ii, jj = np.meshgrid(
                np.arange(1, n - 1), np.arange(1, n - 1), indexing="ij"
            )
            centre = (ii * n + jj).ravel()
            offsets = (centre, centre - n, centre + n, centre - 1, centre + 1)
        for sweep in range(sweeps):
            new = grid.copy()
            if m.bulk:
                # Same per-element FP expression (and association order) as
                # the scalar loop, so `new` is bitwise identical.
                new[1:-1, 1:-1] = 0.25 * (
                    grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:]
                )
                m.interleaved_stream(
                    *((src_arr.addrs(o), False) for o in offsets),
                    (dst_arr.addrs(centre), True),
                )
            else:
                for i in range(1, n - 1):
                    for j in range(1, n - 1):
                        m.load_elem(src_arr, i * n + j)
                        m.load_elem(src_arr, (i - 1) * n + j)
                        m.load_elem(src_arr, (i + 1) * n + j)
                        m.load_elem(src_arr, i * n + j - 1)
                        m.load_elem(src_arr, i * n + j + 1)
                        new[i, j] = 0.25 * (
                            grid[i - 1, j] + grid[i + 1, j] + grid[i, j - 1] + grid[i, j + 1]
                        )
                        m.store_elem(dst_arr, i * n + j)
            residuals.append(float(np.abs(new - grid).max()))
            grid = new
            src_arr, dst_arr = dst_arr, src_arr
        m.builder.meta["residuals"] = residuals
        m.builder.meta["n"] = n
