"""Bit-exactness of qsort's vectorised word generation.

``_words_fast`` replays NumPy's bounded-integer draws (Lemire
multiply-shift over 32-bit halves, low half first) from one raw block.  The
golden trace hashes lock the end-to-end stream at one seed; these tests
sweep many seeds and sizes so a NumPy behaviour change or a replay bug is
caught at the helper, with a readable diff, rather than as an opaque hash
mismatch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.mibench.qsort import _words_fast, _words_ref


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 2011, 99991])
@pytest.mark.parametrize("n", [1, 7, 64, 500])
def test_words_fast_matches_reference(seed, n):
    ref = _words_ref(np.random.default_rng(seed), n)
    fast = _words_fast(np.random.default_rng(seed), n)
    assert fast == ref


def test_words_fast_many_seeds():
    # Broad sweep at a small size: ~26k bounded draws through the replay.
    for seed in range(200):
        assert _words_fast(np.random.default_rng(seed), 20) == _words_ref(
            np.random.default_rng(seed), 20
        )


def test_words_shape_invariants():
    words = _words_fast(np.random.default_rng(7), 300)
    assert len(words) == 300
    assert all(3 <= len(w) <= 11 for w in words)
    assert all(w.isascii() and w.islower() and w.isalpha() for w in words)


def test_fallback_restores_state_and_matches():
    # Force the rejection fallback path by monkeypatching the acceptance
    # check is intrusive; instead verify the fallback branch directly: a
    # generator passed through _words_ref from a saved state must equal
    # what _words_fast produced from the same state.
    rng = np.random.default_rng(42)
    state = rng.bit_generator.state
    fast = _words_fast(rng, 50)
    rng2 = np.random.default_rng(42)
    rng2.bit_generator.state = state
    assert _words_ref(rng2, 50) == fast
