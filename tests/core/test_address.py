"""CacheGeometry and bit-helper tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.address import (
    PAPER_L1_GEOMETRY,
    PAPER_L2_GEOMETRY,
    CacheGeometry,
    extract_bits,
    gather_bits,
    gather_bits_vec,
    ilog2,
    is_power_of_two,
)


class TestPowerOfTwoHelpers:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)

    def test_ilog2(self):
        assert ilog2(1) == 0
        assert ilog2(32) == 5
        assert ilog2(1 << 20) == 20

    def test_ilog2_rejects_non_powers(self):
        with pytest.raises(ValueError):
            ilog2(12)


class TestPaperGeometry:
    """The exact Section-IV configuration."""

    def test_l1_sets(self):
        g = PAPER_L1_GEOMETRY
        assert g.num_sets == 1024
        assert g.index_bits == 10
        assert g.offset_bits == 5
        assert g.tag_bits == 17
        assert g.num_lines == 1024

    def test_l2_shape(self):
        g = PAPER_L2_GEOMETRY
        assert g.capacity_bytes == 256 * 1024
        assert g.ways == 8

    def test_describe_mentions_sets(self):
        assert "1024 sets" in PAPER_L1_GEOMETRY.describe()


class TestGeometryValidation:
    def test_rejects_non_power_capacity(self):
        with pytest.raises(ValueError):
            CacheGeometry(1000, 32)

    def test_rejects_line_bigger_than_cache(self):
        with pytest.raises(ValueError):
            CacheGeometry(32, 64)

    def test_rejects_excess_ways(self):
        with pytest.raises(ValueError):
            CacheGeometry(128, 32, ways=8)

    def test_rejects_narrow_address(self):
        with pytest.raises(ValueError):
            CacheGeometry(1 << 20, 32, address_bits=10)

    def test_with_ways(self):
        g = PAPER_L1_GEOMETRY.with_ways(2)
        assert g.num_sets == 512
        assert g.num_lines == 1024


class TestFieldExtraction:
    def test_round_trip(self, paper_geometry):
        g = paper_geometry
        addr = 0xDEADBEEF & ((1 << g.address_bits) - 1)
        rebuilt = g.rebuild_address(g.tag_of(addr), g.index_of(addr), g.offset_of(addr))
        assert rebuilt == addr

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_round_trip_property(self, addr):
        g = PAPER_L1_GEOMETRY
        assert g.rebuild_address(g.tag_of(addr), g.index_of(addr), g.offset_of(addr)) == addr

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_index_in_range(self, addr):
        g = PAPER_L1_GEOMETRY
        assert 0 <= g.index_of(addr) < g.num_sets

    def test_vectorised_matches_scalar(self, paper_geometry, rng):
        g = paper_geometry
        addrs = rng.integers(0, 1 << 32, size=500, dtype=np.uint64)
        np.testing.assert_array_equal(
            g.indices_of(addrs), [g.index_of(int(a)) for a in addrs]
        )
        np.testing.assert_array_equal(g.tags_of(addrs), [g.tag_of(int(a)) for a in addrs])
        np.testing.assert_array_equal(
            g.block_addresses(addrs), [g.block_address(int(a)) for a in addrs]
        )

    def test_block_address_strips_offset(self, paper_geometry):
        g = paper_geometry
        assert g.block_address(0x1234) == 0x1234 >> 5
        assert g.offset_of(0x1234) == 0x1234 & 31


class TestBitGather:
    def test_extract_bits(self):
        assert extract_bits(0b1101100, 2, 3) == 0b011
        assert extract_bits(0xFF, 0, 0) == 0

    def test_gather_bits_order(self):
        # positions[0] becomes the LSB.
        assert gather_bits(0b1010, (1, 3)) == 0b11
        assert gather_bits(0b1010, (3, 1)) == 0b11
        assert gather_bits(0b1000, (3, 1)) == 0b01

    @given(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=10, unique=True),
    )
    def test_gather_vec_matches_scalar(self, value, positions):
        positions = tuple(positions)
        vec = gather_bits_vec(np.array([value], dtype=np.uint64), positions)
        assert int(vec[0]) == gather_bits(value, positions)

    def test_gather_identity_is_extract(self):
        value = 0xABCD1234
        assert gather_bits(value, tuple(range(5, 15))) == extract_bits(value, 5, 10)
