"""Trace infrastructure: events, the modelled address space, recorders,
synthetic stressors, persistence and SMT interleaving."""

from .arena import TraceArena, get_arena
from .event import MemoryAccess, Trace, TraceBuilder
from .interleave import block_interleave, random_interleave, round_robin
from .io import (
    TraceCache,
    load_din,
    load_npz,
    load_raw,
    load_trace,
    save_din,
    save_npz,
    save_raw,
)
from .memory import AddressSpace, Array, SegmentLayout, StackFrame
from .recorder import Recorder, TraceComplete, record
from .stats import TraceSummary, reuse_distances, stride_histogram, summarize
from .synth import (
    hot_set_trace,
    ping_pong_trace,
    pointer_chase_trace,
    sequential_sweep,
    strided_trace,
    uniform_trace,
    zipf_trace,
)

__all__ = [
    "Trace",
    "TraceBuilder",
    "MemoryAccess",
    "AddressSpace",
    "Array",
    "StackFrame",
    "SegmentLayout",
    "Recorder",
    "TraceComplete",
    "record",
    "round_robin",
    "random_interleave",
    "block_interleave",
    "save_npz",
    "load_npz",
    "save_raw",
    "load_raw",
    "load_trace",
    "save_din",
    "load_din",
    "TraceCache",
    "TraceArena",
    "get_arena",
    "TraceSummary",
    "summarize",
    "stride_histogram",
    "reuse_distances",
    "uniform_trace",
    "sequential_sweep",
    "strided_trace",
    "zipf_trace",
    "hot_set_trace",
    "pointer_chase_trace",
    "ping_pong_trace",
]
