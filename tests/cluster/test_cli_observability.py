"""``repro stats`` / ``repro health`` CLI verbs against a live cluster.

The verbs are first-class (not ``submit stats``): they render a
human-readable summary — request counters, a p50/p90/p99 latency table,
and (against a router) per-worker ring state — with ``--json`` as the
machine-readable escape hatch.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.service.cli import _fmt_seconds

WORKLOAD = "fft"


@pytest.fixture
def warm_cluster(make_cluster):
    cluster = make_cluster(2)
    with cluster.client() as client:
        client.submit_cell("indexing", WORKLOAD, "XOR")
        client.submit_cell("indexing", WORKLOAD, "XOR")  # warm
    return cluster


class TestStatsVerb:
    def test_router_stats_render_latency_and_cluster(self, warm_cluster, capsys):
        assert main(["stats", "--port", str(warm_cluster.router.port)]) == 0
        out = capsys.readouterr().out
        assert "repro.service router @ 127.0.0.1:" in out
        # The latency table carries the headline percentiles.
        for column in ("count", "mean", "p50", "p90", "p99", "max"):
            assert column in out
        assert "cell" in out
        # Cluster section: liveness, routing counters, per-worker rows.
        assert "2/2 workers alive" in out
        assert "routes_forwarded=" in out
        for worker in warm_cluster.workers:
            assert worker.addr in out

    def test_worker_stats_render_without_cluster_section(
        self, warm_cluster, capsys
    ):
        worker = warm_cluster.workers[0]
        assert main(["stats", "--port", str(worker.port)]) == 0
        out = capsys.readouterr().out
        assert "repro.service server @ 127.0.0.1:" in out
        assert "workers alive" not in out

    def test_stats_json_is_the_raw_snapshot(self, warm_cluster, capsys):
        assert main(
            ["stats", "--port", str(warm_cluster.router.port), "--json"]
        ) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["role"] == "router"
        assert "cluster" in snapshot and "latency" in snapshot


class TestHealthVerb:
    def test_router_health_renders_ring_state(self, warm_cluster, capsys):
        assert main(["health", "--port", str(warm_cluster.router.port)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("ok — ")
        assert "2/2 alive" in out
        assert "vnodes" in out
        for worker in warm_cluster.workers:
            assert worker.addr in out
        assert "DOWN" not in out

    def test_health_json(self, warm_cluster, capsys):
        assert main(
            ["health", "--port", str(warm_cluster.router.port), "--json"]
        ) == 0
        health = json.loads(capsys.readouterr().out)
        assert health["status"] == "ok"
        assert health["role"] == "router"

    def test_unreachable_daemon_is_exit_3(self, capsys):
        # Port 1 is never listening on loopback.
        assert main(["health", "--port", "1"]) == 3
        assert "cannot reach" in capsys.readouterr().err


class TestRendering:
    def test_fmt_seconds_scales_units(self):
        assert _fmt_seconds(0) == "0"
        assert _fmt_seconds(0.0000005).endswith("µs")
        assert _fmt_seconds(0.0042) == "4.2ms"
        assert _fmt_seconds(2.5) == "2.50s"
