"""Victim cache (Jouppi 1990; the paper's reference [14]).

A direct-mapped cache backed by a small fully-associative buffer that holds
recently evicted lines.  The paper frames the adaptive group-associative
cache as *selective* victim caching, so the plain victim cache is the natural
comparison point and is included in the extended benches.

A miss in the main array that hits the victim buffer swaps the two blocks
(1 extra cycle, recorded as a ``victim`` hit class).

Historically a hand-rolled model with a hard-coded modulo index; now the
canonical composition ``DirectMappedCache × VictimBuffer`` on the aux
subsystem (:mod:`repro.core.aux`), which is what finally lets it accept any
registered indexing scheme.  Counters, per-set histograms, cycle accounting
and the ``victim``/``direct`` hit classes are bit-identical to the legacy
model (locked by the snapshot hashes in
``tests/caches/test_aux_structures.py``), and the class keeps its
``name="victim"`` so legacy ``victim`` cell keys are unchanged.
"""

from __future__ import annotations

from ..address import CacheGeometry
from ..aux.augmented import AugmentedCache
from ..aux.structures import VictimBuffer
from ..indexing.base import IndexingScheme
from .direct_mapped import DirectMappedCache

__all__ = ["VictimCache"]


class VictimCache(AugmentedCache):
    """Direct-mapped array + ``victim_lines`` fully-associative LRU buffer."""

    name = "victim"

    def __init__(
        self,
        geometry: CacheGeometry,
        victim_lines: int = 8,
        indexing: IndexingScheme | None = None,
    ):
        if geometry.ways != 1:
            raise ValueError("the victim cache augments a direct-mapped geometry")
        base = DirectMappedCache(geometry, indexing=indexing)
        super().__init__(base, (VictimBuffer(victim_lines),), name="victim")
        self.victim_lines = victim_lines

    @property
    def fraction_victim_hits(self) -> float:
        if not self.stats.hits:
            return 0.0
        return self.stats.extra.get("victim_hits", 0) / self.stats.hits
