"""Sweep-family detection and failure-attribution tests.

Two contracts from the sweep-batching PR:

* **Partition** — :func:`~repro.experiments.engine.families.detect_families`
  is a total partition of the (deduplicated) planned cell list: every cell
  lands in exactly one family, no family mixes workloads (hence traces),
  ``assoc`` families share one :class:`~.cells.KernelSpec` signature and
  are all-LRU, and turning ``batch_sweeps`` off degenerates to singletons.
  Locked with a Hypothesis property over arbitrary cell grids.

* **Failure attribution** — a member failing mid-family surfaces as
  :class:`~repro.experiments.CellExecutionError` naming the *specific*
  cell (with a chained cause), and members that completed before the
  failure keep their result-cache entries, so a retry resumes warm.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import CellExecutionError, PaperConfig
from repro.experiments.engine import (
    ResultCache,
    SimCell,
    detect_families,
    kernel_cell_spec,
    make_cell,
    plan_cells,
    run_cells,
)
from repro.experiments.engine.cells import policy_cell_spec

BASE_CONFIG = PaperConfig()

#: Valid (kind, label) combinations spanning every cell kind the engine knows.
CELL_SHAPES = [
    ("baseline", "baseline"),
    ("indexing", "XOR"),
    ("indexing", "Odd_Multiplier"),
    ("indexing", "Prime_Modulo"),
    ("indexing", "Givargis"),
    ("progassoc", "Adaptive_Cache"),
    ("progassoc", "B_Cache"),
    ("progassoc", "Column_associative"),
    ("colassoc", "ColAssoc_Base"),
    ("colassoc", "ColAssoc_XOR"),
    ("setassoc", "2way"),
    ("setassoc", "4way"),
    ("bounds", "8way"),
    ("bounds", "FullAssoc"),
    ("bounds", "Belady"),
    ("bounds", "Victim8"),
    ("assocsweep", "2way"),
    ("assocsweep", "4way"),
    ("assocsweep", "8way"),
    ("assocsweep", "16way"),
    ("policysweep", "modulo:lru"),
    ("policysweep", "modulo:fifo"),
    ("policysweep", "modulo:plru"),
    ("policysweep", "modulo:random"),
    ("policysweep", "xor:mru"),
    ("policysweep", "xor:lfu"),
    ("auxsweep", "modulo:vc4"),
    ("auxsweep", "modulo:sb4"),
    ("auxsweep", "xor:mc2"),
    ("auxsweep", "odd_multiplier:vc+sb8"),
]

WORKLOADS = ["crc", "fft", "sha", "qsort"]

cell_strategy = st.builds(
    lambda shape, workload: make_cell(shape[0], workload, shape[1], BASE_CONFIG),
    st.sampled_from(CELL_SHAPES),
    st.sampled_from(WORKLOADS),
)

grid_strategy = st.lists(cell_strategy, min_size=0, max_size=30)

config_strategy = st.builds(
    lambda engine, batch: replace(BASE_CONFIG, engine=engine, batch_sweeps=batch),
    st.sampled_from(["auto", "sequential"]),
    st.booleans(),
)


class TestPartitionProperty:
    @settings(max_examples=120, deadline=None)
    @given(cells=grid_strategy, config=config_strategy)
    def test_families_partition_the_cell_list(self, cells, config):
        families = detect_families(cells, config)
        unique = list(dict.fromkeys(cells))
        # Exactly-once coverage: the family members, flattened, are a
        # permutation of the deduplicated input with no repeats.
        flattened = [c for fam in families for c in fam.members]
        assert len(flattened) == len(unique)
        assert set(flattened) == set(unique)
        for fam in families:
            assert fam.members, "no empty families"
            # Never mixes traces: one workload per family.
            assert {c.workload for c in fam.members} == {fam.workload}
            if fam.axis == "single":
                assert len(fam.members) == 1
            else:
                assert len(fam.members) >= 2
            if fam.axis == "assoc":
                # The Mattson axis: all-LRU, one shared kernel signature.
                specs = [kernel_cell_spec(c, config) for c in fam.members]
                assert all(s is not None for s in specs)
                assert {s.signature for s in specs} == {fam.signature}
                assert all(c.policy == "lru" for c in fam.members)
            elif fam.axis == "policy":
                # The policy axis: one shared PolicySpec signature (scheme,
                # mapping, geometry, seed), members differing *only* in
                # policy — each policy at most once (duplicates would be
                # identical cells, deduplicated upstream).
                specs = [policy_cell_spec(c, config) for c in fam.members]
                assert all(s is not None for s in specs)
                assert {s.signature for s in specs} == {fam.signature}
                policies = [c.policy for c in fam.members]
                assert len(set(policies)) == len(policies)
            else:
                assert fam.signature is None

    @settings(max_examples=60, deadline=None)
    @given(cells=grid_strategy)
    def test_batching_disabled_degenerates_to_singletons(self, cells):
        config = replace(BASE_CONFIG, batch_sweeps=False)
        families = detect_families(cells, config)
        assert all(f.axis == "single" and len(f.members) == 1 for f in families)
        assert [f.members[0] for f in families] == list(dict.fromkeys(cells))

    @settings(max_examples=60, deadline=None)
    @given(cells=grid_strategy)
    def test_sequential_engine_never_forms_assoc_or_policy_families(self, cells):
        config = replace(BASE_CONFIG, engine="sequential", batch_sweeps=True)
        families = detect_families(cells, config)
        assert all(f.axis in ("decode", "single") for f in families)


class TestDetectionShapes:
    def test_fixed_sets_ladder_is_one_assoc_family(self):
        """The ext-assoc grid: baseline + assocsweep cells share one
        modulo mapping, hence one stack-distance pass."""
        cells = [make_cell("baseline", "crc", "baseline", BASE_CONFIG)] + [
            make_cell("assocsweep", "crc", lab, BASE_CONFIG)
            for lab in ("2way", "4way", "8way")
        ]
        (fam,) = detect_families(cells, BASE_CONFIG)
        assert fam.axis == "assoc" and len(fam.members) == 4
        assert fam.name == "crc/[baseline+2way+4way+8way]"

    def test_capacity_fixed_kway_cells_never_share_a_pass(self):
        """ext-bounds' k-way columns hold capacity fixed (``with_ways``), so
        their set mappings differ — they may share a decode, never a kernel."""
        cells = [
            make_cell("bounds", "crc", lab, BASE_CONFIG) for lab in ("2way", "4way")
        ]
        (fam,) = detect_families(cells, BASE_CONFIG)
        assert fam.axis == "decode"

    def test_workloads_are_never_mixed(self):
        cells = [
            make_cell("assocsweep", w, lab, BASE_CONFIG)
            for w in ("crc", "fft")
            for lab in ("2way", "4way")
        ]
        fams = detect_families(cells, BASE_CONFIG)
        assert sorted((f.axis, f.workload) for f in fams) == [
            ("assoc", "crc"),
            ("assoc", "fft"),
        ]

    def test_policy_ladder_is_one_policy_family(self):
        """The ext-policy grid: same scheme, every policy — one
        set-decomposition pass."""
        cells = [
            make_cell("policysweep", "crc", f"modulo:{p}", BASE_CONFIG)
            for p in ("lru", "fifo", "plru", "mru", "lfu", "random")
        ]
        (fam,) = detect_families(cells, BASE_CONFIG)
        assert fam.axis == "policy" and len(fam.members) == 6

    def test_policy_families_never_mix_schemes(self):
        cells = [
            make_cell("policysweep", "crc", f"{scheme}:{p}", BASE_CONFIG)
            for scheme in ("modulo", "xor")
            for p in ("lru", "fifo")
        ]
        fams = detect_families(cells, BASE_CONFIG)
        assert len(fams) == 2
        assert all(f.axis == "policy" and len(f.members) == 2 for f in fams)
        assert len({f.signature for f in fams}) == 2

    def test_lone_policy_cell_rides_the_decode_axis(self):
        cells = [
            make_cell("policysweep", "crc", "modulo:fifo", BASE_CONFIG),
            make_cell("indexing", "crc", "XOR", BASE_CONFIG),
        ]
        (fam,) = detect_families(cells, BASE_CONFIG)
        assert fam.axis == "decode"

    def test_non_kernel_cells_ride_the_decode_axis(self):
        cells = [
            make_cell("progassoc", "crc", "B_Cache", BASE_CONFIG),
            make_cell("colassoc", "crc", "ColAssoc_Base", BASE_CONFIG),
        ]
        (fam,) = detect_families(cells, BASE_CONFIG)
        assert fam.axis == "decode" and fam.signature is None

    def test_aux_cells_join_the_decode_axis(self):
        """The ext-aux grid shape: baseline + aux compositions + colassoc
        of one workload share a trace open and nothing more (each aux cell
        is already its own exact miss-event replay)."""
        cells = [
            make_cell("baseline", "crc", "baseline", BASE_CONFIG),
            make_cell("auxsweep", "crc", "modulo:vc4", BASE_CONFIG),
            make_cell("auxsweep", "crc", "modulo:mc+sb4", BASE_CONFIG),
            make_cell("colassoc", "crc", "ColAssoc_Base", BASE_CONFIG),
        ]
        (fam,) = detect_families(cells, BASE_CONFIG)
        assert fam.axis == "decode" and fam.signature is None
        assert len(fam.members) == 4

    def test_aux_cells_never_mix_workloads(self):
        cells = [
            make_cell("auxsweep", w, "modulo:vc4", BASE_CONFIG)
            for w in ("crc", "fft", "sha")
        ]
        fams = detect_families(cells, BASE_CONFIG)
        assert sorted(f.workload for f in fams) == ["crc", "fft", "sha"]
        assert all({c.workload for c in f.members} == {f.workload} for f in fams)

    def test_aux_cells_never_join_kernel_families(self):
        """An aux cell next to a Mattson ladder stays off the assoc pass —
        its composed hierarchy has no stack-distance shortcut."""
        cells = [
            make_cell("assocsweep", "crc", lab, BASE_CONFIG)
            for lab in ("2way", "4way")
        ] + [make_cell("auxsweep", "crc", "modulo:vc4", BASE_CONFIG)]
        fams = detect_families(cells, BASE_CONFIG)
        axes = sorted(f.axis for f in fams)
        assert axes == ["assoc", "single"]
        (aux_fam,) = [f for f in fams if f.axis == "single"]
        assert aux_fam.members[0].kind == "auxsweep"


REFS = 3000


@pytest.fixture
def config(tmp_path) -> PaperConfig:
    return replace(
        PaperConfig(),
        ref_limit=REFS,
        workload_scale=0.05,
        trace_cache_dir=tmp_path / "traces",
    )


class TestMidBatchFailure:
    def _grid_with_bad_tail(self, config):
        good = [
            make_cell("baseline", "crc", "baseline", config),
            make_cell("indexing", "crc", "XOR", config),
        ]
        bad = SimCell(kind="progassoc", workload="crc", label="Nonexistent_Model")
        return good, bad

    def test_failure_names_cell_and_keeps_completed_entries(self, config):
        good, bad = self._grid_with_bad_tail(config)
        cache = ResultCache(config.result_cache_path)
        with pytest.raises(CellExecutionError) as exc:
            run_cells(good + [bad], config, jobs=1, result_cache=cache)
        assert "(crc, Nonexistent_Model)" in str(exc.value)
        assert exc.value.__cause__ is not None
        # The two members that completed before the failure must have been
        # persisted under their unchanged per-cell keys...
        plan = plan_cells(good, config, jobs=1)
        for cell in good:
            assert cache.load(plan.keys[cell]) is not None, cell.label
        # ...so a retry of the good cells resumes fully warm.
        _, stats = run_cells(good, config, jobs=1, result_cache=cache)
        assert (stats.cache_hits, stats.cache_misses) == (2, 0)

    def test_failure_on_the_pool_path(self, config):
        good, bad = self._grid_with_bad_tail(config)
        cache = ResultCache(config.result_cache_path)
        # Two units (a crc decode family + an fft loose cell) + jobs=2 →
        # the ProcessPoolExecutor path; the bad label explodes in a worker.
        cells = good + [bad, make_cell("baseline", "fft", "baseline", config)]
        with pytest.raises(CellExecutionError) as exc:
            run_cells(cells, config, jobs=2, result_cache=cache)
        assert "(crc, Nonexistent_Model)" in str(exc.value)
        assert exc.value.__cause__ is not None
        plan = plan_cells(good, config, jobs=1)
        for cell in good:
            assert cache.load(plan.keys[cell]) is not None, cell.label

    def test_assoc_family_failure_attributed_to_first_member(self, config, monkeypatch):
        cells = [make_cell("assocsweep", "crc", lab, config) for lab in ("2way", "4way")]
        monkeypatch.setattr(
            "repro.experiments.engine.families.simulate_lru_sweep",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("kernel exploded")),
        )
        with pytest.raises(CellExecutionError) as exc:
            run_cells(cells, config, jobs=1)
        assert "(crc, 2way)" in str(exc.value)
        assert "kernel exploded" in str(exc.value)
        assert exc.value.__cause__ is not None

    def test_policy_family_failure_attributed_to_first_member(self, config, monkeypatch):
        cells = [
            make_cell("policysweep", "crc", f"modulo:{p}", config)
            for p in ("lru", "fifo", "plru")
        ]
        monkeypatch.setattr(
            "repro.experiments.engine.families.simulate_policy_sweep",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("policy kernel exploded")),
        )
        with pytest.raises(CellExecutionError) as exc:
            run_cells(cells, config, jobs=1)
        assert "(crc, modulo:lru)" in str(exc.value)
        assert "policy kernel exploded" in str(exc.value)
        assert exc.value.__cause__ is not None

    def test_aux_family_failure_names_the_aux_cell(self, config):
        """A bad auxsweep member of a decode family (label validation is
        normally caught at make_cell time, so build one directly) surfaces
        as a CellExecutionError naming that cell, and the good members
        keep their cache entries."""
        good = [
            make_cell("baseline", "crc", "baseline", config),
            make_cell("auxsweep", "crc", "modulo:vc4", config),
        ]
        bad = SimCell(kind="auxsweep", workload="crc", label="modulo:zz4")
        cache = ResultCache(config.result_cache_path)
        with pytest.raises(CellExecutionError) as exc:
            run_cells(good + [bad], config, jobs=1, result_cache=cache)
        assert "(crc, modulo:zz4)" in str(exc.value)
        assert exc.value.__cause__ is not None
        plan = plan_cells(good, config, jobs=1)
        for cell in good:
            assert cache.load(plan.keys[cell]) is not None, cell.label
        _, stats = run_cells(good, config, jobs=1, result_cache=cache)
        assert (stats.cache_hits, stats.cache_misses) == (2, 0)

    def test_policy_family_completes_without_batching_too(self, config):
        """The same grid answered cell by cell under --no-batch: identical
        results (the parity half lives in the differential suite; here the
        engine must simply agree on the counters)."""
        cells = [
            make_cell("policysweep", "crc", f"modulo:{p}", config)
            for p in ("lru", "fifo", "plru")
        ]
        batched, bstats = run_cells(cells, config, jobs=1)
        unbatched, _ = run_cells(
            cells, replace(config, batch_sweeps=False, use_result_cache=False), jobs=1
        )
        assert bstats.cells_batched == 3
        for key, res in batched.items():
            assert res.misses == unbatched[key].misses, key
            assert res.hits == unbatched[key].hits, key
