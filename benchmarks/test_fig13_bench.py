"""Figure 13 bench: per-thread indexing in an SMT shared L1."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment


def test_fig13_smt_indexing(benchmark, config):
    result = run_once(benchmark, lambda: run_experiment("fig13", config))
    print()
    print(result)
    # Shape: substantial average reduction; the conflict-heavy MiBench
    # mixes gain strongly.
    assert result.value("Average", "reduction") > 10.0
    assert result.value("fft_susan", "reduction") > 30.0
    assert result.value("bitcount_adpcm", "reduction") > 30.0
