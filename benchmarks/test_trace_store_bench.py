"""Trace-store canaries: warm load latency of the raw mmap format.

PR 8's tentpole claim is that serving a cached trace is an ``mmap`` away
instead of an npz decode.  This file times both paths on the same
1M-reference trace with the file warm in the OS page cache (the steady
state of every figure replay, ``repro serve`` worker, and cluster node)
and gates the headline:

* **in-bench speedup floor**: the zero-copy ``load_raw`` must clear 5x
  over ``load_npz`` of the identical trace — machine-independent, so a
  silently disabled mmap path (e.g. an accidental copy-mode default)
  fails the suite even without a baseline to compare against;
* the mapped and decoded traces are re-checked **bit-identical** in the
  bench, field for field — the timed artefact is the verified artefact;
* absolute warm-load latency and the arena's hit path are recorded into
  ``BENCH_*.json`` for the ``make bench-check`` regression gate.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.trace import zipf_trace
from repro.trace.arena import TraceArena
from repro.trace.io import RAW_SUFFIX, load_npz, load_raw, save_npz, save_raw

#: Paper-scale trace length for the load-latency numbers (ISSUE.md gate).
REFS = 1_000_000
#: Floor for mmap vs npz decode at REFS.  Observed ~100-1000x warm (the
#: map is O(header) while the decode is O(bytes)); 5x leaves huge margin
#: so scheduler noise cannot flake the gate while a broken zero-copy path
#: (~1x) still fails loudly.
SPEEDUP_FLOOR = 5.0


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    """One 1M-ref trace persisted in both formats, page cache warmed."""
    tmp = tmp_path_factory.mktemp("trace_store")
    trace = zipf_trace(REFS, seed=2011)
    raw = save_raw(trace, tmp / f"t{RAW_SUFFIX}")
    npz = save_npz(trace, tmp / "t.npz")
    raw.read_bytes()  # fault both files into the page cache so the
    npz.read_bytes()  # measured quantity is load latency, not disk I/O
    return {"raw": raw, "npz": npz}


def test_warm_raw_load_speedup_floor(benchmark, store):
    """Zero-copy map must beat npz decode >= 5x at 1M refs, bit-identically."""
    # Denominator: best-of-3 warm npz decode, measured in-test so the
    # floor is machine-independent.
    load_npz(store["npz"])  # warmup (imports, allocator)
    npz_s, npz_trace = float("inf"), None
    for _ in range(3):
        t0 = time.perf_counter()
        npz_trace = load_npz(store["npz"])
        npz_s = min(npz_s, time.perf_counter() - t0)

    mapped = benchmark.pedantic(
        lambda: load_raw(store["raw"]), rounds=5, iterations=1, warmup_rounds=1
    )
    raw_s = benchmark.stats.stats.min

    # The timed artefact is the verified artefact: field-for-field identity
    # with the npz decode of the same trace, dtypes included.
    for field in ("addresses", "is_write", "thread"):
        a, b = getattr(mapped, field), getattr(npz_trace, field)
        np.testing.assert_array_equal(a, b)
        assert a.dtype == b.dtype

    speedup = npz_s / raw_s
    benchmark.extra_info["speedup_vs_npz"] = round(speedup, 1)
    benchmark.extra_info["npz_decode_ms"] = round(npz_s * 1e3, 3)
    benchmark.extra_info["raw_map_ms"] = round(raw_s * 1e3, 3)
    assert speedup >= SPEEDUP_FLOOR, (
        f"raw map only {speedup:.1f}x over npz decode "
        f"(floor {SPEEDUP_FLOOR}x; npz {npz_s * 1e3:.2f}ms, raw {raw_s * 1e3:.2f}ms)"
    )


def test_npz_decode_reference(benchmark, store):
    """The displaced path, recorded for the baseline tables."""
    trace = benchmark.pedantic(
        lambda: load_npz(store["npz"]), rounds=3, iterations=1, warmup_rounds=1
    )
    assert len(trace) == REFS


def test_arena_warm_hit(benchmark, store):
    """Steady-state engine path: an arena hit is a dict move-to-end."""
    arena = TraceArena()
    first = arena.get(store["raw"])
    trace = benchmark(lambda: arena.get(store["raw"], name="fft"))
    assert trace.addresses is first.addresses  # shared mapping, no reload
    stats = arena.stats()
    assert stats.misses == 1 and stats.entries == 1


def test_raw_save_throughput(benchmark, store):
    """Atomic raw publish of a 1M-ref trace (the migration/warm write path)."""
    trace = load_raw(store["raw"])
    out = store["raw"].parent / f"out{RAW_SUFFIX}"
    path = benchmark.pedantic(
        lambda: save_raw(trace, out), rounds=3, iterations=1, warmup_rounds=1
    )
    assert load_raw(path, verify=True).addresses.shape == (REFS,)
