"""Victim cache and partner-index cache tests (extensions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.address import PAPER_L1_GEOMETRY, CacheGeometry
from repro.core.caches import DirectMappedCache, PartnerIndexCache, VictimCache
from repro.core.simulator import simulate
from repro.trace import Trace, ping_pong_trace, zipf_trace

G = PAPER_L1_GEOMETRY


class TestVictimCache:
    def test_fixes_ping_pong(self, ping_pong):
        dm = simulate(DirectMappedCache(G), ping_pong)
        vc = simulate(VictimCache(G, victim_lines=4), ping_pong)
        assert dm.miss_rate == 1.0
        assert vc.miss_rate < 0.01

    def test_victim_hit_is_two_cycles(self):
        c = VictimCache(G, victim_lines=4)
        a, b = 0, 32 * 1024
        c.access(a)
        c.access(b)  # a pushed to victim buffer
        r = c.access(a)
        assert r.hit and r.cycles == 2 and r.hit_class == "victim"

    def test_buffer_capacity(self):
        c = VictimCache(G, victim_lines=2)
        # Alias 4 blocks on set 0; buffer holds only the last 2 victims.
        blocks = [i * 32 * 1024 for i in range(4)]
        for a in blocks:
            c.access(a)
        # blocks[3] in main; blocks[1], blocks[2] in the buffer; blocks[0] gone.
        assert not c.access(blocks[0]).hit
        c.check_invariants()

    def test_no_block_duplicated(self, zipf):
        c = VictimCache(G, victim_lines=8)
        for a in zipf.addresses[:5000]:
            c.access(int(a))
        c.check_invariants()

    def test_rejects_zero_lines(self):
        with pytest.raises(ValueError):
            VictimCache(G, victim_lines=0)

    def test_beats_direct_mapped_on_conflict_heavy(self, zipf):
        dm = simulate(DirectMappedCache(G), zipf)
        vc = simulate(VictimCache(G, victim_lines=8), zipf)
        assert vc.misses <= dm.misses


class TestPartnerCache:
    def test_learns_to_fix_ping_pong(self):
        """After a rebalance period of misses, the hot set gets a partner
        and the ping-pong becomes partner hits."""
        t = ping_pong_trace(30_000)
        c = PartnerIndexCache(G, rebalance_period=2048)
        res = simulate(c, t)
        dm = simulate(DirectMappedCache(G), t)
        assert dm.miss_rate == 1.0
        assert res.miss_rate < 0.5
        assert c.live_links >= 1

    def test_no_links_for_uniform_traffic(self, uniform):
        c = PartnerIndexCache(G, rebalance_period=4096)
        simulate(c, uniform)
        # Uniform traffic has no cold lines to borrow: links stay rare.
        assert c.live_links <= c.max_links

    def test_partner_hit_costs_extra_cycle(self):
        c = PartnerIndexCache(G, rebalance_period=64)
        # Warm up misses on set 0 so it links to a cold partner.
        for i in range(130):
            c.access((i % 2) * 32 * 1024)
        found = False
        for i in range(130, 200):
            r = c.access((i % 2) * 32 * 1024)
            if r.hit and r.hit_class == "partner":
                assert r.cycles == 2
                found = True
                break
        assert found, "expected at least one partner hit after linking"

    def test_flush_clears_links(self):
        c = PartnerIndexCache(G)
        c.access(0)
        c.flush()
        assert c.contents() == set()
        assert c.live_links == 0
