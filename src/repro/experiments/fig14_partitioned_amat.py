"""Figure 14 — partitioned adaptive cache for multithreaded applications.

The cache is divided equally among the threads; Pier's SHT and OUT tables
span the whole cache so lightly used sets of one partition absorb displaced
blocks from the other (adaptively growing each thread's effective share).
Bars are % improvement in AMAT versus the statically partitioned cache,
using the paper's Eq. (8) accounting for the adaptive variant.  Paper
shape: improvements on every mix, up to ~60%.
"""

from __future__ import annotations

from ..core.uniformity import percent_reduction
from ..multithread import (
    PartitionedAdaptiveCache,
    StaticPartitionedCache,
    simulate_partitioned,
)
from .config import MULTITHREAD_MIXES_FIG14, PaperConfig
from .fig13_smt_indexing import mix_label, mixed_trace
from .report import ExperimentResult
from .runner import register_experiment

__all__ = ["run_fig14"]


@register_experiment("fig14")
def run_fig14(config: PaperConfig) -> ExperimentResult:
    g = config.geometry
    result = ExperimentResult(
        experiment_id="fig14",
        title="% improvement in AMAT: adaptive partitioned vs static partitioned",
        columns=["improvement"],
    )
    timing = config.timing
    for mix in MULTITHREAD_MIXES_FIG14:
        n = len(mix)
        trace = mixed_trace(mix, config)
        static = simulate_partitioned(StaticPartitionedCache(g, n), trace)
        adaptive = simulate_partitioned(
            PartitionedAdaptiveCache(
                g, n, sht_fraction=config.sht_fraction, out_fraction=config.out_fraction
            ),
            trace,
        )
        s_amat = static.amat(timing)
        a_amat = adaptive.amat(timing, adaptive=True)
        result.add_row(mix_label(mix), {"improvement": percent_reduction(a_amat, s_amat)})
        result.arrays[f"{mix_label(mix)}/static_miss_rate"] = static.miss_rate
        result.arrays[f"{mix_label(mix)}/adaptive_miss_rate"] = adaptive.miss_rate
    result.add_average_row()
    result.note("paper shape: AMAT improves for every mix, up to ~60%")
    result.note("AMAT: static = 1 + mr*penalty; adaptive = Eq. (8)")
    return result


from .config import MULTITHREAD_MIXES_FIG14 as _MIXES14  # noqa: E402
from .warm import mix_specs, provides_traces  # noqa: E402


@provides_traces("fig14")
def fig14_traces(config):
    return [s for mix in _MIXES14 for s in mix_specs(mix, config)]
