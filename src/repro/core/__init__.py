"""Core library: geometry, indexing schemes, cache models, simulation
engines, AMAT and uniformity metrics."""

from . import caches, indexing
from .address import PAPER_L1_GEOMETRY, PAPER_L2_GEOMETRY, CacheGeometry
from .dynamic import DynamicIndexCache
from .fastassoc import (
    has_fast_path,
    simulate_adaptive,
    simulate_bcache,
    simulate_column_associative,
    simulate_partner,
    simulate_progassoc,
)
from .three_c import MissBreakdown, classify, cold_miss_count
from .amat import (
    TimingModel,
    amat_adaptive,
    amat_column_associative,
    amat_direct_mapped,
    amat_from_cycles,
)
from .hierarchy import CacheHierarchy, HierarchyResult
from .replacement import POLICIES, make_policy
from .selector import SchemeScore, SchemeSelector, ThreadSchemeTable, profile_schemes
from .simulator import (
    SimulationResult,
    simulate,
    simulate_fully_associative,
    simulate_indexing,
    simulate_set_associative,
    warmup_split,
)
from .uniformity import (
    UniformityReport,
    distribution_moments,
    gini_coefficient,
    half_double_buckets,
    kurtosis,
    normalized_entropy,
    percent_increase,
    percent_reduction,
    skewness,
    uniformity_report,
    zhang_classification,
)

__all__ = [
    "CacheGeometry",
    "PAPER_L1_GEOMETRY",
    "PAPER_L2_GEOMETRY",
    "TimingModel",
    "amat_direct_mapped",
    "amat_adaptive",
    "amat_column_associative",
    "amat_from_cycles",
    "CacheHierarchy",
    "HierarchyResult",
    "POLICIES",
    "make_policy",
    "SimulationResult",
    "simulate",
    "simulate_indexing",
    "simulate_set_associative",
    "simulate_fully_associative",
    "simulate_progassoc",
    "simulate_column_associative",
    "simulate_bcache",
    "simulate_partner",
    "simulate_adaptive",
    "has_fast_path",
    "warmup_split",
    "SchemeScore",
    "SchemeSelector",
    "ThreadSchemeTable",
    "profile_schemes",
    "UniformityReport",
    "uniformity_report",
    "distribution_moments",
    "skewness",
    "kurtosis",
    "percent_increase",
    "percent_reduction",
    "zhang_classification",
    "half_double_buckets",
    "gini_coefficient",
    "normalized_entropy",
    "indexing",
    "caches",
    "DynamicIndexCache",
    "MissBreakdown",
    "classify",
    "cold_miss_count",
]
