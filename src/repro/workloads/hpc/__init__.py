"""HPC workload kernels — the suite the paper says it was extending to
("we are currently repeating our experiments with SPEC as well as HPC
applications").  Importing this package registers them all."""

from .histogram import HistogramWorkload
from .jacobi import JacobiWorkload
from .spmv import SpmvWorkload
from .stream import StreamWorkload
from .transpose import TransposeWorkload

HPC_ORDER = ["histogram", "jacobi", "spmv", "stream", "transpose"]

__all__ = [
    "HistogramWorkload",
    "JacobiWorkload",
    "SpmvWorkload",
    "StreamWorkload",
    "TransposeWorkload",
    "HPC_ORDER",
]
