"""CLI verbs of the serving layer: daemons and one-shot clients.

``serve`` starts the asyncio worker daemon in the foreground (Ctrl-C or a
client ``shutdown`` request stops it cleanly); ``route`` starts the
cluster router over a ring of workers; ``submit`` is a thin client for
one-shot submissions; ``stats`` and ``health`` are first-class
observability verbs with human-readable latency/liveness rendering::

    repro-cache serve --port 7411 --jobs 4 --max-pending 64
    repro-cache serve --port 7501 --store shared --shared-dir /mnt/results
    repro-cache route --port 7411 --workers 127.0.0.1:7501,127.0.0.1:7502
    repro-cache submit fig4 --refs 8000             # experiment by id
    repro-cache submit cell --workload fft --label XOR
    repro-cache submit sweep --workload fft --schemes baseline,XOR,4way
    repro-cache stats  [--json]      # p50/p90/p99 per request type
    repro-cache health [--json]      # liveness (+ per-worker ring state)
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import sys
from typing import Any

__all__ = [
    "add_service_commands",
    "cmd_health",
    "cmd_route",
    "cmd_serve",
    "cmd_stats",
    "cmd_submit",
    "DEFAULT_PORT",
]

DEFAULT_PORT = 7411


def add_service_commands(sub: argparse._SubParsersAction) -> None:
    serve = sub.add_parser(
        "serve", help="start the simulation job server (JSON lines over TCP)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"TCP port (default {DEFAULT_PORT}; 0 = ephemeral, printed on start)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="worker processes in the persistent cell pool (0 = all cores)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="admission limit: distinct in-flight cell computations before "
        "requests are rejected with a structured 'overloaded' error",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="default per-request deadline in seconds (requests may override)",
    )
    serve.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        help="per-cell simulation budget in seconds (defaults to --deadline)",
    )
    serve.add_argument(
        "--threads",
        action="store_true",
        help="use a thread pool instead of worker processes (debug/CI only)",
    )
    serve.add_argument("--refs", type=int, default=None, help="default trace length")
    serve.add_argument("--seed", type=int, default=None)
    serve.add_argument("--scale", type=float, default=None)
    serve.add_argument(
        "--store",
        choices=("local", "shared"),
        default="local",
        help="result-store backend: 'local' (private results dir) or "
        "'shared' (cluster-visible two-tier store; requires --shared-dir)",
    )
    serve.add_argument(
        "--shared-dir",
        default=None,
        help="cluster-visible results directory for --store shared",
    )
    serve.add_argument(
        "--cell-delay",
        type=float,
        default=None,
        help="artificial per-cell service time in seconds (load-generator "
        "knob for scaling benches; leave unset in production)",
    )

    route = sub.add_parser(
        "route",
        help="start the cluster router: consistent-hash cells over workers",
    )
    route.add_argument("--host", default="127.0.0.1")
    route.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"TCP port (default {DEFAULT_PORT}; 0 = ephemeral, printed on start)",
    )
    route.add_argument(
        "--workers",
        required=True,
        help="comma-separated worker addresses, e.g. "
        "127.0.0.1:7501,127.0.0.1:7502",
    )
    route.add_argument("--max-pending", type=int, default=256)
    route.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="default per-request deadline in seconds (requests may override)",
    )
    route.add_argument(
        "--probe-interval",
        type=float,
        default=1.0,
        help="seconds between worker health probes (ring ejection/rejoin)",
    )
    route.add_argument(
        "--probe-timeout",
        type=float,
        default=2.0,
        help="per-probe timeout before a worker is ejected",
    )
    route.add_argument(
        "--vnodes",
        type=int,
        default=None,
        help="virtual nodes per worker on the hash ring (default 128)",
    )
    route.add_argument("--refs", type=int, default=None, help="default trace length")
    route.add_argument("--seed", type=int, default=None)
    route.add_argument("--scale", type=float, default=None)
    route.add_argument(
        "--store",
        choices=("local", "shared"),
        default="local",
        help="router-side store probe backend; with 'shared' the router "
        "answers warm keys without dialing any worker",
    )
    route.add_argument("--shared-dir", default=None)

    for verb, help_text in (
        ("stats", "fetch and render a server/router stats snapshot"),
        ("health", "fetch and render a server/router health probe"),
    ):
        p = sub.add_parser(verb, help=help_text)
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=DEFAULT_PORT)
        p.add_argument(
            "--json", action="store_true", help="raw JSON instead of a summary"
        )

    submit = sub.add_parser(
        "submit", help="submit work to a running job server and print the reply"
    )
    submit.add_argument(
        "target",
        help="experiment id (fig1..fig14), or one of: cell, sweep, health, "
        "stats, shutdown",
    )
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=DEFAULT_PORT)
    submit.add_argument("--kind", default="indexing", help="cell: engine cell kind")
    submit.add_argument("--workload", default=None, help="cell/sweep: workload name")
    submit.add_argument("--label", default=None, help="cell: scheme/model label")
    submit.add_argument(
        "--schemes",
        default="baseline,XOR,Odd_Multiplier,Prime_Modulo",
        help="sweep: comma-separated labels",
    )
    submit.add_argument(
        "--deadline", type=float, default=None, help="per-request deadline (seconds)"
    )
    submit.add_argument(
        "--arrays", action="store_true", help="include per-set arrays in the reply"
    )
    submit.add_argument(
        "--quiet", action="store_true", help="suppress streamed progress events"
    )
    submit.add_argument("--refs", type=int, default=None, help="config override")
    submit.add_argument("--seed", type=int, default=None)
    submit.add_argument("--scale", type=float, default=None)


# -- serve -------------------------------------------------------------------------


def _daemon_config(args: argparse.Namespace, **extra: Any):
    """Shared ``serve``/``route`` flag → :class:`PaperConfig` mapping."""
    from dataclasses import replace
    from pathlib import Path

    from ..experiments.config import PaperConfig

    updates: dict[str, Any] = dict(extra)
    if args.refs is not None:
        updates["ref_limit"] = args.refs
    if args.seed is not None:
        updates["seed"] = args.seed
    if args.scale is not None:
        updates["workload_scale"] = args.scale
    if getattr(args, "store", "local") != "local":
        if args.shared_dir is None:
            raise SystemExit("error: --store shared requires --shared-dir")
        updates["result_store"] = args.store
        updates["shared_store_dir"] = Path(args.shared_dir)
    return replace(PaperConfig(), **updates)


def cmd_serve(args: argparse.Namespace) -> int:
    from .server import ReproServer

    updates: dict[str, Any] = {"jobs": args.jobs}
    if args.cell_timeout is not None:
        updates["cell_timeout"] = args.cell_timeout
    if args.cell_delay is not None:
        updates["cell_delay"] = args.cell_delay
    config = _daemon_config(args, **updates)
    from ..experiments.engine.parallel import effective_jobs

    server = ReproServer(
        config,
        host=args.host,
        port=args.port,
        workers=effective_jobs(args.jobs),
        max_pending=args.max_pending,
        use_processes=not args.threads,
        default_deadline=args.deadline,
    )

    async def main() -> None:
        await server.start()
        print(
            f"repro.service listening on {server.host}:{server.port} "
            f"(workers={effective_jobs(args.jobs)}, "
            f"max_pending={args.max_pending})",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.close()
        print("repro.service stopped", flush=True)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("repro.service interrupted; shut down", file=sys.stderr)
    return 0


# -- route -------------------------------------------------------------------------


def cmd_route(args: argparse.Namespace) -> int:
    from ..cluster.ring import DEFAULT_VNODES
    from ..cluster.router import ClusterRouter, parse_worker

    workers = [w.strip() for w in args.workers.split(",") if w.strip()]
    if not workers:
        print("error: --workers must list at least one host:port", file=sys.stderr)
        return 2
    try:
        for addr in workers:
            parse_worker(addr)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    config = _daemon_config(args)
    router = ClusterRouter(
        workers,
        config,
        host=args.host,
        port=args.port,
        max_pending=args.max_pending,
        default_deadline=args.deadline,
        probe_interval=args.probe_interval,
        probe_timeout=args.probe_timeout,
        vnodes=args.vnodes if args.vnodes is not None else DEFAULT_VNODES,
    )

    async def main() -> None:
        await router.start()
        alive = await router.probe_workers()
        up = sum(1 for ok in alive.values() if ok)
        print(
            f"repro.cluster router listening on {router.host}:{router.port} "
            f"({up}/{len(alive)} workers up: "
            f"{', '.join(router.ring.nodes)})",
            flush=True,
        )
        try:
            await router.serve_forever()
        finally:
            await router.close()
        print("repro.cluster router stopped", flush=True)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("repro.cluster router interrupted; shut down", file=sys.stderr)
    return 0


# -- stats / health ----------------------------------------------------------------


def _fmt_seconds(seconds: float) -> str:
    if seconds <= 0:
        return "0"
    if seconds < 0.001:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def _render_stats(snapshot: dict[str, Any], where: str) -> str:
    lines: list[str] = []
    role = snapshot.get("role", "server")
    lines.append(
        f"repro.service {role} @ {where} — uptime "
        f"{_fmt_seconds(float(snapshot.get('uptime_seconds', 0.0)))}"
    )
    requests = snapshot.get("requests") or {}
    if requests:
        lines.append(
            "requests: "
            + "  ".join(f"{k}={v}" for k, v in sorted(requests.items()))
        )
    errors = snapshot.get("errors") or {}
    if errors:
        lines.append(
            "errors:   "
            + "  ".join(f"{k}={v}" for k, v in sorted(errors.items()))
        )
    cells = snapshot.get("cells") or {}
    if cells:
        lines.append(
            "cells:    "
            f"submitted={cells.get('submitted', 0)} "
            f"executed={cells.get('executed', 0)} "
            f"cache_hits={cells.get('cache_hits', 0)} "
            f"coalesced={cells.get('coalesced', 0)} "
            f"rejected={cells.get('rejected', 0)} "
            f"failed={cells.get('failed', 0)} "
            f"(hit ratio {100 * float(cells.get('cache_hit_ratio', 0.0)):.1f}%)"
        )
    latency = snapshot.get("latency") or {}
    if latency:
        lines.append("latency (seconds; bucket upper bounds):")
        header = (
            f"  {'type':<12}{'count':>8}{'mean':>10}{'p50':>10}"
            f"{'p90':>10}{'p99':>10}{'max':>10}"
        )
        lines.append(header)
        for rtype, hist in sorted(latency.items()):
            lines.append(
                f"  {rtype:<12}{hist.get('count', 0):>8}"
                f"{_fmt_seconds(float(hist.get('mean_seconds', 0))):>10}"
                f"{_fmt_seconds(float(hist.get('p50_seconds', 0))):>10}"
                f"{_fmt_seconds(float(hist.get('p90_seconds', 0))):>10}"
                f"{_fmt_seconds(float(hist.get('p99_seconds', 0))):>10}"
                f"{_fmt_seconds(float(hist.get('max_seconds', 0))):>10}"
            )
    cluster = snapshot.get("cluster")
    if cluster:
        alive = cluster.get("alive") or []
        workers = cluster.get("workers") or {}
        lines.append(
            f"cluster:  {len(alive)}/{len(workers)} workers alive"
            + (f" ({', '.join(alive)})" if alive else "")
        )
        routing = cluster.get("routing") or {}
        if routing:
            lines.append(
                "routing:  "
                + "  ".join(f"{k}={v}" for k, v in sorted(routing.items()))
            )
        totals = cluster.get("worker_cell_totals") or {}
        if totals:
            lines.append(
                "workers:  "
                f"executed={totals.get('executed', 0)} "
                f"cache_hits={totals.get('cache_hits', 0)} "
                f"submitted={totals.get('submitted', 0)} "
                f"coalesced={totals.get('coalesced', 0)}"
            )
        for node, snap in sorted(workers.items()):
            if snap is None:
                lines.append(f"  {node:<24} (unreachable)")
                continue
            wcells = snap.get("cells") or {}
            lines.append(
                f"  {node:<24} executed={wcells.get('executed', 0)} "
                f"cache_hits={wcells.get('cache_hits', 0)} "
                f"uptime={_fmt_seconds(float(snap.get('uptime_seconds', 0)))}"
            )
    return "\n".join(lines)


def _render_health(health: dict[str, Any], where: str) -> str:
    lines = [
        f"{health.get('status', '?')} — {health.get('server', 'repro.service')} "
        f"v{health.get('version', '?')} @ {where} "
        f"(pid {health.get('pid', '?')}, uptime "
        f"{_fmt_seconds(float(health.get('uptime_seconds', 0.0)))})"
    ]
    lines.append(
        f"connections open: {health.get('connections_open', 0)}; "
        f"queue depth: {health.get('queue_depth', 0)}"
    )
    workers = health.get("workers")
    if workers is not None:
        ring = health.get("ring") or {}
        lines.append(
            f"ring: {ring.get('nodes', len(workers))} workers × "
            f"{ring.get('vnodes', '?')} vnodes; "
            f"{health.get('workers_alive', 0)}/{len(workers)} alive"
        )
        for node, state in sorted(workers.items()):
            status = "up" if state.get("alive") else "DOWN"
            linked = "connected" if state.get("connected") else "not connected"
            lines.append(f"  {node:<24} {status:<5} ({linked})")
    return "\n".join(lines)


def _observability_verb(args: argparse.Namespace, verb: str) -> int:
    from .client import ServiceClient, ServiceError

    where = f"{args.host}:{args.port}"
    try:
        with ServiceClient(args.host, args.port) as client:
            reply = client.stats() if verb == "stats" else client.health()
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except (ConnectionError, OSError) as exc:
        print(
            f"error: cannot reach repro.service at {where}: {exc}",
            file=sys.stderr,
        )
        return 3
    with contextlib.suppress(BrokenPipeError):
        if args.json:
            print(json.dumps(reply, indent=2, sort_keys=True))
        elif verb == "stats":
            print(_render_stats(reply, where))
        else:
            print(_render_health(reply, where))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    return _observability_verb(args, "stats")


def cmd_health(args: argparse.Namespace) -> int:
    return _observability_verb(args, "health")


# -- submit ------------------------------------------------------------------------


def _overrides_from(args: argparse.Namespace) -> dict[str, Any]:
    overrides: dict[str, Any] = {}
    if args.refs is not None:
        overrides["ref_limit"] = args.refs
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.scale is not None:
        overrides["workload_scale"] = args.scale
    return overrides


def cmd_submit(args: argparse.Namespace) -> int:
    from ..experiments import available_experiments
    from .client import ServiceClient, ServiceError

    def on_event(frame: dict[str, Any]) -> None:
        if not args.quiet:
            cell = frame.get("cell", "?")
            print(
                f"  [{frame.get('done', '?')}/{frame.get('total', '?')}] {cell}",
                file=sys.stderr,
                flush=True,
            )

    target = args.target
    # Usage errors are decidable without a server; report them before dialing.
    known = ("cell", "sweep", "health", "stats", "shutdown")
    if target not in known and target not in available_experiments():
        print(
            f"error: unknown submit target {target!r}; expected an "
            f"experiment id, cell, sweep, health, stats or shutdown",
            file=sys.stderr,
        )
        return 2
    if target == "cell" and (not args.workload or not args.label):
        print("error: submit cell requires --workload and --label", file=sys.stderr)
        return 2
    if target == "sweep" and not args.workload:
        print("error: submit sweep requires --workload", file=sys.stderr)
        return 2
    try:
        with ServiceClient(args.host, args.port) as client:
            if target == "health":
                reply: dict[str, Any] = client.health()
            elif target == "stats":
                reply = client.stats()
            elif target == "shutdown":
                reply = {"shutting_down": client.shutdown()}
            elif target == "cell":
                reply = client.submit_cell(
                    args.kind,
                    args.workload,
                    args.label,
                    config=_overrides_from(args),
                    deadline=args.deadline,
                    arrays=args.arrays,
                )
            elif target == "sweep":
                schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
                reply = client.sweep(
                    args.workload,
                    schemes,
                    config=_overrides_from(args),
                    deadline=args.deadline,
                    arrays=args.arrays,
                    on_event=on_event,
                )
            else:
                reply = client.run_experiment(
                    target,
                    config=_overrides_from(args),
                    deadline=args.deadline,
                    on_event=on_event,
                )
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except (ConnectionError, OSError) as exc:
        print(
            f"error: cannot reach repro.service at {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 3
    with contextlib.suppress(BrokenPipeError):
        print(json.dumps(reply, indent=2, sort_keys=True))
    return 0
