"""Figures 9/10 bench: kurtosis and skewness of misses, indexing schemes."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment


def test_fig09_indexing_kurtosis(benchmark, config):
    result = run_once(benchmark, lambda: run_experiment("fig9", config))
    print()
    print(result)
    values = [v for label, row in result.rows.items() if label != "Average" for v in row.values()]
    # Shape: mixed — some schemes sharply increase miss non-uniformity.
    assert any(v > 0 for v in values)
    assert any(v < 0 for v in values)


def test_fig10_indexing_skewness(benchmark, config):
    result = run_once(benchmark, lambda: run_experiment("fig10", config))
    print()
    print(result)
    values = [v for label, row in result.rows.items() if label != "Average" for v in row.values()]
    assert any(v != 0 for v in values)
