"""Parallel experiment engine tests.

Locks the engine's three contracts:

1. **Equivalence** — ``jobs=4`` and ``jobs=1`` produce row-for-row identical
   ``ExperimentResult``s (values, row order, rendered tables, arrays).
2. **Memoization** — a warm result cache short-circuits recomputation
   (counter-verified: zero cell simulations on the second run), and a
   corrupted or truncated cache entry is detected and recomputed, never
   trusted.
3. **Diagnosability** — worker failures surface as ``CellExecutionError``
   naming the failing (workload, scheme) cell; the registry raises a
   helpful ``KeyError`` for unknown experiment ids and orders
   ``available_experiments()`` numerically.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.experiments import (
    CellExecutionError,
    PaperConfig,
    available_experiments,
    run_experiment,
)
from repro.experiments import fig04_indexing_missrate as fig04
from repro.experiments import fig06_progassoc_missrate as fig06
from repro.experiments.engine import (
    ENGINE_VERSION,
    ResultCache,
    SimCell,
    cell_key,
    effective_jobs,
    make_cell,
    run_cells,
    trace_fingerprint,
)
from repro.experiments.engine.cells import execute_cell
from repro.experiments.report import render_table
from repro.experiments.runner import (
    profile_trace_path,
    workload_trace,
    workload_trace_path,
)

REFS = 4000
#: Cheap figures used for the jobs=1 ≡ jobs=4 equivalence checks.
CHEAP_FIGURES = ["fig1", "fig4", "fig8"]


@pytest.fixture(autouse=True)
def _clear_figure_memos():
    """The figure modules memoize one config in-process; tests want cold runs."""
    fig04._CACHE.clear()
    fig06._CACHE.clear()
    yield
    fig04._CACHE.clear()
    fig06._CACHE.clear()


@pytest.fixture
def config(tmp_path) -> PaperConfig:
    return replace(PaperConfig(), ref_limit=REFS, trace_cache_dir=tmp_path / "traces")


def _comparable(result):
    return (
        list(result.rows),  # row order matters ("row-for-row identical")
        result.rows,
        result.columns,
        render_table(result),
    )


class TestParallelSequentialEquivalence:
    @pytest.mark.parametrize("eid", CHEAP_FIGURES)
    def test_jobs4_identical_to_jobs1(self, eid, config, tmp_path):
        seq_cfg = replace(config, result_cache_dir=tmp_path / "rc_seq")
        par_cfg = replace(config, result_cache_dir=tmp_path / "rc_par")
        seq = run_experiment(eid, seq_cfg, jobs=1)
        fig04._CACHE.clear()
        fig06._CACHE.clear()
        par = run_experiment(eid, par_cfg, jobs=4)
        assert _comparable(seq) == _comparable(par)
        for key in seq.arrays:
            if isinstance(seq.arrays[key], np.ndarray):
                np.testing.assert_array_equal(seq.arrays[key], par.arrays[key])
        assert par.engine_stats["jobs"] == 4
        assert seq.engine_stats["jobs"] == 1
        assert par.engine_stats["cache_misses"] == seq.engine_stats["cache_misses"]

    def test_engine_run_cells_order_is_declaration_order(self, config):
        cells = [
            make_cell("baseline", w, "baseline", config)
            for w in ("sha", "fft", "crc")
        ]
        results, _ = run_cells(cells, config, jobs=2)
        assert list(results) == [("sha", "baseline"), ("fft", "baseline"), ("crc", "baseline")]


class TestResultCacheMemoization:
    def test_warm_cache_short_circuits_recomputation(self, config):
        cold = run_experiment("fig4", config)
        assert cold.engine_stats["cache_misses"] == cold.engine_stats["cells_total"] > 0
        assert cold.engine_stats["cache_hits"] == 0
        assert cold.engine_stats["cell_seconds"]  # per-cell wall times recorded

        fig04._CACHE.clear()  # force a fresh engine pass over the disk cache
        warm = run_experiment("fig4", config)
        assert warm.engine_stats["cache_misses"] == 0, "warm run must simulate nothing"
        assert warm.engine_stats["cache_hits"] == warm.engine_stats["cells_total"]
        assert warm.engine_stats["cell_seconds"] == {}
        assert _comparable(cold) == _comparable(warm)

    def test_result_cache_shared_across_figures(self, config):
        """fig4 and fig6 share per-benchmark baseline cells."""
        run_experiment("fig4", config)
        r6 = run_experiment("fig6", config)
        assert r6.engine_stats["cache_hits"] >= 11  # one baseline per benchmark

    def test_cache_location_defaults_beside_trace_cache(self, config):
        run_experiment("fig1", config)
        assert (config.trace_cache_dir / "results").exists()
        assert len(ResultCache(config.trace_cache_dir / "results")) >= 1

    def test_disabled_result_cache_always_recomputes(self, config):
        cfg = replace(config, use_result_cache=False)
        first = run_experiment("fig1", cfg)
        fig04._CACHE.clear()
        again = run_experiment("fig1", cfg)
        assert first.engine_stats["cache_misses"] == 1
        assert again.engine_stats["cache_misses"] == 1
        assert not (cfg.trace_cache_dir / "results").exists() or not list(
            (cfg.trace_cache_dir / "results").glob("*.npz")
        )


class TestCorruptionDetection:
    def _single_cell_key_and_cache(self, config):
        cell = make_cell("baseline", "crc", "baseline", config)
        cache = ResultCache(config.result_cache_path)
        results, stats = run_cells([cell], config, jobs=1, result_cache=cache)
        assert stats.cache_misses == 1
        path = next(iter(config.result_cache_path.glob("*.npz")))
        return cell, cache, path, results[("crc", "baseline")]

    def test_truncated_entry_recomputed(self, config):
        cell, cache, path, original = self._single_cell_key_and_cache(config)
        path.write_bytes(path.read_bytes()[: max(8, path.stat().st_size // 3)])
        results, stats = run_cells([cell], config, jobs=1, result_cache=cache)
        assert stats.cache_misses == 1 and stats.cache_hits == 0
        assert results[("crc", "baseline")].misses == original.misses

    def test_garbage_entry_recomputed(self, config):
        cell, cache, path, original = self._single_cell_key_and_cache(config)
        path.write_bytes(b"this is not an npz file at all")
        results, stats = run_cells([cell], config, jobs=1, result_cache=cache)
        assert stats.cache_misses == 1
        assert results[("crc", "baseline")].misses == original.misses

    def test_checksum_tamper_detected(self, config):
        """A structurally valid entry with doctored counters must be rejected."""
        import json

        cell, cache, path, original = self._single_cell_key_and_cache(config)
        key = path.stem
        entry = cache.load(key)
        assert entry is not None  # pristine entry verifies
        # Re-store with a lie, bypassing checksum recomputation.
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta"]).decode())
            arrays = {
                k: data[k].copy()
                for k in ("slot_accesses", "slot_hits", "slot_misses")
            }
        meta["misses"] = meta["misses"] + 1  # checksum now stale
        np.savez_compressed(
            path,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            **arrays,
        )
        assert cache.load(key) is None, "tampered entry must be treated as a miss"
        assert not path.exists(), "tampered entry must be deleted"
        results, stats = run_cells([cell], config, jobs=1, result_cache=cache)
        assert stats.cache_misses == 1
        assert results[("crc", "baseline")].misses == original.misses

    def test_stale_engine_version_recomputed(self, config, monkeypatch):
        cell, cache, path, _ = self._single_cell_key_and_cache(config)
        key = path.stem
        monkeypatch.setattr("repro.experiments.engine.cache.ENGINE_VERSION", ENGINE_VERSION + 1)
        assert cache.load(key) is None

    def test_fingerprint_tracks_trace_content(self, config):
        t1 = workload_trace("crc", config)
        t2 = workload_trace("crc", replace(config, seed=999))
        assert trace_fingerprint(t1) == trace_fingerprint(t1)
        assert trace_fingerprint(t1) != trace_fingerprint(t2)


class TestErrorPropagation:
    def test_unknown_experiment_message_names_id_and_known(self, config):
        with pytest.raises(KeyError) as exc:
            run_experiment("fig99", config)
        msg = str(exc.value)
        assert "fig99" in msg and "known" in msg and "fig4" in msg

    def test_available_experiments_numeric_ordering(self):
        ids = available_experiments()
        fig_ids = [e for e in ids if e.startswith("fig")]
        assert fig_ids.index("fig4") < fig_ids.index("fig10")
        assert fig_ids.index("fig9") < fig_ids.index("fig13")
        assert ids == sorted(
            ids, key=lambda e: (int("".join(c for c in e if c.isdigit()) or 0), e)
        )

    def test_sequential_failure_names_cell(self, config):
        bad = SimCell(kind="indexing", workload="no_such_workload", label="XOR")
        with pytest.raises(CellExecutionError) as exc:
            run_cells([bad], config, jobs=1)
        assert "no_such_workload" in str(exc.value) and "XOR" in str(exc.value)

    def test_worker_failure_names_cell(self, config):
        # Two pending cells + jobs=2 → the ProcessPoolExecutor path; the bad
        # label only explodes inside the worker.
        cells = [
            make_cell("baseline", "crc", "baseline", config),
            SimCell(kind="progassoc", workload="crc", label="Nonexistent_Model"),
        ]
        with pytest.raises(CellExecutionError) as exc:
            run_cells(cells, config, jobs=2)
        assert "(crc, Nonexistent_Model)" in str(exc.value)
        assert exc.value.__cause__ is not None

    def test_prefetch_failure_names_cell(self, config):
        bad = SimCell(kind="indexing", workload="no_such_workload", label="Prime_Modulo")
        with pytest.raises(CellExecutionError) as exc:
            run_cells([make_cell("baseline", "crc", "baseline", config), bad], config, jobs=2)
        assert "(no_such_workload, Prime_Modulo)" in str(exc.value)

    def test_unknown_cell_kind_rejected_eagerly(self, config):
        with pytest.raises(ValueError):
            make_cell("warp_drive", "crc", "baseline", config)


class TestCacheKeyAudit:
    """Every outcome-changing model parameter must reach the cache key."""

    def _key(self, cell, config):
        fp = trace_fingerprint(workload_trace(cell.workload, config))
        return cell_key(
            cell.kind,
            cell.label,
            cell.params,
            config.geometry,
            fp,
            None,
            ways=cell.ways,
            policy=cell.policy,
        )

    def test_engine_version_is_three(self):
        assert ENGINE_VERSION == 3

    @pytest.mark.parametrize(
        "kind,label",
        [
            ("progassoc", "Column_associative"),
            ("colassoc", "ColAssoc_Base"),
            ("colassoc", "ColAssoc_XOR"),
            ("bounds", "ColAssoc"),
        ],
    )
    def test_protect_conventional_distinguishes_keys(self, kind, label, config):
        protected = make_cell(kind, "crc", label, config)
        unprotected = make_cell(
            kind, "crc", label, replace(config, protect_conventional=False)
        )
        assert ("protect_conventional", True) in protected.params
        assert ("protect_conventional", False) in unprotected.params
        assert self._key(protected, config) != self._key(unprotected, config)

    def test_bcache_mapping_point_distinguishes_keys(self, config):
        base = make_cell("progassoc", "crc", "B_Cache", config)
        other = make_cell(
            "progassoc", "crc", "B_Cache", replace(config, bcache_mapping_factor=4)
        )
        assert self._key(base, config) != self._key(other, config)
        bas = make_cell("progassoc", "crc", "B_Cache", replace(config, bcache_bas=4))
        assert self._key(base, config) != self._key(bas, config)

    def test_indexing_scheme_params_distinguish_keys(self, config):
        base = make_cell("colassoc", "crc", "ColAssoc_Odd_Multiplier", config)
        other = make_cell(
            "colassoc", "crc", "ColAssoc_Odd_Multiplier", replace(config, odd_multiplier=31)
        )
        assert self._key(base, config) != self._key(other, config)

    def test_engine_choice_is_not_in_keys(self, config):
        """auto and sequential are bit-identical, so they must share entries."""
        auto = make_cell("progassoc", "crc", "Column_associative", config)
        seq = make_cell(
            "progassoc", "crc", "Column_associative", replace(config, engine="sequential")
        )
        assert auto.params == seq.params
        assert self._key(auto, config) == self._key(seq, config)

    def test_warm_cache_survives_engine_switch(self, config):
        """A cache written by the fast engine must serve the sequential run."""
        cells = [make_cell("progassoc", "crc", "B_Cache", config)]
        cache = ResultCache(config.result_cache_path)
        _, cold = run_cells(cells, config, jobs=1, result_cache=cache)
        assert cold.cache_misses == 1
        seq_cfg = replace(config, engine="sequential")
        seq_cells = [make_cell("progassoc", "crc", "B_Cache", seq_cfg)]
        res, warm = run_cells(seq_cells, seq_cfg, jobs=1, result_cache=cache)
        assert warm.cache_hits == 1 and warm.cache_misses == 0

    def test_batch_sweeps_is_not_in_keys(self, config):
        """Batching is an execution knob; batched and per-cell runs are
        bit-identical, so they must share cache entries."""
        for kind, label in [
            ("baseline", "baseline"),
            ("indexing", "XOR"),
            ("assocsweep", "4way"),
            ("progassoc", "Column_associative"),
        ]:
            batched = make_cell(kind, "crc", label, config)
            plain = make_cell(
                kind, "crc", label, replace(config, batch_sweeps=False)
            )
            assert batched == plain, (kind, label)
            assert batched.params == plain.params, (kind, label)
            assert self._key(batched, config) == self._key(plain, config)

    def test_warm_cache_survives_batching_switch(self, config):
        """Entries written by a batched family must serve the per-cell run
        and vice versa — in both directions, zero recomputation."""
        labels = [("baseline", "baseline")] + [
            ("assocsweep", lab) for lab in ("2way", "4way", "8way")
        ]
        cells = [make_cell(kind, "crc", lab, config) for kind, lab in labels]
        cache = ResultCache(config.result_cache_path)
        # Batched cold run: one Mattson family answers all four cells.
        _, cold = run_cells(cells, config, jobs=1, result_cache=cache)
        assert cold.cache_misses == len(cells)
        assert cold.families_batched == 1 and cold.cells_batched == len(cells)
        # Per-cell warm run against the batched entries: all hits.
        plain_cfg = replace(config, batch_sweeps=False)
        plain_cells = [make_cell(kind, "crc", lab, plain_cfg) for kind, lab in labels]
        _, warm = run_cells(plain_cells, plain_cfg, jobs=1, result_cache=cache)
        assert (warm.cache_hits, warm.cache_misses) == (len(cells), 0)
        assert warm.families_batched == 0
        # And the reverse direction, from a fresh cache.
        reverse = ResultCache(config.result_cache_path.parent / "rc_reverse")
        _, cold2 = run_cells(plain_cells, plain_cfg, jobs=1, result_cache=reverse)
        assert cold2.cache_misses == len(cells) and cold2.cells_batched == 0
        _, warm2 = run_cells(cells, config, jobs=1, result_cache=reverse)
        assert (warm2.cache_hits, warm2.cache_misses) == (len(cells), 0)

    def test_policy_distinguishes_keys(self, config):
        keys = {
            self._key(make_cell("policysweep", "crc", f"modulo:{p}", config), config)
            for p in ("lru", "fifo", "plru", "mru", "lfu", "random")
        }
        assert len(keys) == 6

    def test_legacy_victim_key_unchanged_by_aux_migration(self):
        """Rehosting VictimCache on the aux subsystem must not orphan any
        warm store: the legacy Victim8 bounds key — pinned here literally,
        as computed before the migration — still comes out of cell_key."""
        from repro.core.address import PAPER_L1_GEOMETRY

        key = cell_key(
            "bounds",
            "Victim8",
            (("victim_lines", 8),),
            PAPER_L1_GEOMETRY,
            "f" * 64,
            None,
            None,
            "lru",
        )
        assert key == (
            "3fee143d9440e41ed56ce85d82b95aa67187643b010bd420ca2bdbfc44620099"
        )

    def test_aux_labels_and_depths_distinguish_keys(self, config):
        labels = [
            "modulo:vc4",
            "modulo:vc8",
            "modulo:mc4",
            "modulo:sb4",
            "modulo:vc+sb4",
            "xor:vc4",
        ]
        keys = {
            self._key(make_cell("auxsweep", "crc", lab, config), config)
            for lab in labels
        }
        assert len(keys) == len(labels)

    def test_aux_stream_knobs_keyed_only_for_stream_cells(self, config):
        """aux_streams/aux_allocate change sb outcomes, so sb-containing
        cells must key them; vc/mc-only cells are unaffected by them and
        must NOT key them (a knob flip would needlessly cold-miss)."""
        streams_cfg = replace(config, aux_streams=8, aux_allocate="always")
        for label in ("modulo:sb4", "modulo:vc+sb4", "modulo:mc+sb4"):
            base = make_cell("auxsweep", "crc", label, config)
            other = make_cell("auxsweep", "crc", label, streams_cfg)
            assert ("aux_streams", 4) in base.params, label
            assert ("aux_allocate", "miss") in base.params, label
            assert self._key(base, config) != self._key(other, config), label
        for label in ("modulo:vc4", "modulo:mc4"):
            base = make_cell("auxsweep", "crc", label, config)
            other = make_cell("auxsweep", "crc", label, streams_cfg)
            assert base.params == other.params == (), label
            assert self._key(base, config) == self._key(other, config), label

    def test_aux_odd_multiplier_reaches_keys(self, config):
        base = make_cell("auxsweep", "crc", "odd_multiplier:vc4", config)
        other = make_cell(
            "auxsweep", "crc", "odd_multiplier:vc4", replace(config, odd_multiplier=31)
        )
        assert self._key(base, config) != self._key(other, config)

    def test_policy_seed_in_keys_for_random_cells_only(self, config):
        other = replace(config, policy_seed=7)
        rand_a = make_cell("policysweep", "crc", "modulo:random", config)
        rand_b = make_cell("policysweep", "crc", "modulo:random", other)
        assert ("policy_seed", 0) in rand_a.params
        assert ("policy_seed", 7) in rand_b.params
        assert self._key(rand_a, config) != self._key(rand_b, config)
        # Deterministic policies ignore the seed: same cell, same key.
        det_a = make_cell("policysweep", "crc", "modulo:fifo", config)
        det_b = make_cell("policysweep", "crc", "modulo:fifo", other)
        assert det_a == det_b
        assert self._key(det_a, config) == self._key(det_b, config)

    def test_policy_batching_is_not_in_keys(self, config):
        """The policy axis is an execution knob like batch_sweeps: batched
        and per-cell policysweep runs must share cache entries."""
        for label in ("modulo:fifo", "xor:random"):
            batched = make_cell("policysweep", "crc", label, config)
            plain = make_cell(
                "policysweep", "crc", label, replace(config, batch_sweeps=False)
            )
            assert batched == plain, label
            assert self._key(batched, config) == self._key(plain, config)

    def test_warm_cache_survives_policy_batching_switch(self, config):
        """Entries written by a batched policy family must serve the
        per-cell run and vice versa — both directions, zero recomputation."""
        labels = [f"modulo:{p}" for p in ("lru", "fifo", "plru", "random")]
        cells = [make_cell("policysweep", "crc", lab, config) for lab in labels]
        cache = ResultCache(config.result_cache_path)
        _, cold = run_cells(cells, config, jobs=1, result_cache=cache)
        assert cold.cache_misses == len(cells)
        assert cold.families_batched == 1 and cold.cells_batched == len(cells)
        plain_cfg = replace(config, batch_sweeps=False)
        plain_cells = [
            make_cell("policysweep", "crc", lab, plain_cfg) for lab in labels
        ]
        _, warm = run_cells(plain_cells, plain_cfg, jobs=1, result_cache=cache)
        assert (warm.cache_hits, warm.cache_misses) == (len(cells), 0)
        assert warm.families_batched == 0
        reverse = ResultCache(config.result_cache_path.parent / "rc_pol_reverse")
        _, cold2 = run_cells(plain_cells, plain_cfg, jobs=1, result_cache=reverse)
        assert cold2.cache_misses == len(cells) and cold2.cells_batched == 0
        _, warm2 = run_cells(cells, config, jobs=1, result_cache=reverse)
        assert (warm2.cache_hits, warm2.cache_misses) == (len(cells), 0)


class TestTracePathTransfer:
    """Workers consume trace paths, not pickled address arrays."""

    def test_workload_trace_path_materialises_and_roundtrips(self, config):
        path = workload_trace_path("crc", config)
        assert path.exists() and path.suffix == ".rtr"  # raw mmap format
        from repro.trace.io import load_trace

        via_path = load_trace(path).with_name("crc")
        via_cache = workload_trace("crc", config)
        np.testing.assert_array_equal(via_path.addresses, via_cache.addresses)
        assert via_path.name == via_cache.name

    def test_profile_trace_path_differs_from_eval_trace(self, config):
        assert profile_trace_path("crc", config) != workload_trace_path("crc", config)
        zero = replace(config, profile_seed_offset=0)
        assert profile_trace_path("crc", zero) == workload_trace_path("crc", zero)

    def test_execute_cell_by_path_is_bit_identical(self, config):
        for kind, label in [
            ("baseline", "baseline"),
            ("progassoc", "B_Cache"),
            ("indexing", "Givargis"),
        ]:
            cell = make_cell(kind, "crc", label, config)
            tpath = workload_trace_path("crc", config)
            ppath = profile_trace_path("crc", config) if cell.needs_profile else None
            by_path = execute_cell(cell, config, tpath, ppath)
            by_spec = execute_cell(cell, config)
            assert by_path.misses == by_spec.misses, (kind, label)
            assert by_path.hits == by_spec.hits, (kind, label)
            assert by_path.lookup_cycles == by_spec.lookup_cycles, (kind, label)
            assert by_path.trace_name == by_spec.trace_name, (kind, label)
            np.testing.assert_array_equal(by_path.slot_misses, by_spec.slot_misses)

    def test_parallel_path_transfer_bit_identical(self, config, tmp_path):
        cells = [
            make_cell("progassoc", w, label, config)
            for w in ("crc", "fft")
            for label in ("B_Cache", "Column_associative")
        ]
        seq_cfg = replace(config, result_cache_dir=tmp_path / "rc_a")
        par_cfg = replace(config, result_cache_dir=tmp_path / "rc_b")
        seq, _ = run_cells(cells, seq_cfg, jobs=1)
        par, _ = run_cells(cells, par_cfg, jobs=3)
        assert list(seq) == list(par)
        for key in seq:
            assert seq[key].misses == par[key].misses, key
            assert seq[key].extra == par[key].extra, key
            np.testing.assert_array_equal(
                seq[key].slot_accesses, par[key].slot_accesses
            )


class TestJobsResolution:
    def test_effective_jobs(self):
        import os

        assert effective_jobs(1) == 1
        assert effective_jobs(7) == 7
        auto = os.cpu_count() or 1
        assert effective_jobs(0) == auto
        assert effective_jobs(None) == auto
        assert effective_jobs(-3) == auto

    def test_run_experiment_jobs_override(self, config):
        r = run_experiment("fig1", config, jobs=2)
        assert r.engine_stats["jobs"] == 2
