"""Extension experiment: the Mattson associativity curve per workload.

The paper treats associativity and indexing as competing remedies for the
same disease — non-uniform set pressure.  This experiment plots the disease
directly: for each MiBench workload, the miss rate of the direct-mapped
baseline and of 2/4/8/16-way LRU caches over the *same* 1024 sets
(capacity scaling with ways — :meth:`~repro.core.address.CacheGeometry.with_fixed_sets`),
i.e. the classic Mattson stack-distance curve sampled at power-of-two
associativities.

Fixing the set count keeps the set mapping identical across every column,
which is exactly the engine's "assoc" sweep-family condition: the whole
row (baseline + every ``assocsweep`` cell) is answered from **one**
stack-distance pass per workload when batching is enabled, and column by
column when it is not — bit-identical either way.  This makes ext-assoc
both a figure and the natural end-to-end canary for the sweep-batching
fast path (``benchmarks/test_sweep_batching_bench.py``).
"""

from __future__ import annotations

from ..workloads.mibench import MIBENCH_ORDER
from .config import PaperConfig
from .engine import ExperimentEngine, make_cell
from .report import ExperimentResult
from .runner import register_experiment

__all__ = ["run_ext_assoc", "EXT_ASSOC_COLUMNS"]

#: Associativities of the sweep; ``1way`` is the ``baseline`` cell.
EXT_ASSOC_COLUMNS = ["baseline", "2way", "4way", "8way", "16way"]


@register_experiment("ext-assoc")
def run_ext_assoc(config: PaperConfig) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ext-assoc",
        title="Mattson associativity curve: miss rate over fixed sets (LRU)",
        columns=EXT_ASSOC_COLUMNS,
    )
    cells = []
    for bench in MIBENCH_ORDER:
        cells.append(make_cell("baseline", bench, "baseline", config))
        cells.extend(
            make_cell("assocsweep", bench, label, config)
            for label in EXT_ASSOC_COLUMNS[1:]
        )
    sims, stats = ExperimentEngine(config).run(cells)
    for bench in MIBENCH_ORDER:
        result.add_row(
            bench,
            {label: sims[(bench, label)].miss_rate for label in EXT_ASSOC_COLUMNS},
        )
    result.add_average_row()
    result.note("fixed 1024 sets, capacity scales with ways (Mattson sweep)")
    result.note("one stack-distance pass answers each row under batch_sweeps")
    result.engine_stats = stats.as_dict()
    return result


from .warm import provides_traces, workload_spec  # noqa: E402


@provides_traces("ext-assoc")
def ext_assoc_traces(config: PaperConfig):
    return [workload_spec(b, config) for b in MIBENCH_ORDER]
