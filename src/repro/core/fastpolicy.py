"""Exact set-decomposed fast engines for every replacement policy.

:mod:`repro.core.fastsim` solved the LRU axis offline (stack distances);
this module closes the gap for the remaining registered policies — FIFO,
PLRU, MRU, LFU and seeded Random — with replay kernels that are
*bit-identical* to driving :class:`~repro.core.caches.SetAssociativeCache`
one access at a time through :func:`~repro.core.simulator.simulate`:
equal hits/misses/lookup cycles, equal per-set histograms, equal ``extra``
hit classes, and (through :func:`simulate_policy`) equal cache-object end
state, policy internals included.

Design
------
One shared *set-decomposition* pass (the packed-key grouping of
``fastsim``/``fastassoc``) sorts the access stream stably by set and
compresses adjacent same-(set, block) repeats.  A repeated access is a hit
under **every** policy here, and collapsing it preserves each policy's
state exactly:

* FIFO / Random — ``touch`` is a no-op, so hits mutate nothing;
* PLRU — ``touch`` is idempotent (re-touching the MRU way rewrites the
  same tree bits);
* LRU / MRU — re-touching the most-recent way advances the clock but
  changes no *relative* recency order, which is all the victim choice
  reads (absolute stamps are reconstructed separately for the end state);
* LFU — ``touch`` increments a count, so kernels consume the *run
  lengths* instead of visiting each repeat.

Per-policy kernels then replay each set's compressed sub-stream through a
tiny transliteration of the corresponding
:class:`~repro.core.replacement.ReplacementPolicy` state machine (cold
fills take the lowest empty way first, exactly like
``SetAssociativeCache._access_block``).  FIFO reduces further: cold fills
take ways ``0..w-1`` in order and refills cycle through them, so the
victim of fill number ``f`` is simply ``f mod w``.  Random is the one
policy that is *not* set-decomposable — all sets share one seeded PCG64
generator, so the victim stream is coupled to the global interleaving of
misses — and is replayed in global program order over the same compressed
stream, drawing from the generator in bulk when a one-time probe proves
NumPy's bulk ``integers`` word-compatible with scalar draws (the same
state-restoring discipline as the trace recorder's PCG64 replay), and
falling back to per-victim scalar draws otherwise.

Entry points
------------
* :func:`policy_miss_flags` — per-access boolean miss vector (LRU routes
  to the vectorised stack-distance kernel).
* :func:`simulate_policy_set_associative` — the stats-level engine behind
  ``policysweep`` cells and the CLI; ``engine="auto"``/``"sequential"``
  with identical packaging either way.
* :func:`simulate_policy_sweep` — a *policy sweep*: many policies over one
  decode + one index computation + one set-grouping pass (the engine's
  "policy" family axis).
* :func:`simulate_policy` — the cache-object dispatcher mirroring
  :func:`~repro.core.fastassoc.simulate_progassoc`: fires only when
  provably exact (a pristine ``SetAssociativeCache`` with a registered
  policy), reconstructs the full end state, and otherwise falls back to
  the sequential reference engine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from functools import lru_cache

import numpy as np

from ..trace.event import Trace
from .address import CacheGeometry
from .caches.base import EMPTY, CacheStats
from .caches.set_associative import SetAssociativeCache
from .fastsim import lru_miss_flags, per_set_counts
from .indexing.base import IndexingScheme
from .replacement import (
    POLICIES,
    FIFOPolicy,
    LFUPolicy,
    LRUPolicy,
    MRUPolicy,
    PLRUPolicy,
    RandomPolicy,
)
from .simulator import SimulationResult, _result_from_stats, simulate

__all__ = [
    "FAST_POLICIES",
    "has_policy_fast_path",
    "policy_miss_flags",
    "simulate_policy",
    "simulate_policy_set_associative",
    "simulate_policy_sweep",
]

#: Policy registry names with an exact fast kernel (all registered policies).
FAST_POLICIES = ("lru", "fifo", "random", "plru", "mru", "lfu")

_ENGINES = ("auto", "sequential")


# -- shared set decomposition -----------------------------------------------------


@dataclass
class _Grouped:
    """One set-grouped, repeat-compressed view of an access stream.

    Sorted coordinates are stable-by-set (program order within each set);
    ``order`` maps sorted position → original position.  ``kept_pos`` are
    the sorted positions of run heads (adjacent same-(set, block) repeats
    removed), ``run_len`` the length of each run, and ``bounds`` the group
    boundaries of the kept arrays (one ``[start, end)`` pair per distinct
    set present in the trace).
    """

    n: int
    order: np.ndarray
    sorted_idx: np.ndarray
    kept_pos: np.ndarray
    run_len: np.ndarray
    kept_idx: np.ndarray
    kept_blk: np.ndarray
    bounds: np.ndarray  # group start offsets into the kept arrays, + final end


def _group_by_set(blocks: np.ndarray, indices: np.ndarray) -> _Grouped:
    n = int(blocks.size)
    indices64 = np.ascontiguousarray(indices, dtype=np.int64)
    if n and int(indices64.max()) < (1 << 62) // max(n, 1):
        # Packed-key grouping (see fastsim.lru_stack_distances): the key
        # sorts by (set, program order) and decodes both outputs.
        key = np.sort(indices64 * np.int64(n) + np.arange(n, dtype=np.int64))
        sorted_idx = key // n
        order = key - sorted_idx * n
    else:
        order = np.argsort(indices64, kind="stable")
        sorted_idx = indices64[order]
    sorted_blk = np.ascontiguousarray(np.asarray(blocks)[order])
    repeat = np.zeros(n, dtype=bool)
    repeat[1:] = (sorted_idx[1:] == sorted_idx[:-1]) & (
        sorted_blk[1:] == sorted_blk[:-1]
    )
    kept_pos = np.flatnonzero(~repeat)
    run_len = np.diff(np.concatenate((kept_pos, [n])))
    kept_idx = np.ascontiguousarray(sorted_idx[kept_pos])
    kept_blk = np.ascontiguousarray(sorted_blk[kept_pos])
    if kept_idx.size:
        starts = np.flatnonzero(
            np.concatenate(([True], kept_idx[1:] != kept_idx[:-1]))
        )
        bounds = np.concatenate((starts, [kept_idx.size]))
    else:
        bounds = np.zeros(1, dtype=np.int64)
    return _Grouped(
        n=n,
        order=order,
        sorted_idx=sorted_idx,
        kept_pos=kept_pos,
        run_len=run_len,
        kept_idx=kept_idx,
        kept_blk=kept_blk,
        bounds=bounds,
    )


def _expand(g: _Grouped, miss_kept, way_kept) -> tuple[np.ndarray, np.ndarray]:
    """Kept-stream outcomes → per-access (miss, way) in original order."""
    miss_sorted = np.zeros(g.n, dtype=bool)
    miss_sorted[g.kept_pos] = np.frombuffer(miss_kept, dtype=np.uint8).astype(bool)
    way_sorted = np.repeat(np.asarray(way_kept, dtype=np.int64), g.run_len)
    miss = np.empty(g.n, dtype=bool)
    miss[g.order] = miss_sorted
    ways = np.empty(g.n, dtype=np.int64)
    ways[g.order] = way_sorted
    return miss, ways


# -- per-policy replay kernels ----------------------------------------------------
#
# Each kernel consumes the kept (run-head) stream and returns
# ``(miss_kept: bytearray, way_kept: list[int])`` plus optional policy
# state it alone can reconstruct.  Loops run over plain Python ints
# (one bulk .tolist() per array) — the same boxing-hoist discipline as
# simulate()/fastassoc — with per-set dict-based residency.


def _replay_fifo(g: _Grouped, ways: int) -> tuple[bytearray, list[int]]:
    nk = g.kept_idx.size
    miss = bytearray(nk)
    way_out = [0] * nk
    blk_l = g.kept_blk.tolist()
    bounds = g.bounds.tolist()
    for gi in range(len(bounds) - 1):
        a, b = bounds[gi], bounds[gi + 1]
        resident: dict[int, int] = {}
        blkof = [EMPTY] * ways
        fills = 0
        for j in range(a, b):
            blk = blk_l[j]
            wy = resident.get(blk, -1)
            if wy < 0:
                miss[j] = 1
                # Cold fills take ways 0..w-1 in order; refills then cycle
                # through them in the same order (the FIFO queue is a pure
                # rotation), so the victim of fill #f is f mod w.
                wy = fills % ways
                old = blkof[wy]
                if old != EMPTY:
                    del resident[old]
                resident[blk] = wy
                blkof[wy] = blk
                fills += 1
            way_out[j] = wy
    return miss, way_out


def _replay_lru(g: _Grouped, ways: int) -> tuple[bytearray, list[int]]:
    nk = g.kept_idx.size
    miss = bytearray(nk)
    way_out = [0] * nk
    blk_l = g.kept_blk.tolist()
    bounds = g.bounds.tolist()
    for gi in range(len(bounds) - 1):
        a, b = bounds[gi], bounds[gi + 1]
        resident: dict[int, int] = {}
        blkof = [EMPTY] * ways
        lastuse = [-1] * ways
        occ = 0
        seq = 0
        for j in range(a, b):
            blk = blk_l[j]
            wy = resident.get(blk, -1)
            if wy < 0:
                miss[j] = 1
                if occ < ways:
                    wy = occ
                    occ += 1
                else:
                    wy = lastuse.index(min(lastuse))
                    del resident[blkof[wy]]
                resident[blk] = wy
                blkof[wy] = blk
            seq += 1
            lastuse[wy] = seq
            way_out[j] = wy
    return miss, way_out


def _replay_mru(g: _Grouped, ways: int) -> tuple[bytearray, list[int]]:
    nk = g.kept_idx.size
    miss = bytearray(nk)
    way_out = [0] * nk
    blk_l = g.kept_blk.tolist()
    bounds = g.bounds.tolist()
    for gi in range(len(bounds) - 1):
        a, b = bounds[gi], bounds[gi + 1]
        resident: dict[int, int] = {}
        blkof = [EMPTY] * ways
        occ = 0
        prev_way = 0
        for j in range(a, b):
            blk = blk_l[j]
            wy = resident.get(blk, -1)
            if wy < 0:
                miss[j] = 1
                if occ < ways:
                    # MRUPolicy.victim prefers never-touched ways lowest
                    # index first, but a cold fill never reaches the policy:
                    # SetAssociativeCache fills the lowest EMPTY way.
                    wy = occ
                    occ += 1
                else:
                    # All ways touched: argmax(stamp) = the most recently
                    # touched way = the way of the previous (kept) access
                    # to this set (repeats re-touch the same way).
                    wy = prev_way
                    del resident[blkof[wy]]
                resident[blk] = wy
                blkof[wy] = blk
            prev_way = wy
            way_out[j] = wy
    return miss, way_out


def _replay_lfu(
    g: _Grouped, ways: int
) -> tuple[bytearray, list[int], list[tuple[int, list[int]]]]:
    """LFU replay; also returns the final counts per touched set."""
    nk = g.kept_idx.size
    miss = bytearray(nk)
    way_out = [0] * nk
    blk_l = g.kept_blk.tolist()
    run_l = g.run_len.tolist()
    bounds = g.bounds.tolist()
    idx_l = g.kept_idx
    rows: list[tuple[int, list[int]]] = []
    for gi in range(len(bounds) - 1):
        a, b = bounds[gi], bounds[gi + 1]
        resident: dict[int, int] = {}
        blkof = [EMPTY] * ways
        counts = [0] * ways
        occ = 0
        for j in range(a, b):
            blk = blk_l[j]
            r = run_l[j]
            wy = resident.get(blk, -1)
            if wy < 0:
                miss[j] = 1
                if occ < ways:
                    wy = occ
                    occ += 1
                else:
                    # LFUPolicy.victim = np.argmin → first way of minimal
                    # count (ties break toward the lower way index).
                    wy = counts.index(min(counts))
                    del resident[blkof[wy]]
                resident[blk] = wy
                blkof[wy] = blk
                # fill() sets the count to 1; the r-1 trailing repeats each
                # touch (+1), so the run contributes exactly r.
                counts[wy] = r
            else:
                counts[wy] += r
            way_out[j] = wy
        rows.append((int(idx_l[a]), counts))
    return miss, way_out, rows


@lru_cache(maxsize=None)
def _plru_touch_ops(ways: int) -> tuple:
    """Per-way ``((node, bit), ...)`` write lists of PLRUPolicy.touch."""
    levels = max(ways.bit_length() - 1, 0)
    ops = []
    for way in range(ways):
        node = 0
        path = []
        for level in range(levels):
            bit = (way >> (levels - 1 - level)) & 1
            path.append((node, 1 - bit))
            node = 2 * node + 1 + bit
        ops.append(tuple(path))
    return tuple(ops)


def _replay_plru(
    g: _Grouped, ways: int
) -> tuple[bytearray, list[int], list[tuple[int, list[int]]]]:
    """PLRU replay; also returns the final tree bits per touched set."""
    nk = g.kept_idx.size
    miss = bytearray(nk)
    way_out = [0] * nk
    blk_l = g.kept_blk.tolist()
    bounds = g.bounds.tolist()
    idx_l = g.kept_idx
    touch_ops = _plru_touch_ops(ways)
    levels = max(ways.bit_length() - 1, 0)
    rows: list[tuple[int, list[int]]] = []
    for gi in range(len(bounds) - 1):
        a, b = bounds[gi], bounds[gi + 1]
        resident: dict[int, int] = {}
        blkof = [EMPTY] * ways
        bits = [0] * max(ways - 1, 1)
        occ = 0
        for j in range(a, b):
            blk = blk_l[j]
            wy = resident.get(blk, -1)
            if wy < 0:
                miss[j] = 1
                if occ < ways:
                    wy = occ
                    occ += 1
                else:
                    # PLRUPolicy.victim: walk the tree following the bits.
                    node = 0
                    wy = 0
                    for _ in range(levels):
                        bit = bits[node]
                        wy = (wy << 1) | bit
                        node = 2 * node + 1 + bit
                    del resident[blkof[wy]]
                resident[blk] = wy
                blkof[wy] = blk
            # Touch on hit and on fill alike (fill defaults to touch);
            # repeats collapse because re-touching rewrites the same bits.
            for node, val in touch_ops[wy]:
                bits[node] = val
            way_out[j] = wy
        rows.append((int(idx_l[a]), bits))
    return miss, way_out, rows


@lru_cache(maxsize=None)
def _bulk_draws_exact(ways: int) -> bool:
    """Probe: does ``integers(ways, size=k)`` consume the PCG64 stream
    word-for-word like ``k`` scalar ``integers(ways)`` calls (split points
    included)?  True on every NumPy we support; the Random kernel falls
    back to scalar draws if a future NumPy changes the bulk path."""
    a = np.random.default_rng(0xC0FFEE)
    b = np.random.default_rng(0xC0FFEE)
    c = np.random.default_rng(0xC0FFEE)
    scal = np.array([b.integers(ways) for _ in range(37)])
    bulk = a.integers(ways, size=37)
    if not np.array_equal(scal, bulk):
        return False
    split = np.concatenate((c.integers(ways, size=13), c.integers(ways, size=24)))
    if not np.array_equal(scal, split):
        return False
    return (
        a.bit_generator.state == b.bit_generator.state == c.bit_generator.state
    )


def _replay_random(
    blocks: np.ndarray,
    indices: np.ndarray,
    g: _Grouped,
    num_sets: int,
    ways: int,
    seed: int,
) -> tuple[np.ndarray, np.ndarray, np.random.Generator]:
    """Global-order seeded-Random replay.

    One generator serves every set, so victims depend on the global
    interleaving of misses across sets: the replay walks the run-head
    accesses in *program* order (repeats are hits for Random too and
    consume no randomness).  Returns per-access (miss, way) vectors plus
    the exact post-run generator.
    """
    n = g.n
    heads = np.sort(g.order[g.kept_pos])
    idx_l = indices.astype(np.int64)[heads].tolist()
    blk_l = np.asarray(blocks)[heads].tolist()
    nk = len(idx_l)
    miss_head = bytearray(nk)
    way_head = [0] * nk
    occ = [0] * num_sets
    blkof = [EMPTY] * (num_sets * ways)
    resident: dict[int, int] = {}
    rng = np.random.default_rng(seed)
    bulk = _bulk_draws_exact(ways)
    buf: list[int] = []
    bp = 0
    bsize = 1024
    ndraws = 0
    for k in range(nk):
        s = idx_l[k]
        blk = blk_l[k]
        key = blk * num_sets + s
        wy = resident.get(key, -1)
        if wy < 0:
            miss_head[k] = 1
            o = occ[s]
            if o < ways:
                wy = o
                occ[s] = o + 1
            else:
                if bulk:
                    if bp == len(buf):
                        buf = rng.integers(ways, size=bsize).tolist()
                        bp = 0
                        bsize = min(bsize * 2, 1 << 16)
                    wy = buf[bp]
                    bp += 1
                else:
                    wy = int(rng.integers(ways))
                ndraws += 1
                base = s * ways
                del resident[blkof[base + wy] * num_sets + s]
            resident[key] = wy
            blkof[s * ways + wy] = blk
        way_head[k] = wy
    if bulk:
        # The working generator over-drew (bulk refills); the exact post-run
        # state is a fresh generator advanced by precisely the consumed
        # draws — word-identical because the probe proved bulk ≡ scalar.
        rng = np.random.default_rng(seed)
        if ndraws:
            rng.integers(ways, size=ndraws)
    miss = np.zeros(n, dtype=bool)
    miss[heads] = np.frombuffer(miss_head, dtype=np.uint8).astype(bool)
    way_at_head = np.zeros(n, dtype=np.int64)
    way_at_head[heads] = np.asarray(way_head, dtype=np.int64)
    # Propagate run-head ways over their repeats (sorted coords), then
    # scatter back to program order.
    way_sorted = np.repeat(way_at_head[g.order[g.kept_pos]], g.run_len)
    ways_all = np.empty(n, dtype=np.int64)
    ways_all[g.order] = way_sorted
    return miss, ways_all, rng


# -- stats-level engine -----------------------------------------------------------


def _kernel_outcomes(
    blocks: np.ndarray,
    indices: np.ndarray,
    num_sets: int,
    ways: int,
    policy: str,
    seed: int,
    g: _Grouped | None = None,
):
    """Per-access (miss, way) vectors + policy-private end state.

    Returns ``(miss, ways_all, private)`` where ``private`` is the
    policy-specific state only the replay can produce: LFU count rows /
    PLRU bit rows (``(set, values)`` pairs), the post-run generator for
    Random, ``None`` otherwise.
    """
    if g is None:
        g = _group_by_set(blocks, indices)
    if policy == "random":
        return _replay_random(blocks, indices, g, num_sets, ways, seed)
    if policy == "fifo":
        miss_k, way_k = _replay_fifo(g, ways)
        private = None
    elif policy == "lru":
        miss_k, way_k = _replay_lru(g, ways)
        private = None
    elif policy == "mru":
        miss_k, way_k = _replay_mru(g, ways)
        private = None
    elif policy == "lfu":
        miss_k, way_k, private = _replay_lfu(g, ways)
    elif policy == "plru":
        if ways & (ways - 1):
            raise ValueError("PLRU requires a power-of-two way count")
        miss_k, way_k, private = _replay_plru(g, ways)
    else:
        raise ValueError(
            f"unknown replacement policy {policy!r}; known: {sorted(POLICIES)}"
        )
    miss, ways_all = _expand(g, miss_k, way_k)
    return miss, ways_all, private


def policy_miss_flags(
    blocks: np.ndarray,
    indices: np.ndarray,
    ways: int,
    policy: str,
    num_sets: int | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Boolean miss vector for a ``ways``-way cache under any policy.

    Exact and bit-identical to driving
    :class:`~repro.core.caches.SetAssociativeCache` one access at a time.
    ``num_sets`` bounds the set-index range (required for ``random``,
    whose generator is shared across sets; inferred from the indices
    otherwise).  LRU routes to the vectorised stack-distance kernel.
    """
    if ways < 1:
        raise ValueError("ways must be a positive integer")
    if policy == "lru":
        return lru_miss_flags(blocks, indices, ways)
    if num_sets is None:
        num_sets = int(np.asarray(indices).max()) + 1 if np.asarray(indices).size else 1
    miss, _ways_all, _private = _kernel_outcomes(
        np.asarray(blocks), np.asarray(indices), num_sets, ways, policy, seed
    )
    return miss


def _canonical_model(scheme_name: str, ways: int, policy: str) -> str:
    return f"set_associative[{scheme_name},{ways}way,{policy}]"


def _package(
    model: str,
    trace_name: str,
    indices: np.ndarray,
    miss: np.ndarray,
    num_sets: int,
) -> SimulationResult:
    accesses, misses = per_set_counts(indices, miss, num_sets)
    total = int(indices.size)
    total_misses = int(miss.sum())
    hits = total - total_misses
    return SimulationResult(
        model=model,
        trace_name=trace_name,
        accesses=total,
        hits=hits,
        misses=total_misses,
        lookup_cycles=total,  # one cycle per access
        slot_accesses=accesses,
        slot_hits=accesses - misses,
        slot_misses=misses,
        # SetAssociativeCache classes every hit as "direct"; the key is
        # absent when hits == 0, matching the sequential engine's dict.
        extra={"direct_hits": hits} if hits else {},
    )


def _decode(scheme: IndexingScheme, trace: Trace, geometry: CacheGeometry):
    blocks = trace.blocks(geometry.offset_bits).astype(np.int64)
    indices = scheme.indices_of(trace.addresses)
    if indices.size and (indices.min() < 0 or indices.max() >= geometry.num_sets):
        raise ValueError("indexing scheme produced an out-of-range set index")
    return blocks, indices


def _validate_policy(policy: str, ways: int) -> None:
    if policy not in POLICIES:
        raise ValueError(
            f"unknown replacement policy {policy!r}; known: {sorted(POLICIES)}"
        )
    if policy == "plru" and ways & (ways - 1):
        raise ValueError("PLRU requires a power-of-two way count")


def simulate_policy_set_associative(
    scheme: IndexingScheme,
    trace: Trace,
    geometry: CacheGeometry | None = None,
    ways: int | None = None,
    policy: str = "lru",
    seed: int = 0,
    warmup: int = 0,
    engine: str = "auto",
) -> SimulationResult:
    """k-way simulation under *any* registered replacement policy.

    Equivalent to ``simulate(SetAssociativeCache(geometry, scheme,
    policy=policy, seed=seed), trace, warmup=warmup)`` with the model
    renamed to the canonical ``set_associative[<scheme>,<k>way,<policy>]``
    — bit-identical counters, per-set histograms and ``extra`` classes,
    asserted by ``tests/core/test_fastpolicy_differential.py``.

    ``engine="auto"`` replays through the set-decomposed kernels of this
    module (LRU: the stack-distance kernel); ``"sequential"`` drives the
    real cache model and repackages — same results either way.  ``ways``
    must match the geometry's associativity: unlike the LRU-only
    stack-distance path there is no way to re-threshold a stateful-policy
    replay, so a mismatch is a genuinely unsupported configuration.
    """
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {_ENGINES}")
    geometry = geometry or scheme.geometry
    if ways is not None and int(ways) != geometry.ways:
        raise ValueError(
            f"policy simulation models the geometry's own associativity "
            f"({geometry.ways}); got ways={ways} — rebuild the geometry with "
            f"with_ways()/with_fixed_sets() instead"
        )
    ways = geometry.ways
    _validate_policy(policy, ways)
    model = _canonical_model(scheme.name, ways, policy)
    n = len(trace)
    if warmup >= n and n > 0:
        raise ValueError("warmup consumes the entire trace")
    if engine == "sequential":
        cache = SetAssociativeCache(geometry, scheme, policy=policy, seed=seed)
        res = simulate(cache, trace, warmup=warmup)
        return dc_replace(res, model=model)
    blocks, indices = _decode(scheme, trace, geometry)
    if policy == "lru":
        miss = lru_miss_flags(blocks, indices, ways)
    else:
        miss, _ways_all, _private = _kernel_outcomes(
            blocks, indices, geometry.num_sets, ways, policy, seed
        )
    if warmup:
        # Replay state is continuous, so the suffix flags are exactly a
        # warmed-up run's (the same argument as the LRU warmup path).
        miss = miss[warmup:]
        indices = indices[warmup:]
    return _package(model, trace.name, indices, miss, geometry.num_sets)


def simulate_policy_sweep(
    scheme: IndexingScheme,
    trace: Trace,
    geometry: CacheGeometry,
    policies,
    seed: int = 0,
    engine: str = "auto",
) -> list[SimulationResult]:
    """One *policy sweep* under one indexing scheme and geometry.

    Every member shares one trace decode, one index computation and one
    set-decomposition pass; each policy then replays its own kernel off
    the shared grouped arrays (Random re-walks the shared run heads in
    program order).  Returns one result per policy, in order, each
    bit-identical (per-set counts included) to its
    :func:`simulate_policy_set_associative` per-cell equivalent — the
    contract behind the engine's "policy" family axis.
    """
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {_ENGINES}")
    policies = [str(p) for p in policies]
    ways = geometry.ways
    for policy in policies:
        _validate_policy(policy, ways)
    if engine == "sequential":
        return [
            simulate_policy_set_associative(
                scheme, trace, geometry, policy=p, seed=seed, engine="sequential"
            )
            for p in policies
        ]
    blocks, indices = _decode(scheme, trace, geometry)
    g = _group_by_set(blocks, indices)
    results = []
    for policy in policies:
        if policy == "lru":
            # The replay kernel is exact for LRU too, and reuses the shared
            # grouping instead of re-sorting inside lru_miss_flags.
            miss_k, way_k = _replay_lru(g, ways)
            miss, _ = _expand(g, miss_k, way_k)
        else:
            miss, _ways_all, _private = _kernel_outcomes(
                blocks, indices, geometry.num_sets, ways, policy, seed, g=g
            )
        results.append(
            _package(
                _canonical_model(scheme.name, ways, policy),
                trace.name,
                indices,
                miss,
                geometry.num_sets,
            )
        )
    return results


# -- cache-object dispatcher ------------------------------------------------------

_POLICY_TYPES = {
    LRUPolicy: "lru",
    FIFOPolicy: "fifo",
    RandomPolicy: "random",
    PLRUPolicy: "plru",
    MRUPolicy: "mru",
    LFUPolicy: "lfu",
}


def _pristine(cache: SetAssociativeCache) -> bool:
    """True iff the cache (contents + policy) is in just-constructed state.

    The kernels replay from a cold cache; any pre-existing contents (e.g. a
    second simulate() over the same object) routes to the sequential
    reference engine instead — exactness over speed.
    """
    if np.any(cache._blocks != EMPTY):
        return False
    policy = cache.policy
    if type(policy) in (LRUPolicy, FIFOPolicy, MRUPolicy):
        return policy._clock == 0 and bool(np.all(policy._stamp == -1))
    if type(policy) is LFUPolicy:
        return bool(np.all(policy._count == 0))
    if type(policy) is PLRUPolicy:
        return bool(np.all(policy._bits == 0))
    if type(policy) is RandomPolicy:
        fresh = np.random.default_rng(policy._seed)
        return policy._rng.bit_generator.state == fresh.bit_generator.state
    return False


def has_policy_fast_path(cache) -> bool:
    """True iff :func:`simulate_policy` would take the replay kernels."""
    return (
        type(cache) is SetAssociativeCache
        and type(cache.policy) in _POLICY_TYPES
        and _pristine(cache)
    )


def _restore_state(
    cache: SetAssociativeCache,
    blocks: np.ndarray,
    indices: np.ndarray,
    miss: np.ndarray,
    ways_all: np.ndarray,
    private,
) -> None:
    """Write the exact end-of-trace state into the cache object."""
    num_sets = cache.geometry.num_sets
    ways = cache.geometry.ways
    n = int(blocks.size)
    idx64 = np.ascontiguousarray(indices, dtype=np.int64)
    slotway = idx64 * ways + ways_all
    fills = np.flatnonzero(miss)
    # Contents: the block of each (set, way)'s last fill (hits don't move
    # blocks; positions increase, so maximum.at keeps the last).
    last_fill = np.full(num_sets * ways, -1, dtype=np.int64)
    np.maximum.at(last_fill, slotway[fills], fills)
    filled = last_fill >= 0
    flat = np.full(num_sets * ways, EMPTY, dtype=np.int64)
    flat[filled] = blocks[last_fill[filled]]
    cache._blocks[:] = flat.reshape(num_sets, ways)
    policy = cache.policy
    kind = _POLICY_TYPES[type(policy)]
    if kind in ("lru", "mru"):
        # Every access touches exactly once (fill defaults to touch), so
        # the clock ends at n and a way's stamp is its last touch position
        # (1-based).
        stamp = np.full(num_sets * ways, -1, dtype=np.int64)
        if n:
            np.maximum.at(stamp, slotway, np.arange(1, n + 1, dtype=np.int64))
        policy._stamp[:] = stamp.reshape(num_sets, ways)
        policy._clock = n
    elif kind == "fifo":
        # Only fills advance the clock; a way's stamp is the global rank of
        # its last fill.
        ranks = np.cumsum(miss)
        stamp = np.full(num_sets * ways, -1, dtype=np.int64)
        if fills.size:
            np.maximum.at(stamp, slotway[fills], ranks[fills])
        policy._stamp[:] = stamp.reshape(num_sets, ways)
        policy._clock = int(miss.sum())
    elif kind == "lfu":
        # Replay-private rows carry the exact per-set counts.
        policy._count.fill(0)
        for set_index, counts in private:
            policy._count[set_index] = counts
    elif kind == "plru":
        policy._bits.fill(0)
        for set_index, bits in private:
            policy._bits[set_index] = bits
    elif kind == "random":
        policy._rng = private


def simulate_policy(
    cache: SetAssociativeCache,
    trace: Trace,
    engine: str = "auto",
    warmup: int = 0,
    check_invariants_every: int = 0,
) -> SimulationResult:
    """Drive a :class:`SetAssociativeCache` through the fast policy kernels.

    A drop-in accelerator for :func:`~repro.core.simulator.simulate` on
    set-associative caches, mirroring
    :func:`~repro.core.fastassoc.simulate_progassoc`: ``engine="auto"``
    takes the exact replay kernels when the cache is a pristine
    ``SetAssociativeCache`` with a registered policy, reconstructing the
    full end state (contents, stats, policy internals — RNG position
    included) so follow-on inspection sees exactly what the sequential
    engine would have left behind.  Anything else — subclasses, pre-warmed
    contents, invariant checking — falls back to :func:`simulate`.
    """
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {_ENGINES}")
    if (
        engine != "auto"
        or check_invariants_every
        or not has_policy_fast_path(cache)
    ):
        return simulate(
            cache, trace, warmup=warmup, check_invariants_every=check_invariants_every
        )
    n = len(trace)
    if warmup >= n and n > 0:
        raise ValueError("warmup consumes the entire trace")
    geometry = cache.geometry
    policy_name = _POLICY_TYPES[type(cache.policy)]
    seed = cache.policy._seed if policy_name == "random" else 0
    blocks, indices = _decode(cache.indexing, trace, geometry)
    miss, ways_all, private = _kernel_outcomes(
        blocks, indices, geometry.num_sets, geometry.ways, policy_name, seed
    )
    _restore_state(cache, blocks, indices, miss, ways_all, private)
    counted_idx = indices[warmup:] if warmup else indices
    counted_miss = miss[warmup:] if warmup else miss
    accesses, misses = per_set_counts(counted_idx, counted_miss, geometry.num_sets)
    total = int(counted_idx.size)
    total_misses = int(counted_miss.sum())
    hits = total - total_misses
    stats = CacheStats(geometry.num_sets)
    stats.accesses = total
    stats.hits = hits
    stats.misses = total_misses
    stats.slot_accesses = accesses
    stats.slot_hits = accesses - misses
    stats.slot_misses = misses
    if hits:
        stats.extra["direct_hits"] = hits
    cache.stats = stats
    return _result_from_stats(cache.name, trace.name, stats, total)
