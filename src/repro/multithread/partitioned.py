"""Partitioned adaptive cache for multithreaded systems (paper Fig. 14).

The paper's final experiment divides the cache equally among the threads
(thread isolation), then adds Peir-style SHT and OUT tables *spanning the
whole cache* so that a displaced block from one thread's partition can be
relocated into a lightly used (disposable) line of *another* partition —
"increasing the cache sizes available to each thread adaptively".

Two models:

* :class:`StaticPartitionedCache` — the baseline: per-thread direct-mapped
  halves, no spill (a thread's conflicts stay its own problem);
* :class:`PartitionedAdaptiveCache` — the proposal: same partitions for
  primary placement, plus global SHT/OUT relocation exactly as in
  :class:`~repro.core.caches.adaptive.AdaptiveGroupAssociativeCache`
  (3-cycle OUT-hit path, Eq. 8 AMAT accounting).

The static baseline is a direct-mapped array whose slot stream is a pure
function of ``(thread, block)``, so :func:`simulate_partitioned` vectorises
it through :func:`~repro.core.fastsim.direct_mapped_miss_flags`
(``engine="auto"``; bit-identical to the sequential loop, which
``engine="sequential"`` forces and the differential tests exercise).  The
adaptive variant is stateful across threads and always runs sequentially.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..core.address import CacheGeometry, is_power_of_two
from ..core.amat import TimingModel, amat_adaptive, amat_direct_mapped
from ..core.caches.base import EMPTY, CacheStats
from ..core.fastsim import direct_mapped_miss_flags, per_set_counts
from ..trace.event import Trace

__all__ = [
    "StaticPartitionedCache",
    "PartitionedAdaptiveCache",
    "PartitionedResult",
    "simulate_partitioned",
]


class StaticPartitionedCache:
    """Per-thread direct-mapped partitions with hard walls."""

    name = "static_partitioned"

    def __init__(self, geometry: CacheGeometry, num_threads: int):
        if geometry.ways != 1:
            raise ValueError("partitioned caches model a direct-mapped L1")
        if not is_power_of_two(num_threads) or num_threads > geometry.num_sets:
            raise ValueError("thread count must be a power of two <= num_sets")
        self.geometry = geometry
        self.num_threads = num_threads
        self.part_sets = geometry.num_sets // num_threads
        self.stats = CacheStats(geometry.num_sets)
        self._blocks = np.full(geometry.num_sets, EMPTY, dtype=np.int64)
        self._offset_bits = geometry.offset_bits
        self.thread_hits = np.zeros(num_threads, dtype=np.int64)
        self.thread_misses = np.zeros(num_threads, dtype=np.int64)

    def primary_slot(self, block: int, thread: int) -> int:
        return thread * self.part_sets + (block & (self.part_sets - 1))

    def access(self, address: int, thread: int, is_write: bool = False) -> int:
        """Returns the lookup cycles (1 for this model)."""
        block = address >> self._offset_bits
        slot = self.primary_slot(block, thread)
        self.stats.accesses += 1
        self.stats.record_probe(slot)
        if self._blocks[slot] == block:
            self.stats.record_hit(slot, "direct")
            self.thread_hits[thread] += 1
        else:
            self._blocks[slot] = block
            self.stats.record_miss(slot)
            self.thread_misses[thread] += 1
        return 1

    def flush(self) -> None:
        self._blocks.fill(EMPTY)


class PartitionedAdaptiveCache(StaticPartitionedCache):
    """Partitions for placement + global SHT/OUT spill (Pier's tables)."""

    name = "partitioned_adaptive"
    OUT_HIT_CYCLES = 3

    def __init__(
        self,
        geometry: CacheGeometry,
        num_threads: int,
        sht_fraction: float = 3 / 8,
        out_fraction: float = 4 / 16,
    ):
        super().__init__(geometry, num_threads)
        n = geometry.num_sets
        self.sht_capacity = max(1, int(n * sht_fraction))
        self.out_capacity = max(1, int(n * out_fraction))
        self._disposable = np.ones(n, dtype=bool)
        self._out_of_position = np.zeros(n, dtype=bool)
        self._sht: OrderedDict[int, None] = OrderedDict()
        self._out: OrderedDict[int, int] = OrderedDict()
        self._cold_pool: OrderedDict[int, None] = OrderedDict((s, None) for s in range(n))

    # SHT/OUT management mirrors AdaptiveGroupAssociativeCache (same cascade
    # guard and coldest-first pool); kept local because the slot arithmetic
    # (partitioned primary index) differs.

    def _sht_touch(self, slot: int) -> None:
        if slot in self._sht:
            self._sht.move_to_end(slot)
        else:
            self._sht[slot] = None
            if len(self._sht) > self.sht_capacity:
                cold, _ = self._sht.popitem(last=False)
                self._make_disposable(cold)
        self._disposable[slot] = False
        self._cold_pool.pop(slot, None)

    def _make_disposable(self, slot: int) -> None:
        if not self._disposable[slot]:
            self._disposable[slot] = True
            self._cold_pool[slot] = None
            self._cold_pool.move_to_end(slot)

    def _select_relocation_target(self, slot: int) -> int | None:
        if len(self._out) >= self.out_capacity and self._out:
            _, dest = next(iter(self._out.items()))
            return dest
        for cand in self._cold_pool:
            if cand != slot:
                return cand
        return None

    def access(self, address: int, thread: int, is_write: bool = False) -> int:
        block = address >> self._offset_bits
        slot = self.primary_slot(block, thread)
        self.stats.accesses += 1
        self.stats.record_probe(slot)
        if self._blocks[slot] == block:
            self._sht_touch(slot)
            self.stats.record_hit(slot, "direct")
            self.thread_hits[thread] += 1
            return 1
        alt = self._out.get(block)
        if alt is not None and self._blocks[alt] == block:
            self.stats.record_probe(alt)
            del self._out[block]
            displaced = int(self._blocks[slot])
            self._blocks[slot] = block
            self._out_of_position[slot] = False
            if displaced != EMPTY:
                self._blocks[alt] = displaced
                self._out_of_position[alt] = True
                self._disposable[alt] = False
                self._cold_pool.pop(alt, None)
                self._out[displaced] = alt
                self._out.move_to_end(displaced)
                self._trim_out()
            else:
                self._blocks[alt] = EMPTY
                self._out_of_position[alt] = False
                self._make_disposable(alt)
            self._sht_touch(slot)
            self.stats.record_hit(alt, "out")
            self.thread_hits[thread] += 1
            return self.OUT_HIT_CYCLES
        if alt is not None:
            del self._out[block]
        # Miss with optional relocation of a protected in-position victim.
        victim = int(self._blocks[slot])
        protected = (
            victim != EMPTY
            and not self._disposable[slot]
            and not self._out_of_position[slot]
        )
        if protected:
            dest = self._select_relocation_target(slot)
            if dest is not None:
                self._out.pop(int(self._blocks[dest]), None)
                self._blocks[dest] = victim
                self._disposable[dest] = False
                self._cold_pool.pop(dest, None)
                self._out_of_position[dest] = True
                self._out[victim] = dest
                self._out.move_to_end(victim)
                self._trim_out()
        elif victim != EMPTY:
            self._out.pop(victim, None)
        self._blocks[slot] = block
        self._out_of_position[slot] = False
        self._sht_touch(slot)
        self.stats.record_miss(slot)
        self.thread_misses[thread] += 1
        return 1

    def _trim_out(self) -> None:
        while len(self._out) > self.out_capacity:
            blk, dest = self._out.popitem(last=False)
            if self._blocks[dest] == blk:
                self._make_disposable(dest)

    def flush(self) -> None:
        super().flush()
        self._disposable.fill(True)
        self._out_of_position.fill(False)
        self._sht.clear()
        self._out.clear()
        self._cold_pool = OrderedDict((s, None) for s in range(self.geometry.num_sets))


@dataclass
class PartitionedResult:
    accesses: int
    hits: int
    misses: int
    direct_hits: int
    lookup_cycles: int
    thread_misses: np.ndarray

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def fraction_direct(self) -> float:
        return self.direct_hits / self.accesses if self.accesses else 1.0

    def amat(self, timing: TimingModel | None = None, adaptive: bool = False) -> float:
        """Paper-formula AMAT: Eq. (8) for the adaptive variant, the
        textbook form for the static baseline."""
        if adaptive:
            return amat_adaptive(self.fraction_direct, self.miss_rate, timing)
        return amat_direct_mapped(self.miss_rate, timing)


def _simulate_partitioned_fast(
    cache: StaticPartitionedCache, trace: Trace
) -> PartitionedResult:
    """Vectorised path for a fresh hard-walled partitioned cache."""
    threads = np.asarray(trace.thread).astype(np.int64)
    n = trace.addresses.size
    blocks = trace.blocks(cache._offset_bits).astype(np.int64)
    # The partitioned primary index, computed for the whole trace at once.
    slots = threads * cache.part_sets + (blocks & (cache.part_sets - 1))
    miss = direct_mapped_miss_flags(blocks, slots)
    hits = n - int(miss.sum())
    misses = n - hits
    thread_hits = np.bincount(threads[~miss], minlength=cache.num_threads).astype(
        np.int64
    )
    thread_misses = np.bincount(threads[miss], minlength=cache.num_threads).astype(
        np.int64
    )
    slot_accesses, slot_misses = per_set_counts(slots, miss, cache.geometry.num_sets)
    # Mirror the sequential loop's side effects on the cache object.
    stats = cache.stats
    stats.accesses += n
    stats.hits += hits
    stats.misses += misses
    if hits:
        stats.bump("direct_hits", hits)
    stats.slot_accesses += slot_accesses
    stats.slot_hits += slot_accesses - slot_misses
    stats.slot_misses += slot_misses
    cache.thread_hits += thread_hits
    cache.thread_misses += thread_misses
    if n:
        uniq, first_in_reversed = np.unique(slots[::-1], return_index=True)
        cache._blocks[uniq] = blocks[n - 1 - first_in_reversed]
    return PartitionedResult(
        accesses=n,
        hits=hits,
        misses=misses,
        direct_hits=hits,
        lookup_cycles=n,
        thread_misses=thread_misses,
    )


def simulate_partitioned(
    cache: StaticPartitionedCache, trace: Trace, engine: str = "auto"
) -> PartitionedResult:
    """Drive a partitioned cache from an interleaved multi-thread trace.

    ``engine="auto"`` (default) vectorises the hard-walled static baseline
    (exact: a plain :class:`StaticPartitionedCache`, fresh state); the
    adaptive subclass — stateful SHT/OUT tables spanning partitions — always
    runs the sequential reference loop, which ``engine="sequential"`` forces
    for every model.
    """
    if engine not in ("auto", "sequential"):
        raise ValueError("engine must be 'auto' or 'sequential'")
    addresses = trace.addresses
    threads = trace.thread
    is_write = trace.is_write
    if len(trace) and int(threads.max()) >= cache.num_threads:
        raise ValueError("trace references a thread outside the partitioning")
    if (
        engine == "auto"
        and type(cache) is StaticPartitionedCache
        and cache.stats.accesses == 0
    ):
        return _simulate_partitioned_fast(cache, trace)
    cycles = 0
    for i in range(addresses.size):
        cycles += cache.access(int(addresses[i]), int(threads[i]), bool(is_write[i]))
    return PartitionedResult(
        accesses=cache.stats.accesses,
        hits=cache.stats.hits,
        misses=cache.stats.misses,
        direct_hits=cache.stats.extra.get("direct_hits", 0),
        lookup_cycles=cycles,
        thread_misses=cache.thread_misses.copy(),
    )
