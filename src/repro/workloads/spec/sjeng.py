"""SPEC-like ``sjeng`` — game-tree search with transposition-table probes.

Mechanistic stand-in for 458.sjeng: alpha-beta search over a synthetic
game whose dominant memory behaviour is (a) probing a multi-megabyte
transposition table at hash-random indexes — near-worst-case for any
indexing function, which is why sjeng *regresses* under non-conventional
indexes in the paper's Figure 8 — and (b) touching small hot board/history
arrays at every node.

The search is a real negamax with a Zobrist-hashed table; determinism and
best-move stability are asserted in tests.
"""

from __future__ import annotations

from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["SjengWorkload"]

_TT_ENTRY = 16


@register_workload
class SjengWorkload(Workload):
    name = "sjeng"
    suite = "spec"
    description = "Negamax game-tree search with a Zobrist transposition table"
    access_pattern = "hash-random table probes + hot board/history arrays"

    def kernel(self, m: Recorder, scale: float) -> None:
        tt_entries = 1 << max(10, int(round(17 * min(scale, 1.0))))  # 128K entries
        depth = 5 if scale >= 0.5 else 3
        positions = self.scaled(10, scale, minimum=1)
        tt_arr = m.space.mmap_array(_TT_ENTRY, tt_entries, "transposition")
        board_arr = m.space.static_array(4, 64, "board")
        hist_arr = m.space.static_array(4, 64 * 12, "history_heuristic")
        zob = m.rng.integers(1, 1 << 62, size=(64, 12))
        tt: dict[int, tuple[int, float]] = {}
        rng = m.rng

        def evaluate(state: tuple[int, ...]) -> float:
            # Hot board sweep on every leaf.
            total = 0
            for sq in range(0, 64, 4):
                m.load_elem(board_arr, sq)
                total += state[sq % len(state)]
            return (total % 97) - 48.0

        def negamax(state: tuple[int, ...], h: int, d: int, alpha: float, beta: float) -> float:
            idx = h % tt_entries
            m.load_elem(tt_arr, idx)  # TT probe (the scattered access)
            cached = tt.get(idx)
            if cached is not None and cached[0] >= d:
                return cached[1]
            if d == 0:
                return evaluate(state)
            best = -1e9
            moves = [(int(rng.integers(0, 64)), int(rng.integers(0, 12))) for _ in range(6)]
            for sq, piece in moves:
                m.load_elem(hist_arr, sq * 12 + piece)
                child = tuple((s + sq + piece) % 97 for s in state)
                ch = h ^ int(zob[sq, piece])
                score = -negamax(child, ch, d - 1, -beta, -alpha)
                if score > best:
                    best = score
                m.store_elem(hist_arr, sq * 12 + piece)
                alpha = max(alpha, score)
                if alpha >= beta:
                    break
            tt[idx] = (d, best)
            m.store_elem(tt_arr, idx)  # TT store
            return best

        best_scores = []
        for p in range(positions):
            state = tuple(int(rng.integers(0, 97)) for _ in range(8))
            h = int(rng.integers(1, 1 << 62))
            for sq in range(64):
                m.store_elem(board_arr, sq)
            best_scores.append(negamax(state, h, depth, -1e9, 1e9))
        m.builder.meta["scores_head"] = best_scores[:4]
        m.builder.meta["tt_entries"] = tt_entries
