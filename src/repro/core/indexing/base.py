"""Indexing-scheme protocol and registry.

An *indexing scheme* is the hash from an address to a cache set (paper
Section 1.1 treats this explicitly as finding a hash function from keys to
buckets).  Schemes are attached to a :class:`~repro.core.address.CacheGeometry`
and must map every address into ``[0, num_sets)``.

Two flavours exist:

* stateless schemes (modulo, XOR, odd-multiplier, prime-modulo) depend only
  on the geometry and their parameters;
* *trainable* schemes (Givargis, Givargis-XOR, Patel) are fitted to a
  profiling trace before use — mirroring the paper's off-line profiling flow
  (its Figure 5).

All schemes provide both a scalar ``index_of`` and a vectorised ``indices_of``
over NumPy ``uint64`` address arrays; the vectorised form is the simulator's
fast path and the two are cross-checked in the test-suite.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from ..address import CacheGeometry

__all__ = [
    "IndexingScheme",
    "TrainableIndexingScheme",
    "register_scheme",
    "make_scheme",
    "available_schemes",
    "SCHEME_REGISTRY",
]


class IndexingScheme(ABC):
    """Maps addresses to set indices for a fixed geometry."""

    #: Registry key; subclasses override.
    name: str = "abstract"

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry

    # -- core mapping -----------------------------------------------------------

    @abstractmethod
    def index_of(self, address: int) -> int:
        """Set index for one address."""

    def indices_of(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorised mapping; default falls back to the scalar form.

        ``np.fromiter`` materialises the scalar map directly into a fresh
        contiguous buffer — unlike writing through an ``out.ravel()`` view,
        which silently drops every element when ``ravel`` has to copy
        (e.g. for a non-contiguous input's shaped output).
        """
        addresses = np.asarray(addresses, dtype=np.uint64)
        index_of = self.index_of
        out = np.fromiter(
            (index_of(int(a)) for a in addresses.ravel()),
            dtype=np.int64,
            count=addresses.size,
        )
        return out.reshape(addresses.shape)

    # -- introspection ----------------------------------------------------------

    @property
    def usable_sets(self) -> int:
        """Number of sets this scheme can actually produce.

        Prime-modulo fragments the cache (paper Section II.B); every other
        scheme covers all sets.
        """
        return self.geometry.num_sets

    def requires_training(self) -> bool:
        return isinstance(self, TrainableIndexingScheme)

    def describe(self) -> str:
        return f"{self.name} over {self.geometry.describe()}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


class TrainableIndexingScheme(IndexingScheme):
    """A scheme fitted to a profiling address trace before use."""

    def __init__(self, geometry: CacheGeometry):
        super().__init__(geometry)
        self._fitted = False

    @abstractmethod
    def fit(self, addresses: np.ndarray) -> "TrainableIndexingScheme":
        """Train on a 1-D array of byte addresses; returns self."""

    @property
    def fitted(self) -> bool:
        return self._fitted

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(f"{self.name} indexing must be fit() on a profiling trace before use")


#: name -> factory(geometry, **params)
SCHEME_REGISTRY: dict[str, Callable[..., IndexingScheme]] = {}


def register_scheme(cls: type[IndexingScheme]) -> type[IndexingScheme]:
    """Class decorator adding a scheme to the registry under ``cls.name``."""
    if cls.name in SCHEME_REGISTRY:
        raise ValueError(f"duplicate indexing scheme name {cls.name!r}")
    SCHEME_REGISTRY[cls.name] = cls
    return cls


def make_scheme(name: str, geometry: CacheGeometry, **params) -> IndexingScheme:
    """Instantiate a registered scheme by name."""
    try:
        factory = SCHEME_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown indexing scheme {name!r}; known: {sorted(SCHEME_REGISTRY)}") from None
    return factory(geometry, **params)


def available_schemes() -> list[str]:
    return sorted(SCHEME_REGISTRY)
