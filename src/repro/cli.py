"""Command-line interface.

::

    repro-cache list                      # workloads, schemes, experiments
    repro-cache run fig4 [--refs N] [--seed S] [--scale X] [--bars COL]
                         [--jobs J] [--no-result-cache]
    repro-cache run all --out EXPERIMENTS.md --jobs 0   # 0 = all cores
    repro-cache trace fft --refs 100000 --out fft.npz [--format din]
    repro-cache trace warm --jobs 0 [--experiments fig4,fig13]   # prefetch cache
    repro-cache trace stats                # per-format trace-cache inventory
    repro-cache trace gc                   # evict npz entries migrated to raw
    repro-cache sweep --workload fft --schemes modulo,xor,prime_modulo
    repro-cache sweep --workload fft --ways 4        # k-way LRU fast path
    repro-cache sweep --workload fft --aux vc,mc,sb --aux-lines 2,4,8
    repro-cache cache [--clear] [--clear-traces]   # inspect/clear on-disk caches
    repro-cache serve --port 7411 --jobs 4         # simulation job server
    repro-cache route --workers 127.0.0.1:7501,127.0.0.1:7502   # cluster router
    repro-cache submit fig4 --refs 8000            # submit to a running server
    repro-cache stats | health                     # observability snapshots
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path

from . import __version__
from .core.address import PAPER_L1_GEOMETRY
from .core.indexing import TrainableIndexingScheme, available_schemes, make_scheme
from .core.simulator import simulate_indexing, simulate_set_associative
from .experiments import (
    PaperConfig,
    available_experiments,
    render_bars,
    run_experiment,
)
from .trace.io import save_din, save_npz
from .workloads import available_workloads, get_workload

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cache",
        description="Reproduction of 'Evaluation of Techniques to Improve Cache "
        "Access Uniformities' (ICPP 2011)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads, indexing schemes and experiments")

    run = sub.add_parser("run", help="run one experiment (fig1..fig14) or 'all'")
    run.add_argument("experiment", help="experiment id, e.g. fig4, or 'all'")
    run.add_argument("--refs", type=int, default=None, help="trace length per workload")
    run.add_argument("--seed", type=int, default=None)
    run.add_argument("--scale", type=float, default=None, help="workload problem-size scale")
    run.add_argument("--bars", default=None, help="also render this column as a bar chart")
    run.add_argument("--out", type=Path, default=None, help="append markdown to this file")
    run.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for experiment grids (1 = sequential, 0 = all "
        "cores; results are bit-identical either way)",
    )
    run.add_argument(
        "--no-result-cache",
        action="store_true",
        help="disable the on-disk per-cell result cache for this run",
    )
    run.add_argument(
        "--engine",
        choices=("auto", "sequential"),
        default=None,
        help="simulation engine for cells with a vectorised fast path "
        "(auto = set-decomposed kernels where exact; results are "
        "bit-identical either way)",
    )
    run.add_argument(
        "--no-batch",
        action="store_true",
        help="disable sweep-family batching (one execution unit per cell; "
        "results are bit-identical either way)",
    )
    run.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        help="per-cell wall-clock budget in seconds: a hung cell fails the "
        "run with attribution instead of blocking forever (default: "
        "unlimited)",
    )

    trace = sub.add_parser(
        "trace",
        help="generate and save a workload trace; 'trace warm' prefetches "
        "the experiment trace cache in parallel; 'trace stats' prints "
        "per-format cache byte counts; 'trace gc' evicts npz entries "
        "already migrated to the raw mmap format",
    )
    trace.add_argument(
        "workload",
        help="workload name, or one of the literals: 'warm' (prefetch every "
        "trace the selected experiments will need), 'stats' (per-format "
        "trace-cache inventory), 'gc' (delete npz entries that have been "
        "migrated to the raw mmap format)",
    )
    trace.add_argument(
        "--refs", type=int, default=None, help="trace length (warm: config ref limit)"
    )
    trace.add_argument("--seed", type=int, default=None)
    trace.add_argument("--scale", type=float, default=None)
    trace.add_argument(
        "--out", type=Path, default=None, help="output path (required unless warming)"
    )
    trace.add_argument("--format", choices=("npz", "din"), default="npz")
    trace.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="warm: worker processes (1 = sequential, 0/default = all cores)",
    )
    trace.add_argument(
        "--experiments",
        default="all",
        help="warm: comma-separated experiment ids to prefetch for (default all)",
    )
    trace.add_argument(
        "--trace-dir",
        type=Path,
        default=None,
        help="stats/gc: trace-cache root (default .trace_cache)",
    )

    sweep = sub.add_parser("sweep", help="miss rates of schemes over one workload")
    sweep.add_argument("--workload", required=True)
    sweep.add_argument("--schemes", default="modulo,xor,odd_multiplier,prime_modulo")
    sweep.add_argument("--refs", type=int, default=100_000)
    sweep.add_argument("--seed", type=int, default=2011)
    sweep.add_argument(
        "--ways",
        default="1",
        help="associativity of the swept cache (1 = the paper's direct-mapped "
        "L1; >1 routes through the k-way LRU stack-distance kernel; a "
        "comma list like 1,2,4,8 sweeps every associativity over fixed "
        "sets from ONE stack-distance pass per scheme)",
    )
    sweep.add_argument(
        "--policy",
        default="lru",
        help="replacement policy (lru, fifo, plru, mru, lfu, random); a "
        "comma list like lru,fifo,plru sweeps every policy over the same "
        "sets from ONE set-decomposition pass per scheme (needs a single "
        "--ways value; the multi-ways Mattson sweep stays LRU-only)",
    )
    sweep.add_argument(
        "--policy-seed",
        type=int,
        default=0,
        help="seed of the 'random' policy's generator (default 0)",
    )
    sweep.add_argument(
        "--aux",
        default="",
        help="auxiliary-structure sweep: comma list of combos (vc, mc, sb, "
        "vc+sb, mc+sb) composed onto the direct-mapped cache; every "
        "(combo, depth) point of one scheme shares ONE vectorised "
        "main-array pass (needs --ways 1 and --policy lru)",
    )
    sweep.add_argument(
        "--aux-lines",
        default="4",
        help="comma list of aux buffer depths to sweep (lines for vc/mc, "
        "prefetch depth for sb; default 4)",
    )

    cache = sub.add_parser("cache", help="inspect or clear the on-disk result/trace caches")
    cache.add_argument(
        "--trace-dir", type=Path, default=None, help="trace-cache root (default .trace_cache)"
    )
    cache.add_argument("--clear", action="store_true", help="delete all cached cell results")
    cache.add_argument(
        "--clear-traces", action="store_true", help="also delete all cached traces"
    )

    uni = sub.add_parser(
        "uniformity", help="per-set access/miss profile of a workload under a scheme"
    )
    uni.add_argument("--workload", required=True)
    uni.add_argument("--scheme", default="modulo")
    uni.add_argument("--refs", type=int, default=100_000)
    uni.add_argument("--seed", type=int, default=2011)

    from .service.cli import add_service_commands

    add_service_commands(sub)
    return parser


def _config_from(args) -> PaperConfig:
    cfg = PaperConfig()
    updates = {}
    if args.refs is not None:
        updates["ref_limit"] = args.refs
    if args.seed is not None:
        updates["seed"] = args.seed
    if getattr(args, "scale", None) is not None:
        updates["workload_scale"] = args.scale
    if getattr(args, "jobs", None) is not None:
        updates["jobs"] = args.jobs
    if getattr(args, "no_result_cache", False):
        updates["use_result_cache"] = False
    if getattr(args, "engine", None) is not None:
        updates["engine"] = args.engine
    if getattr(args, "no_batch", False):
        updates["batch_sweeps"] = False
    if getattr(args, "cell_timeout", None) is not None:
        updates["cell_timeout"] = args.cell_timeout
    return replace(cfg, **updates) if updates else cfg


def _cmd_list() -> int:
    print("Workloads (mibench):", ", ".join(available_workloads("mibench")))
    print("Workloads (spec):   ", ", ".join(available_workloads("spec")))
    print("Indexing schemes:   ", ", ".join(available_schemes()))
    print("Experiments:        ", ", ".join(available_experiments()))
    return 0


def _cmd_run(args) -> int:
    cfg = _config_from(args)
    ids = available_experiments() if args.experiment == "all" else [args.experiment]
    for eid in ids:
        result = run_experiment(eid, cfg)
        print(result)
        print()
        if args.bars and args.bars in result.columns:
            print(render_bars(result, args.bars))
            print()
        if args.out:
            with args.out.open("a") as fh:
                fh.write(result.to_markdown() + "\n")
    return 0


def _cmd_trace(args) -> int:
    if args.workload == "warm":
        return _cmd_trace_warm(args)
    if args.workload == "stats":
        return _cmd_trace_stats(args)
    if args.workload == "gc":
        return _cmd_trace_gc(args)
    if args.out is None:
        print("error: --out is required when generating a trace", file=sys.stderr)
        return 2
    trace = get_workload(args.workload).generate(
        seed=2011 if args.seed is None else args.seed,
        ref_limit=100_000 if args.refs is None else args.refs,
        scale=1.0 if args.scale is None else args.scale,
    )
    if args.format == "npz":
        path = save_npz(trace, args.out)
    else:
        path = save_din(trace, args.out)
    print(f"wrote {len(trace)} references to {path}")
    return 0


def _cmd_trace_warm(args) -> int:
    """Prefetch the trace cache for a set of experiments, in parallel."""
    import time

    from .experiments.warm import specs_for, warm_traces

    cfg = _config_from(args)
    if args.experiments.strip() in ("", "all"):
        ids = available_experiments()
    else:
        ids = [eid.strip() for eid in args.experiments.split(",") if eid.strip()]
        unknown = sorted(set(ids) - set(available_experiments()))
        if unknown:
            print(f"error: unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
    specs = specs_for(ids, cfg)
    if not specs:
        print("nothing to warm: no selected experiment declares trace needs")
        return 0
    t0 = time.perf_counter()
    entries = warm_traces(specs, cfg, jobs=args.jobs)
    wall = time.perf_counter() - t0
    generated = sum(1 for e in entries.values() if e.generated)
    gen_seconds = sum(e.seconds for e in entries.values() if e.generated)
    print(
        f"warmed {len(entries)} trace(s) for {len(ids)} experiment(s) in {wall:.1f}s "
        f"({generated} generated [{gen_seconds:.1f}s worker-time], "
        f"{len(entries) - generated} already cached) -> {cfg.trace_cache_dir}"
    )
    return 0


def _trace_cache_from(args):
    from .trace.io import TraceCache

    cfg = PaperConfig()
    trace_dir = getattr(args, "trace_dir", None)
    return TraceCache(trace_dir if trace_dir is not None else cfg.trace_cache_dir)


def _cmd_trace_stats(args) -> int:
    """Per-format trace-cache inventory (raw vs legacy npz, migration state)."""
    cache = _trace_cache_from(args)
    st = cache.stats()
    print(f"trace cache {st['root']}")
    print(
        f"  raw (mmap)  {st['raw_entries']:>5} entr{'y' if st['raw_entries'] == 1 else 'ies'}, "
        f"{st['raw_bytes'] / (1 << 20):8.1f} MiB"
    )
    print(
        f"  npz legacy  {st['npz_entries']:>5} entr{'y' if st['npz_entries'] == 1 else 'ies'}, "
        f"{st['npz_bytes'] / (1 << 20):8.1f} MiB "
        f"({st['npz_migrated']} migrated, reclaimable via 'trace gc')"
    )
    return 0


def _cmd_trace_gc(args) -> int:
    """Evict npz entries that already have a raw (mmap-format) sibling."""
    cache = _trace_cache_from(args)
    removed, reclaimed = cache.gc()
    print(
        f"trace gc: removed {removed} migrated npz entr"
        f"{'y' if removed == 1 else 'ies'}, reclaimed {reclaimed / (1 << 20):.1f} MiB"
    )
    return 0


def _cmd_sweep(args) -> int:
    try:
        ways_list = [int(w) for w in str(args.ways).split(",") if w.strip()]
    except ValueError:
        print(f"error: invalid --ways value {args.ways!r}", file=sys.stderr)
        return 2
    if not ways_list:
        ways_list = [1]
    # Validate every requested policy against the registry *before* any
    # trace generation or simulation work starts.
    policy_list = [p.strip() for p in str(args.policy).split(",") if p.strip()]
    if not policy_list:
        policy_list = ["lru"]
    from .core.replacement import make_policy

    for policy in policy_list:
        try:
            make_policy(policy, 1, 1)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    aux_list = [a.strip() for a in str(args.aux).split(",") if a.strip()]
    if aux_list:
        from .core.aux import AUX_COMBOS

        for combo in aux_list:
            if combo not in AUX_COMBOS:
                print(
                    f"error: unknown aux combo {combo!r}; known: "
                    f"{', '.join(AUX_COMBOS)}",
                    file=sys.stderr,
                )
                return 2
        try:
            lines_list = [
                int(d) for d in str(args.aux_lines).split(",") if d.strip()
            ]
        except ValueError:
            print(f"error: invalid --aux-lines value {args.aux_lines!r}", file=sys.stderr)
            return 2
        if not lines_list or any(d < 1 for d in lines_list):
            print("error: --aux-lines values must be positive", file=sys.stderr)
            return 2
        if ways_list != [1] or policy_list != ["lru"]:
            print(
                "error: --aux composes onto the direct-mapped cache "
                "(needs --ways 1 and --policy lru)",
                file=sys.stderr,
            )
            return 2
    if len(policy_list) > 1 and len(ways_list) > 1:
        print(
            "error: sweep one axis at a time — a comma list for --ways "
            "(LRU Mattson sweep) or for --policy (set-decomposition sweep), "
            "not both",
            file=sys.stderr,
        )
        return 2
    trace = get_workload(args.workload).generate(seed=args.seed, ref_limit=args.refs)
    if aux_list:
        return _cmd_sweep_aux(args, trace, aux_list, lines_list)
    if len(policy_list) > 1:
        return _cmd_sweep_policies(args, trace, ways_list[0], policy_list)
    if len(ways_list) > 1:
        return _cmd_sweep_ways(args, trace, ways_list)
    ways = ways_list[0]
    geometry = PAPER_L1_GEOMETRY
    if ways != 1:
        try:
            geometry = geometry.with_ways(ways)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    print(f"{args.workload}: {len(trace)} refs, geometry {geometry.describe()}")
    for name in args.schemes.split(","):
        scheme = make_scheme(name.strip(), geometry)
        if isinstance(scheme, TrainableIndexingScheme):
            scheme.fit(trace.addresses)
        if ways == 1 and args.policy == "lru":
            res = simulate_indexing(scheme, trace, geometry)
        else:
            try:
                res = simulate_set_associative(
                    scheme,
                    trace,
                    geometry,
                    policy=args.policy,
                    policy_seed=args.policy_seed,
                )
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        print(f"  {scheme.name:16s} miss_rate={res.miss_rate:.4f} misses={res.misses}")
    return 0


def _cmd_sweep_aux(args, trace, aux_list: list[str], lines_list: list[int]) -> int:
    """Aux sweep: every (combo, depth) point over one vectorised main pass."""
    from .core.aux import simulate_aux_sweep

    geometry = PAPER_L1_GEOMETRY
    specs = [(combo, depth) for combo in aux_list for depth in lines_list]
    print(
        f"{args.workload}: {len(trace)} refs, geometry {geometry.describe()}, "
        f"aux {','.join(aux_list)} × lines {','.join(map(str, lines_list))} "
        "from one main-array pass per scheme"
    )
    for name in args.schemes.split(","):
        scheme = make_scheme(name.strip(), geometry)
        if isinstance(scheme, TrainableIndexingScheme):
            scheme.fit(trace.addresses)
        try:
            results = simulate_aux_sweep(scheme, trace, geometry, specs)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for (combo, depth), res in zip(specs, results):
            absorbed = sum(
                res.extra.get(k, 0)
                for k in ("victim_hits", "miss_cache_hits", "stream_hits")
            )
            print(
                f"  {scheme.name:16s} {combo + str(depth):>8} "
                f"miss_rate={res.miss_rate:.4f} misses={res.misses} "
                f"absorbed={absorbed}"
            )
    return 0


def _cmd_sweep_policies(args, trace, ways: int, policy_list: list[str]) -> int:
    """Policy sweep: every policy over the same sets from one pass."""
    from .core.fastpolicy import simulate_policy_sweep

    geometry = PAPER_L1_GEOMETRY
    if ways != 1:
        try:
            geometry = geometry.with_ways(ways)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    print(
        f"{args.workload}: {len(trace)} refs, geometry {geometry.describe()}, "
        f"policies {','.join(policy_list)} from one set-decomposition pass per scheme"
    )
    for name in args.schemes.split(","):
        scheme = make_scheme(name.strip(), geometry)
        if isinstance(scheme, TrainableIndexingScheme):
            scheme.fit(trace.addresses)
        try:
            results = simulate_policy_sweep(
                scheme, trace, geometry, policy_list, seed=args.policy_seed
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for policy, res in zip(policy_list, results):
            print(
                f"  {scheme.name:16s} {policy:>6} "
                f"miss_rate={res.miss_rate:.4f} misses={res.misses}"
            )
    return 0


def _cmd_sweep_ways(args, trace, ways_list: list[int]) -> int:
    """Mattson sweep: every associativity over fixed sets from one pass."""
    from .core.simulator import simulate_lru_sweep

    if args.policy != "lru":
        print(
            "error: the single-pass associativity sweep is exact only for LRU "
            f"(the Mattson inclusion property); got policy {args.policy!r}",
            file=sys.stderr,
        )
        return 2
    geometry = PAPER_L1_GEOMETRY
    print(
        f"{args.workload}: {len(trace)} refs, {geometry.num_sets} sets fixed, "
        f"ways {','.join(map(str, ways_list))} from one stack-distance pass per scheme"
    )
    for name in args.schemes.split(","):
        scheme = make_scheme(name.strip(), geometry)
        if isinstance(scheme, TrainableIndexingScheme):
            scheme.fit(trace.addresses)
        try:
            results = simulate_lru_sweep(
                scheme, trace, geometry, [(w, "setassoc") for w in ways_list]
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for ways, res in zip(ways_list, results):
            print(
                f"  {scheme.name:16s} {ways:>3}-way "
                f"miss_rate={res.miss_rate:.4f} misses={res.misses}"
            )
    return 0


def _cmd_cache(args) -> int:
    from .experiments.engine import ResultCache

    cfg = PaperConfig()
    trace_dir = args.trace_dir if args.trace_dir is not None else cfg.trace_cache_dir
    trace_dir = Path(trace_dir)
    result_dir = trace_dir / "results"
    results = ResultCache(result_dir)
    from .trace.io import RAW_SUFFIX

    n_raw = sum(1 for _ in trace_dir.glob(f"*{RAW_SUFFIX}"))
    n_npz = sum(1 for _ in trace_dir.glob("*.npz"))
    n_traces = n_raw + n_npz
    print(
        f"trace cache   {trace_dir}: {n_traces} trace file(s) "
        f"({n_raw} raw, {n_npz} npz)"
    )
    print(
        f"result cache  {result_dir}: {len(results)} cell result(s), "
        f"{results.size_bytes() / 1024:.1f} KiB"
    )
    if args.clear or args.clear_traces:
        removed = results.clear()
        print(f"cleared {removed} cell result(s)")
    if args.clear_traces:
        from .trace.io import TraceCache

        TraceCache(trace_dir).clear()
        print(f"cleared {n_traces} trace(s)")
    return 0


def _cmd_uniformity(args) -> int:
    from .core.uniformity import uniformity_report, zhang_classification
    from .experiments.report import sparkline

    trace = get_workload(args.workload).generate(seed=args.seed, ref_limit=args.refs)
    geometry = PAPER_L1_GEOMETRY
    scheme = make_scheme(args.scheme, geometry)
    if isinstance(scheme, TrainableIndexingScheme):
        scheme.fit(trace.addresses)
    res = simulate_indexing(scheme, trace, geometry)
    print(f"{args.workload} under {scheme.name}: miss rate {res.miss_rate:.4f}")
    print(f"accesses/set  {sparkline(res.slot_accesses)}")
    print(f"misses/set    {sparkline(res.slot_misses)}")
    rep = uniformity_report(res.slot_accesses)
    zh = zhang_classification(res.slot_accesses, res.slot_hits, res.slot_misses)
    print(
        f"accesses: {rep.below_half_pct:.1f}% of sets < half avg, "
        f"{rep.above_double_pct:.1f}% > 2x avg, skew {rep.skewness:.2f}, "
        f"kurtosis {rep.kurtosis:.2f}, gini {rep.gini:.2f}"
    )
    print(f"Zhang classes: FHS {zh['FHS%']:.1f}%  FMS {zh['FMS%']:.1f}%  LAS {zh['LAS%']:.1f}%")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "uniformity":
        return _cmd_uniformity(args)
    if args.command == "serve":
        from .service.cli import cmd_serve

        return cmd_serve(args)
    if args.command == "submit":
        from .service.cli import cmd_submit

        return cmd_submit(args)
    if args.command == "route":
        from .service.cli import cmd_route

        return cmd_route(args)
    if args.command == "stats":
        from .service.cli import cmd_stats

        return cmd_stats(args)
    if args.command == "health":
        from .service.cli import cmd_health

        return cmd_health(args)
    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
