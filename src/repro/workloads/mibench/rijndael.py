"""MiBench ``rijndael`` — AES-128 encryption of a buffer.

A faithful table-driven AES implementation (the benchmark's reference code
uses the same four 1 KiB T-tables): per 16-byte block, 4 rounds' worth of
T-table lookups at data-dependent indexes, round-key loads, streaming
input/output.  The four hot tables (4 KiB total = 128 lines) pin an eighth
of the paper's L1 sets while the buffer streams through the rest — the
lopsided mix behind rijndael's volatile behaviour in the paper's Figure 4.

Ciphertext is verified against a pure-Python AES in the tests.
"""

from __future__ import annotations

from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["RijndaelWorkload", "SBOX", "aes128_encrypt_block", "expand_key"]

# -- AES reference pieces (real algorithm) --------------------------------------

SBOX = [
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B, 0xFE,
    0xD7, 0xAB, 0x76, 0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0, 0xAD, 0xD4,
    0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0, 0xB7, 0xFD, 0x93, 0x26, 0x36, 0x3F, 0xF7,
    0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15, 0x04, 0xC7, 0x23, 0xC3,
    0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2, 0xEB, 0x27, 0xB2, 0x75, 0x09,
    0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0, 0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3,
    0x2F, 0x84, 0x53, 0xD1, 0x00, 0xED, 0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE,
    0x39, 0x4A, 0x4C, 0x58, 0xCF, 0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85,
    0x45, 0xF9, 0x02, 0x7F, 0x50, 0x3C, 0x9F, 0xA8, 0x51, 0xA3, 0x40, 0x8F, 0x92,
    0x9D, 0x38, 0xF5, 0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2, 0xCD, 0x0C,
    0x13, 0xEC, 0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19,
    0x73, 0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14,
    0xDE, 0x5E, 0x0B, 0xDB, 0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C, 0xC2,
    0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79, 0xE7, 0xC8, 0x37, 0x6D, 0x8D, 0xD5,
    0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08, 0xBA, 0x78, 0x25,
    0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F, 0x4B, 0xBD, 0x8B, 0x8A,
    0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E, 0x61, 0x35, 0x57, 0xB9, 0x86,
    0xC1, 0x1D, 0x9E, 0xE1, 0xF8, 0x98, 0x11, 0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E,
    0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF, 0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42,
    0x68, 0x41, 0x99, 0x2D, 0x0F, 0xB0, 0x54, 0xBB, 0x16,
]

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _xtime(x: int) -> int:
    x <<= 1
    return (x ^ 0x1B) & 0xFF if x & 0x100 else x


def expand_key(key: bytes) -> list[list[int]]:
    """AES-128 key schedule: 11 round keys of 16 bytes."""
    words = [list(key[4 * i : 4 * i + 4]) for i in range(4)]
    for i in range(4, 44):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [SBOX[b] for b in temp]
            temp[0] ^= _RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], temp)])
    return [sum(words[4 * r : 4 * r + 4], []) for r in range(11)]


def aes128_encrypt_block(block: bytes, round_keys: list[list[int]]) -> bytes:
    """Reference single-block encryption (state as 16 bytes, column major)."""
    s = [b ^ k for b, k in zip(block, round_keys[0])]
    for rnd in range(1, 10):
        s = [SBOX[b] for b in s]
        # ShiftRows over column-major layout.
        s = [s[(i + 4 * (i % 4)) % 16] for i in range(16)]
        # MixColumns.
        out = []
        for c in range(4):
            col = s[4 * c : 4 * c + 4]
            out.extend(
                [
                    _xtime(col[0]) ^ (_xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3],
                    col[0] ^ _xtime(col[1]) ^ (_xtime(col[2]) ^ col[2]) ^ col[3],
                    col[0] ^ col[1] ^ _xtime(col[2]) ^ (_xtime(col[3]) ^ col[3]),
                    (_xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ _xtime(col[3]),
                ]
            )
        s = [b ^ k for b, k in zip(out, round_keys[rnd])]
    s = [SBOX[b] for b in s]
    s = [s[(i + 4 * (i % 4)) % 16] for i in range(16)]
    return bytes(b ^ k for b, k in zip(s, round_keys[10]))


@register_workload
class RijndaelWorkload(Workload):
    name = "rijndael"
    suite = "mibench"
    description = "AES-128 ECB encryption of a pseudo-random buffer"
    access_pattern = "hot 4KiB T-tables + round keys + block streaming"

    def kernel(self, m: Recorder, scale: float) -> None:
        nblocks = self.scaled(1200, scale, minimum=4)
        buf_in = m.space.heap_array(16, nblocks, "plaintext")
        buf_out = m.space.heap_array(16, nblocks, "ciphertext")
        t_tables = [m.space.static_array(4, 256, f"T{i}") for i in range(4)]
        sbox_arr = m.space.static_array(1, 256, "sbox")
        rk_arr = m.space.static_array(4, 44, "round_keys")

        key = bytes(m.rng.integers(0, 256, size=16, dtype=int).tolist())
        round_keys = expand_key(key)
        data = m.rng.integers(0, 256, size=(nblocks, 16), dtype=int)
        last_ct = b""
        for blk in range(nblocks):
            # Block load: 4 word reads.
            for w in range(4):
                m.load(buf_in.addr(blk) + 4 * w)
            pt = bytes(data[blk].tolist())
            state = list(pt)
            for rnd in range(10):
                for w in range(4):
                    m.load_elem(rk_arr, 4 * rnd + w)
                # Table-driven round: 16 T-table lookups at byte-dependent
                # indexes (the trace-relevant behaviour of the T-table code).
                for i, b in enumerate(state):
                    m.load_elem(t_tables[i & 3], b)
            for w in range(4):
                m.load_elem(rk_arr, 40 + w)
            for b in state[:4]:
                m.load_elem(sbox_arr, b)
            ct = aes128_encrypt_block(pt, round_keys)
            state = list(ct)
            last_ct = ct
            for w in range(4):
                m.store(buf_out.addr(blk) + 4 * w)
        m.builder.meta["last_ciphertext"] = last_ct.hex()
        m.builder.meta["key"] = key.hex()
