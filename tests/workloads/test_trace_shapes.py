"""Trace-shape characterisation: each workload's documented access pattern
must actually be present in its trace.

These lock the properties the paper's figures depend on — e.g. fft's
aliasing arrays, crc's tiny hot working set, mcf's scattered node
dereferences — so a workload refactor cannot silently change the
experiments' inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.address import PAPER_L1_GEOMETRY
from repro.core.indexing import ModuloIndexing
from repro.core.simulator import simulate_indexing
from repro.core.three_c import classify
from repro.core.caches import DirectMappedCache
from repro.core.uniformity import normalized_entropy
from repro.trace.stats import stride_histogram
from repro.workloads import get_workload

G = PAPER_L1_GEOMETRY
REFS = 60_000


def trace_of(name: str):
    return get_workload(name).generate(seed=2011, ref_limit=REFS)


class TestFootprints:
    def test_crc_hot_working_set_is_tiny(self):
        """crc = chunk buffer + table + stack: a few KiB touched repeatedly."""
        t = trace_of("crc")
        assert t.footprint_bytes(G.offset_bits) < 8 * 1024

    def test_libquantum_footprint_exceeds_cache(self):
        t = trace_of("libquantum")
        assert t.footprint_bytes(G.offset_bits) > G.capacity_bytes

    def test_mcf_arena_large(self):
        t = trace_of("mcf")
        assert t.footprint_bytes(G.offset_bits) > 4 * G.capacity_bytes


class TestConflictStructure:
    def test_fft_conflict_dominated(self):
        """The aliasing real/imag arrays make fft's DM misses conflicts."""
        b = classify(DirectMappedCache(G), trace_of("fft"), G)
        assert b.share("conflict") > 0.6

    def test_streaming_benchmarks_not_conflict_dominated(self):
        for name in ("libquantum", "hmmer"):
            b = classify(DirectMappedCache(G), trace_of(name), G)
            assert b.share("conflict") < 0.3, name

    def test_fft_real_imag_alias(self):
        """fft's two float arrays land on the same conventional sets."""
        t = trace_of("fft")
        res = simulate_indexing(ModuloIndexing(G), t, G)
        # The populated sets are a strict minority (the arrays overlap).
        populated = (res.slot_accesses > 0).sum()
        assert populated < 0.7 * G.num_sets


class TestStrideSpectra:
    def test_libquantum_streams_its_records(self):
        """The register sweep's 16-byte record stride dominates."""
        hist = stride_histogram(trace_of("libquantum"), top_k=1)
        assert hist[0] == (16, pytest.approx(hist[0][1]))
        assert hist[0][1] > 0.3

    def test_crc_alternates_buffer_and_table(self):
        """crc's per-byte buf/table alternation means no single stride
        dominates, but the 8-byte refill stride is the most common one."""
        hist = stride_histogram(trace_of("crc"), top_k=1)
        assert hist[0][0] == 8
        assert hist[0][1] < 0.15

    def test_dijkstra_has_row_stride(self):
        """Adjacency-matrix row scans produce a dominant 4-byte stride."""
        t = trace_of("dijkstra")
        hist = dict(stride_histogram(t, top_k=4))
        assert 4 in hist

    def test_pointer_chasers_have_no_dominant_stride(self):
        """patricia/mcf addresses scatter: no single stride covers most refs."""
        for name in ("patricia", "mcf"):
            t = trace_of(name)
            hist = stride_histogram(t, top_k=1)
            assert hist[0][1] < 0.5, name


class TestSetUtilisation:
    def test_uniform_benchmarks_cover_most_sets(self):
        """bitcount/qsort sweep their data across (nearly) all sets — the
        paper's explanation for their ~zero technique gains.  (Entropy is
        still dragged down by their hot lookup tables, so coverage is the
        right metric.)"""
        for name in ("bitcount", "qsort"):
            res = simulate_indexing(ModuloIndexing(G), trace_of(name), G)
            coverage = (res.slot_accesses > 0).mean()
            assert coverage > 0.9, name

    def test_fft_has_low_entropy(self):
        res = simulate_indexing(ModuloIndexing(G), trace_of("fft"), G)
        assert normalized_entropy(res.slot_accesses) < 0.8

    def test_write_fractions_sane(self):
        """Every workload reads more than it writes (real program property),
        but none is read-only."""
        for name in ("fft", "qsort", "sha", "susan", "gromacs"):
            t = trace_of(name)
            assert 0.0 < t.write_fraction() < 0.6, name


class TestScaling:
    @pytest.mark.parametrize("name", ["fft", "dijkstra", "astar"])
    def test_scale_changes_problem_size(self, name):
        small = get_workload(name).generate(seed=1, ref_limit=None, scale=0.05)
        big = get_workload(name).generate(seed=1, ref_limit=30_000, scale=0.5)
        assert small.footprint_bytes(5) < big.footprint_bytes(5)
