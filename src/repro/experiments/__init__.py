"""Experiments: one registered runner per paper figure.

Importing this package registers fig1 and fig4-fig14 (figs 2/3/5 are
schematics with nothing to measure)::

    from repro.experiments import run_experiment, PaperConfig
    print(run_experiment("fig4", PaperConfig()))
"""

from . import (  # noqa: F401  (imported for registration side effects)
    ext_assoc,
    ext_aux,
    ext_bounds,
    ext_dynamic,
    ext_hpc,
    ext_hybrid,
    ext_icache,
    ext_patel,
    ext_policy,
    ext_three_c,
    fig01_nonuniformity,
    fig04_indexing_missrate,
    fig06_progassoc_missrate,
    fig08_colassoc_indexing,
    fig09_uniformity_moments,
    fig13_smt_indexing,
    fig14_partitioned_amat,
)
from .config import MULTITHREAD_MIXES_FIG13, MULTITHREAD_MIXES_FIG14, PaperConfig
from .engine import (
    CellExecutionError,
    EngineStats,
    ExperimentEngine,
    ResultCache,
    ResultStore,
    SharedDirStore,
    effective_jobs,
    make_store,
)
from .report import ExperimentResult, render_bars, render_table, sparkline
from .runner import (
    EXPERIMENT_REGISTRY,
    available_experiments,
    register_experiment,
    run_experiment,
    workload_trace,
)

__all__ = [
    "PaperConfig",
    "MULTITHREAD_MIXES_FIG13",
    "MULTITHREAD_MIXES_FIG14",
    "ExperimentResult",
    "render_table",
    "render_bars",
    "sparkline",
    "run_experiment",
    "register_experiment",
    "available_experiments",
    "EXPERIMENT_REGISTRY",
    "workload_trace",
    "ExperimentEngine",
    "EngineStats",
    "ResultCache",
    "ResultStore",
    "SharedDirStore",
    "make_store",
    "CellExecutionError",
    "effective_jobs",
]
