"""Benches for the 3C-breakdown and dynamic-switching extensions."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment


def test_ext_three_c(benchmark, config):
    result = run_once(benchmark, lambda: run_experiment("ext-3c", config))
    print()
    print(result)
    # fft must be conflict-dominated; fully-streaming workloads cold/capacity.
    assert result.rows["fft"]["conflict%"] > 60.0
    assert result.rows["libquantum"]["conflict%"] < 20.0
    for bench, row in result.rows.items():
        total = row["cold%"] + row["capacity%"] + row["conflict%"]
        assert abs(total - 100.0) < 1e-6, bench


def test_ext_dynamic(benchmark, config):
    result = run_once(benchmark, lambda: run_experiment("ext-dynamic", config))
    print()
    print(result)
    avg = result.rows["Average"]
    assert avg["dynamic"] > 0.0
    assert avg["dynamic"] >= min(avg["static_xor"], avg["static_odd"]) - 5.0
