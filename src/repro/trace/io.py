"""Trace persistence.

Two formats:

* **NPZ** (binary, default) — the struct-of-arrays dumped via
  :func:`numpy.savez_compressed`, with metadata as a JSON sidecar entry.
  Loads back bit-identical; used by the on-disk trace cache that spares the
  benches from regenerating workloads on every run.
* **din** (text) — the classic Dinero-style ``<op> <hex-address>`` lines
  (0 = read, 1 = write, one access per line, ``#`` comments), for eyeballing
  traces and interoperating with external cache tools.
"""

from __future__ import annotations

import json
import os
import uuid
import zipfile
from pathlib import Path

import numpy as np

from .event import Trace

__all__ = ["save_npz", "load_npz", "save_din", "load_din", "TraceCache"]


def save_npz(trace: Trace, path: str | Path) -> Path:
    """Persist ``trace`` at ``path`` atomically.

    The archive is written to a unique sibling temp file and moved into
    place with :func:`os.replace`, so concurrent writers (e.g. two test
    processes warming the same :class:`TraceCache` key, or the parallel
    experiment engine racing a foreground run) can never leave a
    truncated npz at the final path — readers see either the old file or
    a complete new one.
    """
    path = Path(path)
    if path.suffix != ".npz":
        # np.savez appends .npz when absent; normalise up front so the
        # atomic rename targets the real destination.
        path = path.with_suffix(path.suffix + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.stem}.{uuid.uuid4().hex}.tmp.npz")
    try:
        np.savez_compressed(
            tmp,
            addresses=trace.addresses,
            is_write=trace.is_write,
            thread=trace.thread,
            meta=np.frombuffer(
                json.dumps({"name": trace.name, **trace.meta}).encode(), dtype=np.uint8
            ),
        )
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # savez failed mid-write; don't leak temp files
            tmp.unlink()
    return path


def load_npz(path: str | Path) -> Trace:
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta"]).decode()) if "meta" in data else {}
        name = meta.pop("name", "")
        return Trace(
            data["addresses"].copy(),
            data["is_write"].copy(),
            data["thread"].copy(),
            name=name,
            meta=meta,
        )


def save_din(trace: Trace, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        fh.write(f"# trace: {trace.name} ({len(trace)} refs)\n")
        for a, w in zip(trace.addresses, trace.is_write):
            fh.write(f"{1 if w else 0} {int(a):x}\n")
    return path


def load_din(path: str | Path, name: str = "") -> Trace:
    ops: list[int] = []
    addrs: list[int] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            op, addr = line.split()
            ops.append(int(op))
            addrs.append(int(addr, 16))
    return Trace(
        np.array(addrs, dtype=np.uint64),
        np.array(ops, dtype=bool),
        name=name or Path(path).stem,
    )


class TraceCache:
    """Content-addressed on-disk cache of generated traces.

    Keys are ``(name, seed, ref_limit, extra params)``; a miss runs the
    supplied generator and persists the result, so repeated experiment runs
    pay trace generation once.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def path_for(self, key: str) -> Path:
        """On-disk npz path for ``key`` (the file may not exist yet).

        The parallel experiment engine ships this path — not the trace
        arrays — to worker processes, which re-open the npz locally.
        """
        return self._path(key)

    @staticmethod
    def key_for(name: str, **params) -> str:
        parts = [name] + [f"{k}={params[k]}" for k in sorted(params)]
        return "_".join(parts).replace("/", "-").replace(" ", "")

    def get_or_create(self, key: str, generator) -> Trace:
        path = self._path(key)
        if path.exists():
            try:
                return load_npz(path)
            except (zipfile.BadZipFile, OSError, ValueError, KeyError, EOFError):
                # Same discipline as the result cache: a corrupted or
                # truncated entry is deleted and regenerated, never trusted.
                path.unlink(missing_ok=True)
        trace = generator()
        save_npz(trace, path)
        return trace

    def clear(self) -> None:
        for p in self.root.glob("*.npz"):
            p.unlink()
