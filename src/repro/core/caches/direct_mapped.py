"""Direct-mapped cache, parameterised by indexing scheme.

This is both the paper's baseline (with :class:`ModuloIndexing`) and the
vehicle for every Section-II indexing experiment: the *only* thing that
changes between the bars of the paper's Figure 4 is the indexing function
plugged in here.
"""

from __future__ import annotations

import numpy as np

from ..address import CacheGeometry
from ..indexing.base import IndexingScheme
from ..indexing.modulo import ModuloIndexing
from .base import EMPTY, AccessResult, CacheModel

__all__ = ["DirectMappedCache"]


class DirectMappedCache(CacheModel):
    """One line per set; a lookup probes exactly one slot."""

    name = "direct_mapped"

    def __init__(self, geometry: CacheGeometry, indexing: IndexingScheme | None = None):
        if geometry.ways != 1:
            raise ValueError("DirectMappedCache requires a 1-way geometry")
        super().__init__(geometry, num_slots=geometry.num_sets)
        self.indexing = indexing if indexing is not None else ModuloIndexing(geometry)
        if self.indexing.geometry.num_sets != geometry.num_sets:
            raise ValueError("indexing scheme geometry does not match the cache")
        self._blocks = np.full(geometry.num_sets, EMPTY, dtype=np.int64)
        # The indexing scheme consumes byte addresses; precompute the shift
        # to reconstruct a representative byte address from a block address.
        self._offset_bits = geometry.offset_bits

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        slot = self.indexing.index_of(block << self._offset_bits)
        self.stats.record_probe(slot)
        if self._blocks[slot] == block:
            self.stats.record_hit(slot, "direct")
            return AccessResult(True, 1, slot, slot, hit_class="direct")
        evicted = int(self._blocks[slot])
        self._blocks[slot] = block
        self.stats.record_miss(slot)
        return AccessResult(
            False, 1, slot, slot, evicted_block=None if evicted == EMPTY else evicted
        )

    def contents(self) -> set[int]:
        return {int(b) for b in self._blocks if b != EMPTY}

    def flush(self) -> None:
        self._blocks.fill(EMPTY)
