"""Synthetic stressor tests: each generator's ground truth must hold."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.address import PAPER_L1_GEOMETRY
from repro.core.indexing import ModuloIndexing, PrimeModuloIndexing
from repro.core.simulator import simulate_indexing
from repro.core.uniformity import kurtosis, normalized_entropy
from repro.trace import (
    hot_set_trace,
    ping_pong_trace,
    pointer_chase_trace,
    sequential_sweep,
    strided_trace,
    uniform_trace,
    zipf_trace,
)

G = PAPER_L1_GEOMETRY


class TestUniform:
    def test_near_uniform_sets(self):
        t = uniform_trace(50_000, seed=1)
        res = simulate_indexing(ModuloIndexing(G), t)
        assert normalized_entropy(res.slot_accesses) > 0.98

    def test_deterministic(self):
        a = uniform_trace(100, seed=3)
        b = uniform_trace(100, seed=3)
        np.testing.assert_array_equal(a.addresses, b.addresses)


class TestSweep:
    def test_monotone(self):
        t = sequential_sweep(100, stride=8)
        assert (np.diff(t.addresses.astype(np.int64)) == 8).all()


class TestStrided:
    def test_capacity_stride_hits_one_set(self):
        t = strided_trace(1000, stride=32 * 1024, working_set=8 * 32 * 1024)
        res = simulate_indexing(ModuloIndexing(G), t)
        assert (res.slot_accesses > 0).sum() == 1

    def test_prime_modulo_spreads_it(self):
        t = strided_trace(1000, stride=32 * 1024, working_set=8 * 32 * 1024)
        res = simulate_indexing(PrimeModuloIndexing(G), t)
        assert (res.slot_accesses > 0).sum() > 1


class TestZipf:
    def test_high_kurtosis(self):
        t = zipf_trace(50_000, seed=2)
        res = simulate_indexing(ModuloIndexing(G), t)
        assert kurtosis(res.slot_accesses) > 3.0

    def test_exponent_controls_concentration(self):
        mild = zipf_trace(30_000, exponent=0.8, seed=1)
        harsh = zipf_trace(30_000, exponent=2.0, seed=1)
        mild_k = kurtosis(simulate_indexing(ModuloIndexing(G), mild).slot_accesses)
        harsh_k = kurtosis(simulate_indexing(ModuloIndexing(G), harsh).slot_accesses)
        assert harsh_k > mild_k


class TestHotSet:
    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            hot_set_trace(10, hot_fraction=0.0)

    def test_hot_region_dominates(self):
        t = hot_set_trace(50_000, hot_fraction=0.1, hot_weight=0.9, seed=1)
        hot_span = int((1 << 20) * 0.1)
        in_hot = ((t.addresses - 0x1000_0000) < hot_span).mean()
        assert 0.85 < in_hot < 0.95


class TestPointerChase:
    def test_visits_all_nodes(self):
        t = pointer_chase_trace(4096, num_nodes=64, seed=5)
        assert np.unique(t.addresses).size == 64

    def test_is_a_cycle(self):
        t = pointer_chase_trace(128, num_nodes=64, seed=5)
        # After num_nodes steps the walk repeats exactly.
        np.testing.assert_array_equal(t.addresses[:64], t.addresses[64:128])


class TestPingPong:
    def test_exactly_two_addresses(self):
        t = ping_pong_trace(100)
        assert np.unique(t.addresses).size == 2

    def test_thrashes_direct_mapped(self):
        res = simulate_indexing(ModuloIndexing(G), ping_pong_trace(1000))
        assert res.miss_rate == 1.0
