"""Content-addressed on-disk cache of per-cell simulation results.

Lives alongside the :class:`~repro.trace.io.TraceCache` (by default in a
``results/`` subdirectory of the trace-cache root).  Keys are SHA-256
digests over everything that determines a cell's outcome:

* the **trace fingerprint** — a digest of the actual address/write/thread
  arrays, so regenerating a workload with different knobs can never alias;
* the **cache geometry** (capacity, line size, ways, address bits);
* the cell's **kind / label / parameter** tuple (scheme parameters,
  adaptive-table fractions, B-cache operating point, ...);
* the **effective associativity and replacement policy** of the simulated
  structure (``setassoc``/``bounds`` cells override the geometry's ``ways``);
* the profiling-trace fingerprint for trainable schemes; and
* :data:`ENGINE_VERSION`, bumped whenever simulation semantics change.

Entries are single ``.npz`` files written atomically (tmp + ``os.replace``)
with an embedded SHA-256 payload checksum.  ``load`` verifies the checksum
and every structural invariant; a corrupted, truncated or stale-version
entry is deleted and reported as a miss, never trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

import numpy as np

from ...core.address import CacheGeometry
from ...core.simulator import SimulationResult
from ...trace.event import Trace

__all__ = ["ENGINE_VERSION", "ResultCache", "trace_fingerprint", "cell_key"]

#: Bump to invalidate every cached cell result (simulation semantics change).
#: v2: k-way cells exist and keys carry the effective ways/policy pair.
#: v3: keys carry every outcome-changing model parameter (colassoc
#: ``protect_conventional`` in particular) — older keys under-specified the
#: column-associative cells, so they are all invalidated.
ENGINE_VERSION = 3

_ARRAY_FIELDS = ("slot_accesses", "slot_hits", "slot_misses")
_SCALAR_FIELDS = ("accesses", "hits", "misses", "lookup_cycles")


def trace_fingerprint(trace: Trace) -> str:
    """Content digest of a trace (addresses, writes, threads — not the name)."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(trace.addresses).tobytes())
    h.update(np.ascontiguousarray(trace.is_write).tobytes())
    h.update(np.ascontiguousarray(trace.thread).tobytes())
    return h.hexdigest()


def cell_key(
    kind: str,
    label: str,
    params: tuple,
    geometry: CacheGeometry,
    trace_fp: str,
    profile_fp: str | None = None,
    ways: int | None = None,
    policy: str = "lru",
) -> str:
    """Deterministic content-addressed key for one cell.

    ``ways``/``policy`` describe the *simulated structure* (``None`` means
    the geometry's own associativity): a 4-way LRU cell and a 4-way FIFO
    cell over the same trace/geometry must never alias.
    """
    doc = {
        "engine_version": ENGINE_VERSION,
        "kind": kind,
        "label": label,
        "params": [[str(k), repr(v)] for k, v in params],
        "geometry": [
            geometry.capacity_bytes,
            geometry.line_bytes,
            geometry.ways,
            geometry.address_bits,
        ],
        "ways": geometry.ways if ways is None else int(ways),
        "policy": policy,
        "trace": trace_fp,
        "profile": profile_fp,
    }
    return hashlib.sha256(json.dumps(doc, sort_keys=True).encode()).hexdigest()


def _payload_checksum(meta: dict, arrays: dict[str, np.ndarray]) -> str:
    h = hashlib.sha256()
    h.update(json.dumps(meta, sort_keys=True).encode())
    for name in _ARRAY_FIELDS:
        h.update(np.ascontiguousarray(arrays[name]).tobytes())
    return h.hexdigest()


class ResultCache:
    """On-disk memo of :class:`SimulationResult` keyed by content digest."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.npz"))

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.root.glob("*.npz"))

    # -- store / load -------------------------------------------------------------

    def store(self, key: str, result: SimulationResult) -> Path:
        meta = {
            "engine_version": ENGINE_VERSION,
            "model": result.model,
            "trace_name": result.trace_name,
            "extra": {k: int(v) for k, v in result.extra.items()},
        }
        for name in _SCALAR_FIELDS:
            meta[name] = int(getattr(result, name))
        arrays = {
            name: np.ascontiguousarray(getattr(result, name), dtype=np.int64)
            for name in _ARRAY_FIELDS
        }
        meta["checksum"] = _payload_checksum(
            {k: v for k, v in meta.items() if k != "checksum"}, arrays
        )
        path = self.path_for(key)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez_compressed(
                    fh,
                    meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
                    **arrays,
                )
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def load(self, key: str) -> SimulationResult | None:
        """Verified load; *verified* corruption/staleness deletes the entry → miss.

        A transient I/O failure (``OSError`` while opening/reading — e.g. a
        concurrent reader racing a writer on a shared filesystem, or a
        momentary NFS hiccup) is reported as a miss but **never** deletes
        the entry: the file may be perfectly good, and unlinking it would
        throw away a warm result every other node could still use.  Only
        failures that prove the decoded *content* is wrong (bad zip,
        missing members, checksum mismatch, stale engine version,
        inconsistent shapes) unlink.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            with np.load(path) as data:
                meta = json.loads(bytes(data["meta"]).decode())
                arrays = {name: data[name].copy() for name in _ARRAY_FIELDS}
        except OSError:
            # Transient read error: miss, but leave the entry intact.
            return None
        except Exception:
            # Undecodable content (truncated zip, missing member, bad
            # JSON): verified corruption — recompute rather than trust.
            self._unlink_corrupt(path)
            return None
        try:
            if meta.get("engine_version") != ENGINE_VERSION:
                raise ValueError("stale engine version")
            stored = meta.pop("checksum")
            if stored != _payload_checksum(meta, arrays):
                raise ValueError("checksum mismatch")
            n_sets = arrays["slot_accesses"].size
            if any(arrays[name].size != n_sets for name in _ARRAY_FIELDS):
                raise ValueError("inconsistent per-set arrays")
        except Exception:
            # Decoded fine but failed verification: provably bad entry.
            self._unlink_corrupt(path)
            return None
        return SimulationResult(
            model=meta["model"],
            trace_name=meta["trace_name"],
            accesses=meta["accesses"],
            hits=meta["hits"],
            misses=meta["misses"],
            lookup_cycles=meta["lookup_cycles"],
            slot_accesses=arrays["slot_accesses"],
            slot_hits=arrays["slot_hits"],
            slot_misses=arrays["slot_misses"],
            extra=dict(meta.get("extra", {})),
        )

    @staticmethod
    def _unlink_corrupt(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def keys(self) -> list[str]:
        """Keys of every entry currently on disk (unverified)."""
        return sorted(p.stem for p in self.root.glob("*.npz"))

    def flush(self) -> None:
        """Synchronous backend: every ``store`` already hit the disk."""

    def close(self) -> None:
        """Nothing to tear down for a plain directory."""

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for p in self.root.glob("*.npz"):
            p.unlink()
            removed += 1
        return removed
