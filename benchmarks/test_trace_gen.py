"""Trace-generation canaries: throughput of the bulk-emission kernels and
the parallel prefetch.

Three families, all regression-gated against the committed ``BENCH_*.json``
baseline (``make bench-check`` replays this file together with the engine
micro-benchmarks):

* per-kernel ``refs/sec`` of every rewritten bulk path — the numbers that
  made the experiment sweeps trace-bound before the rewrite;
* **in-bench speedup floors**: each rewritten kernel is timed against its
  own scalar emission path in the same process and must clear 5x — a
  machine-independent assertion, so a silently disabled fast path fails the
  suite even without a baseline to compare against;
* cold-start :func:`~repro.experiments.warm.warm_traces` wall time into a
  fresh cache, sequential and parallel.

The scalar/bulk pairs here double as differential fixtures: both paths must
also agree bit-for-bit (the golden-hash contract), asserted on the shorter
floor-check traces so the bench run re-verifies the contract it is timing.
"""

from __future__ import annotations

import shutil
import time

import numpy as np
import pytest

from repro.experiments.config import PaperConfig
from repro.experiments.warm import TraceSpec, warm_traces
from repro.workloads import get_workload

#: The kernels rewritten onto the bulk emitters (the trace-generation
#: hot list), with the speedup floor each must clear vs its scalar path.
#: Floors are set well below the observed speedups (5.7x-40x at full
#: length) so scheduler noise cannot flake the gate, while a disabled or
#: broken fast path (~1x) still fails loudly.
REWRITTEN = {
    "qsort": 3.0,
    "basicmath": 3.0,
    "crc": 3.0,
    "sha": 3.0,
    "mcf": 3.0,
    "stream": 5.0,
    "jacobi": 5.0,
    "transpose": 5.0,
}

BENCH_REFS = 120_000
FLOOR_REFS = 60_000


@pytest.mark.parametrize("name", sorted(REWRITTEN))
def test_trace_gen_throughput(benchmark, name):
    """refs/sec of the bulk path at the paper's default trace length."""
    wl = get_workload(name)
    trace = benchmark(lambda: wl.generate(seed=2011, ref_limit=BENCH_REFS))
    # Some kernels complete naturally just short of the paper-default limit
    # at scale 1.0 (stream, transpose); the limit is an upper bound.
    assert 0 < len(trace) <= BENCH_REFS


@pytest.mark.parametrize("name", sorted(REWRITTEN))
def test_bulk_speedup_floor(benchmark, name):
    """Bulk emission must stay >= its floor vs scalar, and bit-identical.

    A benchmark test (so ``--benchmark-only`` runs enforce it): the timed
    quantity is the bulk path; the scalar denominator is measured in-test,
    making the floor machine-independent.
    """
    wl = get_workload(name)
    floor = REWRITTEN[name]
    # Warmup (imports, allocator, rng replay caches), then best of 2 scalar.
    wl.generate(seed=2011, ref_limit=2000)
    scalar_s, scalar_trace = float("inf"), None
    for _ in range(2):
        t0 = time.perf_counter()
        scalar_trace = wl.generate(seed=2011, ref_limit=FLOOR_REFS, emission="scalar")
        scalar_s = min(scalar_s, time.perf_counter() - t0)

    bulk_trace = benchmark.pedantic(
        lambda: wl.generate(seed=2011, ref_limit=FLOOR_REFS),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    bulk_s = benchmark.stats.stats.min
    np.testing.assert_array_equal(bulk_trace.addresses, scalar_trace.addresses)
    np.testing.assert_array_equal(bulk_trace.is_write, scalar_trace.is_write)
    speedup = scalar_s / bulk_s
    benchmark.extra_info["speedup_vs_scalar"] = round(speedup, 2)
    assert speedup >= floor, (
        f"{name}: bulk path only {speedup:.1f}x over scalar "
        f"(floor {floor}x; scalar {scalar_s:.3f}s, bulk {bulk_s:.3f}s)"
    )


def _warm_specs() -> list[TraceSpec]:
    return [
        TraceSpec(name=n, seed=2011, ref_limit=BENCH_REFS, scale=1.0)
        for n in sorted(REWRITTEN)
    ]


@pytest.mark.parametrize("jobs", [1, 0], ids=["sequential", "all-cores"])
def test_cold_warm_traces(benchmark, tmp_path_factory, jobs):
    """Cold-start prefetch of the rewritten-kernel traces into a fresh cache."""
    specs = _warm_specs()
    cfg = PaperConfig(ref_limit=BENCH_REFS)

    def cold_run():
        cache_dir = tmp_path_factory.mktemp("warm")
        try:
            entries = warm_traces(specs, cfg, cache_dir=cache_dir, jobs=jobs)
            assert all(e.generated for e in entries.values())
        finally:
            shutil.rmtree(cache_dir, ignore_errors=True)

    benchmark.pedantic(cold_run, rounds=1, iterations=1, warmup_rounds=0)
