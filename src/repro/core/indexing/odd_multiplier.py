"""Odd-multiplier displacement indexing (paper Section II.C).

``index = (p * T + I) mod s`` where ``T`` is the tag, ``I`` the conventional
index, ``s`` the number of sets and ``p`` an odd multiplier.  Based on the
hash family of Ghose & Kamble and Raghavan & Hayes' RANDOM-H functions.  The
source papers recommend multipliers 9, 21, 31 and 61; the paper's
multithreaded experiments (its Figure 13) give each SMT thread a *different*
multiplier, which is why the multiplier is a first-class parameter here.
"""

from __future__ import annotations

import numpy as np

from ..address import CacheGeometry
from .base import IndexingScheme, register_scheme

__all__ = ["OddMultiplierIndexing", "RECOMMENDED_MULTIPLIERS"]

#: Multipliers recommended by Kharbutli et al. and quoted in the paper.
RECOMMENDED_MULTIPLIERS: tuple[int, ...] = (9, 21, 31, 61)


@register_scheme
class OddMultiplierIndexing(IndexingScheme):
    """``index = (multiplier * tag + index) mod num_sets``."""

    name = "odd_multiplier"

    def __init__(self, geometry: CacheGeometry, multiplier: int = 9):
        super().__init__(geometry)
        if multiplier % 2 == 0:
            raise ValueError(f"multiplier must be odd, got {multiplier}")
        if multiplier <= 0:
            raise ValueError("multiplier must be positive")
        self.multiplier = multiplier
        self._index_shift = geometry.offset_bits
        self._tag_shift = geometry.offset_bits + geometry.index_bits
        self._mask = geometry.num_sets - 1

    def index_of(self, address: int) -> int:
        index = (address >> self._index_shift) & self._mask
        tag = address >> self._tag_shift
        return (self.multiplier * tag + index) & self._mask

    def indices_of(self, addresses: np.ndarray) -> np.ndarray:
        addresses = np.asarray(addresses, dtype=np.uint64)
        mask = np.uint64(self._mask)
        index = (addresses >> np.uint64(self._index_shift)) & mask
        tag = addresses >> np.uint64(self._tag_shift)
        # uint64 arithmetic wraps mod 2^64; the final mask keeps the result in
        # range, identical to the scalar computation for 32-bit addresses.
        return ((np.uint64(self.multiplier) * tag + index) & mask).astype(np.int64)
