"""Figure 6 bench: programmable associativity miss-rate reductions."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment
from repro.workloads.mibench import MIBENCH_ORDER


def test_fig06_progassoc_missrate(benchmark, config):
    result = run_once(benchmark, lambda: run_experiment("fig6", config))
    print()
    print(result)
    values = [v for b in MIBENCH_ORDER for v in result.rows[b].values()]
    # Shape: (nearly) all non-negative; B-cache posts the smallest average.
    assert sum(1 for v in values if v < -5.0) <= 2
    averages = result.rows["Average"]
    assert averages["B_Cache"] <= averages["Adaptive_Cache"]
    assert averages["B_Cache"] <= averages["Column_associative"]
