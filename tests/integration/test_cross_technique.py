"""Cross-technique integration properties.

These tests pin the *relationships* between models that any correct cache
simulator must exhibit, over randomised traces:

* Belady/MIN lower-bounds every same-capacity organisation;
* accounting identities hold for every model;
* bijective index schemes preserve total traffic and merely permute it;
* fresh instances replay identically (no hidden global state).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.address import CacheGeometry
from repro.core.caches import (
    AdaptiveGroupAssociativeCache,
    BalancedCache,
    BeladyCache,
    ColumnAssociativeCache,
    DirectMappedCache,
    PartnerIndexCache,
    SetAssociativeCache,
    SkewedAssociativeCache,
    VictimCache,
)
from repro.core.indexing import ModuloIndexing, OddMultiplierIndexing, XorIndexing
from repro.core.simulator import simulate
from repro.trace import Trace

#: Small cache so short random traces exercise real contention.
G = CacheGeometry(capacity_bytes=2048, line_bytes=32, ways=1, address_bits=20)

ALL_MODELS = [
    ("direct_mapped", lambda: DirectMappedCache(G)),
    ("2way", lambda: SetAssociativeCache(G.with_ways(2))),
    ("column", lambda: ColumnAssociativeCache(G)),
    ("column_unguarded", lambda: ColumnAssociativeCache(G, protect_conventional=False)),
    ("adaptive", lambda: AdaptiveGroupAssociativeCache(G)),
    ("bcache", lambda: BalancedCache(G)),
    ("victim", lambda: VictimCache(G, victim_lines=4)),
    ("partner", lambda: PartnerIndexCache(G, rebalance_period=256)),
    ("skewed", lambda: SkewedAssociativeCache(G)),
]


def random_trace(seed: int, n: int = 1500) -> Trace:
    rng = np.random.default_rng(seed)
    # Mix of hot blocks and a cold tail over 8x the cache capacity.
    hot = rng.integers(0, 2048, size=n // 2)
    cold = rng.integers(0, 16 * 1024, size=n - n // 2)
    addrs = np.concatenate([hot, cold])
    rng.shuffle(addrs)
    return Trace(addrs.astype(np.uint64), name=f"rand{seed}")


@pytest.mark.parametrize("seed", range(5))
class TestBeladyBound:
    def test_min_lower_bounds_everything(self, seed):
        trace = random_trace(seed)
        blocks = trace.blocks(G.offset_bits).astype(np.int64)
        optimal = simulate(BeladyCache(G, blocks), trace).misses
        for name, factory in ALL_MODELS:
            misses = simulate(factory(), trace).misses
            assert misses >= optimal, f"{name} beat Belady (impossible)"


@pytest.mark.parametrize("name,factory", ALL_MODELS, ids=[n for n, _ in ALL_MODELS])
class TestAccountingIdentities:
    def test_identities(self, name, factory):
        trace = random_trace(99)
        model = factory()
        res = simulate(model, trace)
        assert res.hits + res.misses == res.accesses == len(trace)
        assert int(res.slot_hits.sum()) == res.hits
        assert int(res.slot_misses.sum()) == res.misses
        assert int(res.slot_accesses.sum()) >= res.accesses
        assert res.lookup_cycles >= res.accesses  # every access costs >= 1

    def test_replay_identical(self, name, factory):
        trace = random_trace(7)
        a = simulate(factory(), trace)
        b = simulate(factory(), trace)
        assert a.misses == b.misses
        np.testing.assert_array_equal(a.slot_misses, b.slot_misses)

    def test_contents_bounded_by_capacity(self, name, factory):
        trace = random_trace(3)
        model = factory()
        simulate(model, trace)
        limit = G.num_lines
        if name == "victim":
            limit += 4  # the victim buffer is extra storage by design
        assert len(model.contents()) <= limit


class TestBijectiveSchemesPreserveTraffic:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_total_accesses_invariant(self, seed):
        trace = random_trace(seed % 1000, n=600)
        totals = set()
        for scheme in (ModuloIndexing(G), XorIndexing(G), OddMultiplierIndexing(G, 9)):
            res = simulate(DirectMappedCache(G, scheme), trace)
            totals.add(int(res.slot_accesses.sum()))
        assert len(totals) == 1  # hashing permutes sets, never drops traffic

    def test_within_tag_permutation_preserves_self_conflicts(self):
        """A trace confined to one tag has identical misses under any
        tag-XOR scheme (the permutation is a relabeling of sets)."""
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, G.num_sets * G.line_bytes, size=2000).astype(np.uint64)
        t = Trace(addrs, name="one-tag")
        m0 = simulate(DirectMappedCache(G, ModuloIndexing(G)), t).misses
        m1 = simulate(DirectMappedCache(G, XorIndexing(G)), t).misses
        m2 = simulate(DirectMappedCache(G, OddMultiplierIndexing(G, 31)), t).misses
        assert m0 == m1 == m2


class TestAssociativityMonotonicity:
    @pytest.mark.parametrize("seed", range(3))
    def test_lru_inclusion_property(self, seed):
        """LRU's stack-inclusion property: with the *same set count*, adding
        ways can never add misses (a theorem, unlike equal-capacity
        comparisons where remapping can go either way)."""
        trace = random_trace(seed)
        misses = []
        for ways in (1, 2, 4):
            g = CacheGeometry(
                G.capacity_bytes * ways, G.line_bytes, ways, G.address_bits
            )
            assert g.num_sets == G.num_sets
            misses.append(simulate(SetAssociativeCache(g), trace).misses)
        assert misses[0] >= misses[1] >= misses[2]
