"""Shared fixtures for the job-server tests.

Every test gets a *thread-mode*, in-process :class:`ReproServer` on an
ephemeral port with its caches rooted in ``tmp_path`` — fully isolated,
no subprocesses, and monkeypatching of engine internals works because the
server shares the test's interpreter.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from dataclasses import replace

import pytest

from repro.experiments.config import PaperConfig
from repro.service import ReproServer, ServiceClient

#: Tiny-but-real simulation size: fast, yet every scheme still differs.
REFS = 1500
SCALE = 0.05


@pytest.fixture
def service_config(tmp_path) -> PaperConfig:
    return replace(
        PaperConfig(),
        ref_limit=REFS,
        workload_scale=SCALE,
        jobs=1,
        trace_cache_dir=tmp_path / "traces",
    )


class ServerHandle:
    """One thread-mode server on a private event loop, joinable on stop."""

    def __init__(self, config: PaperConfig, **kwargs):
        kwargs.setdefault("workers", 2)
        self.server = ReproServer(config, port=0, use_processes=False, **kwargs)
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-test-server", daemon=True
        )

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def main() -> None:
            await self.server.start()
            self._started.set()
            await self.server.serve_forever()

        try:
            self._loop.run_until_complete(main())
        finally:
            self._started.set()  # unblock start() even on startup failure
            self._loop.close()

    def start(self) -> "ServerHandle":
        self._thread.start()
        assert self._started.wait(30), "server did not start in 30s"
        assert self.server.port, "server has no bound port"
        return self

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def stats(self):
        return self.server.stats

    @property
    def scheduler(self):
        return self.server.scheduler

    def client(self, **kwargs) -> ServiceClient:
        return ServiceClient("127.0.0.1", self.port, **kwargs)

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread.is_alive():
            with contextlib.suppress(RuntimeError):
                # Trip the server's stop event from inside its own loop.
                self._loop.call_soon_threadsafe(self.server._stopping.set)
            self._thread.join(timeout)
        assert not self._thread.is_alive(), "server thread did not exit"


@pytest.fixture
def make_server(service_config):
    """Factory: ``make_server(config=None, **ReproServer kwargs)``."""
    handles: list[ServerHandle] = []

    def _make(config: PaperConfig | None = None, **kwargs) -> ServerHandle:
        handle = ServerHandle(config if config is not None else service_config, **kwargs)
        handles.append(handle)
        return handle.start()

    yield _make
    for handle in handles:
        handle.stop()


@pytest.fixture
def server(make_server) -> ServerHandle:
    return make_server()
