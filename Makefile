# Convenience targets for the reproduction workflow.

PY ?= python
REFS ?= 120000
# Worker processes for the parallel experiment engine: 0 = all cores,
# 1 = deterministic sequential fallback.  Output is bit-identical either way.
JOBS ?= 0

.PHONY: install test test-fast bench replay examples clean-traces clean-results all

install:
	pip install -e . --no-build-isolation

test:
	$(PY) -m pytest tests/

# Fast inner-loop run: unit/integration tests only (skips benchmarks/),
# fail-fast and quiet.
test-fast:
	$(PY) -m pytest tests/ -x -q

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

replay:
	$(PY) examples/replay_paper.py --refs $(REFS) --jobs $(JOBS) --out results_full.md

examples:
	$(PY) examples/quickstart.py
	$(PY) examples/application_tuning.py 30000
	$(PY) examples/smt_cache_design.py
	$(PY) examples/custom_workload.py
	$(PY) examples/instruction_placement.py

# Removes traces AND the per-cell result cache nested under it.
clean-traces:
	rm -rf .trace_cache

# Drop only the memoized per-cell simulation results (keep traces).
clean-results:
	rm -rf .trace_cache/results

all: test bench replay
