"""Workload framework.

A :class:`Workload` wraps a *kernel* — a function that executes a real
algorithm against the modelled address space, emitting every data reference
through a :class:`~repro.trace.recorder.Recorder`.  Workloads are registered
by name so experiments refer to them exactly as the paper's figures do
("fft", "qsort", "mcf", ...).

``generate(seed, ref_limit, scale)`` is the single entry point: it runs the
kernel (bounded by the reference limit), names and annotates the trace.  The
``scale`` knob multiplies the kernel's problem sizes so tests can run tiny
instances and benches full ones.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..trace.event import Trace
from ..trace.recorder import Recorder, record

__all__ = [
    "Workload",
    "register_workload",
    "get_workload",
    "available_workloads",
    "WORKLOAD_REGISTRY",
    "DEFAULT_REF_LIMIT",
]

#: Default trace length: long enough for 1024 sets to develop their access
#: profile (≈200 references per set on average), short enough for the full
#: figure sweeps to run in minutes on a laptop.
DEFAULT_REF_LIMIT = 200_000

WORKLOAD_REGISTRY: dict[str, "Workload"] = {}


def register_workload(cls: type["Workload"]) -> type["Workload"]:
    """Class decorator: instantiate and register under ``cls.name``."""
    instance = cls()
    if instance.name in WORKLOAD_REGISTRY:
        raise ValueError(f"duplicate workload name {instance.name!r}")
    WORKLOAD_REGISTRY[instance.name] = instance
    return cls


def get_workload(name: str) -> "Workload":
    try:
        return WORKLOAD_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(WORKLOAD_REGISTRY)}"
        ) from None


def available_workloads(suite: str | None = None) -> list[str]:
    names = [
        n for n, w in WORKLOAD_REGISTRY.items() if suite is None or w.suite == suite
    ]
    return sorted(names)


@dataclass(frozen=True)
class WorkloadInfo:
    name: str
    suite: str
    description: str
    access_pattern: str


class Workload(ABC):
    """A named trace generator backed by a real algorithm."""

    #: Registry key (matches the paper's benchmark names).
    name: str = "abstract"
    #: "mibench" or "spec" (or "synthetic").
    suite: str = ""
    #: One-line description of what the real benchmark does.
    description: str = ""
    #: The dominant memory behaviour this kernel reproduces.
    access_pattern: str = ""

    @abstractmethod
    def kernel(self, m: Recorder, scale: float) -> None:
        """Run the algorithm, emitting references through ``m``."""

    def generate(
        self,
        seed: int = 0,
        ref_limit: int | None = DEFAULT_REF_LIMIT,
        scale: float = 1.0,
        thread: int = 0,
        emission: str = "bulk",
    ) -> Trace:
        """Generate the workload's trace.

        ``emission`` selects the kernel's emission path: ``"bulk"`` (the
        default) lets kernels use the vectorised emitters, ``"scalar"``
        forces one-reference-per-call emission.  Both produce bit-identical
        traces — the contract locked by ``tests/trace/test_golden_hashes.py``
        — so the knob is deliberately *not* part of any trace-cache key; it
        exists for differential tests and benchmark denominators.
        """
        if emission not in ("bulk", "scalar"):
            raise ValueError(f"unknown emission mode {emission!r}")
        trace = record(
            lambda m: self.kernel(m, scale),
            name=self.name,
            seed=seed,
            ref_limit=ref_limit,
            thread=thread,
            meta={"suite": self.suite, "scale": scale},
            bulk=emission == "bulk",
        )
        return trace

    def info(self) -> WorkloadInfo:
        return WorkloadInfo(self.name, self.suite, self.description, self.access_pattern)

    @staticmethod
    def scaled(base: int, scale: float, minimum: int = 1) -> int:
        """Problem-size helper: ``max(minimum, round(base * scale))``."""
        return max(minimum, int(round(base * scale)))
