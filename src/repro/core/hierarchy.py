"""Two-level cache hierarchy (the paper's L1 + unified 256 KiB LRU L2).

The paper's AMAT formulas fold everything below L1 into a single
``MissPenalty``; this module provides the explicit alternative — an L1 of
any model backed by a set-associative LRU L2 — so the penalty can itself be
*measured* (L2 hit latency vs memory latency weighted by the simulated L2
miss rate) rather than assumed.  The sensitivity bench compares conclusions
under both treatments.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trace.event import Trace
from .address import PAPER_L2_GEOMETRY, CacheGeometry
from .amat import TimingModel
from .caches.base import CacheModel
from .caches.set_associative import SetAssociativeCache
from .simulator import SimulationResult, _result_from_stats

__all__ = ["HierarchyResult", "CacheHierarchy"]


@dataclass
class HierarchyResult:
    """Joint outcome of an L1+L2 simulation."""

    l1: SimulationResult
    l2: SimulationResult
    total_cycles: float
    accesses: int
    #: Dirty L1 lines written back to L2 on eviction (write-back policy).
    writebacks: int = 0

    @property
    def amat(self) -> float:
        return self.total_cycles / self.accesses if self.accesses else 0.0

    @property
    def writeback_rate(self) -> float:
        """Writebacks per access — the L1→L2 write-traffic figure."""
        return self.writebacks / self.accesses if self.accesses else 0.0

    @property
    def effective_miss_penalty(self) -> float:
        """The measured average cost of an L1 miss — what the paper's
        ``MissPenalty`` constant abstracts."""
        if not self.l1.misses:
            return 0.0
        served_in_l2 = self.l1.misses - self.l2.misses
        return (
            served_in_l2 * self._l2_latency + self.l2.misses * self._memory_latency
        ) / self.l1.misses

    # populated by CacheHierarchy.run
    _l2_latency: float = 0.0
    _memory_latency: float = 0.0


class CacheHierarchy:
    """L1 (any model) + unified L2 (set-associative LRU)."""

    def __init__(
        self,
        l1: CacheModel,
        l2: CacheModel | None = None,
        l2_geometry: CacheGeometry | None = None,
        timing: TimingModel | None = None,
    ):
        self.l1 = l1
        if l2 is None:
            l2 = SetAssociativeCache(l2_geometry or PAPER_L2_GEOMETRY, policy="lru")
        self.l2 = l2
        self.timing = timing or TimingModel()

    def run(self, trace: Trace) -> HierarchyResult:
        addresses = trace.addresses
        is_write = trace.is_write
        l1, l2 = self.l1, self.l2
        l2_latency = self.timing.miss_penalty
        memory_latency = self.timing.l2_miss_penalty
        offset_bits = l1.geometry.offset_bits
        cycles = 0.0
        l1_cycles = 0
        l2_cycles = 0
        writebacks = 0
        # Write-back, write-allocate L1: track dirty blocks here so every
        # cache model (which reports evictions but not dirtiness) gets the
        # same policy.  Evicting a dirty block issues an L2 write.
        dirty: set[int] = set()
        for i in range(addresses.size):
            a = int(addresses[i])
            w = bool(is_write[i])
            block = a >> offset_bits
            r1 = l1.access(a, w)
            l1_cycles += r1.cycles
            cycles += r1.cycles
            if w:
                dirty.add(block)
            if not r1.hit:
                if r1.evicted_block is not None and r1.evicted_block in dirty:
                    dirty.discard(r1.evicted_block)
                    writebacks += 1
                    l2.access(r1.evicted_block << offset_bits, True)
                    l2_cycles += 1
                r2 = l2.access(a, w)
                l2_cycles += 1
                if r2.hit:
                    cycles += l2_latency
                else:
                    cycles += memory_latency
            elif r1.evicted_block is not None:
                # Some models relocate/evict even on hits (e.g. swap paths).
                if r1.evicted_block in dirty:
                    dirty.discard(r1.evicted_block)
                    writebacks += 1
                    l2.access(r1.evicted_block << offset_bits, True)
                    l2_cycles += 1
        result = HierarchyResult(
            l1=_result_from_stats(l1.name, trace.name, l1.stats, l1_cycles),
            l2=_result_from_stats(l2.name, trace.name, l2.stats, l2_cycles),
            total_cycles=cycles,
            accesses=int(addresses.size),
            writebacks=writebacks,
        )
        result._l2_latency = l2_latency
        result._memory_latency = memory_latency
        return result
