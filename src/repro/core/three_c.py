"""3C miss classification (Hill's cold / capacity / conflict taxonomy).

The paper's whole premise is that *conflict* misses — the component caused
by the index function mapping live blocks onto each other — are large for
direct-mapped caches and can be recovered by better indexing or selective
associativity.  This module measures that premise directly:

* **cold** (compulsory): first reference to a block; no organisation of any
  size avoids it;
* **capacity**: misses a fully-associative LRU cache of equal capacity also
  suffers (beyond cold);
* **conflict**: the remainder — misses the direct-mapped (or otherwise
  restricted) placement causes on top of full associativity.

``classify`` runs the standard construction: the target organisation and a
same-capacity fully-associative LRU cache over the same trace.  The conflict
count can be *negative* in principle (LRU is not optimal; a direct-mapped
cache can beat it on cyclic patterns) — the classic caveat, preserved rather
than clamped, and reported so the tables are honest.

The per-benchmark 3C breakdown is exposed as experiment ``ext-3c``: the
benchmarks with high conflict share are exactly the ones that respond to the
paper's techniques.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trace.event import Trace
from .address import CacheGeometry
from .caches.base import CacheModel
from .caches.direct_mapped import DirectMappedCache
from .caches.fully_associative import FullyAssociativeCache
from .caches.set_associative import SetAssociativeCache
from .replacement import LRUPolicy
from .simulator import (
    simulate,
    simulate_fully_associative,
    simulate_indexing,
    simulate_set_associative,
)

__all__ = ["MissBreakdown", "cold_miss_count", "classify"]


@dataclass(frozen=True)
class MissBreakdown:
    """Misses of one (cache, trace) pair split into the 3C classes."""

    total: int
    cold: int
    capacity: int
    conflict: int
    accesses: int

    @property
    def miss_rate(self) -> float:
        return self.total / self.accesses if self.accesses else 0.0

    def share(self, component: str) -> float:
        """Fraction of all misses in `component` ('cold'/'capacity'/'conflict')."""
        value = getattr(self, component)
        return value / self.total if self.total else 0.0

    def as_dict(self) -> dict[str, int | float]:
        return {
            "total": self.total,
            "cold": self.cold,
            "capacity": self.capacity,
            "conflict": self.conflict,
            "miss_rate": self.miss_rate,
        }


def cold_miss_count(trace: Trace, geometry: CacheGeometry) -> int:
    """Compulsory misses: the number of distinct blocks touched."""
    return int(trace.unique_blocks(geometry.offset_bits).size)


def _target_misses(cache: CacheModel, trace: Trace, engine: str) -> int:
    """Miss count of the target organisation, vectorised where exact.

    Plain direct-mapped and k-way LRU structures (exactly those classes, not
    subclasses, so specialised models keep their own semantics) are computed
    with the stack-distance fast path; everything else runs sequentially.
    Both paths are pinned to each other by the differential test-suite.
    """
    if engine != "sequential":
        if type(cache) is DirectMappedCache:
            return simulate_indexing(cache.indexing, trace, cache.geometry).misses
        if type(cache) is SetAssociativeCache and type(cache.policy) is LRUPolicy:
            return simulate_set_associative(cache.indexing, trace, cache.geometry).misses
    return simulate(cache, trace).misses


def classify(
    cache: CacheModel,
    trace: Trace,
    geometry: CacheGeometry | None = None,
    engine: str = "auto",
) -> MissBreakdown:
    """3C breakdown of ``cache``'s misses on ``trace``.

    ``geometry`` defaults to the cache's own geometry and determines the
    capacity of the fully-associative reference.  ``engine="auto"`` (the
    default) answers the direct-mapped / k-way-LRU / fully-associative runs
    with the vectorised stack-distance kernel — the classifier used to pay
    two whole sequential simulations per workload; ``engine="sequential"``
    forces the reference engines (used by the differential tests).
    """
    if engine not in ("auto", "sequential"):
        raise ValueError("engine must be 'auto' or 'sequential'")
    geometry = geometry or cache.geometry
    total = _target_misses(cache, trace, engine)
    cold = cold_miss_count(trace, geometry)
    fa_geometry = CacheGeometry(
        geometry.capacity_bytes, geometry.line_bytes, 1, geometry.address_bits
    )
    if engine == "sequential":
        fa = simulate(FullyAssociativeCache(fa_geometry), trace).misses
    else:
        fa = simulate_fully_associative(trace, fa_geometry).misses
    capacity = fa - cold
    conflict = total - fa
    return MissBreakdown(
        total=total,
        cold=cold,
        capacity=capacity,
        conflict=conflict,
        accesses=len(trace),
    )
