"""SPEC-like ``astar`` — A* grid pathfinding.

Mechanistic stand-in for 473.astar: a 2-D occupancy grid (node records with
g-cost, parent and closed flag), a binary-heap open list, Manhattan
heuristic.  Access mix: heap array churn at the front (hot), scattered
grid-node touches around the expanding frontier (irregular 2-D locality).
Paths are validated in tests (monotone non-decreasing f, reaches goal).
"""

from __future__ import annotations

import heapq

from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["AstarWorkload"]

_NODE = 16  # g(4) parent(4) closed(1) pad
_HEAP_ELEM = 8


@register_workload
class AstarWorkload(Workload):
    name = "astar"
    suite = "spec"
    description = "A* searches across a random-obstacle grid"
    access_pattern = "binary-heap churn + frontier-local grid scatter"

    def kernel(self, m: Recorder, scale: float) -> None:
        side = self.scaled(256, scale, minimum=16)
        searches = self.scaled(12, scale, minimum=1)
        grid_arr = m.space.heap_array(_NODE, side * side, "grid_nodes")
        heap_arr = m.space.heap_array(_HEAP_ELEM, side * side, "open_heap")
        blocked = m.rng.random((side, side)) < 0.25

        found = 0
        for s in range(searches):
            sx, sy = (int(v) for v in m.rng.integers(1, side - 1, size=2))
            gx, gy = (int(v) for v in m.rng.integers(1, side - 1, size=2))
            blocked[sy, sx] = blocked[gy, gx] = False
            g_cost = {}
            closed = set()
            open_heap: list[tuple[int, int, int]] = []

            def h(x: int, y: int) -> int:
                return abs(x - gx) + abs(y - gy)

            g_cost[(sx, sy)] = 0
            heapq.heappush(open_heap, (h(sx, sy), sx, sy))
            m.store_elem(heap_arr, 0)
            expansions = 0
            while open_heap and expansions < 4 * side * side:
                # Heap pop: root load + sift-down path touches log(n) slots.
                m.load_elem(heap_arr, 0)
                f, x, y = heapq.heappop(open_heap)
                i = 1
                while i < len(open_heap):
                    m.load_elem(heap_arr, i)
                    i = 2 * i + 1
                if (x, y) in closed:
                    continue
                closed.add((x, y))
                m.store_elem(grid_arr, y * side + x)  # set closed flag
                expansions += 1
                if (x, y) == (gx, gy):
                    found += 1
                    break
                for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                    nx, ny = x + dx, y + dy
                    if not (0 <= nx < side and 0 <= ny < side):
                        continue
                    m.load_elem(grid_arr, ny * side + nx)
                    if blocked[ny, nx] or (nx, ny) in closed:
                        continue
                    ng = g_cost[(x, y)] + 1
                    if ng < g_cost.get((nx, ny), 1 << 30):
                        g_cost[(nx, ny)] = ng
                        m.store_elem(grid_arr, ny * side + nx)
                        heapq.heappush(open_heap, (ng + h(nx, ny), nx, ny))
                        # Heap push: sift-up path.
                        i = len(open_heap) - 1
                        while i > 0:
                            m.store_elem(heap_arr, min(i, heap_arr.length - 1))
                            i = (i - 1) // 2
        m.builder.meta["paths_found"] = found
