"""Key parity: the service must derive *byte-identical* cache keys.

The job server never re-implements key derivation — its request
normalizer builds cells with the engine's own :func:`make_cell` and keys
them through the engine's own :func:`plan_cells`.  These tests audit that
property from three angles:

1. structural — normalized requests produce exactly the cells the
   in-process engine builds;
2. arithmetical — the planned keys equal a from-scratch recomputation via
   :func:`cell_key` over freshly fingerprinted traces (the
   ``TestCacheKeyAudit`` style);
3. behavioural — work submitted over the wire lands in the result cache
   under keys the in-process engine *finds*: a follow-up ``run_cells`` /
   ``run_experiment`` with the same config is 100% cache hits.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment
from repro.experiments.engine import (
    ResultCache,
    cell_key,
    make_cell,
    plan_cells,
    run_cells,
    trace_fingerprint,
)
from repro.experiments.runner import profile_trace_path, workload_trace
from repro.service.protocol import (
    normalize_cell_request,
    normalize_sweep_request,
    sweep_cell,
)
from repro.trace.io import load_trace

# Request shapes covering every cell family the protocol can express.
CELL_REQUESTS = [
    {"type": "cell", "kind": "baseline", "workload": "fft", "label": "baseline"},
    {"type": "cell", "kind": "indexing", "workload": "fft", "label": "XOR"},
    {"type": "cell", "kind": "indexing", "workload": "crc", "label": "Odd_Multiplier"},
    {"type": "cell", "kind": "indexing", "workload": "fft", "label": "Givargis"},
    {"type": "cell", "kind": "setassoc", "workload": "fft", "label": "4way"},
    {
        "type": "cell",
        "kind": "progassoc",
        "workload": "crc",
        "label": "Column_associative",
    },
]


def _recomputed_key(cell, config) -> str:
    """Independent from-scratch key: regenerate + refingerprint the traces."""
    fp = trace_fingerprint(workload_trace(cell.workload, config))
    profile_fp = None
    if cell.needs_profile:
        profile_fp = trace_fingerprint(load_trace(profile_trace_path(cell.workload, config)))
    return cell_key(
        cell.kind,
        cell.label,
        cell.params,
        config.geometry,
        fp,
        profile_fp,
        ways=cell.ways,
        policy=cell.policy,
    )


class TestStructuralParity:
    @pytest.mark.parametrize("req", CELL_REQUESTS, ids=lambda r: r["label"])
    def test_normalized_cell_equals_engine_cell(self, req, service_config):
        cell, _ = normalize_cell_request(req, service_config)
        assert cell == make_cell(
            req["kind"], req["workload"], req["label"], service_config
        )

    def test_sweep_cells_equal_engine_cells(self, service_config):
        cells, _ = normalize_sweep_request(
            {"workload": "fft", "schemes": ["baseline", "XOR", "4way"]},
            service_config,
        )
        assert cells == [
            make_cell("baseline", "fft", "baseline", service_config),
            make_cell("indexing", "fft", "XOR", service_config),
            make_cell("setassoc", "fft", "4way", service_config),
        ]


class TestArithmeticalParity:
    @pytest.mark.parametrize("req", CELL_REQUESTS, ids=lambda r: r["label"])
    def test_planned_key_matches_recomputation(self, req, service_config):
        cell, config = normalize_cell_request(req, service_config)
        plan = plan_cells([cell], config, jobs=1)
        assert plan.keys[cell] == _recomputed_key(cell, config)

    def test_config_overrides_shift_keys_like_the_engine(self, service_config):
        req = {
            "type": "cell",
            "kind": "indexing",
            "workload": "crc",
            "label": "Odd_Multiplier",
        }
        cell_a, cfg_a = normalize_cell_request(req, service_config)
        cell_b, cfg_b = normalize_cell_request(
            {**req, "config": {"odd_multiplier": 21}}, service_config
        )
        key_a = plan_cells([cell_a], cfg_a, jobs=1).keys[cell_a]
        key_b = plan_cells([cell_b], cfg_b, jobs=1).keys[cell_b]
        assert key_a != key_b
        assert key_b == _recomputed_key(cell_b, cfg_b)


class TestBehaviouralParity:
    """Wire-submitted work must be found by the in-process engine."""

    def test_service_cell_hits_engine_cache(self, server, service_config):
        with server.client() as client:
            meta = client.submit_cell("indexing", "fft", "XOR")["meta"]
        assert meta["cache_hit"] is False  # fresh tmp cache: really simulated
        # In-process run of the *same* cell must be a pure cache hit.
        cell = make_cell("indexing", "fft", "XOR", service_config)
        _, stats = run_cells([cell], service_config, jobs=1)
        assert (stats.cache_hits, stats.cache_misses) == (1, 0)
        # And the on-disk entry sits under exactly the key the server said.
        cache = ResultCache(service_config.result_cache_path)
        assert meta["key"] in cache

    def test_service_sweep_hits_engine_cache(self, server, service_config):
        schemes = ["baseline", "XOR", "4way"]
        with server.client() as client:
            reply = client.sweep("fft", schemes)
        assert all(row["ok"] for row in reply["rows"])
        cells = [sweep_cell("fft", label, service_config) for label in schemes]
        _, stats = run_cells(cells, service_config, jobs=1)
        assert (stats.cache_hits, stats.cache_misses) == (len(schemes), 0)

    def test_service_experiment_hits_engine_cache(self, server, service_config):
        with server.client() as client:
            client.run_experiment("fig1")
        result = run_experiment("fig1", service_config)
        assert result.engine_stats["cache_misses"] == 0
        assert result.engine_stats["cache_hits"] == result.engine_stats["cells_total"]


class TestSweepBatchingParity:
    """Batching is invisible to keys, so batched and per-cell work must
    interchange freely across the wire/in-process boundary."""

    LADDER = [("baseline", "baseline")] + [
        ("assocsweep", lab) for lab in ("2way", "4way", "8way")
    ]

    def test_batch_sweeps_override_does_not_shift_keys(self, service_config):
        req = {"type": "cell", "kind": "assocsweep", "workload": "fft", "label": "4way"}
        cell_a, cfg_a = normalize_cell_request(req, service_config)
        cell_b, cfg_b = normalize_cell_request(
            {**req, "config": {"batch_sweeps": False}}, service_config
        )
        assert cell_a == cell_b
        key_a = plan_cells([cell_a], cfg_a, jobs=1).keys[cell_a]
        key_b = plan_cells([cell_b], cfg_b, jobs=1).keys[cell_b]
        assert key_a == key_b

    def test_per_cell_submissions_serve_batched_run(self, server, service_config):
        """Cells submitted over the wire with batching off must be found by
        an in-process batched run — pure cache hits, nothing re-simulated."""
        with server.client() as client:
            for kind, label in self.LADDER:
                meta = client.submit_cell(
                    kind, "fft", label, config={"batch_sweeps": False}
                )["meta"]
                assert meta["cache_hit"] is False  # fresh tmp cache
        cells = [make_cell(kind, "fft", label, service_config) for kind, label in self.LADDER]
        _, stats = run_cells(cells, service_config, jobs=1)
        assert (stats.cache_hits, stats.cache_misses) == (len(self.LADDER), 0)

    def test_batched_run_serves_per_cell_submissions(self, server, service_config):
        """And the reverse: a batched in-process Mattson family warms the
        cache for every later wire submission, batched or not."""
        cells = [make_cell(kind, "crc", label, service_config) for kind, label in self.LADDER]
        _, stats = run_cells(cells, service_config, jobs=1)
        assert stats.families_batched == 1 and stats.cells_batched == len(cells)
        with server.client() as client:
            for kind, label in self.LADDER:
                meta = client.submit_cell(
                    kind, "crc", label, config={"batch_sweeps": False}
                )["meta"]
                assert meta["cache_hit"] is True, label

    def test_service_stats_report_batched_families(self, server):
        with server.client() as client:
            client.run_experiment("ext-assoc")
            cells = client.stats()["cells"]
        assert cells["families_batched"] > 0
        assert cells["cells_batched"] > cells["families_batched"]
