"""The raw (mmap-able) trace format: round-trips, bit-identity with npz,
layout guarantees, digest/fingerprint parity, and cache self-healing.

The format is the storage layer under PR 8's zero-copy trace store, so the
contract here is strict: a mapped trace must equal the npz decode of the
same trace field-for-field (values *and* dtypes), the header digest must
equal the engine's :func:`trace_fingerprint` (warm runs key the result
cache off it), and any truncated/zero-length file — either format — must
self-heal through :class:`TraceCache`, never be trusted.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.engine.cache import trace_fingerprint
from repro.trace import (
    Trace,
    TraceCache,
    load_npz,
    load_raw,
    load_trace,
    save_npz,
    save_raw,
    zipf_trace,
)
from repro.trace.io import RAW_MAGIC, RAW_SUFFIX, read_raw_header


@pytest.fixture
def sample() -> Trace:
    return Trace(
        np.array([0x1000, 0x2040, 0x30FF, 2**63 + 17], dtype=np.uint64),
        is_write=np.array([False, True, False, True]),
        thread=np.array([0, 1, 0, 3], dtype=np.int16),
        name="sample",
        meta={"seed": 7, "note": "hello"},
    )


class TestRoundTrip:
    def test_mapped_round_trip(self, sample, tmp_path):
        path = save_raw(sample, tmp_path / f"t{RAW_SUFFIX}")
        back = load_raw(path)
        np.testing.assert_array_equal(back.addresses, sample.addresses)
        np.testing.assert_array_equal(back.is_write, sample.is_write)
        np.testing.assert_array_equal(back.thread, sample.thread)
        assert back.addresses.dtype == np.uint64
        assert back.is_write.dtype == np.bool_
        assert back.thread.dtype == np.int16
        assert back.name == "sample"
        assert back.meta == {"seed": 7, "note": "hello"}

    def test_mapped_arrays_are_read_only_views(self, sample, tmp_path):
        back = load_raw(save_raw(sample, tmp_path / f"t{RAW_SUFFIX}"))
        for arr in (back.addresses, back.is_write, back.thread):
            assert not arr.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                arr[...] = 0

    def test_copy_mode_matches_mapped(self, sample, tmp_path):
        path = save_raw(sample, tmp_path / f"t{RAW_SUFFIX}")
        mapped = load_raw(path)
        copied = load_raw(path, mmap_sections=False)
        np.testing.assert_array_equal(mapped.addresses, copied.addresses)
        np.testing.assert_array_equal(mapped.is_write, copied.is_write)
        np.testing.assert_array_equal(mapped.thread, copied.thread)

    def test_empty_trace(self, tmp_path):
        empty = Trace(np.empty(0, dtype=np.uint64), name="empty")
        back = load_raw(save_raw(empty, tmp_path / f"e{RAW_SUFFIX}"), verify=True)
        assert len(back) == 0
        assert back.name == "empty"

    def test_large_trace_verify(self, tmp_path):
        t = zipf_trace(30_000, seed=1)
        back = load_raw(save_raw(t, tmp_path / f"big{RAW_SUFFIX}"), verify=True)
        np.testing.assert_array_equal(back.addresses, t.addresses)

    def test_atomic_write_leaves_no_temp_files(self, sample, tmp_path):
        save_raw(sample, tmp_path / f"t{RAW_SUFFIX}")
        save_raw(sample, tmp_path / f"t{RAW_SUFFIX}")  # overwrite is atomic too
        leftovers = [p for p in tmp_path.iterdir() if p.name != f"t{RAW_SUFFIX}"]
        assert leftovers == []


class TestBitIdentityWithNpz:
    """Mapped trace ≡ ``load_npz`` arrays, field for field (the PR 8 gate)."""

    @pytest.mark.parametrize("n", [1, 257, 20_000])
    def test_formats_agree_field_for_field(self, tmp_path, n):
        t = zipf_trace(n, seed=n)
        raw = load_raw(save_raw(t, tmp_path / f"t{RAW_SUFFIX}"))
        npz = load_npz(save_npz(t, tmp_path / "t.npz"))
        for field in ("addresses", "is_write", "thread"):
            a, b = getattr(raw, field), getattr(npz, field)
            np.testing.assert_array_equal(a, b)
            assert a.dtype == b.dtype
        assert raw.name == npz.name
        assert raw.meta == npz.meta

    def test_fingerprint_invariant_across_formats(self, tmp_path):
        t = zipf_trace(5_000, seed=9)
        raw = load_raw(save_raw(t, tmp_path / f"t{RAW_SUFFIX}"))
        npz = load_npz(save_npz(t, tmp_path / "t.npz"))
        assert trace_fingerprint(raw) == trace_fingerprint(npz) == trace_fingerprint(t)

    def test_load_trace_sniffs_both_formats(self, sample, tmp_path):
        raw = save_raw(sample, tmp_path / f"a{RAW_SUFFIX}")
        npz = save_npz(sample, tmp_path / "a.npz")
        np.testing.assert_array_equal(
            load_trace(raw).addresses, load_trace(npz).addresses
        )


class TestLayout:
    def test_magic_and_page_alignment(self, sample, tmp_path):
        path = save_raw(sample, tmp_path / f"t{RAW_SUFFIX}")
        assert path.read_bytes()[: len(RAW_MAGIC)] == RAW_MAGIC
        header = read_raw_header(path)
        for field in ("addresses", "is_write", "thread"):
            assert header["sections"][field]["offset"] % 4096 == 0

    def test_header_digest_is_engine_fingerprint(self, tmp_path):
        """Warm runs read the digest instead of re-hashing: pin the formulas."""
        t = zipf_trace(3_000, seed=4)
        header = read_raw_header(save_raw(t, tmp_path / f"t{RAW_SUFFIX}"))
        assert header["digest"] == trace_fingerprint(t)

    def test_declared_size_matches_file(self, sample, tmp_path):
        path = save_raw(sample, tmp_path / f"t{RAW_SUFFIX}")
        assert read_raw_header(path)["size"] == path.stat().st_size


class TestCorruptionRejected:
    def test_truncated_file_rejected(self, sample, tmp_path):
        path = save_raw(sample, tmp_path / f"t{RAW_SUFFIX}")
        path.write_bytes(path.read_bytes()[:-1])
        with pytest.raises(ValueError, match="truncated"):
            load_raw(path)

    def test_zero_length_file_rejected(self, tmp_path):
        path = tmp_path / f"z{RAW_SUFFIX}"
        path.write_bytes(b"")
        with pytest.raises(ValueError):
            load_raw(path)

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / f"w{RAW_SUFFIX}"
        path.write_bytes(b"NOTATRACE" + b"\0" * 64)
        with pytest.raises(ValueError, match="not a raw trace"):
            load_raw(path)

    def test_flipped_payload_fails_verify_only(self, sample, tmp_path):
        """Structure survives a bit flip; ``verify=True`` catches it."""
        path = save_raw(sample, tmp_path / f"t{RAW_SUFFIX}")
        blob = bytearray(path.read_bytes())
        offset = read_raw_header(path)["sections"]["addresses"]["offset"]
        blob[offset] ^= 0xFF
        path.write_bytes(bytes(blob))
        load_raw(path)  # structurally fine
        with pytest.raises(ValueError, match="digest mismatch"):
            load_raw(path, verify=True)


class TestCacheSelfHealing:
    """Zero-length/truncated entries of *either* format regenerate (PR 8
    satellite: a partial write surviving a crash must never poison warm
    runs)."""

    @staticmethod
    def _regen_counter(seed=3):
        calls = []

        def regen():
            calls.append(1)
            return zipf_trace(50, seed=seed)

        return calls, regen

    @pytest.mark.parametrize("fmt", ["raw", "npz"])
    def test_zero_length_entry_heals(self, tmp_path, fmt):
        cache = TraceCache(tmp_path)
        calls, regen = self._regen_counter()
        suffix = RAW_SUFFIX if fmt == "raw" else ".npz"
        (tmp_path / f"k{suffix}").write_bytes(b"")  # crash artifact
        healed = cache.get_or_create("k", regen)
        assert calls == [1]
        assert len(healed) == 50
        assert cache._raw_path("k").exists()

    @pytest.mark.parametrize("fmt", ["raw", "npz"])
    def test_truncated_entry_heals(self, tmp_path, fmt):
        cache = TraceCache(tmp_path)
        t = zipf_trace(50, seed=3)
        if fmt == "raw":
            path = save_raw(t, tmp_path / f"k{RAW_SUFFIX}")
        else:
            path = save_npz(t, tmp_path / "k.npz")
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        calls, regen = self._regen_counter()
        healed = cache.get_or_create("k", regen)
        assert calls == [1]
        np.testing.assert_array_equal(healed.addresses, t.addresses)
        # The healed raw entry loads cleanly, including a full digest check.
        load_raw(cache._raw_path("k"), verify=True)

    def test_corrupt_raw_heals_from_npz_sibling_without_regen(self, tmp_path):
        """An intact npz sibling repairs a torn raw entry for free."""
        cache = TraceCache(tmp_path)
        t = zipf_trace(80, seed=5)
        save_npz(t, cache._npz_path("k"))
        (tmp_path / f"k{RAW_SUFFIX}").write_bytes(b"torn")
        calls, regen = self._regen_counter()
        healed = cache.get_or_create("k", regen)
        assert calls == []  # migrated from the sibling, not regenerated
        np.testing.assert_array_equal(healed.addresses, t.addresses)
        load_raw(cache._raw_path("k"), verify=True)


# -- Hypothesis: arbitrary valid traces round-trip through the raw format --------

_addresses = st.lists(
    st.integers(min_value=0, max_value=2**64 - 1), min_size=0, max_size=64
)


@st.composite
def traces(draw) -> Trace:
    addrs = draw(_addresses)
    n = len(addrs)
    writes = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    threads = draw(
        st.lists(st.integers(min_value=-4, max_value=7), min_size=n, max_size=n)
    )
    name = draw(st.text(max_size=12))
    meta_key = draw(st.sampled_from(["seed", "scale", "k"]))
    meta_val = draw(st.integers(min_value=-(2**31), max_value=2**31))
    return Trace(
        np.array(addrs, dtype=np.uint64),
        np.array(writes, dtype=bool),
        np.array(threads, dtype=np.int16),
        name=name,
        meta={meta_key: meta_val},
    )


class TestHypothesisRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(trace=traces())
    def test_save_mmap_equality(self, trace, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("hyp_raw")
        back = load_raw(save_raw(trace, tmp / f"t{RAW_SUFFIX}"), verify=True)
        assert len(back) == len(trace)
        for field in ("addresses", "is_write", "thread"):
            a, b = getattr(trace, field), getattr(back, field)
            np.testing.assert_array_equal(a, b)
            assert a.dtype == b.dtype
        assert back.name == trace.name
        assert back.meta == trace.meta
        assert trace_fingerprint(back) == trace_fingerprint(trace)
