"""Consistent-hash ring: deterministic result-cache-key → worker placement.

Classic Karger-style consistent hashing with virtual nodes.  Every node is
hashed onto ``vnodes`` positions of a 2^64 ring (SHA-256 of ``"node#i"``,
truncated); a key is owned by the first node position clockwise of the
key's own hash.  The construction gives the three properties the router
needs, each locked down by Hypothesis tests (``tests/cluster/test_ring.py``):

balance
    With enough virtual nodes the per-node share of keyspace concentrates
    around ``1/len(nodes)`` — no worker becomes a hot shard.

minimal movement
    Adding or removing a node only reassigns the keys that move to/from
    that node; placement of every other key is untouched.  This is what
    makes failover cheap: ejecting a dead worker re-routes *only* its keys.

determinism
    Placement depends on nothing but SHA-256 — no process-seeded ``hash()``,
    no iteration order — so every router replica, worker, and test process
    agrees on the key → node map without coordination.

Failover uses :meth:`HashRing.preference`: the distinct-node order walking
clockwise from the key.  Membership is static (the ``--workers`` flag);
*liveness* is layered on top by filtering the preference list against the
currently-alive set (``owner(key, alive=...)``), which inherits minimal
movement on ejection **and** rejoin for free — no ring rebuild, ever.
"""

from __future__ import annotations

import bisect
import hashlib
from collections.abc import Iterable, Sequence

__all__ = ["DEFAULT_VNODES", "HashRing"]

#: Virtual nodes per physical node.  128 keeps the max/mean keyspace-share
#: ratio comfortably under 1.5 for small clusters (see the balance test)
#: while ring construction stays microseconds.
DEFAULT_VNODES = 128


def _position(token: str) -> int:
    """A ring position in [0, 2^64): SHA-256 truncated to 8 bytes."""
    return int.from_bytes(
        hashlib.sha256(token.encode()).digest()[:8], "big"
    )


class HashRing:
    """Immutable consistent-hash ring over a set of named nodes."""

    def __init__(self, nodes: Iterable[str], vnodes: int = DEFAULT_VNODES):
        self.nodes: tuple[str, ...] = tuple(dict.fromkeys(nodes))
        if not self.nodes:
            raise ValueError("a HashRing needs at least one node")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        points: list[tuple[int, str]] = []
        for node in self.nodes:
            for i in range(vnodes):
                points.append((_position(f"{node}#{i}"), node))
        # SHA-256 collisions between distinct tokens are not a practical
        # concern; sorting the (position, node) pair still makes ties
        # deterministic by node name.
        points.sort()
        self._points = points
        self._positions = [p for p, _ in points]
        self._owners = [n for _, n in points]

    # -- placement ------------------------------------------------------------------

    def _start(self, key: str) -> int:
        """Index of the first ring point clockwise of ``key``'s position."""
        return bisect.bisect_right(self._positions, _position(key)) % len(
            self._points
        )

    def owner(self, key: str, alive: Sequence[str] | None = None) -> str:
        """The node owning ``key`` — the first *alive* node clockwise.

        ``alive=None`` means full membership.  Raises :class:`LookupError`
        when no listed-alive node is a member (an empty alive set in
        particular): the caller decides what "cluster down" means.
        """
        if alive is None:
            return self._owners[self._start(key)]
        allowed = set(alive) & set(self.nodes)
        if not allowed:
            raise LookupError("no alive node is a ring member")
        start = self._start(key)
        n = len(self._points)
        for step in range(n):
            node = self._owners[(start + step) % n]
            if node in allowed:
                return node
        raise LookupError("no alive node is a ring member")  # pragma: no cover

    def preference(self, key: str) -> list[str]:
        """Every node, ordered by failover preference for ``key``.

        The first element is :meth:`owner`; each subsequent element is the
        next *distinct* node clockwise.  Filtering this list against an
        alive-set is exactly ``owner(key, alive)`` extended to a sequence —
        the router retries a failed key along this order.
        """
        start = self._start(key)
        n = len(self._points)
        seen: dict[str, None] = {}
        for step in range(n):
            node = self._owners[(start + step) % n]
            if node not in seen:
                seen[node] = None
                if len(seen) == len(self.nodes):
                    break
        return list(seen)

    # -- introspection --------------------------------------------------------------

    def shares(self, sample: Iterable[str]) -> dict[str, int]:
        """Keys-per-node histogram over ``sample`` (balance diagnostics)."""
        counts = {node: 0 for node in self.nodes}
        for key in sample:
            counts[self.owner(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: str) -> bool:
        return node in self.nodes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HashRing(nodes={list(self.nodes)!r}, vnodes={self.vnodes})"
