"""HPC ``histogram`` — scatter-update binning.

Random read-modify-write scatter into a bin array (particle binning,
radix-sort counting, feature hashing).  The bin-array size relative to the
cache decides everything: small → fully resident and immune to placement;
large → random misses no technique recovers.  The default sits at 2× the
cache for an in-between profile.  Bin totals are verified against
``numpy.bincount`` in the tests.
"""

from __future__ import annotations

import numpy as np

from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["HistogramWorkload"]


@register_workload
class HistogramWorkload(Workload):
    name = "histogram"
    suite = "hpc"
    description = "Random scatter-increment into a 64 KiB bin array"
    access_pattern = "streaming keys + random read-modify-write scatter"

    def kernel(self, m: Recorder, scale: float) -> None:
        n_bins = self.scaled(16384, scale, minimum=64)  # 4-byte bins
        n_keys = self.scaled(40_000, scale, minimum=128)
        keys_arr = m.space.heap_array(4, n_keys, "keys")
        bins_arr = m.space.heap_array(4, n_bins, "bins")
        # Zipf-ish key popularity: hot bins exist, like real feature hashing.
        raw = m.rng.zipf(1.3, size=n_keys)
        keys = (raw % n_bins).astype(np.int64)
        counts = np.zeros(n_bins, dtype=np.int64)
        for i in range(n_keys):
            m.load_elem(keys_arr, i)
            k = int(keys[i])
            m.load_elem(bins_arr, k)
            counts[k] += 1
            m.store_elem(bins_arr, k)
        expected = np.bincount(keys, minlength=n_bins)
        m.builder.meta["max_bin"] = int(counts.max())
        m.builder.meta["matches_bincount"] = bool(np.array_equal(counts, expected))
