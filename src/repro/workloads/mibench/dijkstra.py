"""MiBench ``dijkstra`` — shortest paths over an adjacency matrix.

Follows the original benchmark's structure: an N×N integer adjacency
matrix, a linear-scan "priority queue" (the MiBench version repeatedly
scans a distance array for the minimum), per-source relaxation sweeps.
Matrix rows are strided by ``4·N`` bytes, so row visits concentrate on a
stride-dependent subset of sets while the distance arrays stay hot.

Path lengths are verified against :mod:`networkx` in the tests.
"""

from __future__ import annotations

import numpy as np

from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["DijkstraWorkload", "dijkstra_matrix"]

_INF = 1 << 30


def dijkstra_matrix(adj: np.ndarray, src: int) -> np.ndarray:
    """Reference distances (no trace) for verification."""
    n = adj.shape[0]
    dist = np.full(n, _INF, dtype=np.int64)
    done = np.zeros(n, dtype=bool)
    dist[src] = 0
    for _ in range(n):
        cand = np.where(done, _INF + 1, dist)
        u = int(np.argmin(cand))
        if cand[u] > _INF:
            break
        done[u] = True
        for v in range(n):
            w = int(adj[u, v])
            if w and not done[v] and dist[u] + w < dist[v]:
                dist[v] = dist[u] + w
    return dist


@register_workload
class DijkstraWorkload(Workload):
    name = "dijkstra"
    suite = "mibench"
    description = "All-sources-to-some shortest paths on a dense random graph"
    access_pattern = "strided matrix row sweeps + hot distance arrays"

    def kernel(self, m: Recorder, scale: float) -> None:
        n = self.scaled(100, scale, minimum=8)
        pairs = self.scaled(20, scale, minimum=2)
        adj_arr = m.space.heap_array(4, n * n, "adjacency")
        dist_arr = m.space.heap_array(4, n, "dist")
        done_arr = m.space.heap_array(1, n, "visited")
        prev_arr = m.space.heap_array(4, n, "prev")

        adj = m.rng.integers(1, 100, size=(n, n))
        adj[m.rng.random((n, n)) < 0.3] = 0  # drop ~30% of edges
        np.fill_diagonal(adj, 0)

        last = None
        for p in range(pairs):
            src = int(m.rng.integers(0, n))
            dist = [_INF] * n
            done = [False] * n
            dist[src] = 0
            for i in range(n):
                m.store_elem(dist_arr, i)
                m.store_elem(done_arr, i)
            for _ in range(n):
                # Linear min-scan (the MiBench queue).
                best, u = _INF + 1, -1
                for i in range(n):
                    m.load_elem(done_arr, i)
                    m.load_elem(dist_arr, i)
                    if not done[i] and dist[i] < best:
                        best, u = dist[i], i
                if u < 0:
                    break
                done[u] = True
                m.store_elem(done_arr, u)
                row = u * n
                for v in range(n):
                    m.load_elem(adj_arr, row + v)
                    w = int(adj[u, v])
                    if w and not done[v]:
                        m.load_elem(dist_arr, v)
                        if dist[u] + w < dist[v]:
                            dist[v] = dist[u] + w
                            m.store_elem(dist_arr, v)
                            m.store_elem(prev_arr, v)
            m.printf(48, fmt_id=1)  # MiBench prints each shortest path
            last = (src, dist)
        if last is not None:
            src, dist = last
            m.builder.meta["last_src"] = src
            m.builder.meta["last_dist_head"] = dist[:8]
