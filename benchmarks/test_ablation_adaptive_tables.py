"""Ablation: adaptive-cache SHT/OUT table sizing.

The paper fixes SHT = 3/8 and OUT = 4/16 of the sets "based on empirical
results" (Peir et al.); this sweep shows the sensitivity around that point.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.core.caches import AdaptiveGroupAssociativeCache, DirectMappedCache
from repro.core.simulator import simulate
from repro.experiments.runner import workload_trace


@pytest.mark.parametrize(
    "sht_frac,out_frac",
    [(1 / 8, 1 / 8), (3 / 8, 1 / 4), (1 / 2, 1 / 2), (1.0, 1.0)],
)
def test_table_sizing(benchmark, config, sht_frac, out_frac):
    trace = workload_trace("fft", config)
    g = config.geometry

    def run():
        cache = AdaptiveGroupAssociativeCache(
            g, sht_fraction=sht_frac, out_fraction=out_frac
        )
        return simulate(cache, trace)

    result = run_once(benchmark, run)
    dm = simulate(DirectMappedCache(g), trace)
    reduction = 100.0 * (dm.misses - result.misses) / dm.misses
    print(f"\nSHT={sht_frac:.3f} OUT={out_frac:.3f}: reduction {reduction:+.1f}%")
    assert result.misses <= dm.misses
