"""Dynamic index-scheme switching (the paper's stated research direction).

The paper's Figure 5 programs one profiled scheme per application.  Its
conclusion goes further: indexing schemes "are static; they do not adjust
dynamically to a given application's memory access pattern".  This module
implements that missing piece as an extension:

:class:`DynamicIndexCache` is a direct-mapped cache that

* keeps a ring buffer of the most recent block addresses (the on-line
  profile) and per-window miss counts;
* when a window's miss rate deteriorates past ``trigger_ratio`` times the
  best window seen since the last switch (a phase change), re-scores the
  candidate schemes on the ring buffer with the vectorised simulator and
  switches to the winner if it beats the incumbent by ``min_gain``;
* pays for the switch honestly: the array is flushed (every resident block
  is lost, upcoming refills become misses) and the switch count is recorded.

On phase-changing programs this beats every *static* scheme choice, which
is the claim the experiment ``ext-dynamic`` and the tests assert.
"""

from __future__ import annotations

import numpy as np

from .address import CacheGeometry
from .caches.base import EMPTY, AccessResult, CacheModel
from .fastsim import direct_mapped_miss_count
from .indexing.base import IndexingScheme
from .indexing.modulo import ModuloIndexing

__all__ = ["DynamicIndexCache"]


class DynamicIndexCache(CacheModel):
    """Direct-mapped cache with on-line scheme re-selection."""

    name = "dynamic_index"

    def __init__(
        self,
        geometry: CacheGeometry,
        candidates: list[IndexingScheme],
        window: int = 4096,
        history: int = 8192,
        trigger_ratio: float = 1.5,
        min_gain: float = 0.1,
    ):
        if geometry.ways != 1:
            raise ValueError("DynamicIndexCache is direct-mapped")
        if not candidates:
            raise ValueError("need at least one candidate scheme")
        for s in candidates:
            if s.requires_training():
                raise ValueError("trainable schemes cannot be re-fitted on-line here")
            if s.geometry.num_sets != geometry.num_sets:
                raise ValueError("candidate geometry mismatch")
        super().__init__(geometry, num_slots=geometry.num_sets)
        self.candidates = list(candidates)
        self.current: IndexingScheme = ModuloIndexing(geometry)
        self.window = window
        self.history = history
        self.trigger_ratio = trigger_ratio
        self.min_gain = min_gain
        self.switches = 0
        self.switch_log: list[tuple[int, str]] = []
        self._blocks = np.full(geometry.num_sets, EMPTY, dtype=np.int64)
        self._ring = np.zeros(history, dtype=np.int64)
        self._ring_fill = 0
        self._ring_pos = 0
        self._window_accesses = 0
        self._window_misses = 0
        self._best_window_rate: float | None = None
        self._tick = 0
        self._offset_bits = geometry.offset_bits

    # -- adaptation ---------------------------------------------------------------

    def _recent_blocks(self) -> np.ndarray:
        if self._ring_fill < self.history:
            return self._ring[: self._ring_fill]
        return np.concatenate([self._ring[self._ring_pos :], self._ring[: self._ring_pos]])

    def _maybe_switch(self) -> None:
        rate = self._window_misses / self._window_accesses
        self._window_accesses = 0
        self._window_misses = 0
        if self._best_window_rate is None or rate < self._best_window_rate:
            self._best_window_rate = rate
            return
        if rate < self.trigger_ratio * self._best_window_rate or rate < 0.01:
            return
        # Phase change suspected: re-score candidates on the ring buffer.
        blocks = self._recent_blocks()
        if blocks.size < self.window:
            return
        addresses = blocks.astype(np.uint64) << np.uint64(self._offset_bits)
        scores: list[tuple[int, IndexingScheme]] = []
        for scheme in [self.current] + [s for s in self.candidates if s is not self.current]:
            cost = direct_mapped_miss_count(blocks, scheme.indices_of(addresses))
            scores.append((cost, scheme))
        incumbent_cost = scores[0][0]
        best_cost, best = min(scores, key=lambda cs: cs[0])
        if best is self.current or best_cost > (1.0 - self.min_gain) * incumbent_cost:
            return
        # Commit: flush (the honest switch cost) and adopt the winner.
        self.current = best
        self._blocks.fill(EMPTY)
        self.switches += 1
        self.switch_log.append((self._tick, best.name))
        self.stats.bump("scheme_switches")
        self._best_window_rate = None

    # -- access -------------------------------------------------------------------

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        self._tick += 1
        self._ring[self._ring_pos] = block
        self._ring_pos = (self._ring_pos + 1) % self.history
        self._ring_fill = min(self._ring_fill + 1, self.history)
        slot = self.current.index_of(block << self._offset_bits)
        self.stats.record_probe(slot)
        self._window_accesses += 1
        if self._blocks[slot] == block:
            self.stats.record_hit(slot, "direct")
            result = AccessResult(True, 1, slot, slot, hit_class="direct")
        else:
            evicted = int(self._blocks[slot])
            self._blocks[slot] = block
            self._window_misses += 1
            self.stats.record_miss(slot)
            result = AccessResult(
                False, 1, slot, slot, evicted_block=None if evicted == EMPTY else evicted
            )
        if self._window_accesses >= self.window:
            self._maybe_switch()
        return result

    def contents(self) -> set[int]:
        return {int(b) for b in self._blocks if b != EMPTY}

    def flush(self) -> None:
        self._blocks.fill(EMPTY)
