"""Bit-exactness of basicmath's vectorised draw replay.

``_root_counts`` replays the scalar loop's rng stream — three ``uniform``
doubles plus one discarded ``integers(0, 2**30)`` per iteration — from one
``random_raw`` block.  The subtle part is the bounded draw's 32-bit buffer:
``integers`` consumes the low half of a fresh word and buffers the high
half for the *next* bounded call, while ``uniform`` bypasses the buffer,
giving 7 raw words per 2 iterations.  These tests pin that consumption
model and the vectorised Cardano discriminant classification against the
scalar reference across many seeds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.mibench.basicmath import _root_counts, solve_cubic


def _root_counts_ref(rng: np.random.Generator, n: int) -> list[int]:
    out = []
    for _ in range(n):
        b = float(rng.uniform(-20, 20))
        c = float(rng.uniform(-100, 100))
        d = float(rng.uniform(-100, 100))
        out.append(len(solve_cubic(1.0, b, c, d)))
        rng.integers(0, 1 << 30)
    return out


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 2011, 99991])
@pytest.mark.parametrize("n", [1, 2, 7, 64, 501])
def test_root_counts_match_reference(seed, n):
    # Odd and even n exercise both phases of the 7-words-per-2-iterations
    # consumption pattern.
    ref = _root_counts_ref(np.random.default_rng(seed), n)
    fast = _root_counts(np.random.default_rng(seed), n)
    assert fast == ref


def test_root_counts_many_seeds():
    for seed in range(150):
        assert _root_counts(np.random.default_rng(seed), 21) == _root_counts_ref(
            np.random.default_rng(seed), 21
        )


def test_root_counts_values_are_valid():
    counts = _root_counts(np.random.default_rng(5), 400)
    assert len(counts) == 400
    assert set(counts) <= {1, 2, 3}


class _SabotagedBitGen:
    """Delegates state handling to a real PCG64 but zeroes raw draws."""

    def __init__(self, bg):
        self._bg = bg

    @property
    def state(self):
        return self._bg.state

    @state.setter
    def state(self, value):
        self._bg.state = value

    def random_raw(self, size):
        return np.zeros(size, dtype=np.uint64)


class _SabotagedRng:
    def __init__(self, rng):
        self._rng = rng
        self.bit_generator = _SabotagedBitGen(rng.bit_generator)

    def uniform(self, *args, **kwargs):
        return self._rng.uniform(*args, **kwargs)

    def integers(self, *args, **kwargs):
        return self._rng.integers(*args, **kwargs)


def test_fallback_on_replay_mismatch():
    # Corrupt the raw block so the scalar spot check fires; the fallback
    # must restore the generator state and produce the reference answer.
    got = _root_counts(_SabotagedRng(np.random.default_rng(8)), 30)
    assert got == _root_counts_ref(np.random.default_rng(8), 30)
