"""repro.service — the long-lived simulation job server.

Every consumer of the reproduction used to spawn its own engine and
re-contend for the result/trace caches; this subsystem is the serving
layer that amortizes a warm worker pool and deduplicates concurrent
identical work across clients:

* :mod:`~repro.service.protocol` — JSON-lines wire format; request
  normalization reuses the engine's own cell construction and key
  derivation (:func:`~repro.experiments.engine.parallel.plan_cells`);
* :mod:`~repro.service.scheduler` — single-flight coalescing, bounded
  admission with ``overloaded`` backpressure, deadlines and cooperative
  cancellation over one persistent worker pool;
* :mod:`~repro.service.server` — the asyncio TCP daemon (``repro serve``),
  streaming per-cell progress events for long experiments;
* :mod:`~repro.service.client` — blocking Python client
  (``repro submit``, examples, benches);
* :mod:`~repro.service.stats` — health/stats observability surface.

See DESIGN.md §5.4 for the full protocol and semantics.
"""

from .client import (
    ServiceClient,
    ServiceError,
    ServiceOverloaded,
    ServiceTimeout,
    ServiceUnavailable,
)
from .protocol import PROTOCOL_VERSION, ProtocolError
from .scheduler import CellScheduler, DeadlineExceeded, Overloaded
from .server import ReproServer
from .stats import LatencyHistogram, ServiceStats

__all__ = [
    "PROTOCOL_VERSION",
    "CellScheduler",
    "DeadlineExceeded",
    "LatencyHistogram",
    "Overloaded",
    "ProtocolError",
    "ReproServer",
    "ServiceClient",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceStats",
    "ServiceTimeout",
    "ServiceUnavailable",
]
