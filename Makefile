# Convenience targets for the reproduction workflow.

PY ?= python
REFS ?= 120000

.PHONY: install test bench replay examples clean-traces all

install:
	pip install -e . --no-build-isolation

test:
	$(PY) -m pytest tests/

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

replay:
	$(PY) examples/replay_paper.py --refs $(REFS) --out results_full.md

examples:
	$(PY) examples/quickstart.py
	$(PY) examples/application_tuning.py 30000
	$(PY) examples/smt_cache_design.py
	$(PY) examples/custom_workload.py
	$(PY) examples/instruction_placement.py

clean-traces:
	rm -rf .trace_cache

all: test bench replay
