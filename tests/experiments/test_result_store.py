"""Pluggable result-store tests (ISSUE 7).

Locks the store layer's contracts:

* a **transient** read error (``OSError``) is a miss that leaves the entry
  on disk — only *verified* corruption unlinks (the fix for the old
  delete-on-any-exception behavior);
* :class:`SharedDirStore` reads through (shared hit → local populate) and
  writes behind (local synchronous, shared published by the background
  thread; ``flush`` drains; shared-tier hiccups never kill the publisher);
* :func:`make_store` is the single config → backend mapping;
* results computed by one node are warm for a different node that shares
  only the shared directory — the property the cluster's exactly-once
  argument rests on.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.simulator import SimulationResult
from repro.experiments import PaperConfig
from repro.experiments.engine import (
    LocalDirStore,
    ResultCache,
    ResultStore,
    SharedDirStore,
    make_cell,
    make_store,
    run_cells,
)
import repro.experiments.engine.cache as cache_mod

REFS = 2000


@pytest.fixture
def config(tmp_path) -> PaperConfig:
    return replace(
        PaperConfig(), ref_limit=REFS, trace_cache_dir=tmp_path / "traces"
    )


def _result(misses: int = 7, n_sets: int = 16) -> SimulationResult:
    """A synthetic but structurally valid result for store plumbing tests."""
    slot_accesses = np.arange(n_sets, dtype=np.int64) + 1
    slot_hits = np.arange(n_sets, dtype=np.int64)
    return SimulationResult(
        model="synthetic",
        trace_name="synthetic",
        accesses=int(slot_accesses.sum()),
        hits=int(slot_hits.sum()),
        misses=misses,
        lookup_cycles=123,
        slot_accesses=slot_accesses,
        slot_hits=slot_hits,
        slot_misses=slot_accesses - slot_hits,
        extra={},
    )


class TestTransientReadErrors:
    """Satellite 1: ``load`` must not delete entries on transient errors."""

    def test_oserror_is_a_miss_that_keeps_the_entry(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "rc")
        path = cache.store("k" * 64, _result())
        assert path.exists()

        real_load = np.load

        def flaky_load(*args, **kwargs):
            raise OSError("synthetic NFS hiccup")

        monkeypatch.setattr(cache_mod.np, "load", flaky_load)
        assert cache.load("k" * 64) is None, "transient error must read as a miss"
        assert path.exists(), "transient error must NOT delete the entry"

        # Once the filesystem recovers, the very same entry is a hit again.
        monkeypatch.setattr(cache_mod.np, "load", real_load)
        recovered = cache.load("k" * 64)
        assert recovered is not None
        assert recovered.misses == _result().misses

    def test_verified_corruption_still_unlinks(self, tmp_path):
        cache = ResultCache(tmp_path / "rc")
        path = cache.store("k" * 64, _result())
        path.write_bytes(b"definitely not an npz")
        assert cache.load("k" * 64) is None
        assert not path.exists(), "provably corrupt entries must be removed"


class TestSharedDirStore:
    def test_store_is_local_sync_and_shared_after_flush(self, tmp_path):
        store = SharedDirStore(tmp_path / "shared", local_dir=tmp_path / "local")
        try:
            store.store("a" * 64, _result())
            # The computing node sees its own result immediately...
            assert store.local.load("a" * 64) is not None
            # ...and after a flush the cluster sees it too.
            store.flush()
            assert store.shared.load("a" * 64) is not None
            assert store.keys() == ["a" * 64]
        finally:
            store.close()

    def test_read_through_populates_the_local_tier(self, tmp_path):
        # Node one publishes; node two (fresh local tier) probes.
        one = SharedDirStore(tmp_path / "shared", local_dir=tmp_path / "n1")
        one.store("b" * 64, _result(misses=11))
        one.flush()
        one.close()

        two = SharedDirStore(tmp_path / "shared", local_dir=tmp_path / "n2")
        try:
            hit = two.load("b" * 64)
            assert hit is not None and hit.misses == 11
            # The hit was copied down: repeat probes stay node-local.
            assert two.local.load("b" * 64) is not None
        finally:
            two.close()

    def test_shared_tier_hiccup_never_kills_the_publisher(
        self, tmp_path, monkeypatch
    ):
        store = SharedDirStore(tmp_path / "shared", local_dir=tmp_path / "local")
        try:
            real_store = store.shared.store
            calls = {"n": 0}

            def flaky(key, result):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise OSError("shared filesystem went away")
                return real_store(key, result)

            monkeypatch.setattr(store.shared, "store", flaky)
            store.store("c" * 64, _result())
            store.flush()  # must return despite the failed publish
            assert store.shared.load("c" * 64) is None
            assert store.local.load("c" * 64) is not None  # nothing lost

            # The publisher thread survived and handles the next entry.
            store.store("d" * 64, _result())
            store.flush()
            assert store.shared.load("d" * 64) is not None
        finally:
            store.close()

    def test_close_is_idempotent_and_drains(self, tmp_path):
        store = SharedDirStore(tmp_path / "shared", local_dir=tmp_path / "local")
        store.store("e" * 64, _result())
        store.close()
        store.close()
        assert store.shared.load("e" * 64) is not None

    def test_concurrent_publish_of_same_key_is_benign(self, tmp_path):
        shared = tmp_path / "shared"
        one = SharedDirStore(shared, local_dir=tmp_path / "n1")
        two = SharedDirStore(shared, local_dir=tmp_path / "n2")
        try:
            one.store("f" * 64, _result(misses=5))
            two.store("f" * 64, _result(misses=5))
            one.flush()
            two.flush()
            hit = one.shared.load("f" * 64)
            assert hit is not None and hit.misses == 5
        finally:
            one.close()
            two.close()


class TestMakeStore:
    def test_local_is_the_default_and_is_todays_cache(self, config):
        store = make_store(config)
        assert isinstance(store, LocalDirStore)
        assert isinstance(store, ResultStore)  # registered virtual subclass
        assert store.root == config.result_cache_path
        assert LocalDirStore is ResultCache  # alias, not a wrapper

    def test_disabled_cache_maps_to_none(self, config):
        assert make_store(replace(config, use_result_cache=False)) is None

    def test_shared_requires_a_directory(self, config):
        with pytest.raises(ValueError, match="shared_store_dir"):
            make_store(replace(config, result_store="shared"))

    def test_unknown_backend_is_rejected(self, config):
        with pytest.raises(ValueError, match="unknown result_store"):
            make_store(replace(config, result_store="redis"))

    def test_shared_wires_both_tiers(self, config, tmp_path):
        cfg = replace(
            config, result_store="shared", shared_store_dir=tmp_path / "shared"
        )
        store = make_store(cfg)
        try:
            assert isinstance(store, SharedDirStore)
            assert store.shared.root == tmp_path / "shared"
            assert store.local.root == cfg.result_cache_path
        finally:
            store.close()


class TestClusterVisibleWarmResults:
    def test_run_cells_warm_across_nodes_via_shared_store(self, config, tmp_path):
        """Node two never simulates what node one already published."""
        shared = tmp_path / "shared-results"
        node1 = replace(
            config,
            result_store="shared",
            shared_store_dir=shared,
            result_cache_dir=tmp_path / "n1-results",
        )
        node2 = replace(
            node1,
            result_cache_dir=tmp_path / "n2-results",
        )
        cells = [make_cell("baseline", "crc", "baseline", config)]

        _, cold = run_cells(cells, node1, jobs=1)
        assert cold.cache_misses == 1
        # run_cells owns the store here, so it flushed+closed on exit: the
        # publish is already durable in the shared tier.
        assert any(shared.glob("*.npz"))

        results, warm = run_cells(cells, node2, jobs=1)
        assert warm.cache_misses == 0
        assert warm.cache_hits == 1
        assert results[("crc", "baseline")].misses > 0
