"""Sweep-family planning and batched execution.

The figure grids re-simulate the same trace once per cell even when cells
are near-duplicates of each other.  This module groups a planned cell list
into *sweep families* — sets of cells provably answerable together — along
two axes, and executes each family as one unit:

``assoc`` (the Mattson axis)
    Cells of one workload whose :class:`~.cells.KernelSpec` signatures are
    equal share the exact per-access ``(blocks, indices)`` stream, so under
    LRU one :func:`~repro.core.fastsim.lru_stack_distances` pass answers
    every member by associativity thresholding
    (:func:`~repro.core.simulator.simulate_lru_sweep`).  A whole fixed-sets
    associativity sweep (the ``assocsweep`` cells of ``ext-assoc``, or the
    CLI's ``sweep --ways 1,2,4,8``) costs ~one cell.

``policy`` (the replacement-policy axis)
    ``policysweep`` cells of one workload whose :class:`~.cells.PolicySpec`
    signatures are equal (same scheme, mapping, associativity and random
    seed — everything but the policy) share one trace decode, one index
    computation and one set-decomposition pass; each member's policy then
    replays its own exact kernel off the shared grouped arrays
    (:func:`~repro.core.fastpolicy.simulate_policy_sweep`).  A whole
    policy grid (the ``ext-policy`` experiment, or the CLI's
    ``sweep --policy lru,fifo,plru,...``) costs one decomposition plus the
    cheap per-policy replays.

``decode`` (the shared-trace axis)
    Remaining cells of one workload are batched into a single execution
    unit: the trace is opened once per process (via the trace arena)
    instead of once per scheduled cell, and each member then runs its
    *unmodified* per-cell :func:`~.cells.execute_cell` path — exact by
    construction, cheaper by task granularity and guaranteed trace-memo
    locality on the process pool.  ``auxsweep`` cells (victim / miss-cache
    / stream-buffer compositions) ride this axis: their per-cell path is
    already the exact miss-event replay of :mod:`repro.core.aux.fast`, so
    the only cross-cell saving left is the shared trace open.

``single``
    The one-member fallback; detection is a *partition* — every planned
    cell lands in exactly one family (a Hypothesis property test locks
    this down).

Batching is an execution detail, invisible to results and result-cache
keys: each member is stored under its unchanged per-cell key, so warm
caches, replay and the service's single-flight coalescing interoperate
freely with batched runs (audited by ``TestCacheKeyAudit``).

Failure attribution: :func:`execute_family` never raises.  It returns the
members that completed plus, on failure, the ``(workload, label, message)``
of the specific member that failed, so the engine can persist completed
members' cache entries and re-raise a
:class:`~.cells.CellExecutionError` naming the true culprit — a mid-batch
failure must not poison the family.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ...core.fastpolicy import simulate_policy_sweep
from ...core.simulator import SimulationResult, simulate_lru_sweep
from ..config import PaperConfig
from .cells import (
    SimCell,
    _trace_at,
    build_kernel_scheme,
    build_policy_scheme,
    kernel_cell_spec,
    policy_cell_spec,
    timed_execute_cell,
)

__all__ = ["SweepFamily", "detect_families", "execute_family"]


@dataclass(frozen=True)
class SweepFamily:
    """One batched execution unit: cells provably answerable together."""

    #: ``"assoc"`` (shared stack-distance pass), ``"policy"`` (shared
    #: set-decomposition, per-policy kernels), ``"decode"`` (shared trace
    #: decode, per-member execution) or ``"single"`` (fallback).
    axis: str
    workload: str
    members: tuple[SimCell, ...]
    #: The shared :class:`~.cells.KernelSpec` signature (``assoc`` only).
    signature: tuple | None = None

    @property
    def name(self) -> str:
        return f"{self.workload}/[{'+'.join(c.label for c in self.members)}]"


def detect_families(
    cells, config: PaperConfig
) -> tuple[SweepFamily, ...]:
    """Partition a cell list into sweep families.

    Grouping never mixes workloads (hence traces), kernel signatures
    (hence index mappings) or — on the assoc axis — replacement policies:
    the ``assoc`` axis groups by ``(workload, KernelSpec.signature)`` — the
    signature embeds the scheme identity and the policy gate is inside
    :func:`~.cells.kernel_cell_spec`; the ``policy`` axis groups by
    ``(workload, PolicySpec.signature)`` — members *differ* in policy by
    construction but share everything else; and the ``decode`` axis only
    ever groups by workload, leaving each member's own execution path
    intact.

    ``config.batch_sweeps=False`` degenerates to all-singleton families;
    the ``assoc`` and ``policy`` axes additionally require
    ``config.engine == "auto"`` (the same discipline as every other
    vectorised fast path — forcing ``"sequential"`` keeps per-cell
    reference execution).
    """
    cells = list(dict.fromkeys(cells))  # dedupe, preserving declaration order
    if not config.batch_sweeps:
        return tuple(SweepFamily("single", c.workload, (c,)) for c in cells)
    assoc_members: set[SimCell] = set()
    families: list[SweepFamily] = []
    if config.engine == "auto":
        kernel_groups: dict[tuple, list[SimCell]] = {}
        for cell in cells:
            spec = kernel_cell_spec(cell, config)
            if spec is not None:
                kernel_groups.setdefault(
                    (cell.workload, spec.signature), []
                ).append(cell)
        for (workload, sig), members in kernel_groups.items():
            if len(members) >= 2:
                families.append(
                    SweepFamily("assoc", workload, tuple(members), sig)
                )
                assoc_members.update(members)
        policy_groups: dict[tuple, list[SimCell]] = {}
        for cell in cells:
            spec = policy_cell_spec(cell, config)
            if spec is not None:
                policy_groups.setdefault(
                    (cell.workload, spec.signature), []
                ).append(cell)
        for (workload, sig), members in policy_groups.items():
            if len(members) >= 2:
                families.append(
                    SweepFamily("policy", workload, tuple(members), sig)
                )
                assoc_members.update(members)
    decode_groups: dict[str, list[SimCell]] = {}
    for cell in cells:
        if cell not in assoc_members:
            decode_groups.setdefault(cell.workload, []).append(cell)
    for workload, members in decode_groups.items():
        axis = "decode" if len(members) >= 2 else "single"
        families.append(SweepFamily(axis, workload, tuple(members)))
    return tuple(families)


def execute_family(
    family: SweepFamily,
    config: PaperConfig,
    trace_path=None,
    profile_path=None,
) -> tuple[
    list[tuple[SimCell, SimulationResult, float]], tuple[str, str, str] | None
]:
    """Execute one family (the pool-worker entry point); never raises.

    Returns ``(completed, failure)``: ``completed`` holds ``(cell, result,
    seconds)`` for every member that finished, in member order; ``failure``
    is ``None`` or the ``(workload, label, message)`` of the member that
    failed.  On a decode-axis failure the members already simulated are
    still returned (their cache entries stay storable) and later members
    are not attempted; an assoc-axis failure happens inside the shared
    pass, before any member completes, and is attributed to the family's
    first member.  Messages travel as strings because worker exceptions
    must not require cross-process pickling of arbitrary exception types
    (the same discipline as :class:`~.cells.CellExecutionError`).
    """
    completed: list[tuple[SimCell, SimulationResult, float]] = []
    if family.axis in ("assoc", "policy"):
        first = family.members[0]
        t0 = time.perf_counter()
        try:
            if trace_path is not None:
                trace = _trace_at(trace_path, family.workload, config)
            else:
                from ..runner import workload_trace

                trace = workload_trace(family.workload, config)
            if family.axis == "assoc":
                scheme, geometry = build_kernel_scheme(
                    first, config, profile_path if first.needs_profile else None
                )
                specs = [kernel_cell_spec(cell, config) for cell in family.members]
                results = simulate_lru_sweep(
                    scheme, trace, geometry, [(s.ways, s.style) for s in specs]
                )
            else:
                scheme, geometry = build_policy_scheme(first, config)
                results = simulate_policy_sweep(
                    scheme,
                    trace,
                    geometry,
                    [cell.policy for cell in family.members],
                    seed=config.policy_seed,
                )
        except Exception as exc:  # attributed in the parent, never re-raised here
            return completed, (first.workload, first.label, str(exc))
        # The pass is shared; bill its wall time evenly across the members.
        share = (time.perf_counter() - t0) / len(family.members)
        completed.extend(
            (cell, result, share)
            for cell, result in zip(family.members, results)
        )
        return completed, None
    # decode / single: one shared trace open (via the process-wide trace
    # arena), then each member's unmodified per-cell path.
    for cell in family.members:
        try:
            result, seconds = timed_execute_cell(
                cell,
                config,
                trace_path,
                profile_path if cell.needs_profile else None,
            )
        except Exception as exc:
            return completed, (cell.workload, cell.label, str(exc))
        completed.append((cell, result, seconds))
    return completed, None
