"""Exclusive-OR hashing (paper Section II.D, after Kharbutli et al. 2004).

``index = (t XOR I) mod s`` where ``I`` is the conventional index field and
``t`` is an equally wide slice of the tag.  When two addresses share index
bits, at least one tag bit differs, so XORing tag into index separates them —
exactly the conflict-dispersal argument in the paper.

The tag slice defaults to the *low* tag bits (the bits immediately above the
index field), which is the classic choice; the constructor exposes
``tag_bit_offset`` so higher tag slices can be explored.
"""

from __future__ import annotations

import numpy as np

from ..address import CacheGeometry
from .base import IndexingScheme, register_scheme

__all__ = ["XorIndexing"]


@register_scheme
class XorIndexing(IndexingScheme):
    """``index = I xor tag_slice``; number of tag bits equals index bits."""

    name = "xor"

    def __init__(self, geometry: CacheGeometry, tag_bit_offset: int = 0):
        super().__init__(geometry)
        if tag_bit_offset < 0:
            raise ValueError("tag_bit_offset must be non-negative")
        m = geometry.index_bits
        if tag_bit_offset + m > geometry.tag_bits:
            # Not enough tag bits at that offset; clamp to what exists.  The
            # mask below zeroes the missing high bits naturally.
            pass
        self.tag_bit_offset = tag_bit_offset
        self._index_shift = geometry.offset_bits
        self._tag_shift = geometry.offset_bits + m + tag_bit_offset
        self._mask = geometry.num_sets - 1

    def index_of(self, address: int) -> int:
        index = (address >> self._index_shift) & self._mask
        tag_slice = (address >> self._tag_shift) & self._mask
        return index ^ tag_slice

    def indices_of(self, addresses: np.ndarray) -> np.ndarray:
        addresses = np.asarray(addresses, dtype=np.uint64)
        mask = np.uint64(self._mask)
        index = (addresses >> np.uint64(self._index_shift)) & mask
        tag_slice = (addresses >> np.uint64(self._tag_shift)) & mask
        return (index ^ tag_slice).astype(np.int64)
