"""Vectorised direct-mapped simulation primitives.

A direct-mapped cache has a one-line "history" per set, so its hit/miss
outcome stream is a pure function of, per set, the sequence of block
addresses mapped there: an access misses iff it is the first access to its
set or the previous access to the same set carried a different block.

That observation turns direct-mapped simulation into sort + adjacent-compare,
which NumPy executes orders of magnitude faster than a Python loop.  This is
the fast path behind every indexing-scheme experiment (paper Figures 4, 9,
10, 13) and behind the Patel index search, which needs thousands of
whole-trace miss counts.  The sequential engine in
:mod:`repro.core.simulator` computes the same thing one access at a time; the
test-suite proves the two agree on random and adversarial traces.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "direct_mapped_miss_flags",
    "direct_mapped_miss_count",
    "per_set_counts",
]


def direct_mapped_miss_flags(blocks: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Boolean miss vector for a direct-mapped cache.

    Parameters
    ----------
    blocks:
        Block addresses (byte address with the offset dropped), any integer
        dtype; identity of the cached data.
    indices:
        Set index of each access under the indexing scheme being evaluated.

    Returns
    -------
    A boolean array: ``True`` where the access misses (cold or conflict).
    """
    blocks = np.asarray(blocks)
    indices = np.asarray(indices)
    if blocks.shape != indices.shape:
        raise ValueError("blocks and indices must have equal shape")
    n = blocks.size
    if n == 0:
        return np.zeros(0, dtype=bool)
    # Stable sort groups accesses by set while preserving program order
    # within each set.
    order = np.argsort(indices, kind="stable")
    sorted_idx = indices[order]
    sorted_blk = blocks[order]
    miss_sorted = np.empty(n, dtype=bool)
    miss_sorted[0] = True
    # A position misses if it starts a new set group (cold miss) or differs
    # from the block previously resident in the same set (conflict/capacity).
    new_group = sorted_idx[1:] != sorted_idx[:-1]
    changed = sorted_blk[1:] != sorted_blk[:-1]
    miss_sorted[1:] = new_group | changed
    miss = np.empty(n, dtype=bool)
    miss[order] = miss_sorted
    return miss


def direct_mapped_miss_count(blocks: np.ndarray, indices: np.ndarray) -> int:
    """Total miss count; the Patel search's cost function (paper Eq. 6)."""
    return int(direct_mapped_miss_flags(blocks, indices).sum())


def per_set_counts(
    indices: np.ndarray, miss: np.ndarray, num_sets: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-set (accesses, misses) histograms from an outcome vector."""
    indices = np.asarray(indices)
    miss = np.asarray(miss, dtype=bool)
    if indices.shape != miss.shape:
        raise ValueError("indices and miss must have equal shape")
    accesses = np.bincount(indices, minlength=num_sets).astype(np.int64)
    misses = np.bincount(indices[miss], minlength=num_sets).astype(np.int64)
    return accesses, misses
