"""SPEC-CPU2006-like workload kernels (the 10 benchmarks of the paper's
Figure 8).  Importing this package registers them all."""

from .astar import AstarWorkload
from .bzip2 import Bzip2Workload
from .calculix import CalculixWorkload
from .gromacs import GromacsWorkload
from .hmmer import HmmerWorkload
from .libquantum import LibquantumWorkload
from .mcf import McfWorkload
from .milc import MilcWorkload
from .namd import NamdWorkload
from .sjeng import SjengWorkload

#: The paper's Figure 8 benchmark order.
SPEC_ORDER = [
    "astar",
    "bzip2",
    "calculix",
    "gromacs",
    "hmmer",
    "libquantum",
    "mcf",
    "milc",
    "namd",
    "sjeng",
]

__all__ = [
    "AstarWorkload",
    "Bzip2Workload",
    "CalculixWorkload",
    "GromacsWorkload",
    "HmmerWorkload",
    "LibquantumWorkload",
    "McfWorkload",
    "MilcWorkload",
    "NamdWorkload",
    "SjengWorkload",
    "SPEC_ORDER",
]
