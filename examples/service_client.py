#!/usr/bin/env python
"""Drive the simulation job server programmatically.

Spins up an in-process ``repro.service`` daemon (thread-mode — the same
server ``repro-cache serve`` runs, minus the worker processes), then
demonstrates the client-side serving model:

1. submit one engine cell and read the meta (key, cache_hit, seconds);
2. resubmit it — the answer now comes from the content-addressed cache;
3. fan 8 concurrent identical submissions from 8 threads at the daemon —
   single-flight coalescing simulates the cell exactly once;
4. sweep several schemes with streamed per-cell progress events;
5. read the stats surface (coalescing/cache counters, latency histogram)
   and shut the daemon down cleanly.

Against a daemon you started yourself (``repro-cache serve --port 7411``)
skip the embedded server and just point ``ServiceClient`` at its port.

Run:  python examples/service_client.py [workload] [refs]
"""

from __future__ import annotations

import asyncio
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace

from repro.experiments.config import PaperConfig
from repro.service import ReproServer, ServiceClient


def start_embedded_server(config: PaperConfig) -> tuple[ReproServer, threading.Thread]:
    """A thread-mode daemon on an ephemeral port, for self-contained demos."""
    server = ReproServer(config, port=0, workers=2, use_processes=False)
    started = threading.Event()

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)

        async def main() -> None:
            await server.start()
            started.set()
            await server.serve_forever()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    thread = threading.Thread(target=run, name="repro-service", daemon=True)
    thread.start()
    if not started.wait(30):
        raise RuntimeError("embedded server failed to start")
    return server, thread


def main() -> int:
    workload = sys.argv[1] if len(sys.argv) > 1 else "fft"
    refs = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000

    config = replace(PaperConfig(), ref_limit=refs, workload_scale=0.25, jobs=1)
    server, thread = start_embedded_server(config)
    print(f"job server listening on 127.0.0.1:{server.port}\n")

    # 1. One cell, straight answer + serving metadata.
    with ServiceClient("127.0.0.1", server.port) as client:
        health = client.health()
        print(f"health: version {health['version']}, protocol {health['protocol']}")
        reply = client.submit_cell("indexing", workload, "XOR")
        result, meta = reply["result"], reply["meta"]
        print(
            f"{meta['cell']}: miss rate {result['miss_rate']:.4f} "
            f"(cache_hit={meta['cache_hit']}, {meta['seconds'] * 1e3:.1f} ms, "
            f"key {meta['key'][:12]}…)"
        )

        # 2. Identical resubmission: answered from the result cache.
        again = client.submit_cell("indexing", workload, "XOR")["meta"]
        print(f"resubmitted: cache_hit={again['cache_hit']}\n")

    # 3. Concurrency: 8 clients, 8 threads, one identical cell each.
    #    Single-flight coalescing plus the cache mean it is simulated once.
    def one_submission(_i: int) -> bool:
        with ServiceClient("127.0.0.1", server.port) as c:
            return c.submit_cell("indexing", workload, "Prime_Modulo")["meta"][
                "coalesced"
            ]

    executed_before = server.stats.cells_executed
    with ThreadPoolExecutor(max_workers=8) as pool:
        coalesced = list(pool.map(one_submission, range(8)))
    executed = server.stats.cells_executed - executed_before
    print(
        f"8 concurrent identical submissions: {sum(coalesced)} coalesced, "
        f"{executed} simulation(s)"
    )

    # 4. A sweep with streamed progress events.
    def on_event(frame: dict) -> None:
        print(f"  [{frame['done']}/{frame['total']}] {frame['cell']}")

    with ServiceClient("127.0.0.1", server.port) as client:
        print(f"\nsweeping {workload}:")
        sweep = client.sweep(
            workload,
            ["baseline", "XOR", "Odd_Multiplier", "Prime_Modulo"],
            on_event=on_event,
        )
        for row in sweep["rows"]:
            print(f"  {row['label']:<16} miss rate {row['result']['miss_rate']:.4f}")

        # 5. Observability, then a clean shutdown.
        stats = client.stats()
        cells = stats["cells"]
        print(
            f"\nstats: {cells['submitted']} submitted, "
            f"{cells['coalesced']} coalesced, {cells['cache_hits']} cache hits, "
            f"{cells['executed']} simulated "
            f"(hit ratio {cells['cache_hit_ratio']:.2f})"
        )
        latency = stats["latency"]["cell"]
        print(
            f"cell latency: p50 {latency['p50_seconds'] * 1e3:.1f} ms, "
            f"p99 {latency['p99_seconds'] * 1e3:.1f} ms over {latency['count']} requests"
        )
        client.shutdown()

    thread.join(30)
    print("server stopped")
    return 0


if __name__ == "__main__":
    sys.exit(main())
