"""SMT shared-cache and partitioned-cache tests (paper Section IV.E)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.address import PAPER_L1_GEOMETRY, CacheGeometry
from repro.core.amat import TimingModel
from repro.core.indexing import ModuloIndexing, OddMultiplierIndexing
from repro.core.selector import ThreadSchemeTable
from repro.multithread import (
    PartitionedAdaptiveCache,
    SMTSharedCache,
    StaticPartitionedCache,
    simulate_partitioned,
    simulate_smt,
)
from repro.trace import Trace, round_robin

G = PAPER_L1_GEOMETRY


def conflicting_pair_trace(n=4000):
    """Two threads whose hot blocks alias in the same conventional sets."""
    t0 = Trace(np.tile(np.arange(16, dtype=np.uint64) * 32, n // 16), name="a")
    base = np.uint64(32 * 1024)  # same sets, different tag
    t1 = Trace(base + np.tile(np.arange(16, dtype=np.uint64) * 32, n // 16), name="b")
    return round_robin([t0, t1])


class TestThreadSchemeTable:
    def test_lookup(self):
        table = ThreadSchemeTable([ModuloIndexing(G), OddMultiplierIndexing(G, 9)])
        assert table.scheme_for(1).name == "odd_multiplier"
        with pytest.raises(IndexError):
            table.scheme_for(2)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ThreadSchemeTable([])

    def test_rejects_mixed_geometry(self):
        g2 = CacheGeometry(16 * 1024, 32, 1)
        with pytest.raises(ValueError):
            ThreadSchemeTable([ModuloIndexing(G), ModuloIndexing(g2)])


class TestSMTSharedCache:
    def test_same_scheme_threads_thrash(self):
        mix = conflicting_pair_trace()
        cache = SMTSharedCache(G, ThreadSchemeTable([ModuloIndexing(G)] * 2))
        res = simulate_smt(cache, mix)
        assert res.miss_rate > 0.9  # ping-pong on every shared set

    def test_per_thread_multipliers_fix_thrash(self):
        """The paper's Figure-13 effect in its purest form."""
        mix = conflicting_pair_trace()
        base = simulate_smt(SMTSharedCache(G, ThreadSchemeTable([ModuloIndexing(G)] * 2)), mix)
        multi = simulate_smt(
            SMTSharedCache(
                G,
                ThreadSchemeTable([OddMultiplierIndexing(G, 9), OddMultiplierIndexing(G, 31)]),
            ),
            mix,
        )
        assert multi.misses < base.misses * 0.2

    def test_cross_evictions_tracked(self):
        mix = conflicting_pair_trace()
        cache = SMTSharedCache(G, ThreadSchemeTable([ModuloIndexing(G)] * 2))
        res = simulate_smt(cache, mix)
        assert res.cross_evictions > 0

    def test_per_thread_stats_sum(self):
        mix = conflicting_pair_trace()
        cache = SMTSharedCache(G, ThreadSchemeTable([ModuloIndexing(G)] * 2))
        res = simulate_smt(cache, mix)
        assert res.thread_hits.sum() + res.thread_misses.sum() == res.accesses
        assert 0.0 <= res.thread_miss_rate(0) <= 1.0

    def test_unknown_thread_rejected(self):
        t = Trace(np.array([0], dtype=np.uint64), thread=np.array([2], dtype=np.int16))
        cache = SMTSharedCache(G, ThreadSchemeTable([ModuloIndexing(G)] * 2))
        with pytest.raises(ValueError):
            simulate_smt(cache, t)

    def test_rejects_multiway(self):
        with pytest.raises(ValueError):
            SMTSharedCache(CacheGeometry(32 * 1024, 32, 2), ThreadSchemeTable([ModuloIndexing(G)]))


class TestStaticPartitioned:
    def test_partition_isolation(self):
        """Threads may not evict each other's lines."""
        cache = StaticPartitionedCache(G, 2)
        cache.access(0, thread=0)
        cache.access(0, thread=1)  # same address, other partition
        assert cache.access(0, thread=0) == 1  # still a hit for thread 0
        assert cache.stats.hits == 1

    def test_slots_disjoint(self):
        cache = StaticPartitionedCache(G, 2)
        assert cache.primary_slot(0, 0) == 0
        assert cache.primary_slot(0, 1) == 512

    def test_rejects_bad_thread_count(self):
        with pytest.raises(ValueError):
            StaticPartitionedCache(G, 3)

    def test_partition_shrinks_effective_cache(self):
        """A working set that fits the whole cache but not a half-partition
        thrashes when partitioned."""
        blocks = np.arange(768, dtype=np.uint64) * 32  # 24 KiB working set
        t = Trace(np.tile(blocks, 8), name="ws")
        whole = StaticPartitionedCache(G, 1)
        half = StaticPartitionedCache(G, 2)
        r_whole = simulate_partitioned(whole, t)
        r_half = simulate_partitioned(half, t)
        assert r_whole.miss_rate < 0.2
        assert r_half.miss_rate > 0.5


class TestPartitionedAdaptive:
    def test_spill_uses_other_partition(self):
        """One heavy thread + one idle thread: the adaptive tables let the
        heavy thread overflow into the idle partition."""
        heavy = Trace(np.tile(np.arange(640, dtype=np.uint64) * 32, 12), name="heavy")
        idle = Trace(np.zeros(len(heavy), dtype=np.uint64), name="idle")
        mix = round_robin([heavy, idle])
        static = simulate_partitioned(StaticPartitionedCache(G, 2), mix)
        adaptive = simulate_partitioned(PartitionedAdaptiveCache(G, 2), mix)
        assert adaptive.misses < static.misses

    def test_amat_formulas(self):
        heavy = Trace(np.tile(np.arange(640, dtype=np.uint64) * 32, 12), name="heavy")
        idle = Trace(np.zeros(len(heavy), dtype=np.uint64), name="idle")
        mix = round_robin([heavy, idle])
        static = simulate_partitioned(StaticPartitionedCache(G, 2), mix)
        adaptive = simulate_partitioned(PartitionedAdaptiveCache(G, 2), mix)
        tm = TimingModel()
        assert static.amat(tm) == pytest.approx(1 + static.miss_rate * tm.miss_penalty)
        assert adaptive.amat(tm, adaptive=True) < static.amat(tm)

    def test_flush(self):
        c = PartitionedAdaptiveCache(G, 2)
        c.access(0, 0)
        c.flush()
        assert c.stats.accesses == 1  # stats survive, contents cleared
        assert len(c._out) == 0
