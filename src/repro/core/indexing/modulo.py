"""Conventional modulo-power-of-two indexing (the paper's baseline).

The traditional cache of Figure 2: the ``m`` bits directly above the byte
offset select the set, i.e. ``index = block_address mod 2**m``.
"""

from __future__ import annotations

import numpy as np

from ..address import CacheGeometry
from .base import IndexingScheme, register_scheme

__all__ = ["ModuloIndexing"]


@register_scheme
class ModuloIndexing(IndexingScheme):
    """``index = (address >> offset_bits) & (num_sets - 1)``."""

    name = "modulo"

    def __init__(self, geometry: CacheGeometry):
        super().__init__(geometry)
        self._shift = geometry.offset_bits
        self._mask = geometry.num_sets - 1

    def index_of(self, address: int) -> int:
        return (address >> self._shift) & self._mask

    def indices_of(self, addresses: np.ndarray) -> np.ndarray:
        addresses = np.asarray(addresses, dtype=np.uint64)
        return ((addresses >> np.uint64(self._shift)) & np.uint64(self._mask)).astype(np.int64)
