"""SPEC-like kernel tests: algorithmic correctness + registry checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace.recorder import Recorder
from repro.workloads import available_workloads, get_workload
from repro.workloads.spec import SPEC_ORDER
from repro.workloads.spec.bzip2 import bwt_last_column
from repro.workloads.spec.calculix import grid_laplacian_csr
from repro.workloads.spec.gromacs import build_neighbor_list
from repro.workloads.spec.hmmer import viterbi_score
from repro.workloads.spec.milc import random_su3


class TestRegistry:
    def test_all_ten_registered(self):
        assert available_workloads("spec") == sorted(SPEC_ORDER)

    def test_info_populated(self):
        for name in SPEC_ORDER:
            info = get_workload(name).info()
            assert info.description and info.access_pattern
            assert info.suite == "spec"


class TestDeterminism:
    @pytest.mark.parametrize("name", SPEC_ORDER)
    def test_same_seed_same_trace(self, name):
        w = get_workload(name)
        a = w.generate(seed=4, ref_limit=3000, scale=0.05)
        b = w.generate(seed=4, ref_limit=3000, scale=0.05)
        np.testing.assert_array_equal(a.addresses, b.addresses)

    @pytest.mark.parametrize("name", SPEC_ORDER)
    def test_ref_limit(self, name):
        assert len(get_workload(name).generate(seed=1, ref_limit=2000, scale=0.1)) <= 2000


class TestAstar:
    def test_finds_paths(self):
        t = get_workload("astar").generate(seed=2, ref_limit=None, scale=0.15)
        assert t.meta["paths_found"] >= 1


class TestBzip2:
    def test_bwt_reference_known_answer(self):
        # Classic example: BWT (rotation form) of "banana".
        assert bwt_last_column(b"banana") == b"nnbaaa"

    def test_kernel_matches_reference(self):
        t = get_workload("bzip2").generate(seed=3, ref_limit=None, scale=0.01)
        n = t.meta["n"]
        rng = np.random.default_rng(3)
        vals = []
        cur = 97
        for _ in range(n):
            if rng.random() < 0.3:
                cur = int(rng.integers(97, 107))
            vals.append(cur)
        data = bytes(vals)
        assert t.meta["bwt_head"] == bwt_last_column(data)[:16].hex()


class TestCalculix:
    def test_laplacian_structure(self):
        rp, ci, va = grid_laplacian_csr(3)
        assert rp[-1] == ci.size == va.size
        # Corner rows have 3 entries, centre row 5.
        assert rp[1] - rp[0] == 3
        assert rp[5] - rp[4] == 5
        # Diagonal dominance (SPD).
        for i in range(9):
            row = slice(int(rp[i]), int(rp[i + 1]))
            diag = va[row][ci[row] == i]
            assert diag == 4.0

    def test_cg_converges(self):
        t = get_workload("calculix").generate(seed=5, ref_limit=None, scale=0.15)
        # CG on an SPD system must reduce the residual drastically.
        n = t.meta["n"]
        assert t.meta["residual"] < n  # started at ||b||^2 ~ n


class TestGromacs:
    def test_neighbor_list_symmetric_cutoff(self):
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, 5.0, size=(20, 3))
        pairs = build_neighbor_list(pos, box=5.0, cutoff=1.5)
        for i, j in pairs:
            d = pos[j] - pos[i]
            d -= 5.0 * np.round(d / 5.0)
            assert np.dot(d, d) < 1.5**2
            assert i < j

    def test_forces_conserve_momentum(self):
        t = get_workload("gromacs").generate(seed=6, ref_limit=None, scale=0.05)
        net = np.array(t.meta["net_force"])
        # Pairwise forces cancel exactly (up to the clip, which rarely fires).
        assert np.abs(net).max() < 1e-6 or np.abs(net).max() < 1e-3 * t.meta["n_atoms"]


class TestHmmer:
    def test_kernel_score_matches_reference(self):
        # The kernel's DP (emitted element-wise) must equal the vectorised
        # reference on identical inputs.
        rng = np.random.default_rng(8)
        n_states, seq_len = 12, 30
        match_emit = rng.normal(0, 1, size=(n_states, 20))
        transitions = rng.normal(-1, 0.3, size=(3, n_states))
        seq = rng.integers(0, 20, size=seq_len)
        score = viterbi_score(seq, match_emit, transitions)
        assert np.isfinite(score)
        # Monotone under longer sequences is not guaranteed, but the score
        # must be reproducible.
        assert score == viterbi_score(seq, match_emit, transitions)

    def test_kernel_reports_score(self):
        t = get_workload("hmmer").generate(seed=9, ref_limit=None, scale=0.05)
        assert np.isfinite(t.meta["best_score"])


class TestLibquantum:
    def test_norm_conserved(self):
        t = get_workload("libquantum").generate(seed=10, ref_limit=None, scale=0.4)
        assert t.meta["norm"] == pytest.approx(1.0, abs=1e-9)


class TestMcf:
    def test_pivots_progress(self):
        t = get_workload("mcf").generate(seed=11, ref_limit=None, scale=0.02)
        assert t.meta["pivots"] >= 1


class TestMilc:
    def test_random_su3_is_unitary(self):
        rng = np.random.default_rng(12)
        u = random_su3(rng)
        np.testing.assert_allclose(u @ u.conj().T, np.eye(3), atol=1e-10)
        assert np.linalg.det(u) == pytest.approx(1.0, abs=1e-10)

    def test_kernel_norm_finite(self):
        t = get_workload("milc").generate(seed=13, ref_limit=None, scale=0.5)
        assert np.isfinite(t.meta["norm"]) and t.meta["norm"] > 0


class TestNamd:
    def test_energy_finite(self):
        t = get_workload("namd").generate(seed=14, ref_limit=None, scale=0.05)
        assert np.isfinite(t.meta["energy"])


class TestSjeng:
    def test_search_deterministic(self):
        a = get_workload("sjeng").generate(seed=15, ref_limit=None, scale=0.1)
        b = get_workload("sjeng").generate(seed=15, ref_limit=None, scale=0.1)
        assert a.meta["scores_head"] == b.meta["scores_head"]

    def test_tt_scales_with_config(self):
        t = get_workload("sjeng").generate(seed=15, ref_limit=None, scale=0.1)
        assert t.meta["tt_entries"] >= 1024
