"""Vectorised cache-simulation primitives (direct-mapped and k-way LRU).

A direct-mapped cache has a one-line "history" per set, so its hit/miss
outcome stream is a pure function of, per set, the sequence of block
addresses mapped there: an access misses iff it is the first access to its
set or the previous access to the same set carried a different block.

That observation turns direct-mapped simulation into sort + adjacent-compare,
which NumPy executes orders of magnitude faster than a Python loop.  This is
the fast path behind every indexing-scheme experiment (paper Figures 4, 9,
10, 13) and behind the Patel index search, which needs thousands of
whole-trace miss counts.

k-way LRU generalises the same idea through the classic *stack-distance*
observation (Mattson et al.): under LRU, an access hits a ``k``-way set iff
fewer than ``k`` distinct other blocks of the same set were touched since
the previous access to the same block.  :func:`lru_miss_flags` computes the
exact per-access reuse distances offline — stable sort by set, a
previous-occurrence pass, then an offline dominance-counting pass (the
vectorised equivalent of a Fenwick-tree sweep) — in O(n log n) NumPy work
with no per-access Python objects.  At ``ways=1`` it degenerates to
:func:`direct_mapped_miss_flags`.

The sequential engine in :mod:`repro.core.simulator` computes the same
outcomes one access at a time; the test-suite proves the two agree on random
and adversarial traces for every registered indexing scheme and for
ways ∈ {1, 2, 4, 8}.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "direct_mapped_miss_flags",
    "direct_mapped_miss_count",
    "lru_miss_flags",
    "lru_miss_count",
    "lru_stack_distances",
    "lru_sweep_miss_flags",
    "per_set_counts",
]


def direct_mapped_miss_flags(blocks: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Boolean miss vector for a direct-mapped cache.

    Parameters
    ----------
    blocks:
        Block addresses (byte address with the offset dropped), any integer
        dtype; identity of the cached data.
    indices:
        Set index of each access under the indexing scheme being evaluated.

    Returns
    -------
    A boolean array: ``True`` where the access misses (cold or conflict).
    """
    blocks = np.asarray(blocks)
    indices = np.asarray(indices)
    if blocks.shape != indices.shape:
        raise ValueError("blocks and indices must have equal shape")
    n = blocks.size
    if n == 0:
        return np.zeros(0, dtype=bool)
    # Stable sort groups accesses by set while preserving program order
    # within each set.
    order = np.argsort(indices, kind="stable")
    sorted_idx = indices[order]
    sorted_blk = blocks[order]
    miss_sorted = np.empty(n, dtype=bool)
    miss_sorted[0] = True
    # A position misses if it starts a new set group (cold miss) or differs
    # from the block previously resident in the same set (conflict/capacity).
    new_group = sorted_idx[1:] != sorted_idx[:-1]
    changed = sorted_blk[1:] != sorted_blk[:-1]
    miss_sorted[1:] = new_group | changed
    miss = np.empty(n, dtype=bool)
    miss[order] = miss_sorted
    return miss


def direct_mapped_miss_count(blocks: np.ndarray, indices: np.ndarray) -> int:
    """Total miss count; the Patel search's cost function (paper Eq. 6)."""
    return int(direct_mapped_miss_flags(blocks, indices).sum())


# -- k-way LRU via offline stack distances ------------------------------------------


def _previous_occurrence(sorted_idx: np.ndarray, sorted_blk: np.ndarray) -> np.ndarray:
    """``prev[j]`` = latest ``t < j`` with the same (set, block), else ``-1``.

    Positions are in the set-grouped (stably sorted by set) coordinate
    system, so equal pairs are adjacent after one more stable sort by block.
    """
    n = sorted_idx.size
    prev = np.full(n, -1, dtype=np.int64)
    if n < 2:
        return prev
    # Primary key: set (already grouped); secondary: block; ties keep
    # program order because lexsort is stable.
    order = np.lexsort((sorted_blk, sorted_idx))
    same = (sorted_idx[order[1:]] == sorted_idx[order[:-1]]) & (
        sorted_blk[order[1:]] == sorted_blk[order[:-1]]
    )
    prev[order[1:][same]] = order[:-1][same]
    return prev


def _count_before_leq(
    values: np.ndarray, query_pos: np.ndarray, query_val: np.ndarray
) -> np.ndarray:
    """Offline dominance counting: ``#{t < query_pos[q] : values[t] <= query_val[q]}``.

    The vectorised stand-in for a Fenwick-tree sweep: a bottom-up
    merge-sort-shaped pass.  At level ``w`` every window of ``2w`` positions
    is split into a left half (potential ``t``) and a right half (potential
    queries); the contribution of each left half to its sibling's queries is
    one ``searchsorted`` over a single concatenated key array, where keys are
    offset by the window id so windows occupy disjoint key ranges.  Every
    (t, query) pair with ``t < query_pos`` is counted at exactly one level —
    the level where ``t`` and the query first fall into sibling halves.
    O(n log² n) work, all of it inside NumPy.
    """
    n = int(values.size)
    nq = int(query_pos.size)
    counts = np.zeros(nq, dtype=np.int64)
    if n == 0 or nq == 0:
        return counts
    # Keys are window_id * stride + (value + 1); values live in [-1, n).
    stride = np.int64(n + 2)
    positions = np.arange(n, dtype=np.int64)
    shifted = values.astype(np.int64) + 1
    q_shifted = query_val.astype(np.int64) + 1

    # Base case: all (t, query) pairs sharing one W0-aligned window, counted
    # by direct broadcast comparison — one vector op replaces the bottom
    # log2(W0) levels, where the per-level sort/searchsorted overhead would
    # dominate the tiny windows.
    base = 16
    n_padded = -(-n // base) * base
    padded = np.full(n_padded, np.int64(n + 1))  # sentinel > every threshold
    padded[:n] = shifted
    windows = padded.reshape(-1, base)
    gathered = windows[query_pos // base]
    local = (query_pos % base)[:, None]
    offsets = np.arange(base, dtype=np.int64)[None, :]
    counts += ((gathered <= q_shifted[:, None]) & (offsets < local)).sum(axis=1)

    w = base
    while w < n:
        width = 2 * w
        # t in the left half of its window, queries in the right half.
        left_mask = (positions % width) < w
        q_in_right = (query_pos % width) >= w
        if np.any(q_in_right):
            left_keys = np.sort(
                (positions[left_mask] // width) * stride + shifted[left_mask]
            )
            q_window = query_pos[q_in_right] // width
            q_keys = q_window * stride + q_shifted[q_in_right]
            hi = np.searchsorted(left_keys, q_keys, side="right")
            # Every window before q_window holds exactly w left-half
            # positions (only the final window can be partial, and no query
            # lies beyond it), so the start offset is pure arithmetic — no
            # second searchsorted needed.
            counts[q_in_right] += hi - q_window * w
        w = width
    return counts


def lru_stack_distances(blocks: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Exact per-access LRU stack distances under an arbitrary set mapping.

    Returns an ``int64`` array: ``distance[i]`` is the number of *distinct
    other* blocks of access ``i``'s set touched since the previous access to
    the same block, or ``-1`` for a cold (first-ever) access.  An access hits
    a ``k``-way LRU set iff ``0 <= distance[i] < k`` — the Mattson inclusion
    property, which yields miss vectors for *every* associativity from one
    pass.
    """
    blocks = np.asarray(blocks)
    indices = np.asarray(indices)
    if blocks.shape != indices.shape:
        raise ValueError("blocks and indices must have equal shape")
    n = blocks.size
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    indices64 = np.ascontiguousarray(indices, dtype=np.int64)
    max_idx = int(indices64.max())
    if max_idx < (1 << 62) // max(n, 1):
        # Stable grouping via one packed-key np.sort: key = set * n + position
        # is unique, sorts by (set, program order), and decodes both the
        # permutation and the sorted set indices — several times faster than
        # a stable argsort plus two gathers.
        key = np.sort(indices64 * np.int64(n) + np.arange(n, dtype=np.int64))
        sorted_idx = key // n
        order = key - sorted_idx * n
    else:  # pathological index range: fall back to the generic stable sort
        order = np.argsort(indices64, kind="stable")
        sorted_idx = indices64[order]
    sorted_blk = np.ascontiguousarray(blocks[order])
    # Exact stream compression: an access repeating the previous access to
    # its set touches the set's MRU block, so its stack distance is 0 — and
    # removing it changes no other access's distinct-in-window count (the
    # window that contains the repeat also contains the adjacent original:
    # if the original *were* the window's left boundary p(j), the repeat
    # would be an occurrence of block(j) inside (p(j), j), contradicting
    # p(j)'s definition).  The costly dominance pass then runs only on the
    # direct-mapped-miss substream, typically a small fraction of the trace.
    repeat = np.zeros(n, dtype=bool)
    repeat[1:] = (sorted_idx[1:] == sorted_idx[:-1]) & (
        sorted_blk[1:] == sorted_blk[:-1]
    )
    keep = ~repeat
    kept_idx = np.ascontiguousarray(sorted_idx[keep])
    kept_blk = np.ascontiguousarray(sorted_blk[keep])
    prev = _previous_occurrence(kept_idx, kept_blk)
    warm = np.flatnonzero(prev >= 0)
    dist_kept = np.full(kept_idx.size, -1, dtype=np.int64)
    if warm.size:
        p = prev[warm]
        # #{t < j : prev[t] <= p(j)} counts (a) every t <= p(j) — trivially,
        # since prev[t] < t — and (b) the first in-window occurrence of each
        # distinct block between p(j) and j, which all share j's set because
        # set groups are contiguous.  Subtracting the p(j)+1 trivial hits
        # leaves exactly the distinct-others count: the stack distance.
        dist_kept[warm] = _count_before_leq(prev, warm, p) - (p + 1)
    dist_sorted = np.zeros(n, dtype=np.int64)
    dist_sorted[keep] = dist_kept
    distances = np.empty(n, dtype=np.int64)
    distances[order] = dist_sorted
    return distances


def lru_miss_flags(blocks: np.ndarray, indices: np.ndarray, ways: int) -> np.ndarray:
    """Boolean miss vector for a ``ways``-way LRU cache under any set mapping.

    Exact and bit-identical to driving
    :class:`~repro.core.caches.set_associative.SetAssociativeCache` (LRU
    policy) one access at a time, for any associativity and any
    (not necessarily power-of-two) set-index range; ``ways=1`` degenerates to
    :func:`direct_mapped_miss_flags` and is routed there directly.
    """
    if ways < 1:
        raise ValueError("ways must be a positive integer")
    if ways == 1:
        return direct_mapped_miss_flags(blocks, indices)
    distances = lru_stack_distances(blocks, indices)
    return (distances < 0) | (distances >= ways)


def lru_sweep_miss_flags(
    blocks: np.ndarray, indices: np.ndarray, ways_list
) -> dict[int, np.ndarray]:
    """Miss vectors for *every* requested associativity from one distance pass.

    The Mattson inclusion property makes the per-access stack distance a
    sufficient statistic for LRU hit/miss at any associativity, so an
    associativity sweep costs one :func:`lru_stack_distances` pass plus one
    cheap threshold per member instead of one full pass per member.  Each
    returned vector is bit-identical to ``lru_miss_flags(blocks, indices,
    ways)`` for that ``ways`` (``ways=1`` included: ``distance != 0`` is
    exactly the direct-mapped outcome).

    Returns ``{ways: boolean miss vector}`` over the distinct requested
    associativities.
    """
    ways_list = [int(w) for w in ways_list]
    if any(w < 1 for w in ways_list):
        raise ValueError("ways must be positive integers")
    if not ways_list:
        return {}
    distances = lru_stack_distances(blocks, indices)
    return {
        w: (distances < 0) | (distances >= w) for w in dict.fromkeys(ways_list)
    }


def lru_miss_count(blocks: np.ndarray, indices: np.ndarray, ways: int) -> int:
    """Total k-way LRU miss count (associativity sweeps, bounds tables)."""
    return int(lru_miss_flags(blocks, indices, ways).sum())


def per_set_counts(
    indices: np.ndarray, miss: np.ndarray, num_sets: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-set (accesses, misses) histograms from an outcome vector.

    Accepts any integer dtype for ``indices`` — including unsigned and
    platform index dtypes (``uint32``/``uintp``), which ``np.bincount``
    rejects on some platforms — by casting to ``int64`` up front.
    """
    indices = np.asarray(indices)
    if indices.dtype != np.int64:
        if not np.issubdtype(indices.dtype, np.integer):
            raise TypeError(f"indices must be integers, got dtype {indices.dtype}")
        indices = indices.astype(np.int64)
    miss = np.asarray(miss, dtype=bool)
    if indices.shape != miss.shape:
        raise ValueError("indices and miss must have equal shape")
    accesses = np.bincount(indices, minlength=num_sets).astype(np.int64)
    misses = np.bincount(indices[miss], minlength=num_sets).astype(np.int64)
    return accesses, misses
