"""MiBench ``susan`` — SUSAN image smoothing and corner response.

Operates on a real 2-D image (synthesised gradients + shapes + noise):

* smoothing pass: a 3×3-masked weighted mean per pixel — row-major window
  reads with ±width strides;
* USAN corner pass: 37-pixel circular mask comparisons against the nucleus
  via the benchmark's 516-entry brightness LUT.

Row strides near the cache way-span produce the moderate non-uniformity
the paper reports (and the catastrophic Givargis interaction its Figure 4
shows as a ``-5e8 %`` bar).
"""

from __future__ import annotations

import numpy as np

from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["SusanWorkload"]

# Offsets of the 37-pixel circular USAN mask (dy, dx).
_USAN_MASK = [
    (dy, dx)
    for dy in range(-3, 4)
    for dx in range(-3, 4)
    if dy * dy + dx * dx <= 9 and not (dy == 0 and dx == 0)
]


@register_workload
class SusanWorkload(Workload):
    name = "susan"
    suite = "mibench"
    description = "SUSAN smoothing + corner response on a synthetic image"
    access_pattern = "2-D stencil row strides + hot brightness LUT"

    def kernel(self, m: Recorder, scale: float) -> None:
        h = self.scaled(96, scale, minimum=12)
        w = self.scaled(128, scale, minimum=12)
        img_arr = m.space.heap_array(1, h * w, "image")
        out_arr = m.space.heap_array(1, h * w, "smoothed")
        resp_arr = m.space.heap_array(4, h * w, "response")
        lut_arr = m.space.static_array(1, 516, "brightness_lut")

        # Synthetic image: gradient + bright rectangle + noise.
        img = (
            np.linspace(0, 128, w)[None, :]
            + np.linspace(0, 64, h)[:, None]
            + m.rng.normal(0, 8, size=(h, w))
        )
        img[h // 4 : h // 2, w // 4 : w // 2] += 90
        img = np.clip(img, 0, 255).astype(np.int64)
        lut = [int(100 * np.exp(-(((d - 258) / 27.0) ** 6))) for d in range(516)]

        # Pass 1: 3x3 smoothing.
        smoothed = np.zeros_like(img)
        for y in range(1, h - 1):
            for x in range(1, w - 1):
                acc = 0
                for dy in (-1, 0, 1):
                    for dx in (-1, 0, 1):
                        m.load_elem(img_arr, (y + dy) * w + (x + dx))
                        acc += int(img[y + dy, x + dx])
                smoothed[y, x] = acc // 9
                m.store_elem(out_arr, y * w + x)

        # Pass 2: USAN corner response on the smoothed image.
        corners = 0
        for y in range(3, h - 3):
            for x in range(3, w - 3):
                m.load_elem(out_arr, y * w + x)
                nucleus = int(smoothed[y, x])
                usan = 0
                for dy, dx in _USAN_MASK:
                    m.load_elem(out_arr, (y + dy) * w + (x + dx))
                    diff = int(smoothed[y + dy, x + dx]) - nucleus
                    m.load_elem(lut_arr, diff + 258)
                    usan += lut[diff + 258]
                response = max(0, 1850 - usan)  # g - n with g = usan_max/2
                if response > 0:
                    corners += 1
                m.store_elem(resp_arr, y * w + x)
        m.builder.meta["corner_pixels"] = corners
        m.builder.meta["shape"] = (h, w)
