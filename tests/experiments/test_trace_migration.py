"""npz→raw migration under a real figure run.

PR 8 changed the trace store's on-disk format, but the format is a
*storage detail*: cache keys and content fingerprints must not move.  The
scenario locked here is an upgrade in place — a user with a warm npz-era
trace cache (and a warm result cache keyed off those traces' fingerprints)
runs a figure after the upgrade:

* the warm step migrates every npz entry to the raw format **without
  regenerating** a single trace (``generated=False`` across the board);
* content fingerprints are byte-identical before and after migration, so
  the second figure run answers every cell from the result cache (zero
  simulations);
* ``TraceCache.gc()`` then drops the redundant npz blobs and the figure
  still runs warm off the raw entries alone.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.experiments import PaperConfig, run_experiment
from repro.experiments import fig04_indexing_missrate as fig04
from repro.experiments import fig06_progassoc_missrate as fig06
from repro.experiments.engine import trace_fingerprint
from repro.experiments.warm import specs_for, warm_traces
from repro.trace.arena import reset_arena
from repro.trace.io import RAW_SUFFIX, TraceCache, load_trace, save_npz


@pytest.fixture(autouse=True)
def _fresh_process_state():
    fig04._CACHE.clear()
    fig06._CACHE.clear()
    reset_arena()
    yield
    fig04._CACHE.clear()
    fig06._CACHE.clear()
    reset_arena()


@pytest.fixture
def config(tmp_path) -> PaperConfig:
    return replace(
        PaperConfig(),
        ref_limit=3000,
        trace_cache_dir=tmp_path / "traces",
        result_cache_dir=tmp_path / "results",
    )


def _seed_npz_era_cache(config: PaperConfig) -> dict[str, str]:
    """Materialise every trace fig4 needs as npz-only entries (the
    pre-PR-8 cache layout) and return ``{key: fingerprint}``."""
    cache = TraceCache(config.trace_cache_dir)
    fingerprints: dict[str, str] = {}
    specs = specs_for(["fig4"], config)
    assert specs, "fig4 must have a registered trace-spec provider"
    for spec in specs:
        trace = spec.generate()
        key = spec.cache_key()
        save_npz(trace, cache._npz_path(key))
        fingerprints[key] = trace_fingerprint(trace)
    assert not list(config.trace_cache_dir.glob(f"*{RAW_SUFFIX}"))
    return fingerprints


class TestNpzEraUpgrade:
    def test_warm_migrates_without_regenerating(self, config):
        fingerprints = _seed_npz_era_cache(config)
        cache = TraceCache(config.trace_cache_dir)

        entries = warm_traces(
            specs_for(["fig4"], config), config, jobs=1, fingerprints=True
        )
        assert entries
        for spec, entry in entries.items():
            key = spec.cache_key()
            assert not entry.generated, f"{spec} was regenerated during migration"
            assert entry.path.suffix == RAW_SUFFIX
            assert entry.fingerprint == fingerprints[key]
        # Both formats on disk now; npz stays until an explicit gc.
        stats = cache.stats()
        assert stats["raw_entries"] == len(fingerprints)
        assert stats["npz_entries"] == len(fingerprints)
        assert stats["npz_migrated"] == len(fingerprints)

    def test_second_figure_run_is_all_cache_hits(self, config):
        fingerprints = _seed_npz_era_cache(config)

        first = run_experiment("fig4", config)
        stats = first.engine_stats
        assert stats["cells_total"] > 0
        assert stats["cache_misses"] == stats["cells_total"]  # cold result cache

        fig04._CACHE.clear()
        reset_arena()
        second = run_experiment("fig4", config)
        warm = second.engine_stats
        assert warm["cache_hits"] == warm["cells_total"]
        assert warm["cache_misses"] == 0
        assert list(first.rows) == list(second.rows)

        # Migration preserved content bit-for-bit: the migrated raw entries
        # hash to the npz-era fingerprints the result cache was keyed on.
        cache = TraceCache(config.trace_cache_dir)
        for key, fingerprint in fingerprints.items():
            migrated = load_trace(cache.path_for(key))
            assert cache.path_for(key).suffix == RAW_SUFFIX
            assert trace_fingerprint(migrated) == fingerprint

    def test_gc_drops_npz_and_figure_stays_warm(self, config):
        _seed_npz_era_cache(config)
        first = run_experiment("fig4", config)

        cache = TraceCache(config.trace_cache_dir)
        removed, reclaimed = cache.gc()
        assert removed == cache.stats()["raw_entries"]
        assert reclaimed > 0
        assert not list(config.trace_cache_dir.glob("*.npz"))
        # gc never touches an npz without a raw sibling — nothing left to lose
        # here, but a second pass must be a no-op.
        assert cache.gc() == (0, 0)

        fig04._CACHE.clear()
        reset_arena()
        again = run_experiment("fig4", config)
        assert again.engine_stats["cache_misses"] == 0
        assert list(again.rows) == list(first.rows)

    def test_mixed_cache_round_trips_equal_arrays(self, config):
        """A migrated entry and its npz source decode to identical arrays."""
        fingerprints = _seed_npz_era_cache(config)
        cache = TraceCache(config.trace_cache_dir)
        key = next(iter(fingerprints))
        npz_trace = load_trace(cache._npz_path(key))
        warm_traces(specs_for(["fig4"], config), config, jobs=1)
        raw_trace = load_trace(cache._raw_path(key))
        np.testing.assert_array_equal(raw_trace.addresses, npz_trace.addresses)
        np.testing.assert_array_equal(raw_trace.is_write, npz_trace.is_write)
        np.testing.assert_array_equal(raw_trace.thread, npz_trace.thread)
