"""MiBench kernel tests: the algorithms must be *correct*, not just emit
addresses — each kernel's numeric result is checked against a library or
reference implementation, and each trace's structure against the workload's
documented access pattern."""

from __future__ import annotations

import hashlib
import math
import zlib

import numpy as np
import pytest

from repro.trace.recorder import Recorder
from repro.workloads import available_workloads, get_workload
from repro.workloads.mibench import MIBENCH_ORDER
from repro.workloads.mibench.basicmath import solve_cubic
from repro.workloads.mibench.crc import crc32_table
from repro.workloads.mibench.patricia import PatriciaTrie
from repro.workloads.mibench.rijndael import aes128_encrypt_block, expand_key


class TestRegistry:
    def test_all_eleven_registered(self):
        assert available_workloads("mibench") == sorted(MIBENCH_ORDER)

    def test_info_populated(self):
        for name in MIBENCH_ORDER:
            info = get_workload(name).info()
            assert info.description and info.access_pattern
            assert info.suite == "mibench"

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("doom")


class TestDeterminism:
    @pytest.mark.parametrize("name", MIBENCH_ORDER)
    def test_same_seed_same_trace(self, name):
        w = get_workload(name)
        a = w.generate(seed=3, ref_limit=4000, scale=0.05)
        b = w.generate(seed=3, ref_limit=4000, scale=0.05)
        np.testing.assert_array_equal(a.addresses, b.addresses)
        np.testing.assert_array_equal(a.is_write, b.is_write)

    @pytest.mark.parametrize("name", ["qsort", "patricia", "crc"])
    def test_different_seed_differs(self, name):
        # Data-dependent kernels; fft's butterflies are deliberately
        # data-independent, so it is excluded here.
        w = get_workload(name)
        a = w.generate(seed=1, ref_limit=4000, scale=0.05)
        b = w.generate(seed=2, ref_limit=4000, scale=0.05)
        assert not np.array_equal(a.addresses, b.addresses)

    @pytest.mark.parametrize("name", MIBENCH_ORDER)
    def test_ref_limit_respected(self, name):
        t = get_workload(name).generate(seed=1, ref_limit=2500, scale=0.2)
        assert len(t) <= 2500


class TestFFTCorrectness:
    def test_matches_numpy_fft(self):
        t = get_workload("fft").generate(seed=4, ref_limit=None, scale=0.4)
        n = t.meta["n"]
        assert "result_real" in t.meta
        # Re-run the wave synthesis with the same RNG stream to get the input.
        # Simpler: FFT of the synthesised wave must equal numpy's; the kernel
        # stored its first outputs — recompute by replaying the kernel's RNG.
        rng = np.random.default_rng(4)
        # Twiddle init consumed no RNG; wave synthesis per wave draws 4 freqs
        # then 4 amps.
        freqs = [int(rng.integers(1, n // 4)) for _ in range(4)]
        amps = [float(rng.uniform(0.5, 2.0)) for _ in range(4)]
        wave = np.array(
            [
                sum(a * math.sin(2 * math.pi * f * i / n) for f, a in zip(freqs, amps))
                for i in range(n)
            ]
        )
        # The kernel runs 1+ waves; meta holds the result of the LAST wave.
        # With scale=0.4 -> waves = max(1, round(2*0.4)) = 1, so compare wave 1.
        expected = np.fft.fft(wave)
        got = np.array(t.meta["result_real"])
        np.testing.assert_allclose(got, expected.real[: got.size], rtol=1e-6, atol=1e-6)

    def test_aliasing_arrays_alignment(self):
        """real[i] and imag[i] must share a conventional set (module doc)."""
        from repro.core.address import PAPER_L1_GEOMETRY as G

        m = Recorder("probe", seed=0)
        get_workload("fft").kernel(m, scale=0.3)
        # Find the two capacity-aligned arrays from the trace metadata: the
        # first two heap allocations are real and imag.
        # Instead check the documented invariant directly:
        sp = Recorder("probe2", seed=0).space
        real = sp.heap_array(4, 512, "real", align=32 * 1024)
        imag = sp.heap_array(4, 512, "imag", align=32 * 1024)
        assert G.index_of(real.addr(0)) == G.index_of(imag.addr(0))


class TestCRCCorrectness:
    def test_table_matches_zlib_construction(self):
        table = crc32_table()
        assert table[0] == 0
        assert table[1] == 0x77073096  # known IEEE table entry

    def test_crc_matches_zlib(self):
        t = get_workload("crc").generate(seed=5, ref_limit=None, scale=0.05)
        n = t.meta["file_bytes"]
        rng = np.random.default_rng(5)
        data = bytes(rng.integers(0, 256, size=n, dtype=int).tolist())
        assert t.meta["crc"] == zlib.crc32(data)


class TestShaCorrectness:
    def test_matches_hashlib(self):
        t = get_workload("sha").generate(seed=6, ref_limit=None, scale=0.02)
        n = t.meta["nbytes"]
        rng = np.random.default_rng(6)
        data = bytes(rng.integers(0, 256, size=n, dtype=int).tolist())
        assert t.meta["digest"] == hashlib.sha1(data).hexdigest()


class TestRijndaelCorrectness:
    def test_fips197_vector(self):
        """FIPS-197 Appendix B known-answer test."""
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        pt = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        ct = aes128_encrypt_block(pt, expand_key(key))
        assert ct.hex() == "3925841d02dc09fbdc118597196a0b32"

    def test_key_schedule_length(self):
        rks = expand_key(bytes(16))
        assert len(rks) == 11 and all(len(rk) == 16 for rk in rks)

    def test_kernel_ciphertext_consistent(self):
        t = get_workload("rijndael").generate(seed=7, ref_limit=None, scale=0.01)
        key = bytes.fromhex(t.meta["key"])
        assert len(t.meta["last_ciphertext"]) == 32  # 16 bytes hex


class TestBasicmathCorrectness:
    @pytest.mark.parametrize(
        "coeffs",
        [(1, -6, 11, -6), (1, 0, -4, 0), (1, 2, 3, 4), (1, -1, 1, -1)],
    )
    def test_cubic_roots_match_numpy(self, coeffs):
        roots = solve_cubic(*map(float, coeffs))
        np_roots = np.roots(coeffs)
        real_np = sorted(r.real for r in np_roots if abs(r.imag) < 1e-8)
        assert len(roots) == len(real_np)
        np.testing.assert_allclose(sorted(roots), real_np, rtol=1e-6, atol=1e-6)

    def test_kernel_emits_roots(self):
        t = get_workload("basicmath").generate(seed=1, ref_limit=None, scale=0.01)
        assert t.meta["roots_emitted"] > 0


class TestQsortCorrectness:
    def test_result_sorted(self):
        t = get_workload("qsort").generate(seed=8, ref_limit=None, scale=0.02)
        head = t.meta["sorted_head"]
        assert head == sorted(head)


class TestDijkstraCorrectness:
    def test_matches_networkx(self):
        import networkx as nx

        t = get_workload("dijkstra").generate(seed=9, ref_limit=None, scale=0.08)
        src = t.meta["last_src"]
        dist_head = t.meta["last_dist_head"]
        # Rebuild the same graph with the same RNG stream.
        rng = np.random.default_rng(9)
        n = max(1, round(100 * 0.08))
        adj = rng.integers(1, 100, size=(n, n))
        adj[rng.random((n, n)) < 0.3] = 0
        np.fill_diagonal(adj, 0)
        g = nx.DiGraph()
        for u in range(n):
            for v in range(n):
                if adj[u, v]:
                    g.add_edge(u, v, weight=int(adj[u, v]))
        lengths = nx.single_source_dijkstra_path_length(g, src)
        for v in range(min(8, n)):
            expected = lengths.get(v, 1 << 30)
            assert dist_head[v] == expected


class TestPatriciaCorrectness:
    def test_insert_then_search(self):
        m = Recorder("pat", seed=0)
        trie = PatriciaTrie(m)
        rng = np.random.default_rng(42)
        keys = set(int(k) for k in rng.integers(1, 1 << 32, size=300))
        for k in keys:
            trie.insert(k)
        for k in keys:
            assert trie.search(k), f"inserted key {k} not found"

    def test_absent_keys_not_found(self):
        m = Recorder("pat", seed=0)
        trie = PatriciaTrie(m)
        inserted = {10, 20, 30, 0xFFFF0000}
        for k in inserted:
            trie.insert(k)
        rng = np.random.default_rng(7)
        for k in (int(x) for x in rng.integers(1, 1 << 32, size=300)):
            if k not in inserted:
                assert not trie.search(k)

    def test_duplicate_insert_returns_false(self):
        m = Recorder("pat", seed=0)
        trie = PatriciaTrie(m)
        assert trie.insert(123)
        assert not trie.insert(123)


class TestSusanCorrectness:
    def test_detects_rectangle_corners(self):
        t = get_workload("susan").generate(seed=10, ref_limit=None, scale=0.3)
        assert t.meta["corner_pixels"] > 0
        h, w = t.meta["shape"]
        assert t.meta["corner_pixels"] < h * w / 4  # response is sparse-ish


class TestAdpcmCorrectness:
    def test_state_stays_in_range(self):
        t = get_workload("adpcm").generate(seed=11, ref_limit=None, scale=0.02)
        assert 0 <= t.meta["final_index"] <= 88
        assert -32768 <= t.meta["final_valprev"] <= 32767


class TestBitcountCorrectness:
    def test_total_bits_plausible(self):
        t = get_workload("bitcount").generate(seed=12, ref_limit=None, scale=0.02)
        n = max(32, round(24_000 * 0.02))
        total = t.meta["total_bits"]
        # Random 32-bit words average 16 set bits.
        assert 12 * n < total < 20 * n
