"""Bench for the HPC-suite extension experiment."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment


def test_ext_hpc(benchmark, config):
    result = run_once(benchmark, lambda: run_experiment("ext-hpc", config))
    print()
    print(result)
    # The structured-array pathologies respond strongly to hashing...
    assert result.rows["stream"]["XOR"] > 50.0
    assert result.rows["transpose"]["Prime_Modulo"] > 30.0
    assert result.rows["jacobi"]["Odd_Multiplier"] > 30.0
    # ...while the random-scatter controls stay flat.
    for col in ("XOR", "Odd_Multiplier", "Prime_Modulo"):
        assert abs(result.rows["histogram"][col]) < 10.0
