#!/usr/bin/env python
"""Per-application index selection — the paper's Figure-5 flow.

The paper proposes profiling each application off-line against the candidate
indexing schemes, then programming the chosen scheme into the cache when the
application is scheduled (conventional indexing remains the default).  This
example runs that flow end-to-end for the whole MiBench suite:

1. generate a *profiling* trace per application (a different input than the
   production run, as an off-line profile would be);
2. score all candidate schemes on it with :func:`profile_schemes`;
3. deploy the selected scheme on the *production* trace and report the
   realised gain — including the cases where the profile choice does not
   transfer (the profile-mismatch risk the Givargis rows of Figure 4 show).

Run:  python examples/application_tuning.py [refs]
"""

from __future__ import annotations

import sys

from repro import PAPER_L1_GEOMETRY, simulate_indexing
from repro.core.indexing import (
    GivargisIndexing,
    ModuloIndexing,
    OddMultiplierIndexing,
    PrimeModuloIndexing,
    XorIndexing,
)
from repro.core.selector import profile_schemes
from repro.workloads import get_workload
from repro.workloads.mibench import MIBENCH_ORDER


def candidate_schemes(geometry, train_addresses):
    return [
        XorIndexing(geometry),
        OddMultiplierIndexing(geometry, 9),
        OddMultiplierIndexing(geometry, 31),
        PrimeModuloIndexing(geometry),
        GivargisIndexing(geometry).fit(train_addresses),
    ]


def main() -> int:
    refs = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000
    geometry = PAPER_L1_GEOMETRY
    print(f"Profiling {len(MIBENCH_ORDER)} applications at {refs} refs each\n")
    header = f"{'application':12s} {'chosen scheme':18s} {'profiled %':>10s} {'realised %':>10s}"
    print(header)
    print("-" * len(header))

    total_realised = []
    for name in MIBENCH_ORDER:
        workload = get_workload(name)
        profile = workload.generate(seed=1234, ref_limit=refs)  # off-line input
        production = workload.generate(seed=2011, ref_limit=refs)  # real input

        scores = profile_schemes(
            profile, geometry, candidate_schemes(geometry, profile.addresses)
        )
        best = scores[0]
        if best.reduction_vs_baseline_pct <= 0.0:
            chosen_name, scheme = "modulo (default)", ModuloIndexing(geometry)
            profiled = 0.0
        else:
            chosen_name = best.scheme_name
            scheme = next(
                s
                for s in candidate_schemes(geometry, profile.addresses)
                if s.name == best.scheme_name
            )
            profiled = best.reduction_vs_baseline_pct

        base = simulate_indexing(ModuloIndexing(geometry), production, geometry)
        deployed = simulate_indexing(scheme, production, geometry)
        realised = 100.0 * (base.misses - deployed.misses) / max(base.misses, 1)
        total_realised.append(realised)
        flag = "  <-- profile did not transfer" if realised < profiled - 10 else ""
        print(f"{name:12s} {chosen_name:18s} {profiled:10.1f} {realised:10.1f}{flag}")

    print("-" * len(header))
    print(f"{'average':12s} {'':18s} {'':>10s} {sum(total_realised) / len(total_realised):10.1f}")
    print(
        "\nThe default-to-conventional rule means no application is made worse"
        "\nby more than profile noise — the core argument for the paper's"
        "\nper-application scheme table (its Figure 5)."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
