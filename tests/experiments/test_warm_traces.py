"""Locks the parallel trace prefetch (:mod:`repro.experiments.warm`).

Four contracts matter:

1. **Key parity** — a :class:`TraceSpec`'s cache key must be exactly the key
   the runners build (``workload_trace``/``profile_trace`` for single-thread
   traces, fig13's per-thread keys for SMT mixes).  Drift here would make the
   prefetch warm the *wrong* entries and the runners regenerate everything.
2. **Warming is observationally invisible** — a warmed cache must yield
   traces bit-identical to cold generation, whether warmed with ``jobs=1``
   or concurrently, and concurrent warmers racing on the *same* cache must
   leave content-identical entries (content, not raw bytes: npz zip members
   embed timestamps).
3. **Failure is attributed** — a failing generator surfaces as
   :class:`TraceWarmError` naming the failing spec, and the cache gains no
   entry for it.
4. **Coverage** — every experiment that loads workload traces has a
   registered provider, and its plan includes the profile traces the
   trainable schemes fit on.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.experiments import available_experiments
from repro.experiments.config import (
    MULTITHREAD_MIXES_FIG13,
    PaperConfig,
)
from repro.experiments.engine.cache import trace_fingerprint
from repro.experiments.runner import profile_trace_path, workload_trace_path
from repro.experiments.warm import (
    TraceSpec,
    TraceWarmError,
    mix_specs,
    profile_spec,
    specs_for,
    trace_spec_providers,
    warm_traces,
    workload_spec,
)
from repro.trace.io import TraceCache


def _cfg(tmp_path, **kw) -> PaperConfig:
    base = dict(ref_limit=1500, workload_scale=0.05, trace_cache_dir=tmp_path / "tc")
    base.update(kw)
    return PaperConfig(**base)


# -- key parity ------------------------------------------------------------------------


def test_workload_spec_key_matches_runner(tmp_path):
    cfg = _cfg(tmp_path)
    spec = workload_spec("fft", cfg)
    path = TraceCache(cfg.trace_cache_dir).path_for(spec.cache_key())
    assert path == workload_trace_path("fft", cfg)


def test_profile_spec_key_matches_runner(tmp_path):
    cfg = _cfg(tmp_path, profile_seed_offset=77)
    spec = profile_spec("fft", cfg)
    assert spec.seed == cfg.seed + 77
    path = TraceCache(cfg.trace_cache_dir).path_for(spec.cache_key())
    assert path == profile_trace_path("fft", cfg)


def test_profile_spec_collapses_to_workload_at_zero_offset(tmp_path):
    cfg = _cfg(tmp_path, profile_seed_offset=0)
    assert profile_spec("fft", cfg) == workload_spec("fft", cfg)


def test_mix_specs_match_fig13_key_discipline(tmp_path):
    # fig13's mixed_trace consumes mix_specs directly, so equality of the
    # constructed fields *is* the key contract: per-thread ref budget,
    # seed offset by thread index, thread tag present.
    cfg = _cfg(tmp_path)
    mix = MULTITHREAD_MIXES_FIG13[0]
    specs = mix_specs(mix, cfg)
    assert [s.name for s in specs] == list(mix)
    for i, s in enumerate(specs):
        assert s.thread == i
        assert s.seed == cfg.seed + i
        assert s.ref_limit == max(1, cfg.ref_limit // len(mix))
        assert f"thread={i}" in s.cache_key()


def test_single_thread_key_has_no_thread_component(tmp_path):
    assert "thread" not in workload_spec("fft", _cfg(tmp_path)).cache_key()


# -- warming ---------------------------------------------------------------------------


def _some_specs(cfg: PaperConfig) -> list[TraceSpec]:
    return [
        workload_spec("fft", cfg),
        workload_spec("crc", cfg),
        profile_spec("fft", cfg),
        mix_specs(("fft", "crc"), cfg)[1],
    ]


def test_warm_then_load_is_bit_identical_to_cold(tmp_path):
    cfg = _cfg(tmp_path)
    specs = _some_specs(cfg)
    entries = warm_traces(specs, cfg, jobs=1, fingerprints=True)
    assert all(e.generated for e in entries.values())
    cache = TraceCache(cfg.trace_cache_dir)
    for spec, entry in entries.items():
        assert entry.path.exists()
        cached = cache.get_or_create(spec.cache_key(), lambda: 1 / 0)  # must hit
        cold = spec.generate()
        np.testing.assert_array_equal(cached.addresses, cold.addresses)
        np.testing.assert_array_equal(cached.is_write, cold.is_write)
        assert entry.fingerprint == trace_fingerprint(cold)


def test_second_warm_is_all_cache_hits(tmp_path):
    cfg = _cfg(tmp_path)
    specs = _some_specs(cfg)
    warm_traces(specs, cfg, jobs=1)
    again = warm_traces(specs, cfg, jobs=1)
    assert not any(e.generated for e in again.values())


def test_parallel_equals_sequential(tmp_path):
    cfg_a = _cfg(tmp_path, trace_cache_dir=tmp_path / "a")
    cfg_b = _cfg(tmp_path, trace_cache_dir=tmp_path / "b")
    specs = _some_specs(cfg_a)
    seq = warm_traces(specs, cfg_a, jobs=1, fingerprints=True)
    par = warm_traces(specs, cfg_b, jobs=2, fingerprints=True)
    assert {s: e.fingerprint for s, e in seq.items()} == {
        s: e.fingerprint for s, e in par.items()
    }


def test_input_order_and_dedup(tmp_path):
    cfg = _cfg(tmp_path)
    spec = workload_spec("fft", cfg)
    entries = warm_traces([spec, spec, workload_spec("crc", cfg), spec], cfg, jobs=1)
    assert list(entries) == [spec, workload_spec("crc", cfg)]


def _warm_in_subprocess(cache_dir):
    cfg = PaperConfig(ref_limit=1500, workload_scale=0.05, trace_cache_dir=cache_dir)
    specs = [workload_spec("fft", cfg), workload_spec("crc", cfg)]
    out = warm_traces(specs, cfg, jobs=1, fingerprints=True)
    return [(s.name, e.fingerprint) for s, e in out.items()]


def test_concurrent_warmers_leave_identical_content(tmp_path):
    # Two whole warmers racing on one cache directory: atomic npz writes
    # (tmp + os.replace) mean both observe/produce the same content.  Raw
    # bytes may differ (zip timestamps), so the assertion is on content.
    cache_dir = str(tmp_path / "shared")
    with ProcessPoolExecutor(max_workers=2) as pool:
        a, b = pool.map(_warm_in_subprocess, [cache_dir, cache_dir])
    assert a == b
    cfg = PaperConfig(ref_limit=1500, workload_scale=0.05, trace_cache_dir=cache_dir)
    cache = TraceCache(cfg.trace_cache_dir)
    for name, fp in a:
        spec = workload_spec(name, cfg)
        trace = cache.get_or_create(spec.cache_key(), lambda: 1 / 0)
        assert trace_fingerprint(trace) == fp


def test_warm_error_names_spec_and_leaves_no_entry(tmp_path):
    cfg = _cfg(tmp_path)
    bad = TraceSpec(name="no-such-workload", seed=1, ref_limit=10, scale=1.0)
    with pytest.raises(TraceWarmError) as err:
        warm_traces([bad], cfg, jobs=1)
    assert err.value.spec == bad
    assert not TraceCache(cfg.trace_cache_dir).path_for(bad.cache_key()).exists()


def test_warm_requires_config_or_cache_dir():
    with pytest.raises(ValueError):
        warm_traces([])


# -- provider coverage -----------------------------------------------------------------

# Experiments whose inputs are synthetic (no workload traces at all).
_SYNTHETIC = {"ext-icache"}


def test_every_trace_loading_experiment_has_a_provider():
    providers = trace_spec_providers()
    missing = [
        eid
        for eid in available_experiments()
        if eid not in providers and eid not in _SYNTHETIC
    ]
    assert not missing, f"experiments without a trace-spec provider: {missing}"


def test_specs_for_covers_profile_traces(tmp_path):
    # fig4 has trainable (Givargis) columns: the plan must include the
    # profiling-run seeds, not just the evaluation traces.
    cfg = _cfg(tmp_path, profile_seed_offset=77)
    specs = specs_for(["fig4"], cfg)
    seeds = {s.seed for s in specs}
    assert cfg.seed in seeds and cfg.seed + 77 in seeds


def test_specs_for_is_deduplicated_and_sorted(tmp_path):
    cfg = _cfg(tmp_path)
    specs = specs_for(available_experiments(), cfg)
    assert len(specs) == len(set(specs))
    assert specs == sorted(specs, key=TraceSpec.sort_key)
    # SMT mixes contribute per-thread variants.
    assert any(s.thread is not None for s in specs)


def test_specs_for_skips_unproviderd_ids(tmp_path):
    assert specs_for(["no-such-experiment"], _cfg(tmp_path)) == []
