"""Figure 14 bench: partitioned adaptive cache AMAT for SMT mixes."""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_experiment


def test_fig14_partitioned_amat(benchmark, config):
    result = run_once(benchmark, lambda: run_experiment("fig14", config))
    print()
    print(result)
    improvements = result.column("improvement")
    # Shape: positive on average, peak in the paper's ~60% territory.
    assert result.value("Average", "improvement") > 5.0
    assert max(improvements.values()) > 40.0
