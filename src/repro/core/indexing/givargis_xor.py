"""Givargis-XOR hybrid indexing (paper Section II.E — the paper's own proposal).

Select ``m`` high-quality, low-correlation bits *from the tag region* with
Givargis' procedure, then XOR the gathered bits with the conventional index
bits: the profile steers which tag entropy gets folded into the index, while
the XOR keeps the conventional index's spatial-locality spreading.
"""

from __future__ import annotations

import numpy as np

from ..address import CacheGeometry, gather_bits, gather_bits_vec
from .base import TrainableIndexingScheme, register_scheme
from .bit_select import bit_matrix
from .givargis import bit_correlation_matrix, bit_quality, select_bits_greedy

__all__ = ["GivargisXorIndexing"]


@register_scheme
class GivargisXorIndexing(TrainableIndexingScheme):
    """``index = conventional_index XOR gather(selected tag bits)``."""

    name = "givargis_xor"

    def __init__(self, geometry: CacheGeometry):
        super().__init__(geometry)
        # Candidates are strictly tag bits: above offset+index.
        low = geometry.offset_bits + geometry.index_bits
        self._candidates = tuple(range(low, geometry.address_bits))
        if len(self._candidates) < geometry.index_bits:
            raise ValueError("tag region narrower than the index; geometry unsupported")
        self.positions: tuple[int, ...] = ()
        self._index_shift = geometry.offset_bits
        self._mask = geometry.num_sets - 1

    def fit(self, addresses: np.ndarray) -> "GivargisXorIndexing":
        addresses = np.asarray(addresses, dtype=np.uint64).ravel()
        if addresses.size == 0:
            raise ValueError("empty profiling trace")
        unique = np.unique(addresses)
        bits = bit_matrix(unique, self._candidates)
        quality = bit_quality(bits)
        correlation = bit_correlation_matrix(bits)
        cols = select_bits_greedy(quality, correlation, self.geometry.index_bits)
        self.positions = tuple(self._candidates[c] for c in cols)
        self._fitted = True
        return self

    def index_of(self, address: int) -> int:
        self._require_fitted()
        index = (address >> self._index_shift) & self._mask
        return index ^ gather_bits(address, self.positions)

    def indices_of(self, addresses: np.ndarray) -> np.ndarray:
        self._require_fitted()
        addresses = np.asarray(addresses, dtype=np.uint64)
        index = (addresses >> np.uint64(self._index_shift)) & np.uint64(self._mask)
        tag_hash = gather_bits_vec(addresses, self.positions)
        return (index ^ tag_hash).astype(np.int64)
