"""Trace-driven simulation engine.

Two engines, equivalence-tested against each other:

* :func:`simulate` — the sequential reference engine.  Drives any
  :class:`~repro.core.caches.base.CacheModel` one access at a time,
  accumulating exact lookup cycles.  This is the only engine the stateful
  programmable-associativity models (column-associative, adaptive, B-cache,
  victim, partner) can use.
* :func:`simulate_set_associative` — the vectorised fast path for any
  *stateless-lookup* configuration: a scheme × geometry × ways grid point
  with LRU replacement.  Direct-mapped runs (paper Figures 4, 9, 10, 13)
  use the sort-based adjacent-compare primitive; k-way LRU runs (the
  set-associative baselines behind Figures 6/7/8/11/12/14 and the bounds
  tables) use the offline stack-distance kernel in
  :mod:`repro.core.fastsim` — one to two orders of magnitude faster than
  the sequential engine, which matters when the Givargis/Patel trainers and
  the figure sweeps run hundreds of whole-trace simulations.
  :func:`simulate_indexing` is the historical direct-mapped entry point,
  kept as the ``ways=1`` specialisation.

Both return a :class:`SimulationResult` carrying global counters, per-slot
arrays and enough timing classes to evaluate the paper's AMAT formulas.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..trace.event import Trace
from .address import CacheGeometry
from .amat import TimingModel, amat_from_cycles
from .caches.base import CacheModel, CacheStats
from .fastsim import (
    direct_mapped_miss_flags,
    lru_miss_flags,
    lru_sweep_miss_flags,
    per_set_counts,
)
from .indexing.base import IndexingScheme

__all__ = [
    "SimulationResult",
    "simulate",
    "simulate_indexing",
    "simulate_lru_sweep",
    "simulate_set_associative",
    "simulate_fully_associative",
    "warmup_split",
]


@dataclass
class SimulationResult:
    """Outcome of one (cache, trace) simulation."""

    model: str
    trace_name: str
    accesses: int
    hits: int
    misses: int
    lookup_cycles: int
    slot_accesses: np.ndarray
    slot_hits: np.ndarray
    slot_misses: np.ndarray
    extra: dict[str, int] = field(default_factory=dict)

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.miss_rate if self.accesses else 0.0

    def amat(self, timing: TimingModel | None = None) -> float:
        """Exact AMAT from accumulated lookup cycles."""
        return amat_from_cycles(self.lookup_cycles, self.misses, self.accesses, timing)

    def fraction(self, key: str, denominator: str) -> float:
        base: float
        if denominator in ("accesses", "hits", "misses"):
            base = getattr(self, denominator)
        else:
            base = self.extra.get(denominator, 0)
        return self.extra.get(key, 0) / base if base else 0.0

    def summary(self) -> dict[str, float | int | str]:
        return {
            "model": self.model,
            "trace": self.trace_name,
            "accesses": self.accesses,
            "misses": self.misses,
            "miss_rate": self.miss_rate,
            "lookup_cycles": self.lookup_cycles,
            **self.extra,
        }


def _result_from_stats(
    model: str, trace_name: str, stats: CacheStats, lookup_cycles: int
) -> SimulationResult:
    return SimulationResult(
        model=model,
        trace_name=trace_name,
        accesses=stats.accesses,
        hits=stats.hits,
        misses=stats.misses,
        lookup_cycles=lookup_cycles,
        slot_accesses=stats.slot_accesses.copy(),
        slot_hits=stats.slot_hits.copy(),
        slot_misses=stats.slot_misses.copy(),
        extra=dict(stats.extra),
    )


def simulate(
    cache: CacheModel,
    trace: Trace,
    warmup: int = 0,
    check_invariants_every: int = 0,
) -> SimulationResult:
    """Sequential reference engine.

    ``warmup`` accesses are simulated (contents updated) but excluded from
    statistics, following standard cache-simulation practice; 0 (the
    default) counts cold misses like the paper's whole-program runs do.
    ``check_invariants_every`` > 0 calls the model's ``check_invariants``
    periodically (used by the stress tests).
    """
    n = trace.addresses.size
    if warmup >= n and n > 0:
        raise ValueError("warmup consumes the entire trace")
    # Hoist the NumPy->Python boxing out of the hot loop: one bulk tolist()
    # yields plain ints/bools, so the per-access path never pays the
    # np.uint64.__int__ / np.bool_.__bool__ conversion cost.
    addresses = trace.addresses.tolist()
    is_write = trace.is_write.tolist()
    access = cache.access
    for i in range(warmup):
        access(addresses[i], is_write[i])
    cache.reset_stats()
    cycles = 0
    checker = getattr(cache, "check_invariants", None) if check_invariants_every else None
    for i in range(warmup, n):
        result = access(addresses[i], is_write[i])
        cycles += result.cycles
        if checker is not None and (i + 1) % check_invariants_every == 0:
            checker()
    return _result_from_stats(cache.name, trace.name, cache.stats, cycles)


def _vectorised_result(
    model: str,
    trace_name: str,
    indices: np.ndarray,
    miss: np.ndarray,
    num_sets: int,
    extra: dict[str, int],
) -> SimulationResult:
    """Package a miss vector into a :class:`SimulationResult` (1 cycle/access)."""
    accesses, misses = per_set_counts(indices, miss, num_sets)
    hits = accesses - misses
    total = int(indices.size)
    total_misses = int(miss.sum())
    return SimulationResult(
        model=model,
        trace_name=trace_name,
        accesses=total,
        hits=total - total_misses,
        misses=total_misses,
        lookup_cycles=total,  # one cycle per access
        slot_accesses=accesses,
        slot_hits=hits,
        slot_misses=misses,
        extra=extra,
    )


def simulate_set_associative(
    scheme: IndexingScheme,
    trace: Trace,
    geometry: CacheGeometry | None = None,
    ways: int | None = None,
    policy: str = "lru",
    warmup: int = 0,
    policy_seed: int = 0,
) -> SimulationResult:
    """Vectorised k-way LRU simulation under an indexing scheme.

    Equivalent to ``simulate(SetAssociativeCache(geometry, scheme,
    policy="lru"), trace)`` — bit-identical hits, misses, per-set histograms
    and lookup cycles, asserted by the differential test-suite — but
    computed offline with the stack-distance kernel instead of a per-access
    Python loop.  ``ways`` defaults to the geometry's associativity;
    ``ways=1`` uses the cheaper direct-mapped adjacent-compare path.

    Only LRU admits the re-thresholdable stack-distance solution (the
    Mattson inclusion property); any other registered ``policy`` routes to
    the exact set-decomposed replay kernels of
    :func:`~repro.core.fastpolicy.simulate_policy_set_associative`
    (``policy_seed`` seeds the ``random`` policy's generator there).  The
    non-LRU path models the geometry's own associativity, so combining it
    with a ``ways`` override — the one configuration with no cache-model
    equivalent — still raises, as does an unknown policy name.
    """
    if policy != "lru":
        from .fastpolicy import simulate_policy_set_associative

        return simulate_policy_set_associative(
            scheme,
            trace,
            geometry=geometry,
            ways=ways,
            policy=policy,
            seed=policy_seed,
            warmup=warmup,
        )
    geometry = geometry or scheme.geometry
    ways = geometry.ways if ways is None else int(ways)
    if ways < 1:
        raise ValueError("ways must be a positive integer")
    blocks = trace.blocks(geometry.offset_bits).astype(np.int64)
    indices = scheme.indices_of(trace.addresses)
    if indices.size and (indices.min() < 0 or indices.max() >= geometry.num_sets):
        raise ValueError("indexing scheme produced an out-of-range set index")
    # Seed warmup state by computing miss flags over the full trace and
    # dropping the prefix: LRU outcomes depend only on the access history,
    # so the suffix flags are exactly those of a warmed-up cache.
    if warmup:
        if warmup >= blocks.size:
            raise ValueError("warmup consumes the entire trace")
        miss = lru_miss_flags(blocks, indices, ways)[warmup:]
        indices = indices[warmup:]
    else:
        miss = lru_miss_flags(blocks, indices, ways)
    total = int(indices.size)
    total_misses = int(miss.sum())
    hits = total - total_misses
    return _vectorised_result(
        model=f"set_associative[{scheme.name},{ways}way]",
        trace_name=trace.name,
        indices=indices,
        miss=miss,
        num_sets=geometry.num_sets,
        # SetAssociativeCache classes every hit as "direct"; mirror that so
        # the result dicts compare equal (the key is absent when hits == 0).
        extra={"direct_hits": hits} if hits else {},
    )


def simulate_lru_sweep(
    scheme: IndexingScheme,
    trace: Trace,
    geometry: CacheGeometry,
    specs,
) -> list[SimulationResult]:
    """One associativity *sweep* under one indexing scheme, from one pass.

    ``specs`` is a sequence of ``(ways, style)`` members sharing the
    scheme's set mapping; ``style`` names the per-cell entry point whose
    packaging each member must reproduce bit-for-bit:

    * ``"direct"`` (``ways`` must be 1) — :func:`simulate_indexing`'s
      conventions: model ``direct_mapped[<scheme>]``, ``direct_hits``
      always present.
    * ``"setassoc"`` — :func:`simulate_set_associative`'s conventions:
      model ``set_associative[<scheme>,<k>way]``, ``direct_hits`` present
      only when nonzero.

    All members share ``geometry``'s ``num_sets``/``offset_bits`` (the
    exactness condition the engine's family detector enforces); only the
    thresholded associativity differs, so the whole sweep costs one
    :func:`~repro.core.fastsim.lru_stack_distances` pass.  Returns one
    :class:`SimulationResult` per spec, in spec order, each bit-identical
    (per-set counts included) to its per-cell equivalent — the contract
    locked down by ``tests/core/test_sweep_batching_differential.py``.
    """
    specs = [(int(ways), style) for ways, style in specs]
    for ways, style in specs:
        if style not in ("direct", "setassoc"):
            raise ValueError(f"unknown sweep member style {style!r}")
        if style == "direct" and ways != 1:
            raise ValueError("style 'direct' models a direct-mapped cache (ways=1)")
        if ways < 1:
            raise ValueError("ways must be a positive integer")
    blocks = trace.blocks(geometry.offset_bits).astype(np.int64)
    indices = scheme.indices_of(trace.addresses)
    if indices.size and (indices.min() < 0 or indices.max() >= geometry.num_sets):
        raise ValueError("indexing scheme produced an out-of-range set index")
    flags = lru_sweep_miss_flags(blocks, indices, [ways for ways, _ in specs])
    total = int(indices.size)
    results = []
    for ways, style in specs:
        miss = flags[ways]
        hits = total - int(miss.sum())
        if style == "direct":
            model = f"direct_mapped[{scheme.name}]"
            extra = {"direct_hits": hits}
        else:
            model = f"set_associative[{scheme.name},{ways}way]"
            extra = {"direct_hits": hits} if hits else {}
        results.append(
            _vectorised_result(
                model=model,
                trace_name=trace.name,
                indices=indices,
                miss=miss,
                num_sets=geometry.num_sets,
                extra=extra,
            )
        )
    return results


def simulate_fully_associative(
    trace: Trace, geometry: CacheGeometry | None = None, lines: int | None = None
) -> SimulationResult:
    """Vectorised fully-associative LRU bound (one set spanning all lines).

    Equivalent to ``simulate(FullyAssociativeCache(geometry), trace)`` —
    the single-set degenerate case of the stack-distance kernel, used by the
    3C classifier and the bounds tables where the OrderedDict-backed model
    used to dominate wall time.
    """
    if geometry is None and lines is None:
        raise ValueError("provide a geometry or an explicit line count")
    capacity = int(lines) if lines is not None else geometry.num_lines
    offset_bits = geometry.offset_bits if geometry is not None else 0
    blocks = trace.blocks(offset_bits).astype(np.int64)
    indices = np.zeros(blocks.size, dtype=np.int64)
    miss = lru_miss_flags(blocks, indices, capacity)
    hits = int(blocks.size) - int(miss.sum())
    return _vectorised_result(
        model="fully_associative",
        trace_name=trace.name,
        indices=indices,
        miss=miss,
        num_sets=1,
        extra={"direct_hits": hits} if hits else {},
    )


def simulate_indexing(
    scheme: IndexingScheme,
    trace: Trace,
    geometry: CacheGeometry | None = None,
    warmup: int = 0,
) -> SimulationResult:
    """Vectorised direct-mapped simulation under an indexing scheme.

    Equivalent to ``simulate(DirectMappedCache(geometry, scheme), trace)``
    (asserted by the test-suite) but vectorised end to end.  Every access
    costs 1 lookup cycle, as in the paper's baseline.  This is the ``ways=1``
    specialisation of :func:`simulate_set_associative`, kept as its own
    entry point because the direct-mapped figures label results differently.
    """
    geometry = geometry or scheme.geometry
    if geometry.ways != 1:
        raise ValueError("the vectorised path models a direct-mapped cache")
    blocks = trace.blocks(geometry.offset_bits).astype(np.int64)
    indices = scheme.indices_of(trace.addresses)
    if indices.size and (indices.min() < 0 or indices.max() >= geometry.num_sets):
        raise ValueError("indexing scheme produced an out-of-range set index")
    if warmup:
        if warmup >= blocks.size:
            raise ValueError("warmup consumes the entire trace")
        # Seed the "previous block per set" state by simply dropping the
        # warmup prefix after computing miss flags over the full trace:
        # direct-mapped state is fully determined by the last access per set.
        miss = direct_mapped_miss_flags(blocks, indices)[warmup:]
        indices = indices[warmup:]
    else:
        miss = direct_mapped_miss_flags(blocks, indices)
    total = int(indices.size)
    total_misses = int(miss.sum())
    return _vectorised_result(
        model=f"direct_mapped[{scheme.name}]",
        trace_name=trace.name,
        indices=indices,
        miss=miss,
        num_sets=geometry.num_sets,
        extra={"direct_hits": total - total_misses},
    )


def warmup_split(trace: Trace, fraction: float = 0.1) -> tuple[Trace, Trace]:
    """Split a trace into (training/warmup prefix, evaluation suffix).

    Used by the trainable indexing schemes: the paper profiles applications
    off-line, so Givargis/Patel are fitted on the prefix and evaluated on
    the remainder (or, matching the paper's whole-trace profiling, fitted
    and evaluated on the full trace — both modes appear in the experiments).
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must be in (0, 1)")
    cut = max(1, int(len(trace) * fraction))
    return trace[:cut], trace[cut:]
