"""CLI smoke tests."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(["run", "fig4", "--refs", "1000"])
        assert args.experiment == "fig4" and args.refs == 1000

    def test_run_cell_timeout(self):
        args = build_parser().parse_args(["run", "fig4", "--cell-timeout", "2.5"])
        assert args.cell_timeout == 2.5

    def test_serve_args(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--jobs", "2", "--max-pending", "8",
             "--threads", "--cell-timeout", "1.5"]
        )
        assert args.port == 0 and args.jobs == 2 and args.max_pending == 8
        assert args.threads is True and args.cell_timeout == 1.5

    def test_submit_args(self):
        args = build_parser().parse_args(
            ["submit", "sweep", "--workload", "fft",
             "--schemes", "baseline,XOR", "--deadline", "3"]
        )
        assert args.target == "sweep" and args.workload == "fft"
        assert args.schemes == "baseline,XOR" and args.deadline == 3.0


class TestVersion:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc_info:
            main(["--version"])
        assert exc_info.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fft" in out and "xor" in out and "fig4" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--workload", "crc", "--refs", "3000",
                     "--schemes", "modulo,xor"]) == 0
        out = capsys.readouterr().out
        assert "miss_rate" in out

    def test_sweep_kway(self, capsys):
        assert main(["sweep", "--workload", "crc", "--refs", "3000",
                     "--schemes", "modulo", "--ways", "4"]) == 0
        out = capsys.readouterr().out
        assert "4-way" in out and "miss_rate" in out

    def test_sweep_single_non_lru_policy(self, capsys):
        # Non-LRU policies are first-class now (routed through the
        # fastpolicy kernels); only the Mattson ways-ladder stays LRU-only.
        assert main(["sweep", "--workload", "crc", "--refs", "3000",
                     "--schemes", "modulo", "--ways", "2",
                     "--policy", "fifo"]) == 0
        out = capsys.readouterr().out
        assert "2-way" in out and "miss_rate" in out

    def test_sweep_policy_list(self, capsys):
        assert main(["sweep", "--workload", "crc", "--refs", "3000",
                     "--schemes", "modulo", "--ways", "2",
                     "--policy", "lru,fifo,random"]) == 0
        out = capsys.readouterr().out
        for policy in ("lru", "fifo", "random"):
            assert policy in out

    def test_sweep_rejects_unknown_policy(self, capsys):
        assert main(["sweep", "--workload", "crc", "--refs", "3000",
                     "--schemes", "modulo",
                     "--policy", "lru,belady"]) == 2
        err = capsys.readouterr().err
        assert "belady" in err

    def test_sweep_ways_ladder_stays_lru_only(self, capsys):
        assert main(["sweep", "--workload", "crc", "--refs", "3000",
                     "--schemes", "modulo", "--ways", "1,2,4",
                     "--policy", "fifo"]) == 2
        err = capsys.readouterr().err
        assert "LRU" in err

    def test_trace_npz(self, tmp_path, capsys):
        out_file = tmp_path / "t.npz"
        assert main(["trace", "bitcount", "--refs", "2000", "--out", str(out_file)]) == 0
        assert out_file.exists()
        from repro.trace.io import load_npz

        assert len(load_npz(out_file)) == 2000

    def test_trace_din(self, tmp_path):
        out_file = tmp_path / "t.din"
        assert main(["trace", "bitcount", "--refs", "500", "--out", str(out_file),
                     "--format", "din"]) == 0
        assert out_file.read_text().count("\n") >= 500

    def test_trace_requires_out(self, capsys):
        assert main(["trace", "bitcount", "--refs", "500"]) == 2
        assert "--out" in capsys.readouterr().err

    def test_trace_warm(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)  # trace cache lands in tmp
        argv = ["trace", "warm", "--refs", "1500", "--scale", "0.05",
                "--experiments", "fig1", "--jobs", "1"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "1 generated" in out and "0 already cached" in out
        assert (tmp_path / ".trace_cache").exists()
        # Second run: everything is a cache hit.
        assert main(argv) == 0
        assert "0 generated" in capsys.readouterr().out

    def test_trace_warm_rejects_unknown_experiment(self, capsys):
        assert main(["trace", "warm", "--experiments", "nope"]) == 2
        assert "nope" in capsys.readouterr().err

    def test_submit_without_server_fails_cleanly(self, capsys):
        # Port 1 is never listening; the client must fail with a clear
        # connection error (exit 3), not a traceback.
        assert main(["submit", "health", "--port", "1"]) == 3
        assert "cannot reach repro.service" in capsys.readouterr().err

    def test_submit_cell_requires_workload_and_label(self, capsys):
        assert main(["submit", "cell", "--port", "1"]) == 2
        assert "--workload" in capsys.readouterr().err

    def test_run_experiment(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)  # trace cache lands in tmp
        md = tmp_path / "out.md"
        assert main(["run", "fig1", "--refs", "20000", "--out", str(md)]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert md.read_text().startswith("### fig1")
