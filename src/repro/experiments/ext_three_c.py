"""Extension experiment: 3C miss breakdown of every workload.

The decoder ring for every other figure: benchmarks whose direct-mapped
misses are conflict-dominated (fft, crc in our layout) are the ones the
paper's techniques rescue; cold/capacity-dominated ones (libquantum, mcf,
susan) are immune.  Columns report each class as a percentage of the
direct-mapped cache's total misses; ``conflict%`` can be slightly negative
when direct-mapped placement beats fully-associative LRU (the classic
caveat, kept unclamped).
"""

from __future__ import annotations

from ..core.caches import DirectMappedCache
from ..core.three_c import classify
from ..workloads.mibench import MIBENCH_ORDER
from ..workloads.spec import SPEC_ORDER
from .config import PaperConfig
from .report import ExperimentResult
from .runner import register_experiment, workload_trace

__all__ = ["run_ext_three_c"]


@register_experiment("ext-3c")
def run_ext_three_c(config: PaperConfig) -> ExperimentResult:
    g = config.geometry
    result = ExperimentResult(
        experiment_id="ext-3c",
        title="3C breakdown of direct-mapped misses (% of total misses)",
        columns=["miss_rate%", "cold%", "capacity%", "conflict%"],
    )
    for bench in MIBENCH_ORDER + SPEC_ORDER:
        trace = workload_trace(bench, config)
        breakdown = classify(DirectMappedCache(g), trace, g)
        result.add_row(
            bench,
            {
                "miss_rate%": 100.0 * breakdown.miss_rate,
                "cold%": 100.0 * breakdown.share("cold"),
                "capacity%": 100.0 * breakdown.share("capacity"),
                "conflict%": 100.0 * breakdown.share("conflict"),
            },
        )
        result.arrays[bench] = breakdown
    result.note("high conflict% predicts responsiveness to the paper's techniques")
    return result


from .warm import provides_traces, workload_spec  # noqa: E402


@provides_traces("ext-3c")
def ext_three_c_traces(config: PaperConfig):
    return [workload_spec(b, config) for b in MIBENCH_ORDER + SPEC_ORDER]
