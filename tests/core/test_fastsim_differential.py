"""Differential tests: the vectorised fast path ≡ the sequential engine.

This file is the equivalence contract between :mod:`repro.core.fastsim` /
:func:`repro.core.simulator.simulate_indexing` and the sequential reference
engine (:func:`repro.core.simulator.simulate` driving
:class:`~repro.core.caches.DirectMappedCache`).  It pins the contract with

* an *independent* dict-based re-implementation of direct-mapped behaviour
  (not the package's own sequential engine, so a shared bug can't hide);
* seeded randomized traces plus adversarial shapes — all-one-set,
  alternating conflict pairs, empty, single-access, and >2^32 addresses;
* several geometries and **every** registered indexing scheme (trainables
  are fitted deterministically before comparison).

Any new fast path added to the package must ship with an equivalence test
of this form (see DESIGN.md, "Differential-testing contract").
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.address import PAPER_L1_GEOMETRY, CacheGeometry
from repro.core.caches import DirectMappedCache
from repro.core.fastsim import (
    direct_mapped_miss_count,
    direct_mapped_miss_flags,
    per_set_counts,
)
from repro.core.indexing import (
    BitSelectIndexing,
    GivargisIndexing,
    GivargisXorIndexing,
    ModuloIndexing,
    OddMultiplierIndexing,
    PatelIndexing,
    PrimeModuloIndexing,
    XorIndexing,
    available_schemes,
)
from repro.core.simulator import simulate, simulate_indexing
from repro.trace import Trace

TINY = CacheGeometry(capacity_bytes=128, line_bytes=16, ways=1, address_bits=16)
SMALL = CacheGeometry(capacity_bytes=1024, line_bytes=16, ways=1)
PAPER = PAPER_L1_GEOMETRY
#: 48-bit address space: addresses far beyond 2^32 must still agree.
WIDE = CacheGeometry(capacity_bytes=1024, line_bytes=16, ways=1, address_bits=48)

GEOMETRIES = [TINY, SMALL, PAPER]


# -- independent reference model --------------------------------------------------


def reference_miss_flags(blocks: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Dict-based direct-mapped model, written independently of fastsim."""
    resident: dict[int, int] = {}
    flags = np.empty(len(blocks), dtype=bool)
    for i, (b, s) in enumerate(zip(blocks.tolist(), indices.tolist())):
        flags[i] = resident.get(s) != b
        resident[s] = b
    return flags


# -- trace zoo --------------------------------------------------------------------


def random_trace(geometry: CacheGeometry, n: int = 4000, seed: int = 7) -> Trace:
    rng = np.random.default_rng(seed)
    hi = 1 << geometry.address_bits
    addrs = rng.integers(0, hi, size=n, dtype=np.uint64)
    return Trace(addrs, name="random")


def all_one_set_trace(geometry: CacheGeometry, n: int = 512) -> Trace:
    """Every access a fresh block of the same modulo set (100% conflicts)."""
    stride = np.uint64(geometry.num_sets * geometry.line_bytes)
    base = np.uint64(3 * geometry.line_bytes)
    idx = np.arange(n, dtype=np.uint64)
    addrs = (base + idx * stride) % np.uint64(1 << geometry.address_bits)
    return Trace(addrs, name="one_set")


def ping_pong_pair_trace(geometry: CacheGeometry, n: int = 600) -> Trace:
    """A, B, A, B, ... with A and B conflicting in the same modulo set."""
    a = np.uint64(5 * geometry.line_bytes)
    b = np.uint64(
        (5 * geometry.line_bytes + geometry.num_sets * geometry.line_bytes)
        % (1 << geometry.address_bits)
    )
    addrs = np.where(np.arange(n) % 2 == 0, a, b).astype(np.uint64)
    return Trace(addrs, name="ping_pong")


def empty_trace() -> Trace:
    return Trace(np.empty(0, dtype=np.uint64), name="empty")


def single_access_trace(geometry: CacheGeometry) -> Trace:
    return Trace(np.array([7 * geometry.line_bytes], dtype=np.uint64), name="single")


def huge_address_trace(n: int = 3000, seed: int = 23) -> Trace:
    """Addresses strictly above 2^32 (plus a band straddling the boundary)."""
    rng = np.random.default_rng(seed)
    above = rng.integers(1 << 32, 1 << 48, size=n // 2, dtype=np.uint64)
    straddle = (np.uint64(1 << 32) - np.uint64(1024)) + rng.integers(
        0, 2048, size=n - n // 2, dtype=np.uint64
    )
    addrs = np.concatenate([above, straddle])
    rng.shuffle(addrs)
    return Trace(addrs, name="huge")


def trace_zoo(geometry: CacheGeometry) -> list[Trace]:
    return [
        random_trace(geometry),
        all_one_set_trace(geometry),
        ping_pong_pair_trace(geometry),
        empty_trace(),
        single_access_trace(geometry),
    ]


# -- scheme lineups ---------------------------------------------------------------


def scheme_lineup(geometry: CacheGeometry, fit_trace: Trace) -> list:
    """One instance of every registered scheme, trainables fitted."""
    fit_addrs = fit_trace.addresses
    bit_positions = tuple(
        range(geometry.offset_bits, geometry.offset_bits + geometry.index_bits)
    )[::-1]
    return [
        ModuloIndexing(geometry),
        XorIndexing(geometry),
        OddMultiplierIndexing(geometry, 9),
        OddMultiplierIndexing(geometry, 31),
        PrimeModuloIndexing(geometry),
        BitSelectIndexing(geometry, bit_positions),
        GivargisIndexing(geometry).fit(fit_addrs),
        GivargisXorIndexing(geometry).fit(fit_addrs),
        PatelIndexing(geometry, max_swap_moves=4).fit(fit_addrs),
    ]


def test_lineup_covers_every_registered_scheme():
    fit = random_trace(TINY, n=400)
    names = {s.name for s in scheme_lineup(TINY, fit)}
    assert set(available_schemes()) <= names


# -- fastsim primitives vs the independent reference ------------------------------


class TestFastsimVsReference:
    @pytest.mark.parametrize("geometry", GEOMETRIES, ids=["tiny", "small", "paper"])
    def test_all_schemes_all_traces(self, geometry):
        fit = random_trace(geometry, n=2000, seed=99)
        for scheme in scheme_lineup(geometry, fit):
            for trace in trace_zoo(geometry):
                blocks = trace.blocks(geometry.offset_bits).astype(np.int64)
                indices = scheme.indices_of(trace.addresses)
                flags = direct_mapped_miss_flags(blocks, indices)
                ref = reference_miss_flags(blocks, indices)
                np.testing.assert_array_equal(
                    flags, ref, err_msg=f"{scheme.name} / {trace.name}"
                )
                assert direct_mapped_miss_count(blocks, indices) == int(ref.sum())
                acc, mis = per_set_counts(indices, flags, geometry.num_sets)
                ref_acc = np.bincount(indices, minlength=geometry.num_sets)
                ref_mis = np.bincount(indices[ref], minlength=geometry.num_sets)
                np.testing.assert_array_equal(acc, ref_acc)
                np.testing.assert_array_equal(mis, ref_mis)
                assert int(acc.sum()) == len(trace)

    def test_empty_trace_all_zero(self):
        blocks = np.empty(0, dtype=np.int64)
        flags = direct_mapped_miss_flags(blocks, blocks)
        assert flags.size == 0
        acc, mis = per_set_counts(blocks, flags, 16)
        assert int(acc.sum()) == 0 and int(mis.sum()) == 0

    def test_single_access_is_cold_miss(self):
        flags = direct_mapped_miss_flags(np.array([42]), np.array([3]))
        assert flags.tolist() == [True]

    def test_all_one_set_every_access_misses(self):
        trace = all_one_set_trace(SMALL)
        scheme = ModuloIndexing(SMALL)
        sim = simulate_indexing(scheme, trace, SMALL)
        assert sim.misses == len(trace)
        assert int(sim.slot_accesses[3]) == len(trace)  # base block lands in set 3

    def test_ping_pong_pair_always_misses(self):
        trace = ping_pong_pair_trace(SMALL)
        sim = simulate_indexing(ModuloIndexing(SMALL), trace, SMALL)
        assert sim.misses == len(trace)


# -- vectorised engine vs the package's sequential engine -------------------------


class TestVectorisedVsSequentialEngine:
    @pytest.mark.parametrize("geometry", GEOMETRIES, ids=["tiny", "small", "paper"])
    def test_simulation_results_agree_exactly(self, geometry):
        fit = random_trace(geometry, n=2000, seed=99)
        for scheme in scheme_lineup(geometry, fit):
            for trace in trace_zoo(geometry):
                fast = simulate_indexing(scheme, trace, geometry)
                slow = simulate(DirectMappedCache(geometry, scheme), trace)
                ctx = f"{scheme.name} / {trace.name}"
                assert fast.accesses == slow.accesses, ctx
                assert fast.hits == slow.hits, ctx
                assert fast.misses == slow.misses, ctx
                np.testing.assert_array_equal(
                    fast.slot_accesses, slow.slot_accesses, err_msg=ctx
                )
                np.testing.assert_array_equal(
                    fast.slot_misses, slow.slot_misses, err_msg=ctx
                )
                np.testing.assert_array_equal(
                    fast.slot_hits, slow.slot_hits, err_msg=ctx
                )

    def test_huge_addresses_agree(self):
        """Addresses above 2^32 exercise the full uint64 path end to end."""
        trace = huge_address_trace()
        fit = random_trace(WIDE, n=1500, seed=5)
        for scheme in scheme_lineup(WIDE, fit):
            blocks = trace.blocks(WIDE.offset_bits).astype(np.int64)
            indices = scheme.indices_of(trace.addresses)
            assert indices.min() >= 0 and indices.max() < WIDE.num_sets, scheme.name
            np.testing.assert_array_equal(
                direct_mapped_miss_flags(blocks, indices),
                reference_miss_flags(blocks, indices),
                err_msg=scheme.name,
            )
            fast = simulate_indexing(scheme, trace, WIDE)
            slow = simulate(DirectMappedCache(WIDE, scheme), trace)
            assert fast.misses == slow.misses, scheme.name
            np.testing.assert_array_equal(fast.slot_misses, slow.slot_misses)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_randomized_seeds_paper_geometry(self, seed):
        trace = random_trace(PAPER, n=6000, seed=seed)
        for scheme in (
            ModuloIndexing(PAPER),
            XorIndexing(PAPER),
            PrimeModuloIndexing(PAPER),
            OddMultiplierIndexing(PAPER, 21),
        ):
            fast = simulate_indexing(scheme, trace, PAPER)
            slow = simulate(DirectMappedCache(PAPER, scheme), trace)
            assert (fast.accesses, fast.hits, fast.misses) == (
                slow.accesses,
                slow.hits,
                slow.misses,
            ), f"seed={seed} scheme={scheme.name}"
            np.testing.assert_array_equal(fast.slot_misses, slow.slot_misses)
