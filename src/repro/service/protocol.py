"""Wire protocol of the simulation job server: JSON lines over TCP.

Every frame is one JSON object terminated by ``\\n``.  Clients send
*request* frames carrying a client-chosen ``id``; the server answers each
request with zero or more *event* frames (streaming progress) followed by
exactly one terminal frame — a *result* (``ok: true``) or an *error*
(``ok: false`` with a structured code).  Frames for concurrent requests on
one connection may interleave; the ``id`` is the correlation key.

Request types
-------------
``cell``
    One engine cell: ``{"type": "cell", "kind": "indexing", "workload":
    "fft", "label": "XOR", "config": {...}, "deadline": 5.0, "arrays":
    true}``.  Normalized through the *engine's own*
    :func:`~repro.experiments.engine.cells.make_cell`, so the server
    accepts exactly the cells the in-process engine accepts and derives
    byte-identical result-cache keys (via
    :func:`~repro.experiments.engine.parallel.plan_cells`).
``sweep``
    Several cells of one workload in a single request: ``{"type":
    "sweep", "workload": "fft", "schemes": ["baseline", "XOR", "4way"]}``.
    Labels map onto ``baseline`` / ``indexing`` / ``setassoc`` cells.
``experiment``
    A full registered figure by id: ``{"type": "experiment",
    "experiment": "fig4", "config": {...}}``, streaming one event per
    settled cell.
``health`` / ``stats``
    Observability (uptime, version, queue depth, coalescing and cache
    counters, latency histograms).
``shutdown``
    Ask the daemon to stop accepting work and exit cleanly.

Error codes
-----------
``bad_request``  malformed frame or unknown workload/scheme/experiment;
``overloaded``   admission queue full — explicit backpressure, retriable;
``timeout``      the request's deadline elapsed before completion;
``cancelled``    the waiter went away (client disconnect);
``internal``     unexpected server-side failure (cell errors included);
``unavailable``  no worker can take the request right now (cluster router:
                 every preference-order node is down) — retriable.

``config`` overrides are whitelisted (see :data:`CONFIG_OVERRIDES`): a
request may change trace length, seed, scale, engine selection, sweep
batching or the cell timeout, but never cache locations or worker
counts — those belong
to the operator who started the daemon.
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Any, Callable

import numpy as np

from ..core.simulator import SimulationResult
from ..experiments.config import PaperConfig
from ..experiments.engine.cells import SimCell, make_cell
from ..experiments.report import ExperimentResult

__all__ = [
    "PROTOCOL_VERSION",
    "E_BAD_REQUEST",
    "E_OVERLOADED",
    "E_TIMEOUT",
    "E_CANCELLED",
    "E_INTERNAL",
    "E_UNAVAILABLE",
    "ERROR_CODES",
    "REQUEST_TYPES",
    "CONFIG_OVERRIDES",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "encode_frame",
    "decode_frame",
    "error_frame",
    "config_from_overrides",
    "normalize_cell_request",
    "normalize_sweep_request",
    "normalize_experiment_request",
    "parse_deadline",
    "sweep_cell",
    "result_to_wire",
    "result_from_wire",
    "experiment_result_to_wire",
]

PROTOCOL_VERSION = 1

#: Upper bound on one frame (defence against unbounded buffering by a
#: misbehaving peer; 8 MiB comfortably fits any per-set array payload).
MAX_FRAME_BYTES = 8 * 1024 * 1024

E_BAD_REQUEST = "bad_request"
E_OVERLOADED = "overloaded"
E_TIMEOUT = "timeout"
E_CANCELLED = "cancelled"
E_INTERNAL = "internal"
E_UNAVAILABLE = "unavailable"
ERROR_CODES = (
    E_BAD_REQUEST,
    E_OVERLOADED,
    E_TIMEOUT,
    E_CANCELLED,
    E_INTERNAL,
    E_UNAVAILABLE,
)

REQUEST_TYPES = ("cell", "sweep", "experiment", "health", "stats", "shutdown")

#: Request-overridable config knobs → coercion functions.  Everything else
#: (cache directories, jobs, result-cache toggles) is operator-owned.
CONFIG_OVERRIDES: dict[str, Callable[[Any], Any]] = {
    "ref_limit": int,
    "seed": int,
    "workload_scale": float,
    "engine": str,
    "batch_sweeps": bool,
    "cell_timeout": lambda v: None if v is None else float(v),
    "profile_seed_offset": int,
    "odd_multiplier": int,
    "victim_lines": int,
    "aux_streams": int,
    "aux_allocate": str,
}


class ProtocolError(ValueError):
    """A request that cannot be honoured; maps to a ``bad_request`` error."""

    def __init__(self, message: str, code: str = E_BAD_REQUEST):
        super().__init__(message)
        self.code = code


# -- framing -----------------------------------------------------------------------


def encode_frame(obj: dict[str, Any]) -> bytes:
    """One JSON object, compact separators, newline-terminated."""
    return json.dumps(obj, separators=(",", ":"), sort_keys=True).encode() + b"\n"


def decode_frame(line: bytes | str) -> dict[str, Any]:
    """Parse one frame; raises :class:`ProtocolError` on malformed input."""
    if isinstance(line, bytes):
        if len(line) > MAX_FRAME_BYTES:
            raise ProtocolError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty frame")
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("frame must be a JSON object")
    return obj


def error_frame(request_id: Any, code: str, message: str) -> dict[str, Any]:
    assert code in ERROR_CODES, code
    return {
        "id": request_id,
        "ok": False,
        "type": "error",
        "error": {"code": code, "message": message},
    }


# -- request normalization ---------------------------------------------------------


def config_from_overrides(
    overrides: dict[str, Any] | None, base: PaperConfig
) -> PaperConfig:
    """Apply a request's whitelisted ``config`` overrides to the server's base."""
    if overrides is None:
        return base
    if not isinstance(overrides, dict):
        raise ProtocolError("'config' must be an object")
    updates: dict[str, Any] = {}
    for key, value in overrides.items():
        coerce = CONFIG_OVERRIDES.get(key)
        if coerce is None:
            raise ProtocolError(
                f"config override {key!r} is not allowed; allowed: "
                f"{sorted(CONFIG_OVERRIDES)}"
            )
        try:
            updates[key] = coerce(value)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"config override {key!r}: {exc}") from exc
    if "engine" in updates and updates["engine"] not in ("auto", "sequential"):
        raise ProtocolError("config override 'engine' must be 'auto' or 'sequential'")
    if "aux_allocate" in updates and updates["aux_allocate"] not in (
        "miss",
        "always",
    ):
        raise ProtocolError("config override 'aux_allocate' must be 'miss' or 'always'")
    return replace(base, **updates) if updates else base


def _require_str(req: dict[str, Any], field: str) -> str:
    value = req.get(field)
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"request field {field!r} must be a non-empty string")
    return value


def _check_workload(name: str) -> str:
    from ..workloads import available_workloads

    known = available_workloads("mibench") + available_workloads("spec")
    if name not in known:
        raise ProtocolError(f"unknown workload {name!r}; known: {sorted(known)}")
    return name


def normalize_cell_request(
    req: dict[str, Any], base: PaperConfig
) -> tuple[SimCell, PaperConfig]:
    """A ``cell`` request → the exact :class:`SimCell` the engine would build.

    Reuses :func:`make_cell` (never re-implements it), so every parameter
    the engine folds into result-cache keys is captured here too.
    """
    config = config_from_overrides(req.get("config"), base)
    kind = _require_str(req, "kind")
    workload = _check_workload(_require_str(req, "workload"))
    label = _require_str(req, "label")
    try:
        cell = make_cell(kind, workload, label, config)
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc
    return cell, config


#: ``sweep`` labels that route to ``setassoc`` cells.
_SETASSOC_LABELS = frozenset({"2way", "4way", "8way", "FullAssoc"})


def sweep_cell(workload: str, label: str, config: PaperConfig) -> SimCell:
    """Map one sweep label onto an engine cell (shared with tests)."""
    if label == "baseline":
        return make_cell("baseline", workload, "baseline", config)
    if label in _SETASSOC_LABELS:
        return make_cell("setassoc", workload, label, config)
    return make_cell("indexing", workload, label, config)


def normalize_sweep_request(
    req: dict[str, Any], base: PaperConfig
) -> tuple[list[SimCell], PaperConfig]:
    """A ``sweep`` request → one cell per requested scheme label."""
    config = config_from_overrides(req.get("config"), base)
    workload = _check_workload(_require_str(req, "workload"))
    schemes = req.get("schemes")
    if not isinstance(schemes, list) or not schemes or not all(
        isinstance(s, str) and s for s in schemes
    ):
        raise ProtocolError("'schemes' must be a non-empty list of labels")
    cells = []
    for label in schemes:
        try:
            cells.append(sweep_cell(workload, label, config))
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc
    return cells, config


def normalize_experiment_request(
    req: dict[str, Any], base: PaperConfig
) -> tuple[str, PaperConfig]:
    from ..experiments import available_experiments

    config = config_from_overrides(req.get("config"), base)
    eid = _require_str(req, "experiment")
    if eid not in available_experiments():
        raise ProtocolError(
            f"unknown experiment {eid!r}; known: {available_experiments()}"
        )
    return eid, config


def parse_deadline(req: dict[str, Any], default: float | None) -> float | None:
    """Per-request deadline in seconds (``None``/absent → server default)."""
    value = req.get("deadline", default)
    if value is None:
        return None
    try:
        deadline = float(value)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"'deadline' must be a number: {value!r}") from exc
    if deadline <= 0:
        raise ProtocolError("'deadline' must be positive")
    return deadline


# -- result serialization ----------------------------------------------------------


def result_to_wire(
    result: SimulationResult, include_arrays: bool = False
) -> dict[str, Any]:
    """A :class:`SimulationResult` as a JSON-safe dict.

    Scalars always; the per-set arrays only on request (they dominate the
    payload).  Everything is plain ints so two serializations of the same
    result are byte-identical — the bit-identity contract the service
    tests assert rides on this.
    """
    doc: dict[str, Any] = {
        "model": result.model,
        "trace_name": result.trace_name,
        "accesses": int(result.accesses),
        "hits": int(result.hits),
        "misses": int(result.misses),
        "miss_rate": result.miss_rate,
        "lookup_cycles": int(result.lookup_cycles),
        "extra": {k: int(v) for k, v in result.extra.items()},
    }
    if include_arrays:
        for name in ("slot_accesses", "slot_hits", "slot_misses"):
            doc[name] = np.asarray(getattr(result, name)).astype(int).tolist()
    return doc


def result_from_wire(doc: dict[str, Any]) -> SimulationResult:
    """Inverse of :func:`result_to_wire` (requires the per-set arrays).

    The cluster router rehydrates a worker's ``cell`` reply through this
    when it needs a real :class:`SimulationResult` (the routed-experiment
    executor path); round-tripping is lossless, so routed results stay
    bit-identical to locally executed ones.
    """
    missing = [
        name
        for name in ("slot_accesses", "slot_hits", "slot_misses")
        if name not in doc
    ]
    if missing:
        raise ProtocolError(
            f"result payload lacks per-set arrays {missing}; "
            "request the cell with arrays=true"
        )
    return SimulationResult(
        model=doc["model"],
        trace_name=doc["trace_name"],
        accesses=int(doc["accesses"]),
        hits=int(doc["hits"]),
        misses=int(doc["misses"]),
        lookup_cycles=int(doc["lookup_cycles"]),
        slot_accesses=np.asarray(doc["slot_accesses"], dtype=np.int64),
        slot_hits=np.asarray(doc["slot_hits"], dtype=np.int64),
        slot_misses=np.asarray(doc["slot_misses"], dtype=np.int64),
        extra={k: int(v) for k, v in (doc.get("extra") or {}).items()},
    )


def experiment_result_to_wire(result: ExperimentResult) -> dict[str, Any]:
    """An :class:`ExperimentResult` grid as a JSON-safe dict (no bulk arrays)."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "columns": list(result.columns),
        "rows": {label: dict(row) for label, row in result.rows.items()},
        "unit": result.unit,
        "notes": list(result.notes),
        "engine_stats": result.engine_stats,
    }
