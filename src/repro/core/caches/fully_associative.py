"""Fully-associative cache — the theoretical uniformity bound.

Section III opens by noting that a fully-associative cache with a perfect
replacement policy accesses all lines uniformly and lower-bounds the miss
rate of the techniques under study.  This model provides the realistic
LRU/FIFO/random variants; :class:`BeladyCache` implements the clairvoyant
MIN/OPT policy for the true bound (it must be given the future trace).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..address import CacheGeometry
from .base import AccessResult, CacheModel

__all__ = ["FullyAssociativeCache", "BeladyCache"]


class FullyAssociativeCache(CacheModel):
    """Single set spanning all lines; OrderedDict-backed LRU/FIFO."""

    name = "fully_associative"

    def __init__(self, geometry: CacheGeometry, policy: str = "lru"):
        super().__init__(geometry, num_slots=1)
        if policy not in ("lru", "fifo"):
            raise ValueError("FullyAssociativeCache supports 'lru' or 'fifo'")
        self.policy_name = policy
        self.capacity_lines = geometry.num_lines
        self._resident: OrderedDict[int, None] = OrderedDict()

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        self.stats.record_probe(0)
        if block in self._resident:
            if self.policy_name == "lru":
                self._resident.move_to_end(block)
            self.stats.record_hit(0, "direct")
            return AccessResult(True, 1, 0, 0, hit_class="direct")
        evicted = None
        if len(self._resident) >= self.capacity_lines:
            evicted, _ = self._resident.popitem(last=False)
        self._resident[block] = None
        self.stats.record_miss(0)
        return AccessResult(False, 1, 0, 0, evicted_block=evicted)

    def contents(self) -> set[int]:
        return set(self._resident)

    def flush(self) -> None:
        self._resident.clear()


class BeladyCache(CacheModel):
    """Clairvoyant MIN replacement: evict the block reused farthest in future.

    Requires the complete block-address trace up front; :meth:`access` must be
    called with exactly that trace, in order.  Used only as an analytic bound.
    """

    name = "belady"

    def __init__(self, geometry: CacheGeometry, trace_blocks: np.ndarray):
        super().__init__(geometry, num_slots=1)
        self.capacity_lines = geometry.num_lines
        blocks = np.asarray(trace_blocks, dtype=np.int64).ravel()
        self._trace = blocks
        self._cursor = 0
        # next_use[i] = position of the next occurrence of blocks[i], or inf.
        n = blocks.size
        self._next_use = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
        last_seen: dict[int, int] = {}
        for i in range(n - 1, -1, -1):
            b = int(blocks[i])
            self._next_use[i] = last_seen.get(b, np.iinfo(np.int64).max)
            last_seen[b] = i
        self._resident: dict[int, int] = {}  # block -> its next-use position

    def _access_block(self, block: int, is_write: bool) -> AccessResult:
        i = self._cursor
        if i >= self._trace.size or int(self._trace[i]) != block:
            raise RuntimeError("BeladyCache accessed out of order with its trace")
        self._cursor += 1
        self.stats.record_probe(0)
        nxt = int(self._next_use[i])
        if block in self._resident:
            self._resident[block] = nxt
            self.stats.record_hit(0, "direct")
            return AccessResult(True, 1, 0, 0, hit_class="direct")
        evicted = None
        if len(self._resident) >= self.capacity_lines:
            # Evict the resident block whose next use is farthest away.
            evicted = max(self._resident, key=self._resident.__getitem__)
            del self._resident[evicted]
        self._resident[block] = nxt
        self.stats.record_miss(0)
        return AccessResult(False, 1, 0, 0, evicted_block=evicted)

    def contents(self) -> set[int]:
        return set(self._resident)

    def flush(self) -> None:
        self._resident.clear()
