"""Modelled process address space.

The MiBench/SPEC workload kernels execute their real algorithms, but the
*addresses* they touch come from this model: a 32-bit virtual address space
with the classic segment layout —

* static/global data at ``STATIC_BASE``,
* a downward-growing stack at ``STACK_TOP`` with explicit frames,
* an upward-growing heap at ``HEAP_BASE`` with a bump-pointer allocator
  (plus alignment and optional inter-allocation padding, mimicking malloc
  headers so heap objects do not collapse into artificially regular
  strides).

This is the stand-in for SimpleScalar's Alpha process image: the cache only
ever sees addresses, and this layout reproduces the stride/segment structure
that drives the paper's non-uniformity observations (stack and hot globals
pinning a few sets while large arrays sweep others).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AddressSpace", "Array", "StackFrame", "SegmentLayout"]


@dataclass(frozen=True)
class SegmentLayout:
    """Base addresses of the modelled segments (defaults mirror a 32-bit
    ELF-ish layout).

    The defaults are deliberately *not* multiples of the 32 KiB cache
    capacity: in a real process the first global sits at a link-dependent
    offset inside .data and the heap starts wherever brk lands after bss,
    so distinct hot objects do not systematically alias to the same
    conventional cache sets.  Capacity-aligned bases would make the modulo
    baseline thrash pathologically on small-working-set benchmarks — an
    artefact, not a reproduction (caught by the crc workload's tests).
    """

    static_base: int = 0x0804_9A60
    heap_base: int = 0x0924_E1B8
    stack_top: int = 0xBFFF_E3A0
    mmap_base: int = 0x4001_2C40


class Array:
    """A contiguous object in the modelled space.

    Provides address arithmetic only — element *values* live in ordinary
    Python/NumPy objects inside the workload; this class answers "what byte
    address does element ``i`` occupy".
    """

    __slots__ = ("base", "elem_size", "length", "name")

    def __init__(self, base: int, elem_size: int, length: int, name: str = ""):
        self.base = base
        self.elem_size = elem_size
        self.length = length
        self.name = name

    def addr(self, index: int) -> int:
        """Byte address of element ``index`` (bounds-checked)."""
        if not 0 <= index < self.length:
            raise IndexError(f"{self.name or 'array'}[{index}] out of range 0..{self.length - 1}")
        return self.base + index * self.elem_size

    def addrs(self, indices: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`addr` (bounds-checked)."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.length):
            raise IndexError(f"index out of range for {self.name or 'array'}")
        return (np.uint64(self.base) + indices.astype(np.uint64) * np.uint64(self.elem_size))

    @property
    def size_bytes(self) -> int:
        return self.elem_size * self.length

    @property
    def end(self) -> int:
        return self.base + self.size_bytes

    def field_addr(self, index: int, offset: int) -> int:
        """Address of a struct field: element base + byte offset."""
        a = self.addr(index)
        if not 0 <= offset < self.elem_size:
            raise IndexError("field offset outside the element")
        return a + offset


class StackFrame:
    """One procedure frame with named local slots."""

    __slots__ = ("base", "size", "_slots", "_used")

    def __init__(self, base: int, size: int):
        self.base = base  # lowest address of the frame
        self.size = size
        self._slots: dict[str, tuple[int, int]] = {}
        self._used = 0

    def local(self, name: str, size: int = 8) -> int:
        """Address of a named local, allocated on first use."""
        if name not in self._slots:
            if self._used + size > self.size:
                raise MemoryError("stack frame overflow")
            self._slots[name] = (self.base + self._used, size)
            self._used += size
        return self._slots[name][0]

    def local_array(self, name: str, elem_size: int, length: int) -> Array:
        """A local array carved out of the frame."""
        key = f"{name}[]"
        if key not in self._slots:
            size = elem_size * length
            if self._used + size > self.size:
                raise MemoryError("stack frame overflow")
            self._slots[key] = (self.base + self._used, size)
            self._used += size
        base, _ = self._slots[key]
        return Array(base, elem_size, length, name=name)


class AddressSpace:
    """Segment allocator for one modelled process/thread.

    ``thread_stride`` shifts every segment by a per-thread offset so SMT
    experiments give each thread a disjoint working set, as separate
    processes would have.
    """

    def __init__(
        self,
        layout: SegmentLayout | None = None,
        thread: int = 0,
        thread_stride: int = 0x0200_0000,
        heap_padding: int = 16,
    ):
        layout = layout or SegmentLayout()
        shift = thread * thread_stride
        self.layout = layout
        self.thread = thread
        self._shift = shift
        self._static_ptr = layout.static_base + shift
        self._heap_ptr = layout.heap_base + shift
        self._mmap_ptr = layout.mmap_base + shift
        self._stack_ptr = layout.stack_top + shift
        self.heap_padding = heap_padding
        self._frames: list[StackFrame] = []

    # -- static segment ------------------------------------------------------------

    def static_array(self, elem_size: int, length: int, name: str = "", align: int = 8) -> Array:
        base = _align_up(self._static_ptr, align)
        self._static_ptr = base + elem_size * length
        return Array(base, elem_size, length, name=name)

    def static_scalar(self, size: int = 8, name: str = "") -> int:
        base = _align_up(self._static_ptr, size)
        self._static_ptr = base + size
        return base

    # -- heap ------------------------------------------------------------------------

    def malloc(self, size: int, align: int = 8, name: str = "") -> int:
        """Bump allocation with malloc-header-like padding between objects."""
        base = _align_up(self._heap_ptr + self.heap_padding, align)
        self._heap_ptr = base + size
        return base

    def heap_array(self, elem_size: int, length: int, name: str = "", align: int = 8) -> Array:
        base = self.malloc(elem_size * length, align=align, name=name)
        return Array(base, elem_size, length, name=name)

    def mmap_array(self, elem_size: int, length: int, name: str = "") -> Array:
        """Page-aligned mapping (large numeric arrays in real programs)."""
        base = _align_up(self._mmap_ptr, 4096)
        self._mmap_ptr = base + elem_size * length
        return Array(base, elem_size, length, name=name)

    # -- stack -------------------------------------------------------------------------

    def push_frame(self, size: int = 256) -> StackFrame:
        size = _align_up(size, 16)
        self._stack_ptr -= size
        frame = StackFrame(self._stack_ptr, size)
        self._frames.append(frame)
        return frame

    def pop_frame(self) -> None:
        if not self._frames:
            raise RuntimeError("pop from empty stack")
        frame = self._frames.pop()
        self._stack_ptr += frame.size

    @property
    def stack_depth(self) -> int:
        return len(self._frames)

    @property
    def stack_ptr(self) -> int:
        """Current top-of-stack address (next frame pushes below this)."""
        return self._stack_ptr

    @property
    def heap_used(self) -> int:
        return self._heap_ptr - (self.layout.heap_base + self._shift)


def _align_up(value: int, align: int) -> int:
    if align & (align - 1):
        raise ValueError("alignment must be a power of two")
    return (value + align - 1) & ~(align - 1)
