"""Pluggable result-store backends for the experiment engine.

The engine historically hard-coded one backend — the content-addressed
on-disk :class:`~repro.experiments.engine.cache.ResultCache`.  Scaling the
serving layer out to a multi-node cluster needs that choice to be
pluggable: a worker's *placement* of a cell is free (keys are
content-addressed), but its *result* is only cluster-visible if the store
it lands in is shared.  This module defines the interface and the two
backends:

:class:`LocalDirStore`
    Today's behavior, verbatim: one private ``results/`` directory of
    ``.npz`` entries with embedded checksums.  Bit-identical keys and file
    format — a repo that never opts into clustering sees no change.

:class:`SharedDirStore`
    A two-tier read-through / write-behind store for clusters.  ``load``
    probes the node-private local tier first, then the shared directory;
    a shared hit is copied into the local tier (read-through) so repeat
    probes never touch the shared filesystem again.  ``store`` writes the
    local tier synchronously (the computing node must immediately see its
    own result) and *publishes* to the shared tier from a background
    thread (write-behind), so a slow shared filesystem never sits on the
    simulation hot path.  ``flush()`` drains the publish queue.

    Safety under concurrent readers/writers comes from two properties:
    every write on either tier is atomic (tmp + ``os.replace``, inherited
    from :class:`ResultCache`), and ``load`` treats a transient ``OSError``
    as a miss *without deleting the entry* — only verified corruption
    (checksum/zip/staleness failures) unlinks.  Two nodes publishing the
    same key race benignly: the key is a content digest, so both payloads
    decode to the same result and the last atomic replace wins.

``make_store`` maps a :class:`~repro.experiments.config.PaperConfig` to a
backend (``config.result_store``: ``"local"`` | ``"shared"``), and is the
single construction path used by ``run_cells``, ``ExperimentEngine``, the
service scheduler and the cluster router.
"""

from __future__ import annotations

import abc
import queue
import threading
from pathlib import Path

from ..config import PaperConfig
from .cache import ResultCache

__all__ = [
    "LocalDirStore",
    "ResultStore",
    "SharedDirStore",
    "make_store",
]


class ResultStore(abc.ABC):
    """What the engine needs from a result backend (see module docstring).

    Keys are the engine's content-addressed cell keys
    (:func:`~repro.experiments.engine.cache.cell_key`); values are
    :class:`~repro.core.simulator.SimulationResult` instances.  A backend
    must be safe to call from multiple threads of one process and from
    multiple processes/nodes against the same storage.
    """

    @abc.abstractmethod
    def load(self, key: str):
        """Verified result for ``key``, or ``None`` (miss, never garbage)."""

    @abc.abstractmethod
    def store(self, key: str, result) -> Path:
        """Persist ``result`` under ``key``; returns the local entry path."""

    @abc.abstractmethod
    def keys(self) -> list[str]:
        """Keys of every entry (the cluster-audit surface)."""

    def flush(self) -> None:
        """Block until every accepted ``store`` is durable (default: no-op)."""

    def close(self) -> None:
        """Release background resources; implies :meth:`flush`."""

    def __contains__(self, key: str) -> bool:
        return self.load(key) is not None


#: Today's backend *is* the local-directory store: same directory layout,
#: same npz entries, same content-addressed keys.  The alias (rather than a
#: wrapper) keeps every existing ``ResultCache`` call site — tests, CLI,
#: engine internals — bit-identical by construction.
LocalDirStore = ResultCache
ResultStore.register(LocalDirStore)


class SharedDirStore(ResultStore):
    """Two-tier read-through / write-behind store (see module docstring)."""

    def __init__(
        self,
        shared_dir: str | Path,
        local_dir: str | Path | None = None,
        *,
        write_behind: bool = True,
    ):
        self.shared = LocalDirStore(shared_dir)
        self.local = LocalDirStore(local_dir) if local_dir is not None else None
        self._write_behind = write_behind
        self._queue: queue.Queue | None = None
        self._publisher: threading.Thread | None = None
        self._closed = False
        if write_behind:
            self._queue = queue.Queue()
            self._publisher = threading.Thread(
                target=self._publish_loop,
                name="repro-store-publisher",
                daemon=True,
            )
            self._publisher.start()

    # -- read-through ---------------------------------------------------------------

    def load(self, key: str):
        if self.local is not None:
            hit = self.local.load(key)
            if hit is not None:
                return hit
        hit = self.shared.load(key)
        if hit is not None and self.local is not None:
            # Read-through populate: repeat probes stay node-local.  A
            # racing populate is benign (atomic replace, same content).
            self.local.store(key, hit)
        return hit

    # -- write-behind ---------------------------------------------------------------

    def store(self, key: str, result) -> Path:
        if self.local is not None:
            path = self.local.store(key, result)
        else:
            path = self.shared.store(key, result)
        if self.local is not None:
            if self._queue is not None and not self._closed:
                self._queue.put((key, result))
            else:
                self.shared.store(key, result)
        return path

    def _publish_loop(self) -> None:
        assert self._queue is not None
        while True:
            item = self._queue.get()
            try:
                if item is None:
                    return
                key, result = item
                try:
                    self.shared.store(key, result)
                except OSError:
                    # A shared-filesystem hiccup must never kill the
                    # publisher; the local tier still holds the result and
                    # a re-run republishes it.
                    pass
            finally:
                self._queue.task_done()

    def flush(self) -> None:
        """Block until every queued publish reached the shared tier."""
        if self._queue is not None:
            self._queue.join()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._queue is not None and self._publisher is not None:
            self._queue.put(None)
            self._publisher.join(timeout=30)

    # -- introspection (the shared tier is the cluster-visible truth) ---------------

    def keys(self) -> list[str]:
        return self.shared.keys()

    def __contains__(self, key: str) -> bool:
        return (self.local is not None and key in self.local) or key in self.shared

    def __len__(self) -> int:
        return len(self.shared)

    def size_bytes(self) -> int:
        return self.shared.size_bytes()

    def clear(self) -> int:
        removed = self.shared.clear()
        if self.local is not None:
            self.local.clear()
        return removed


def make_store(config: PaperConfig) -> ResultStore | None:
    """The engine-wide backend factory (``None`` = result caching disabled)."""
    if not config.use_result_cache:
        return None
    if config.result_store == "shared":
        if config.shared_store_dir is None:
            raise ValueError(
                "result_store='shared' requires shared_store_dir to be set "
                "(the cluster-visible results directory)"
            )
        return SharedDirStore(
            config.shared_store_dir, local_dir=config.result_cache_path
        )
    if config.result_store != "local":
        raise ValueError(
            f"unknown result_store {config.result_store!r}; "
            "expected 'local' or 'shared'"
        )
    return LocalDirStore(config.result_cache_path)
