"""Sweep-batching canaries: one stack-distance pass vs per-cell passes.

Two regression gates for the sweep-batching PR (CI replays this file
against the committed ``BENCH_*.json`` baseline):

* the kernel: :func:`~repro.core.simulator.simulate_lru_sweep` answering a
  five-point associativity ladder from one pass must stay well ahead of
  five independent :func:`~repro.core.simulator.simulate_set_associative`
  calls — the floor is asserted *inside* the bench so the claim travels
  with the number;
* the engine: a cold ``run_cells`` pass over an ext-assoc-shaped Mattson
  family must beat the same cells executed per-cell with
  ``batch_sweeps=False``.

The decode axis (fig 4/6/7/8-shaped families) is tracked without a floor:
its win is task granularity and per-worker decode locality on the process
pool, which hosted runners measure too noisily to gate.  Bit-identity of
everything measured here is locked by
``tests/core/test_sweep_batching_differential.py``.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.core.address import PAPER_L1_GEOMETRY
from repro.core.indexing import ModuloIndexing
from repro.core.simulator import simulate_lru_sweep, simulate_set_associative
from repro.experiments.engine import make_cell, run_cells
from repro.trace import zipf_trace

from conftest import run_once

G = PAPER_L1_GEOMETRY
TRACE_1M = zipf_trace(1_000_000, seed=23)
SWEEP_WAYS = [1, 2, 4, 8, 16]

#: The ext-assoc shape: one fixed-sets Mattson family per workload.
LADDER = [("baseline", "baseline")] + [
    ("assocsweep", lab) for lab in ("2way", "4way", "8way", "16way")
]


def test_mattson_sweep_kernel_1m(benchmark):
    """Five associativities from one pass over a million accesses (≥ 2.5×).

    The per-cell reference runs one full stack-distance pass per ladder
    point; the sweep runs exactly one.  The floor is conservative — the
    shared pass amortises everything but the per-member thresholding and
    per-set histograms.
    """
    scheme = ModuloIndexing(G)
    specs = [(w, "setassoc") for w in SWEEP_WAYS]
    results = benchmark.pedantic(
        lambda: simulate_lru_sweep(scheme, TRACE_1M, G, specs),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert [r.accesses for r in results] == [len(TRACE_1M)] * len(SWEEP_WAYS)

    t0 = time.perf_counter()
    for ways in SWEEP_WAYS:
        per_cell = simulate_set_associative(
            scheme, TRACE_1M, G.with_fixed_sets(ways), ways=ways
        )
        assert per_cell.accesses == len(TRACE_1M)
    per_cell_seconds = time.perf_counter() - t0
    speedup = per_cell_seconds / benchmark.stats.stats.min
    assert speedup >= 2.5, f"sweep kernel only {speedup:.1f}x over per-cell passes"


def test_engine_mattson_family_cold(benchmark, config):
    """Cold engine pass over one ext-assoc Mattson family (≥ 2× per-cell).

    ``run_cells`` with batching on answers the five-cell ladder from one
    kernel pass; the reference is the same grid with ``batch_sweeps=False``
    (cells, keys and results identical — only the execution plan differs).
    """
    cfg = replace(config, use_result_cache=False)
    cells = [make_cell(kind, "crc", lab, cfg) for kind, lab in LADDER]
    plain_cfg = replace(cfg, batch_sweeps=False)
    run_cells(cells, plain_cfg, jobs=1)  # pre-warm the on-disk trace cache

    results, stats = benchmark.pedantic(
        lambda: run_cells(cells, cfg, jobs=1), rounds=3, iterations=1, warmup_rounds=1
    )
    assert stats.families_batched == 1 and stats.cells_batched == len(cells)
    assert len(results) == len(cells)

    t0 = time.perf_counter()
    _, plain_stats = run_cells(cells, plain_cfg, jobs=1)
    per_cell_seconds = time.perf_counter() - t0
    assert plain_stats.cells_batched == 0
    speedup = per_cell_seconds / benchmark.stats.stats.min
    assert speedup >= 2.0, f"batched family only {speedup:.1f}x over per-cell run"


def test_engine_decode_families_jobs2(benchmark, config):
    """Fig4-shaped decode families fanned out at jobs=2 (tracked, no floor).

    Eight cells travel as two per-workload family units instead of eight
    pool tasks; the measured time tracks submission overhead and per-worker
    trace-decode locality.
    """
    cfg = replace(config, use_result_cache=False)
    cells = [
        make_cell(kind, bench, lab, cfg)
        for bench in ("crc", "fft")
        for kind, lab in [
            ("baseline", "baseline"),
            ("indexing", "XOR"),
            ("indexing", "Odd_Multiplier"),
            ("indexing", "Prime_Modulo"),
        ]
    ]
    run_cells(cells, cfg, jobs=1)  # pre-warm the on-disk trace cache

    results, stats = run_once(benchmark, lambda: run_cells(cells, cfg, jobs=2))
    assert stats.families_batched == 2 and stats.cells_batched == len(cells)
    assert len(results) == len(cells)
