"""Figure 8 — column-associative cache with non-conventional primary indexes.

On the SPEC-like workloads: a column-associative cache whose *primary*
index function is XOR, odd-multiplier or prime-modulo, measured as
% reduction in misses versus the plain (conventionally indexed)
column-associative cache.  Paper shape: odd-multiplier best on average;
some benchmarks regress under non-conventional indexes (their text calls
out calculix and sjeng).

Under ``config.batch_sweeps`` each bench's four column-associative cells
form one "decode" sweep family — one trace decode per bench per worker,
with per-cell execution, keys and results untouched.
"""

from __future__ import annotations

from ..core.uniformity import percent_reduction
from ..workloads.spec import SPEC_ORDER
from .config import PaperConfig
from .engine import ExperimentEngine, make_cell
from .report import ExperimentResult
from .runner import register_experiment

__all__ = ["run_fig08", "FIG8_COLUMNS"]

FIG8_COLUMNS = [
    "ColAssoc_XOR",
    "ColAssoc_Odd_Multiplier",
    "ColAssoc_Prime_Modulo",
]


@register_experiment("fig8")
def run_fig08(config: PaperConfig) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig8",
        title="% reduction in miss rate: indexed column-associative vs plain",
        columns=FIG8_COLUMNS,
    )
    cells = []
    for bench in SPEC_ORDER:
        cells.append(make_cell("colassoc", bench, "ColAssoc_Base", config))
        cells.extend(
            make_cell("colassoc", bench, label, config) for label in FIG8_COLUMNS
        )
    sims, stats = ExperimentEngine(config).run(cells)
    for bench in SPEC_ORDER:
        base = sims[(bench, "ColAssoc_Base")]
        row = {
            label: percent_reduction(sims[(bench, label)].misses, base.misses)
            for label in FIG8_COLUMNS
        }
        result.add_row(bench, row)
    result.add_average_row()
    result.note("paper shape: odd-multiplier best on average; some benchmarks regress")
    result.engine_stats = stats.as_dict()
    return result


from .warm import provides_traces, workload_spec  # noqa: E402


@provides_traces("fig8")
def fig08_traces(config: PaperConfig):
    return [workload_spec(b, config) for b in SPEC_ORDER]
