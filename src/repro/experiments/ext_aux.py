"""Extension experiment: auxiliary structures × indexing scheme grid.

The paper's remedies redistribute conflict misses by changing *where*
blocks land; Jouppi's auxiliary structures instead *absorb* the conflicts
a mapping creates — a victim cache holds what the hot sets evict, a miss
cache holds what they fetch, stream buffers prefetch what they will fetch
next.  For each MiBench workload and for both the conventional modulo
index and the XOR index, this grid reports the composed miss rate of a
direct-mapped cache augmented with victim buffers (2/4/8 lines), a
4-entry miss cache, 4-deep stream buffers and the combined VC+SB / MC+SB
configurations, next to the column-associative cache — the head-to-head
the paper's framing invites: does a 4-entry fully-associative buffer beat
a smarter cache organisation on skewed sets?

Per aux cell, ``result.arrays`` carries the per-structure effectiveness
metrics (:func:`~repro.core.uniformity.aux_structure_report`) and the
per-set *eviction-absorption* Gini versus the same-scheme baseline — how
unevenly the structure's relief is distributed over the sets (≈1 on a
modulo mapping: nearly all absorbed misses come from the few hot sets).

Aux cells ride the engine's "decode" sweep-family axis (shared trace
open; the per-cell path is already the exact miss-event replay of
:mod:`repro.core.aux.fast` under ``engine="auto"``), which makes ext-aux
the end-to-end canary for the aux fast path the same way ext-policy is
for the policy axis (``benchmarks/test_aux_bench.py``).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..core.uniformity import aux_structure_report, eviction_absorption_gini
from ..workloads.mibench import MIBENCH_ORDER
from .config import PaperConfig
from .engine import ExperimentEngine, make_cell
from .report import ExperimentResult
from .runner import register_experiment

__all__ = ["run_ext_aux", "EXT_AUX_COLUMNS", "EXT_AUX_SCHEMES", "EXT_AUX_SPECS"]

#: Aux compositions of the sweep: ``(column, combo, depth)``.
EXT_AUX_SPECS = [
    ("vc2", "vc", 2),
    ("vc4", "vc", 4),
    ("vc8", "vc", 8),
    ("mc4", "mc", 4),
    ("sb4", "sb", 4),
    ("vc+sb4", "vc+sb", 4),
    ("mc+sb4", "mc+sb", 4),
]

#: Grid columns, reference first, the organisational rival last.
EXT_AUX_COLUMNS = ["baseline"] + [col for col, _, _ in EXT_AUX_SPECS] + ["colassoc"]

#: Indexing schemes crossed with the compositions (one row per scheme).
EXT_AUX_SCHEMES = ["modulo", "xor"]

#: Per-scheme (baseline cell, column-associative cell) kinds and labels.
_SCHEME_CELLS = {
    "modulo": (("baseline", "baseline"), ("colassoc", "ColAssoc_Base")),
    "xor": (("indexing", "XOR"), ("colassoc", "ColAssoc_XOR")),
}


@register_experiment("ext-aux")
def run_ext_aux(config: PaperConfig) -> ExperimentResult:
    # Aux structures augment the paper's direct-mapped L1.
    if config.geometry.ways != 1:
        config = replace(config, geometry=config.geometry.with_ways(1))
    result = ExperimentResult(
        experiment_id="ext-aux",
        title="Auxiliary structures × indexing scheme: direct-mapped miss rate",
        columns=EXT_AUX_COLUMNS,
    )
    cells = []
    for bench in MIBENCH_ORDER:
        for scheme in EXT_AUX_SCHEMES:
            (base_kind, base_label), (col_kind, col_label) = _SCHEME_CELLS[scheme]
            cells.append(make_cell(base_kind, bench, base_label, config))
            for _, combo, depth in EXT_AUX_SPECS:
                cells.append(
                    make_cell("auxsweep", bench, f"{scheme}:{combo}{depth}", config)
                )
            cells.append(make_cell(col_kind, bench, col_label, config))
    sims, stats = ExperimentEngine(config).run(cells)
    head_to_head = []
    for bench in MIBENCH_ORDER:
        for scheme in EXT_AUX_SCHEMES:
            (_, base_label), (_, col_label) = _SCHEME_CELLS[scheme]
            base = sims[(bench, base_label)]
            col = sims[(bench, col_label)]
            row = {"baseline": base.miss_rate, "colassoc": col.miss_rate}
            for column, combo, depth in EXT_AUX_SPECS:
                sim = sims[(bench, f"{scheme}:{combo}{depth}")]
                row[column] = sim.miss_rate
                report = aux_structure_report(sim)
                prefix = f"{bench}/{scheme}/{column}"
                result.arrays[f"{prefix}/aux_report"] = np.array(
                    list(report.as_dict().values())
                )
                result.arrays[f"{prefix}/absorption_gini"] = np.array(
                    [eviction_absorption_gini(base.slot_misses, sim.slot_misses)]
                )
            result.add_row(f"{bench}/{scheme}", row)
            if scheme == "modulo":
                head_to_head.append(
                    (bench, row["vc4"], row["colassoc"], row["baseline"])
                )
    result.add_average_row()
    # The head-to-head the grid exists for: 4-entry VC vs column
    # associativity on the skewed (conventionally-indexed) sets.
    vc_wins = 0
    for bench, vc4, col, base in head_to_head:
        winner = "vc4" if vc4 <= col else "colassoc"
        vc_wins += winner == "vc4"
        result.note(
            f"head-to-head {bench}: baseline={base:.4f} vc4={vc4:.4f} "
            f"colassoc={col:.4f} -> {winner}"
        )
    result.note(
        f"4-entry victim cache beats column associativity on "
        f"{vc_wins}/{len(head_to_head)} modulo-indexed workloads"
    )
    result.note("direct-mapped, 1024 sets; sb cells use aux_streams/aux_allocate")
    result.engine_stats = stats.as_dict()
    return result


from .warm import provides_traces, workload_spec  # noqa: E402


@provides_traces("ext-aux")
def ext_aux_traces(config: PaperConfig):
    return [workload_spec(b, config) for b in MIBENCH_ORDER]
