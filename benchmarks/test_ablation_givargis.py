"""Ablation: Givargis block-size sensitivity (paper Section IV.A prose).

"For smaller cache blocks (say 8-bytes), fewer bits are ignored in finding
index bits, and Givargis's method appears to show better performance for
such caches, but performs poorly for caches with wider cache lines."

With 8-byte lines the candidate pool regains bits 3-4, which carry most of
the fine-grained discriminating power the 32-byte exclusion throws away.
"""

from __future__ import annotations

from conftest import run_once

from repro.core.address import CacheGeometry
from repro.core.indexing import GivargisIndexing, ModuloIndexing
from repro.core.simulator import simulate_indexing
from repro.experiments.runner import profile_trace, workload_trace


def test_block_size_sensitivity(benchmark, config):
    benches = ["fft", "patricia", "susan"]

    def run():
        rows = {}
        for name in benches:
            trace = workload_trace(name, config)
            train = profile_trace(name, config)
            row = {}
            for line_bytes in (8, 32):
                g = CacheGeometry(32 * 1024, line_bytes, 1)
                base = simulate_indexing(ModuloIndexing(g), trace, g)
                giv = GivargisIndexing(g).fit(train.addresses)
                res = simulate_indexing(giv, trace, g)
                row[line_bytes] = 100.0 * (base.misses - res.misses) / max(base.misses, 1)
            rows[name] = row
        return rows

    rows = run_once(benchmark, run)
    print()
    for name, row in rows.items():
        print(f"{name:10s} 8B-line: {row[8]:+8.2f}%   32B-line: {row[32]:+8.2f}%")
    # The paper's directional claim: at least as good with narrow lines on
    # average across the sampled benchmarks.
    avg8 = sum(r[8] for r in rows.values()) / len(rows)
    avg32 = sum(r[32] for r in rows.values()) / len(rows)
    print(f"average    8B-line: {avg8:+8.2f}%   32B-line: {avg32:+8.2f}%")
