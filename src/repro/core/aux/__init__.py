"""Auxiliary cache structures (Jouppi 1990) as a composable subsystem.

Small fully-associative helpers that sit beside a main cache array and
absorb its conflict misses: the *victim cache* (holds evicted lines, swaps
on hit), the *miss cache* (holds recently missed lines, duplicated with
the main array) and *stream buffers* (N-deep sequential prefetch queues).
Any base :class:`~repro.core.caches.base.CacheModel` is composed with one
or more structures through :class:`AugmentedCache`, which attributes every
hit to its servicing structure (``direct`` / ``victim`` / ``miss_cache`` /
``stream``).

Direct-mapped compositions take an exact replay fast path
(:func:`simulate_augmented`, ``engine="auto"``) that vectorises the main
array and replays only the miss events — see :mod:`repro.core.aux.fast`
for the exactness argument.
"""

from .augmented import AugmentedCache
from .fast import (
    AUX_COMBOS,
    has_aux_fast_path,
    make_aux_structures,
    simulate_augmented,
    simulate_aux,
    simulate_aux_sweep,
)
from .structures import AuxStructure, MissCache, StreamBuffer, VictimBuffer

__all__ = [
    "AuxStructure",
    "VictimBuffer",
    "MissCache",
    "StreamBuffer",
    "AugmentedCache",
    "AUX_COMBOS",
    "make_aux_structures",
    "has_aux_fast_path",
    "simulate_augmented",
    "simulate_aux",
    "simulate_aux_sweep",
]
