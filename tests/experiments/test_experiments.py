"""End-to-end experiment tests at reduced scale.

These assert the *shape criteria* from DESIGN.md §4 — the qualitative
structure of each paper figure — not absolute numbers.  They run the full
pipeline (workload generation → simulation → reporting) at a small trace
length, with the trace cache pointed at a tmp dir.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.experiments import (
    MULTITHREAD_MIXES_FIG13,
    MULTITHREAD_MIXES_FIG14,
    PaperConfig,
    available_experiments,
    run_experiment,
)
from repro.workloads.mibench import MIBENCH_ORDER
from repro.workloads.spec import SPEC_ORDER


@pytest.fixture(scope="module")
def config(tmp_path_factory) -> PaperConfig:
    return replace(
        PaperConfig(),
        ref_limit=30_000,
        trace_cache_dir=tmp_path_factory.mktemp("traces"),
    )


class TestRegistry:
    def test_all_figures_registered(self):
        expected = {"fig1", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10",
                    "fig11", "fig12", "fig13", "fig14"}
        assert expected <= set(available_experiments())

    def test_unknown_experiment(self, config):
        with pytest.raises(KeyError):
            run_experiment("fig99", config)


class TestFig1(object):
    def test_nonuniformity_shape(self, config):
        r = run_experiment("fig1", config)
        # Paper: majority of sets below half average, small hot fraction.
        assert r.value("sets_below_half_avg_%", "value") > 50.0
        assert 0.0 < r.value("sets_above_double_avg_%", "value") < 40.0
        assert r.value("kurtosis", "value") > 3.0
        assert r.arrays["accesses_per_set"].size == 1024


class TestFig4:
    def test_rows_and_columns(self, config):
        r = run_experiment("fig4", config)
        assert set(r.rows) == set(MIBENCH_ORDER) | {"Average"}
        assert len(r.columns) == 5

    def test_mixed_signs_no_universal_winner(self, config):
        r = run_experiment("fig4", config)
        for col in r.columns:
            values = list(r.column(col).values())
            assert any(v < 0 for v in values) or any(abs(v) < 1e-9 for v in values), col
        # No scheme wins every benchmark.
        for col in r.columns:
            assert not all(
                r.rows[b].get(col, -1) >= max(r.rows[b].values()) - 1e-9
                for b in MIBENCH_ORDER
            )

    def test_fft_gains_are_large(self, config):
        """The aliasing real/imag arrays make fft the big indexing winner."""
        r = run_experiment("fig4", config)
        assert max(r.rows["fft"].values()) > 50.0


class TestFig6Fig7:
    def test_fig6_mostly_nonnegative(self, config):
        r = run_experiment("fig6", config)
        values = [v for b in MIBENCH_ORDER for v in r.rows[b].values()]
        negatives = [v for v in values if v < -5.0]
        assert len(negatives) <= 2  # paper: all >= 0; tolerate small noise

    def test_fig6_quiet_benchmarks(self, config):
        """bitcount/crc/qsort-class benchmarks show small effects for at
        least one scheme (the paper calls them negligible)."""
        r = run_experiment("fig6", config)
        assert abs(r.rows["susan"]["Column_associative"]) < 10.0

    def test_fig7_same_columns(self, config):
        r6 = run_experiment("fig6", config)
        r7 = run_experiment("fig7", config)
        assert r6.columns == r7.columns
        assert set(r7.rows) == set(r6.rows)

    def test_fig6_cached_with_fig7(self, config):
        assert run_experiment("fig6", config) is run_experiment("fig6", config)


class TestMomentFigures:
    @pytest.mark.parametrize("eid", ["fig9", "fig10"])
    def test_indexing_moment_figures(self, config, eid):
        r = run_experiment(eid, config)
        assert set(r.rows) == set(MIBENCH_ORDER) | {"Average"}

    @pytest.mark.parametrize("eid", ["fig11", "fig12"])
    def test_progassoc_reduces_moments_for_most(self, config, eid):
        r = run_experiment(eid, config)
        adaptives = [r.rows[b]["Adaptive_Cache"] for b in MIBENCH_ORDER]
        # Strong uniformity improvement: most benchmarks negative.
        assert sum(1 for v in adaptives if v <= 0) >= len(adaptives) // 2


class TestFig8:
    def test_rows(self, config):
        r = run_experiment("fig8", config)
        assert set(r.rows) == set(SPEC_ORDER) | {"Average"}

    def test_some_regressions_exist(self, config):
        """Paper: 'for some benchmarks the performance deteriorates'."""
        r = run_experiment("fig8", config)
        values = [v for b in SPEC_ORDER for v in r.rows[b].values()]
        assert any(v < 0 for v in values)


class TestFig13:
    def test_rows_are_mixes(self, config):
        r = run_experiment("fig13", config)
        assert len(r.rows) == len(MULTITHREAD_MIXES_FIG13) + 1

    def test_average_reduction_positive(self, config):
        r = run_experiment("fig13", config)
        assert r.value("Average", "reduction") > 0.0

    def test_conflict_heavy_mixes_gain_substantially(self, config):
        r = run_experiment("fig13", config)
        assert r.value("fft_susan", "reduction") > 20.0


class TestFig14:
    def test_rows_are_mixes(self, config):
        r = run_experiment("fig14", config)
        assert len(r.rows) == len(MULTITHREAD_MIXES_FIG14) + 1

    def test_average_improvement_positive(self, config):
        r = run_experiment("fig14", config)
        assert r.value("Average", "improvement") > 0.0

    def test_peak_improvement_large(self, config):
        """Paper: 'can reduce the AMAT by 60% for some applications'."""
        r = run_experiment("fig14", config)
        best = max(r.column("improvement").values())
        assert best > 40.0
