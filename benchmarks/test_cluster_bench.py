"""Cluster scaling canaries: distinct-key load over 1/2/4 workers.

Proves the router actually *scales* rather than merely forwarding: a fixed
batch of ``N_CELLS`` distinct-key cells (distinct ``odd_multiplier``
overrides → distinct content keys) is pushed through a router in front of
1, 2 and 4 workers, and the 2-/4-worker runs must beat the 1-worker run by
the ISSUE's gates (≥1.7× and ≥3.0×).

On a small CI box the simulations themselves are too cheap (and share one
CPU), so worker capacity is made explicit with the ``cell_delay`` config
knob: each cell occupies a worker slot for ``CELL_DELAY`` seconds, making
a worker's throughput ``SLOTS / CELL_DELAY`` cells/s — the standard
service-time model for load-generator benches.  Keys are pre-balanced
across the ring (the load-generator knows the placement function), so the
measured quantity is pure capacity scaling, not placement luck.

A fourth canary prices **cross-node warm hits**: a fresh cluster sharing
only the shared result store re-requests the 2-worker batch and must
answer every key without simulating anything.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from pathlib import Path

import pytest

from repro.cluster import ClusterRouter
from repro.experiments import PaperConfig
from repro.experiments.engine import cell_key, trace_fingerprint
from repro.experiments.runner import workload_trace
from repro.service import ReproServer, ServiceClient

#: Tiny simulation + explicit service time: the canaries measure capacity.
CLUSTER_REFS = 1500
CLUSTER_SCALE = 0.05
CELL_DELAY = 0.25
SLOTS = 4
N_CELLS = 32
WORKLOAD = "fft"

#: Scaling gates (ISSUE 7 acceptance criteria).
MIN_SPEEDUP_2W = 1.7
MIN_SPEEDUP_4W = 3.0

#: Cross-test state: 1-worker baseline time, and the 2-worker run's shared
#: store + key batch for the warm-hit canary.
_STATE: dict[str, object] = {}
_multiplier_counter = [101]


def _fresh_multipliers(n: int) -> list[int]:
    """``n`` odd multipliers never used before in this process (cold keys)."""
    out = []
    for _ in range(n):
        out.append(_multiplier_counter[0])
        _multiplier_counter[0] += 2
    return out


class _Daemon:
    """One server on a private event-loop thread (bench-local helper)."""

    def __init__(self, server):
        self.server = server
        self._started = threading.Event()
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._started.wait(60), "daemon did not start"

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def main() -> None:
            await self.server.start()
            self._started.set()
            await self.server.serve_forever()

        try:
            self._loop.run_until_complete(main())
        finally:
            self._started.set()
            self._loop.close()

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def addr(self) -> str:
        return f"127.0.0.1:{self.server.port}"

    def stop(self) -> None:
        import contextlib

        with contextlib.suppress(RuntimeError):
            self._loop.call_soon_threadsafe(self.server._stopping.set)
        self._thread.join(60)


class BenchCluster:
    """Router + N workers with per-node caches and a shared result store."""

    def __init__(self, root: Path, config: PaperConfig, n_workers: int,
                 shared_dir: Path | None = None):
        self.shared_dir = shared_dir or root / "shared-results"
        self.workers = [
            _Daemon(
                ReproServer(
                    replace(
                        config,
                        trace_cache_dir=root / f"w{i}" / "traces",
                        result_store="shared",
                        shared_store_dir=self.shared_dir,
                        cell_delay=CELL_DELAY,
                    ),
                    port=0,
                    workers=SLOTS,
                    use_processes=False,
                )
            )
            for i in range(n_workers)
        ]
        self.router = _Daemon(
            ClusterRouter(
                [w.addr for w in self.workers],
                replace(
                    config,
                    trace_cache_dir=root / "router" / "traces",
                    use_result_cache=False,
                ),
                port=0,
                probe_interval=0.5,
            )
        )

    def warm(self) -> None:
        """Pay every trace-generation cost outside the measured region."""
        for worker in self.workers:
            with ServiceClient("127.0.0.1", worker.port) as client:
                client.submit_cell("baseline", WORKLOAD, "baseline")
        with ServiceClient("127.0.0.1", self.router.port) as client:
            client.submit_cell("baseline", WORKLOAD, "baseline")

    def balanced_multipliers(self, config: PaperConfig, per_worker: int) -> list[int]:
        """Odd multipliers whose keys spread exactly evenly over the ring."""
        ring = self.router.server.ring
        trace_fp = trace_fingerprint(workload_trace(WORKLOAD, config))
        want = {node: per_worker for node in ring.nodes}
        chosen: list[int] = []
        while any(want.values()):
            [m] = _fresh_multipliers(1)
            key = cell_key(
                "indexing",
                "Odd_Multiplier",
                (("odd_multiplier", m),),
                config.geometry,
                trace_fp,
            )
            owner = ring.owner(key)
            if want[owner] > 0:
                want[owner] -= 1
                chosen.append(m)
        return chosen

    def run_load(self, multipliers: list[int]) -> int:
        """Submit one distinct-key cell per multiplier, fully concurrent."""

        def one(m: int) -> bool:
            with ServiceClient(
                "127.0.0.1", self.router.port, timeout=300.0
            ) as client:
                reply = client.submit_cell(
                    "indexing",
                    WORKLOAD,
                    "Odd_Multiplier",
                    config={"odd_multiplier": m},
                )
                return bool(reply["result"])

        with ThreadPoolExecutor(max_workers=len(multipliers)) as pool:
            return sum(pool.map(one, multipliers))

    def total_executed(self) -> int:
        return sum(w.server.stats.cells_executed for w in self.workers)

    def stop(self) -> None:
        self.router.stop()
        for worker in self.workers:
            worker.stop()


@pytest.fixture
def cluster_config(tmp_path) -> PaperConfig:
    return replace(
        PaperConfig(),
        ref_limit=CLUSTER_REFS,
        workload_scale=CLUSTER_SCALE,
        jobs=1,
        trace_cache_dir=tmp_path / "plan-traces",
    )


def _measure(benchmark, cluster: BenchCluster, multipliers: list[int]) -> float:
    warm_executed = cluster.total_executed()
    ok = benchmark.pedantic(
        lambda: cluster.run_load(multipliers), rounds=1, iterations=1
    )
    assert ok == N_CELLS, "not every distinct-key cell completed"
    # Distinct keys: every measured cell really simulated, exactly once.
    assert cluster.total_executed() - warm_executed == N_CELLS
    seconds = benchmark.stats.stats.min
    benchmark.extra_info["cells"] = N_CELLS
    benchmark.extra_info["cells_per_second"] = round(N_CELLS / seconds, 2)
    benchmark.extra_info["cell_delay"] = CELL_DELAY
    benchmark.extra_info["worker_slots"] = SLOTS
    return seconds


def test_cluster_scaling_1_worker(benchmark, cluster_config, tmp_path):
    cluster = BenchCluster(tmp_path, cluster_config, 1)
    try:
        cluster.warm()
        ms = cluster.balanced_multipliers(cluster_config, N_CELLS)
        _STATE["t1"] = _measure(benchmark, cluster, ms)
    finally:
        cluster.stop()


def test_cluster_scaling_2_workers(benchmark, cluster_config, tmp_path):
    cluster = BenchCluster(tmp_path, cluster_config, 2)
    try:
        cluster.warm()
        ms = cluster.balanced_multipliers(cluster_config, N_CELLS // 2)
        t2 = _measure(benchmark, cluster, ms)
        _STATE["warm_shared_dir"] = cluster.shared_dir
        _STATE["warm_multipliers"] = ms
        # Give the write-behind publishers a moment to drain so the warm
        # canary below sees every key in the shared tier.
        deadline = time.time() + 30
        while sum(1 for _ in Path(cluster.shared_dir).glob("*.npz")) < N_CELLS:
            assert time.time() < deadline, "shared-store publish did not drain"
            time.sleep(0.05)
    finally:
        cluster.stop()
    t1 = _STATE.get("t1")
    if isinstance(t1, float):  # run as a module: the scaling gate applies
        speedup = t1 / t2
        benchmark.extra_info["speedup_vs_1_worker"] = round(speedup, 2)
        assert speedup >= MIN_SPEEDUP_2W, (
            f"2-worker speedup {speedup:.2f}x below the {MIN_SPEEDUP_2W}x gate"
        )


def test_cluster_scaling_4_workers(benchmark, cluster_config, tmp_path):
    cluster = BenchCluster(tmp_path, cluster_config, 4)
    try:
        cluster.warm()
        ms = cluster.balanced_multipliers(cluster_config, N_CELLS // 4)
        t4 = _measure(benchmark, cluster, ms)
    finally:
        cluster.stop()
    t1 = _STATE.get("t1")
    if isinstance(t1, float):
        speedup = t1 / t4
        benchmark.extra_info["speedup_vs_1_worker"] = round(speedup, 2)
        assert speedup >= MIN_SPEEDUP_4W, (
            f"4-worker speedup {speedup:.2f}x below the {MIN_SPEEDUP_4W}x gate"
        )


def test_cluster_cross_node_warm_hits(benchmark, cluster_config, tmp_path):
    """A fresh node sharing only the store answers the batch without simulating."""
    shared = _STATE.get("warm_shared_dir")
    ms = _STATE.get("warm_multipliers")
    if not isinstance(shared, Path) or not isinstance(ms, list):
        pytest.skip("requires the 2-worker canary's shared store (run the module)")
    cluster = BenchCluster(tmp_path, cluster_config, 1, shared_dir=shared)
    try:
        cluster.warm()
        warm_executed = cluster.total_executed()
        ok = benchmark.pedantic(
            lambda: cluster.run_load(ms), rounds=1, iterations=1
        )
        assert ok == N_CELLS
        # The whole batch came out of the shared tier: zero simulations.
        assert cluster.total_executed() == warm_executed, (
            "cross-node warm keys were re-simulated"
        )
        seconds = benchmark.stats.stats.min
        benchmark.extra_info["cells"] = N_CELLS
        benchmark.extra_info["cells_per_second"] = round(N_CELLS / seconds, 2)
        # Warm hits skip the service-time floor entirely — the batch must
        # finish far faster than even one cold delay round.
        assert seconds < N_CELLS * CELL_DELAY / SLOTS
    finally:
        cluster.stop()
