"""Small public-API surface tests: package exports, stats helpers,
workload scaling, config immutability."""

from __future__ import annotations

from dataclasses import FrozenInstanceError

import numpy as np
import pytest

import repro
from repro.core.caches.base import AccessResult, CacheStats
from repro.experiments import PaperConfig
from repro.workloads.base import Workload


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__

    def test_headline_symbols_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_paper_geometry_is_the_default_everywhere(self):
        assert PaperConfig().geometry is repro.PAPER_L1_GEOMETRY


class TestCacheStats:
    def test_fraction_with_builtin_denominator(self):
        s = CacheStats(4)
        s.accesses = 10
        s.bump("rehash_hits", 3)
        assert s.fraction("rehash_hits", "accesses") == pytest.approx(0.3)

    def test_fraction_with_extra_denominator(self):
        s = CacheStats(4)
        s.bump("rehash_hits", 2)
        s.bump("probes2", 8)
        assert s.fraction("rehash_hits", "probes2") == pytest.approx(0.25)

    def test_fraction_zero_base(self):
        s = CacheStats(4)
        assert s.fraction("anything") == 0.0

    def test_summary_merges_extra(self):
        s = CacheStats(4)
        s.accesses = 2
        s.bump("out_hits")
        summary = s.summary()
        assert summary["out_hits"] == 1
        assert summary["accesses"] == 2

    def test_invariant_violation_detected(self):
        s = CacheStats(4)
        s.accesses = 5
        s.hits = 2
        s.misses = 2  # 2+2 != 5
        with pytest.raises(AssertionError):
            s.check_invariants()


class TestAccessResult:
    def test_defaults(self):
        r = AccessResult(True, 1, 0, 0)
        assert r.evicted_block is None
        assert r.hit_class == ""


class TestWorkloadScaled:
    def test_scaling_math(self):
        assert Workload.scaled(100, 0.5) == 50
        assert Workload.scaled(100, 0.001, minimum=8) == 8
        assert Workload.scaled(3, 1.0) == 3

    def test_rounding(self):
        assert Workload.scaled(10, 0.25) == 2  # round(2.5) banker's -> 2


class TestPaperConfig:
    def test_frozen(self):
        cfg = PaperConfig()
        with pytest.raises(FrozenInstanceError):
            cfg.seed = 1  # type: ignore[misc]

    def test_scaled_down_preserves_other_fields(self):
        cfg = PaperConfig().scaled_down(1000, scale=0.5)
        assert cfg.ref_limit == 1000
        assert cfg.workload_scale == 0.5
        assert cfg.seed == PaperConfig().seed
        assert cfg.geometry is PaperConfig().geometry

    def test_paper_constants(self):
        cfg = PaperConfig()
        assert cfg.geometry.num_sets == 1024
        assert cfg.sht_fraction == pytest.approx(3 / 8)
        assert cfg.out_fraction == pytest.approx(1 / 4)
        assert cfg.smt_multipliers == (9, 31, 21, 61)
