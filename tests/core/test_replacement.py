"""Replacement-policy tests, including an oracle cross-check for LRU."""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.replacement import (
    POLICIES,
    FIFOPolicy,
    LFUPolicy,
    LRUPolicy,
    MRUPolicy,
    PLRUPolicy,
    RandomPolicy,
    make_policy,
)


class TestRegistry:
    def test_all_policies_registered(self):
        assert set(POLICIES) == {"lru", "fifo", "random", "plru", "mru", "lfu"}

    def test_make_policy(self):
        p = make_policy("lru", 4, 2)
        assert isinstance(p, LRUPolicy)

    def test_make_unknown_raises(self):
        with pytest.raises(KeyError):
            make_policy("belady", 4, 2)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            LRUPolicy(0, 2)


class TestLRU:
    def test_evicts_least_recent(self):
        p = LRUPolicy(1, 4)
        for way in range(4):
            p.touch(0, way)
        p.touch(0, 0)  # way 1 now oldest
        assert p.victim(0) == 1

    def test_untouched_ways_preferred(self):
        p = LRUPolicy(2, 4)
        p.touch(0, 0)
        p.touch(0, 2)
        assert p.victim(0) in (1, 3)

    def test_sets_independent(self):
        p = LRUPolicy(2, 2)
        p.touch(0, 0)
        p.touch(0, 1)
        # Set 1 untouched: any way is a valid victim (stamp -1).
        assert p.victim(1) in (0, 1)
        assert p.victim(0) == 0

    def test_invalidate_resets(self):
        p = LRUPolicy(1, 2)
        p.touch(0, 0)
        p.touch(0, 1)
        p.invalidate(0, 1)
        assert p.victim(0) == 1

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=60))
    def test_against_ordered_dict_oracle(self, touches):
        """LRUPolicy.victim must agree with an OrderedDict LRU model."""
        p = LRUPolicy(1, 4)
        oracle: OrderedDict[int, None] = OrderedDict((w, None) for w in range(4))
        for way in touches:
            p.touch(0, way)
            oracle.move_to_end(way)
        assert p.victim(0) == next(iter(oracle))


class TestFIFO:
    def test_hits_do_not_reorder(self):
        p = FIFOPolicy(1, 2)
        p.fill(0, 0)
        p.fill(0, 1)
        p.touch(0, 0)  # a hit
        assert p.victim(0) == 0

    def test_fill_order(self):
        p = FIFOPolicy(1, 3)
        for way in (2, 0, 1):
            p.fill(0, way)
        assert p.victim(0) == 2


class TestRandom:
    def test_deterministic_given_seed(self):
        a = RandomPolicy(1, 8, seed=42)
        b = RandomPolicy(1, 8, seed=42)
        assert [a.victim(0) for _ in range(20)] == [b.victim(0) for _ in range(20)]

    def test_reset_replays(self):
        p = RandomPolicy(1, 8, seed=7)
        first = [p.victim(0) for _ in range(10)]
        p.reset()
        assert [p.victim(0) for _ in range(10)] == first

    def test_in_range(self):
        p = RandomPolicy(1, 4, seed=0)
        assert all(0 <= p.victim(0) < 4 for _ in range(100))


class TestPLRU:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            PLRUPolicy(1, 3)

    def test_victim_avoids_most_recent(self):
        p = PLRUPolicy(1, 4)
        for way in range(4):
            p.touch(0, way)
        # The most recently touched way is never the PLRU victim.
        assert p.victim(0) != 3

    def test_two_way_is_exact_lru(self):
        p = PLRUPolicy(1, 2)
        lru = LRUPolicy(1, 2)
        rng = np.random.default_rng(0)
        for way in rng.integers(0, 2, size=50):
            p.touch(0, int(way))
            lru.touch(0, int(way))
            assert p.victim(0) == lru.victim(0)

    def test_single_way(self):
        p = PLRUPolicy(1, 1)
        p.touch(0, 0)
        assert p.victim(0) == 0


class TestMRU:
    def test_evicts_most_recent_when_full(self):
        p = MRUPolicy(1, 3)
        for way in range(3):
            p.touch(0, way)
        assert p.victim(0) == 2

    def test_prefers_untouched(self):
        p = MRUPolicy(1, 3)
        p.touch(0, 0)
        assert p.victim(0) == 1


class TestTieBreakContracts:
    """Lock the tie-break determinism the fastpolicy kernels replicate.

    The module docstring of :mod:`repro.core.replacement` promises that
    every argmin/argmax victim walk resolves ties toward the lowest way
    index and that ``RandomPolicy`` replays word-for-word across
    ``reset()``.  These regressions pin that contract: if any of them
    breaks, :mod:`repro.core.fastpolicy` is no longer bit-exact.
    """

    def test_lfu_equal_counts_pick_lowest_way(self):
        p = LFUPolicy(1, 4)
        for way in range(4):
            p.touch(0, way)  # all counts equal (1)
        assert p.victim(0) == 0
        p.touch(0, 0)  # way 0 now ahead; 1..3 tie at 1
        assert p.victim(0) == 1

    def test_lfu_zero_count_ties_pick_lowest_way(self):
        assert LFUPolicy(1, 4).victim(0) == 0

    def test_fifo_never_filled_ties_pick_lowest_way(self):
        p = FIFOPolicy(1, 4)
        assert p.victim(0) == 0
        p.fill(0, 0)
        assert p.victim(0) == 1  # ways 1..3 still tie at -1

    def test_mru_untouched_ties_pick_lowest_way(self):
        p = MRUPolicy(1, 4)
        assert p.victim(0) == 0
        p.touch(0, 2)
        assert p.victim(0) == 0  # untouched {0,1,3}: lowest first

    def test_mru_full_victim_is_previous_touch(self):
        # The strictly increasing clock makes argmax unique: the victim is
        # exactly the way of the set's previous touch (the reduction the
        # MRU fast kernel relies on).
        p = MRUPolicy(1, 4)
        rng = np.random.default_rng(3)
        for way in range(4):
            p.touch(0, way)
        for way in rng.integers(0, 4, size=60):
            p.touch(0, int(way))
            assert p.victim(0) == int(way)

    def test_lru_untouched_ties_pick_lowest_way(self):
        p = LRUPolicy(1, 4)
        p.touch(0, 1)
        assert p.victim(0) == 0  # untouched {0,2,3} tie at -1

    def test_plru_all_zero_bits_walk_to_way_zero(self):
        for ways in (1, 2, 4, 8):
            assert PLRUPolicy(1, ways).victim(0) == 0, ways

    def test_plru_retouch_idempotent(self):
        # Re-touching the most recent way rewrites the same bits — the
        # property that lets the fast kernel collapse hit runs.
        p = PLRUPolicy(1, 8)
        rng = np.random.default_rng(5)
        for way in rng.integers(0, 8, size=40):
            p.touch(0, int(way))
            before = p._bits.copy()
            p.touch(0, int(way))
            np.testing.assert_array_equal(p._bits, before)

    def test_random_victim_sequence_word_exact_across_reset(self):
        # The exact draw stream (not just its distribution) is contract:
        # the Random fast kernel reconstructs the post-run generator by
        # advancing a fresh one, which is only exact if reset() replays
        # word-for-word.
        p = RandomPolicy(4, 8, seed=2011)
        first = [p.victim(i % 4) for i in range(64)]
        state = p._rng.bit_generator.state
        p.reset()
        assert [p.victim(i % 4) for i in range(64)] == first
        assert p._rng.bit_generator.state == state

    def test_random_touch_and_fill_consume_no_randomness(self):
        p = RandomPolicy(2, 4, seed=9)
        state = p._rng.bit_generator.state
        p.touch(0, 1)
        p.fill(1, 2)
        assert p._rng.bit_generator.state == state

    def test_random_bulk_draws_match_scalar(self):
        # NumPy's bulk integers() must consume the PCG64 stream exactly
        # like scalar draws (the Random kernel's bulk mode; fastpolicy
        # probes this at runtime and falls back if it ever changes).
        for ways in (2, 4, 8):
            a = np.random.default_rng(42)
            b = np.random.default_rng(42)
            scal = [int(a.integers(ways)) for _ in range(50)]
            bulk = b.integers(ways, size=50).tolist()
            assert scal == bulk, ways
            assert a.bit_generator.state == b.bit_generator.state, ways


class TestLFU:
    def test_evicts_least_frequent(self):
        p = LFUPolicy(1, 3)
        for way, count in ((0, 5), (1, 2), (2, 7)):
            for _ in range(count):
                p.touch(0, way)
        assert p.victim(0) == 1

    def test_fill_resets_count(self):
        p = LFUPolicy(1, 2)
        for _ in range(10):
            p.touch(0, 0)
        p.touch(0, 1)
        p.touch(0, 1)
        p.fill(0, 0)  # new block in way 0: count back to 1
        assert p.victim(0) == 0
