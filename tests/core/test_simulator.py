"""Simulation-engine tests: the vectorised fast path must agree exactly
with the sequential reference engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.address import PAPER_L1_GEOMETRY, CacheGeometry
from repro.core.caches import DirectMappedCache
from repro.core.fastsim import direct_mapped_miss_flags, per_set_counts
from repro.core.indexing import (
    ModuloIndexing,
    OddMultiplierIndexing,
    PrimeModuloIndexing,
    XorIndexing,
)
from repro.core.simulator import simulate, simulate_indexing, warmup_split
from repro.trace import Trace, sequential_sweep, uniform_trace, zipf_trace

G = PAPER_L1_GEOMETRY


class TestFastsim:
    def test_empty_trace(self):
        flags = direct_mapped_miss_flags(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert flags.size == 0

    def test_first_access_is_miss(self):
        flags = direct_mapped_miss_flags(np.array([1, 1, 1]), np.array([0, 0, 0]))
        assert flags.tolist() == [True, False, False]

    def test_conflict_detected(self):
        # Two blocks alternating in one set: every access misses.
        flags = direct_mapped_miss_flags(np.array([1, 2, 1, 2]), np.array([0, 0, 0, 0]))
        assert flags.all()

    def test_independent_sets(self):
        flags = direct_mapped_miss_flags(np.array([1, 2, 1, 2]), np.array([0, 1, 0, 1]))
        assert flags.tolist() == [True, True, False, False]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            direct_mapped_miss_flags(np.array([1, 2]), np.array([0]))

    def test_per_set_counts(self):
        idx = np.array([0, 0, 3, 3, 3])
        miss = np.array([True, False, True, False, False])
        acc, mis = per_set_counts(idx, miss, 4)
        assert acc.tolist() == [2, 0, 0, 3]
        assert mis.tolist() == [1, 0, 0, 1]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 3)), min_size=1, max_size=200))
    def test_matches_naive_model(self, pairs):
        """Property: sort-based miss flags equal a dict-based DM model."""
        blocks = np.array([b for b, _ in pairs], dtype=np.int64)
        indices = np.array([s for _, s in pairs], dtype=np.int64)
        flags = direct_mapped_miss_flags(blocks, indices)
        resident: dict[int, int] = {}
        for i, (b, s) in enumerate(pairs):
            expected_miss = resident.get(s) != b
            assert flags[i] == expected_miss
            resident[s] = b


class TestVectorisedVsSequential:
    @pytest.mark.parametrize(
        "scheme_factory",
        [ModuloIndexing, XorIndexing, PrimeModuloIndexing, lambda g: OddMultiplierIndexing(g, 31)],
    )
    def test_engines_agree(self, scheme_factory, zipf):
        scheme = scheme_factory(G)
        fast = simulate_indexing(scheme, zipf, G)
        slow = simulate(DirectMappedCache(G, scheme), zipf)
        assert fast.misses == slow.misses
        assert fast.accesses == slow.accesses
        np.testing.assert_array_equal(fast.slot_misses, slow.slot_misses)
        np.testing.assert_array_equal(fast.slot_accesses, slow.slot_accesses)

    def test_engines_agree_on_sweep(self):
        t = sequential_sweep(10_000, stride=32)
        scheme = ModuloIndexing(G)
        assert simulate_indexing(scheme, t).misses == simulate(DirectMappedCache(G, scheme), t).misses

    def test_rejects_multiway_geometry(self, zipf):
        g2 = CacheGeometry(32 * 1024, 32, 2)
        with pytest.raises(ValueError):
            simulate_indexing(ModuloIndexing(G), zipf, g2)

    def test_lookup_cycles_one_per_access(self, zipf):
        res = simulate_indexing(ModuloIndexing(G), zipf)
        assert res.lookup_cycles == res.accesses


class TestWarmup:
    def test_warmup_excluded_from_stats(self, zipf):
        res = simulate_indexing(ModuloIndexing(G), zipf, warmup=5000)
        assert res.accesses == len(zipf) - 5000

    def test_warmup_engines_agree(self, zipf):
        scheme = ModuloIndexing(G)
        fast = simulate_indexing(scheme, zipf, warmup=3000)
        slow = simulate(DirectMappedCache(G, scheme), zipf, warmup=3000)
        assert fast.misses == slow.misses

    def test_warmup_reduces_cold_misses(self, uniform):
        cold = simulate_indexing(ModuloIndexing(G), uniform)
        warm = simulate_indexing(ModuloIndexing(G), uniform, warmup=10_000)
        assert warm.miss_rate <= cold.miss_rate + 0.05

    def test_warmup_too_long_rejected(self, zipf):
        with pytest.raises(ValueError):
            simulate_indexing(ModuloIndexing(G), zipf, warmup=len(zipf))
        with pytest.raises(ValueError):
            simulate(DirectMappedCache(G), zipf, warmup=len(zipf))


class TestWarmupSplit:
    def test_split_lengths(self, zipf):
        train, test = warmup_split(zipf, 0.25)
        assert len(train) == len(zipf) // 4
        assert len(train) + len(test) == len(zipf)

    def test_bad_fraction(self, zipf):
        with pytest.raises(ValueError):
            warmup_split(zipf, 0.0)


class TestSimulationResult:
    def test_amat_uses_cycles(self, zipf):
        res = simulate_indexing(ModuloIndexing(G), zipf)
        from repro.core.amat import TimingModel

        t = TimingModel(miss_penalty=10)
        assert res.amat(t) == pytest.approx(1.0 + res.miss_rate * 10)

    def test_summary_keys(self, zipf):
        s = simulate_indexing(ModuloIndexing(G), zipf).summary()
        assert {"model", "trace", "accesses", "misses", "miss_rate"} <= set(s)

    def test_fraction_helper(self, zipf):
        res = simulate_indexing(ModuloIndexing(G), zipf)
        assert res.fraction("direct_hits", "accesses") == pytest.approx(res.hit_rate)

    def test_invariant_check_hook(self, zipf):
        from repro.core.caches import ColumnAssociativeCache

        res = simulate(ColumnAssociativeCache(G), zipf, check_invariants_every=2000)
        assert res.accesses == len(zipf)
