"""Conformance: every registered scheme's ``indices_of`` ≡ ``index_of``.

The base-class fallback used to write through an ``out.ravel()`` view —
silent data loss whenever ``ravel`` copies.  It now materialises via
``np.fromiter``; this suite locks the elementwise contract for **every**
scheme in the registry (trainables post-``fit``), over contiguous,
non-contiguous (strided) and multi-dimensional address arrays, so neither
the base fallback nor any vectorised override can drift from the scalar
definition.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.address import CacheGeometry
from repro.core.indexing import (
    IndexingScheme,
    TrainableIndexingScheme,
    available_schemes,
    make_scheme,
)

GEOMETRY = CacheGeometry(capacity_bytes=2048, line_bytes=16, ways=1, address_bits=20)


def _fitted_scheme(name: str, rng: np.random.Generator) -> IndexingScheme:
    params = {}
    if name == "bit_select":
        params["positions"] = tuple(
            range(GEOMETRY.offset_bits, GEOMETRY.offset_bits + GEOMETRY.index_bits)
        )[::-1]
    scheme = make_scheme(name, GEOMETRY, **params)
    if isinstance(scheme, TrainableIndexingScheme):
        fit_addrs = rng.integers(
            0, 1 << GEOMETRY.address_bits, size=3000, dtype=np.uint64
        )
        scheme.fit(fit_addrs)
    return scheme


@pytest.mark.parametrize("name", available_schemes())
def test_indices_of_matches_index_of_elementwise(name):
    rng = np.random.default_rng(1234)
    scheme = _fitted_scheme(name, rng)
    addrs = rng.integers(0, 1 << GEOMETRY.address_bits, size=2000, dtype=np.uint64)
    vec = scheme.indices_of(addrs)
    ref = np.array([scheme.index_of(int(a)) for a in addrs], dtype=np.int64)
    np.testing.assert_array_equal(vec, ref, err_msg=name)
    assert vec.dtype == np.int64, name
    assert int(vec.min(initial=0)) >= 0 and int(vec.max(initial=0)) < GEOMETRY.num_sets


@pytest.mark.parametrize("name", available_schemes())
def test_indices_of_handles_non_contiguous_and_nd_input(name):
    rng = np.random.default_rng(99)
    scheme = _fitted_scheme(name, rng)
    addrs = rng.integers(0, 1 << GEOMETRY.address_bits, size=600, dtype=np.uint64)

    strided = addrs[::3]  # non-contiguous view
    np.testing.assert_array_equal(
        scheme.indices_of(strided),
        np.array([scheme.index_of(int(a)) for a in strided], dtype=np.int64),
        err_msg=f"{name}/strided",
    )

    shaped = addrs[:120].reshape(4, 30)  # shape must be preserved
    out = scheme.indices_of(shaped)
    assert out.shape == shaped.shape, name
    np.testing.assert_array_equal(
        out.ravel(),
        np.array([scheme.index_of(int(a)) for a in shaped.ravel()], dtype=np.int64),
        err_msg=f"{name}/2d",
    )


@pytest.mark.parametrize("name", available_schemes())
def test_indices_of_empty_input(name):
    rng = np.random.default_rng(5)
    scheme = _fitted_scheme(name, rng)
    out = scheme.indices_of(np.empty(0, dtype=np.uint64))
    assert out.shape == (0,) and out.dtype == np.int64


def test_base_fallback_uses_scalar_map():
    """A scheme with *only* ``index_of`` must still vectorise correctly."""

    class OnlyScalar(IndexingScheme):
        name = "only-scalar"

        def index_of(self, address: int) -> int:
            return (address >> GEOMETRY.offset_bits) % GEOMETRY.num_sets

    scheme = OnlyScalar(GEOMETRY)
    addrs = np.arange(0, 500 * GEOMETRY.line_bytes, GEOMETRY.line_bytes, dtype=np.uint64)
    np.testing.assert_array_equal(
        scheme.indices_of(addrs),
        np.array([scheme.index_of(int(a)) for a in addrs], dtype=np.int64),
    )
    # Strided + 2-D through the fallback specifically.
    view = addrs[::7]
    np.testing.assert_array_equal(
        scheme.indices_of(view),
        np.array([scheme.index_of(int(a)) for a in view], dtype=np.int64),
    )
    grid = addrs[:60].reshape(6, 10)
    assert scheme.indices_of(grid).shape == (6, 10)
