"""Fan-out executor: run a list of cells, memoized and optionally parallel.

``run_cells`` (or the thin :class:`ExperimentEngine` wrapper the figure
runners use) takes the declared cell list of one experiment grid and

1. pre-warms the on-disk trace cache *in parallel* through
   :func:`repro.experiments.warm.warm_traces` — every missing workload and
   profiling trace is generated concurrently on the same worker budget, and
   content fingerprints are computed inside the workers; the parent never
   loads a trace, and cell workers are handed trace-file *paths*
   (mapped locally through the process-wide trace arena), never pickled
   address arrays;
2. answers as many cells as possible from the content-addressed
   :class:`~repro.experiments.engine.cache.ResultCache`;
3. executes the remaining cells either in-process (``jobs=1``, the
   deterministic sequential fallback) or on a ``ProcessPoolExecutor``
   (``jobs>1``; ``jobs=0`` means ``os.cpu_count()``); then
4. returns ``{(workload, label): SimulationResult}`` **in declared cell
   order** plus an :class:`EngineStats` with cache-hit/miss counters and
   per-cell wall times.

Because every cell is a pure function of its spec and aggregation order is
fixed by the caller's declaration order, parallel runs are bit-identical to
sequential ones — a property locked down by
``tests/experiments/test_parallel_engine.py``.

Worker failures are re-raised in the parent as
:class:`~repro.experiments.engine.cells.CellExecutionError` naming the
failing (workload, scheme) cell, with the original exception chained.

Serving-layer hooks
-------------------
The warm-and-key step is factored out as :func:`plan_cells` (returning a
:class:`CellPlan`), which is **the** key-derivation path: the
:mod:`repro.service` request normalizer calls the same function, so a
service request and an in-process run can never derive different
result-cache keys (audited by ``tests/service/test_key_parity.py``).

Two :mod:`contextvars` scopes let a long-lived host embed the engine
without touching the figure runners (which construct their own
:class:`ExperimentEngine`):

* :func:`progress_scope` — a per-context progress callback invoked after
  every cell settles (cache hits and fresh simulations alike), so a server
  can stream cell completions while ``run_experiment`` is still working;
* :func:`engine_pool_scope` — a per-context persistent executor that
  ``run_cells`` submits pending cells to *instead of* spawning (and tearing
  down) its own ``ProcessPoolExecutor``, amortizing warm worker pools
  across requests.

Per-cell timeouts
-----------------
``cell_timeout`` (``config.cell_timeout`` / ``--cell-timeout``) bounds how
long the engine waits for any single cell.  On the pool path a cell that
exceeds the budget fails *with attribution* (a :class:`CellExecutionError`
naming the cell) instead of blocking the whole run forever; remaining
futures are cancelled and an engine-owned pool is abandoned without
joining the hung worker.  The ``jobs=1`` in-process path cannot preempt a
running cell, so there the timeout is enforced post-hoc (the run still
fails, naming the offending cell, as soon as the cell returns).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import CancelledError as FutureCancelledError
from concurrent.futures import Executor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from ...core.simulator import SimulationResult
from ..config import PaperConfig
from .cache import cell_key
from .cells import CellExecutionError, SimCell, timed_execute_cell
from .families import SweepFamily, detect_families, execute_family
from .store import ResultStore, make_store

__all__ = [
    "CellPlan",
    "EngineStats",
    "ExperimentEngine",
    "effective_jobs",
    "engine_pool_scope",
    "plan_cells",
    "progress_scope",
    "run_cells",
]


def effective_jobs(jobs: int | None) -> int:
    """Resolve a ``--jobs`` value: ``None``/``0``/negative → all cores."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


# -- embedding hooks (used by repro.service) ---------------------------------------

#: Progress callback ``(cell_name, done, total, cached)`` invoked in the
#: parent after every cell settles.  ContextVar so concurrent experiment
#: runs in one process (e.g. server threads) never see each other's hook.
_PROGRESS_HOOK: ContextVar[Callable[[str, int, int, bool], None] | None] = ContextVar(
    "repro_engine_progress_hook", default=None
)

#: Persistent executor override: when set, ``run_cells`` submits pending
#: cells here instead of creating (and tearing down) its own pool.
_POOL_OVERRIDE: ContextVar[Executor | None] = ContextVar(
    "repro_engine_pool_override", default=None
)


@contextmanager
def progress_scope(hook: Callable[[str, int, int, bool], None]):
    """Invoke ``hook(cell_name, done, total, cached)`` after each cell."""
    token = _PROGRESS_HOOK.set(hook)
    try:
        yield
    finally:
        _PROGRESS_HOOK.reset(token)


@contextmanager
def engine_pool_scope(executor: Executor):
    """Route every ``run_cells`` in this context onto ``executor``.

    The engine never shuts the injected executor down — ownership stays
    with the caller (the serving layer keeps one warm pool for its whole
    lifetime).  Works with any :class:`concurrent.futures.Executor`.
    """
    token = _POOL_OVERRIDE.set(executor)
    try:
        yield
    finally:
        _POOL_OVERRIDE.reset(token)


# -- stats -------------------------------------------------------------------------


@dataclass
class EngineStats:
    """Counters for one engine invocation (exposed on ``ExperimentResult``)."""

    jobs: int = 1
    cells_total: int = 0
    cache_hits: int = 0
    #: Cells actually simulated this run (== cache misses).
    cache_misses: int = 0
    wall_seconds: float = 0.0
    #: Multi-member sweep families executed this run (see
    #: :mod:`repro.experiments.engine.families`).
    families_batched: int = 0
    #: Cells answered through those batched families.
    cells_batched: int = 0
    #: Per-cell simulation wall time, keyed ``"workload/label"``.
    cell_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def simulated(self) -> int:
        return self.cache_misses

    def merge(self, other: "EngineStats") -> "EngineStats":
        """Accumulate another invocation (figures sharing one grid)."""
        self.cells_total += other.cells_total
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.wall_seconds += other.wall_seconds
        self.families_batched += other.families_batched
        self.cells_batched += other.cells_batched
        self.cell_seconds.update(other.cell_seconds)
        return self

    def as_dict(self) -> dict[str, Any]:
        return {
            "jobs": self.jobs,
            "cells_total": self.cells_total,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "wall_seconds": round(self.wall_seconds, 6),
            "families_batched": self.families_batched,
            "cells_batched": self.cells_batched,
            "cell_seconds": {k: round(v, 6) for k, v in self.cell_seconds.items()},
        }

    def summary(self) -> str:
        batched = (
            f", {self.cells_batched} batched into {self.families_batched} families"
            if self.families_batched
            else ""
        )
        return (
            f"{self.cells_total} cells: {self.cache_hits} cached, "
            f"{self.cache_misses} simulated{batched}, jobs={self.jobs}, "
            f"{self.wall_seconds:.2f}s"
        )


# -- planning (warm + key derivation, shared with repro.service) -------------------


@dataclass(frozen=True)
class CellPlan:
    """Everything ``run_cells`` (or the service) needs after trace warm-up.

    ``keys`` is the *only* result-cache key derivation in the codebase:
    both the in-process engine and the job server's request normalizer go
    through :func:`plan_cells`, so their keys are byte-identical by
    construction (and audited by test).
    """

    cells: tuple[SimCell, ...]
    #: Content-addressed result-cache key per cell.
    keys: dict[SimCell, str]
    #: Npz path of each workload's (pre-warmed) evaluation trace.
    trace_paths: dict[str, Path]
    #: Npz path of each profiling trace (trainable-scheme cells only).
    profile_paths: dict[str, Path]
    #: Content fingerprints backing the keys (diagnostics / parity tests).
    trace_fingerprints: dict[str, str]
    profile_fingerprints: dict[str, str]
    #: Sweep-family partition of ``cells`` (see
    #: :func:`~repro.experiments.engine.families.detect_families`) — an
    #: execution plan only; keys above are per-cell and batching-invariant.
    families: tuple[SweepFamily, ...] = ()


def _warm_and_fingerprint(
    cells: Sequence[SimCell], config: PaperConfig, jobs: int
) -> tuple[dict[str, str], dict[str, str], dict[str, Any], dict[str, Any]]:
    """Materialise every needed trace concurrently and fingerprint it.

    The needed-trace set (evaluation traces plus profiling runs for
    trainable-scheme cells) is warmed through
    :func:`repro.experiments.warm.warm_traces` on the engine's worker
    budget; fingerprints are computed in the workers, so the parent's cost
    is independent of trace length.  Workers later receive the on-disk
    trace *paths* (a few bytes each) rather than pickled address arrays.
    """
    from ..warm import TraceWarmError, profile_spec, warm_traces, workload_spec

    eval_specs = {}
    prof_specs = {}
    for cell in cells:
        if cell.workload not in eval_specs:
            eval_specs[cell.workload] = workload_spec(cell.workload, config)
        if cell.needs_profile and cell.workload not in prof_specs:
            prof_specs[cell.workload] = profile_spec(cell.workload, config)
    try:
        entries = warm_traces(
            list(eval_specs.values()) + list(prof_specs.values()),
            config,
            jobs=jobs,
            fingerprints=True,
        )
    except TraceWarmError as exc:
        owner = next((c for c in cells if c.workload == exc.spec.name), None)
        where = (
            f"experiment cell ({owner.workload}, {owner.label})"
            if owner is not None
            else f"workload {exc.spec.name!r}"
        )
        raise CellExecutionError(
            f"{where} failed during trace prefetch: {exc.__cause__}"
        ) from exc
    trace_fp = {w: entries[s].fingerprint for w, s in eval_specs.items()}
    trace_paths: dict[str, Any] = {w: entries[s].path for w, s in eval_specs.items()}
    profile_fp = {w: entries[s].fingerprint for w, s in prof_specs.items()}
    profile_paths: dict[str, Any] = {
        w: entries[s].path for w, s in prof_specs.items()
    }
    return trace_fp, profile_fp, trace_paths, profile_paths


def plan_cells(
    cells: Iterable[SimCell], config: PaperConfig, jobs: int | None = None
) -> CellPlan:
    """Warm every trace the cells need and derive their result-cache keys.

    This is the single shared front half of cell execution: ``run_cells``
    calls it before scheduling, and :mod:`repro.service` calls it to
    normalize network requests to the exact keys the in-process path uses.
    """
    cells = tuple(cells)
    jobs = effective_jobs(config.jobs if jobs is None else jobs)
    trace_fp, profile_fp, trace_paths, profile_paths = _warm_and_fingerprint(
        cells, config, jobs
    )
    keys = {
        cell: cell_key(
            cell.kind,
            cell.label,
            cell.params,
            config.geometry,
            trace_fp[cell.workload],
            profile_fp.get(cell.workload) if cell.needs_profile else None,
            ways=cell.ways,
            policy=cell.policy,
        )
        for cell in cells
    }
    return CellPlan(
        cells=cells,
        keys=keys,
        trace_paths={w: Path(p) for w, p in trace_paths.items()},
        profile_paths={w: Path(p) for w, p in profile_paths.items()},
        trace_fingerprints=trace_fp,
        profile_fingerprints=profile_fp,
        families=detect_families(cells, config),
    )


# -- execution ---------------------------------------------------------------------


def run_cells(
    cells: Iterable[SimCell],
    config: PaperConfig,
    jobs: int | None = None,
    result_cache: ResultStore | None = None,
    cell_timeout: float | None = None,
) -> tuple[dict[tuple[str, str], SimulationResult], EngineStats]:
    """Execute a cell grid; see the module docstring for the contract."""
    owns_store = False
    if result_cache is None and config.use_result_cache:
        result_cache = make_store(config)
        owns_store = True
    try:
        return _run_cells(cells, config, jobs, result_cache, cell_timeout)
    finally:
        if owns_store and result_cache is not None:
            # A run-owned write-behind store must be durable before we
            # return — even on a failed run, so completed members persisted
            # by ``_store_partial`` reach the shared tier (a long-lived
            # host owns its store's lifecycle itself).
            result_cache.flush()
            result_cache.close()


def _run_cells(
    cells: Iterable[SimCell],
    config: PaperConfig,
    jobs: int | None,
    result_cache: ResultStore | None,
    cell_timeout: float | None,
) -> tuple[dict[tuple[str, str], SimulationResult], EngineStats]:
    cells = list(cells)
    jobs = effective_jobs(config.jobs if jobs is None else jobs)
    if cell_timeout is None:
        cell_timeout = config.cell_timeout
    t_start = time.perf_counter()
    stats = EngineStats(jobs=jobs, cells_total=len(cells))
    progress = _PROGRESS_HOOK.get()
    done = 0

    def _notify(cell: SimCell, cached: bool) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(cell.name, done, len(cells), cached)

    plan = plan_cells(cells, config, jobs)
    keys = plan.keys
    trace_paths = plan.trace_paths
    profile_paths = plan.profile_paths

    results: dict[tuple[str, str], SimulationResult] = {}
    pending: list[SimCell] = []
    for cell in cells:
        cached = result_cache.load(keys[cell]) if result_cache is not None else None
        if cached is not None:
            results[(cell.workload, cell.label)] = cached
            stats.cache_hits += 1
            _notify(cell, cached=True)
        else:
            pending.append(cell)

    pool = _POOL_OVERRIDE.get()
    computed: dict[SimCell, tuple[SimulationResult, float]] = {}

    def _store_partial() -> None:
        # Persist what already finished before surfacing a family failure:
        # a mid-batch failure must leave completed members' cache entries
        # valid, not poison the whole family.
        if result_cache is not None:
            for done_cell, (done_result, _seconds) in computed.items():
                result_cache.store(keys[done_cell], done_result)

    def _settle_family(family: SweepFamily, family_completed, family_failure) -> None:
        for member, member_result, member_seconds in family_completed:
            computed[member] = (member_result, member_seconds)
            _notify(member, cached=False)
        if family_failure is not None:
            workload, label, message = family_failure
            _store_partial()
            # The worker ships the failure as a string (arbitrary exception
            # types must not need cross-process pickling); re-hydrate a
            # cause so ``__cause__`` always carries the original message.
            raise CellExecutionError(
                f"experiment cell ({workload}, {label}) failed: {message}"
            ) from RuntimeError(message)
        stats.families_batched += 1
        stats.cells_batched += len(family.members)

    if pending:
        # Restrict the planned family partition to the cells still pending
        # (cache hits drop out member-by-member); families reduced to one
        # member fall back to the ordinary per-cell path.
        pend = set(pending)
        units: list[SweepFamily] = []
        loose: list[SimCell] = []
        for family in plan.families:
            members = tuple(c for c in family.members if c in pend)
            if len(members) >= 2:
                units.append(
                    SweepFamily(family.axis, family.workload, members, family.signature)
                )
            else:
                loose.extend(members)
        covered = {c for u in units for c in u.members} | set(loose)
        loose.extend(dict.fromkeys(c for c in pending if c not in covered))

        if pool is None and (jobs <= 1 or len(units) + len(loose) == 1):
            for family in units:
                t0_family = time.perf_counter()
                family_completed, family_failure = execute_family(
                    family,
                    config,
                    trace_paths.get(family.workload),
                    profile_paths.get(family.workload),
                )
                _settle_family(family, family_completed, family_failure)
                # Post-hoc budget, scaled by family size (one unit does the
                # work of len(members) cells).
                if cell_timeout is not None:
                    elapsed = time.perf_counter() - t0_family
                    budget = cell_timeout * len(family.members)
                    if elapsed > budget:
                        first = family.members[0]
                        _store_partial()
                        raise CellExecutionError(
                            f"experiment cell ({first.workload}, {first.label}) "
                            f"family of {len(family.members)} exceeded the "
                            f"per-cell timeout ({elapsed:.3f}s > {budget:g}s)"
                        )
            for cell in loose:
                try:
                    computed[cell] = timed_execute_cell(
                        cell,
                        config,
                        trace_paths.get(cell.workload),
                        profile_paths.get(cell.workload) if cell.needs_profile else None,
                    )
                except Exception as exc:
                    raise CellExecutionError(
                        f"experiment cell ({cell.workload}, {cell.label}) failed: {exc}"
                    ) from exc
                # The in-process path cannot preempt a running cell; enforce
                # the budget post-hoc so the run still fails with attribution.
                if cell_timeout is not None and computed[cell][1] > cell_timeout:
                    raise CellExecutionError(
                        f"experiment cell ({cell.workload}, {cell.label}) exceeded "
                        f"the per-cell timeout ({computed[cell][1]:.3f}s > "
                        f"{cell_timeout:g}s)"
                    )
                _notify(cell, cached=False)
        else:
            owns_pool = pool is None
            if owns_pool:
                pool = ProcessPoolExecutor(
                    max_workers=min(jobs, len(units) + len(loose))
                )
            timed_out = False
            try:
                futures: dict[Any, Any] = {}
                for family in units:
                    futures[family] = pool.submit(
                        execute_family,
                        family,
                        config,
                        trace_paths.get(family.workload),
                        profile_paths.get(family.workload),
                    )
                for cell in loose:
                    futures[cell] = pool.submit(
                        timed_execute_cell,
                        cell,
                        config,
                        trace_paths.get(cell.workload),
                        profile_paths.get(cell.workload) if cell.needs_profile else None,
                    )
                for item, future in futures.items():
                    if isinstance(item, SweepFamily):
                        workload, label = item.members[0].workload, item.members[0].label
                        budget = (
                            cell_timeout * len(item.members)
                            if cell_timeout is not None
                            else None
                        )
                    else:
                        workload, label = item.workload, item.label
                        budget = cell_timeout
                    try:
                        settled = future.result(timeout=budget)
                    except FutureTimeoutError:
                        timed_out = True
                        for f in futures.values():
                            f.cancel()
                        if isinstance(item, SweepFamily):
                            _store_partial()
                        raise CellExecutionError(
                            f"experiment cell ({workload}, {label}) "
                            f"exceeded the per-cell timeout ({budget:g}s)"
                        ) from None
                    except FutureCancelledError:
                        raise CellExecutionError(
                            f"experiment cell ({workload}, {label}) "
                            f"was cancelled"
                        ) from None
                    except Exception as exc:
                        raise CellExecutionError(
                            f"experiment cell ({workload}, {label}) "
                            f"failed in worker: {exc}"
                        ) from exc
                    if isinstance(item, SweepFamily):
                        _settle_family(item, settled[0], settled[1])
                    else:
                        computed[item] = settled
                        _notify(item, cached=False)
            finally:
                if owns_pool:
                    # On a timeout, abandon the pool without joining the hung
                    # worker (joining would re-introduce the indefinite block
                    # the timeout exists to prevent).
                    pool.shutdown(wait=not timed_out, cancel_futures=True)

    for cell in pending:
        result, seconds = computed[cell]
        results[(cell.workload, cell.label)] = result
        stats.cache_misses += 1
        stats.cell_seconds[cell.name] = seconds
        if result_cache is not None:
            result_cache.store(keys[cell], result)

    # Deterministic aggregation order: the caller's declaration order, not
    # completion order.
    ordered = {
        (cell.workload, cell.label): results[(cell.workload, cell.label)]
        for cell in cells
    }
    stats.wall_seconds = time.perf_counter() - t_start
    return ordered, stats


class ExperimentEngine:
    """Convenience wrapper binding a config (+ optional overrides)."""

    def __init__(
        self,
        config: PaperConfig,
        jobs: int | None = None,
        result_cache: ResultStore | None = None,
        cell_timeout: float | None = None,
    ):
        self.config = config
        self.jobs = effective_jobs(config.jobs if jobs is None else jobs)
        if result_cache is None:
            result_cache = make_store(config)
        self.result_cache = result_cache
        self.cell_timeout = (
            config.cell_timeout if cell_timeout is None else cell_timeout
        )

    def run(
        self, cells: Iterable[SimCell]
    ) -> tuple[dict[tuple[str, str], SimulationResult], EngineStats]:
        return run_cells(
            cells,
            self.config,
            jobs=self.jobs,
            result_cache=self.result_cache,
            cell_timeout=self.cell_timeout,
        )
