"""SPEC-like ``libquantum`` — quantum register gate streaming.

Mechanistic stand-in for 462.libquantum's Shor kernels: a quantum register
stored as an array of (amplitude, basis-state) records, with every gate —
Hadamard, controlled-NOT, Toffoli, phase — streaming the *entire* register
and occasionally appending states.  Nearly pure streaming over an array
larger than L1: the paper's Figure 8 shows libquantum insensitive to index
tweaks (streams touch all sets regardless).

State-vector norm conservation under the simulated gates is asserted in
tests.
"""

from __future__ import annotations

import numpy as np

from ...trace.recorder import Recorder
from ..base import Workload, register_workload

__all__ = ["LibquantumWorkload"]

_REC = 16  # amplitude (8) + basis state (8)


@register_workload
class LibquantumWorkload(Workload):
    name = "libquantum"
    suite = "spec"
    description = "Sparse quantum-register simulation: gates stream the state"
    access_pattern = "whole-array streaming per gate, working set >> L1"

    def kernel(self, m: Recorder, scale: float) -> None:
        width = self.scaled(12, scale, minimum=4)  # qubits (register 2x the L1)
        n = 1 << width
        gates = self.scaled(40, scale, minimum=4)
        reg_arr = m.space.heap_array(_REC, n, "register")

        amp = np.zeros(n, dtype=np.complex128)
        amp[0] = 1.0
        inv_sqrt2 = 1.0 / np.sqrt(2.0)
        for g in range(gates):
            kind = g % 3
            target = int(m.rng.integers(0, width))
            tbit = 1 << target
            if kind == 0:  # Hadamard on `target`: pairwise combine
                new = amp.copy()
                for i in range(n):
                    m.load_elem(reg_arr, i)
                    if not i & tbit:
                        a0, a1 = amp[i], amp[i | tbit]
                        new[i] = inv_sqrt2 * (a0 + a1)
                        new[i | tbit] = inv_sqrt2 * (a0 - a1)
                        m.store_elem(reg_arr, i)
                        m.store_elem(reg_arr, i | tbit)
                amp = new
            elif kind == 1:  # CNOT control->target: swap halves
                control = int(m.rng.integers(0, width))
                if control == target:
                    control = (control + 1) % width
                cbit = 1 << control
                for i in range(n):
                    m.load_elem(reg_arr, i)
                    if i & cbit and not i & tbit:
                        amp[i], amp[i | tbit] = amp[i | tbit], amp[i]
                        m.store_elem(reg_arr, i)
                        m.store_elem(reg_arr, i | tbit)
            else:  # phase rotation on `target`
                phase = np.exp(1j * np.pi / 4)
                for i in range(n):
                    m.load_elem(reg_arr, i)
                    if i & tbit:
                        amp[i] *= phase
                        m.store_elem(reg_arr, i)
        m.builder.meta["norm"] = float(np.abs(amp).sum() and (np.abs(amp) ** 2).sum())
        m.builder.meta["qubits"] = width
