"""Extension experiment: the full hybrid matrix.

The paper's Figure 8 explores one hybrid family (column-associative ×
indexing).  Section III promises "hybrid techniques that combine indexing
methods with programmable associativities" more broadly; this experiment
fills in the matrix: {column-associative, adaptive, victim} × {modulo, XOR,
odd-multiplier, prime-modulo} on the MiBench suite, reported as % miss
reduction versus the plain direct-mapped baseline so all cells share a
scale.
"""

from __future__ import annotations

from typing import Callable

from ..core.caches import (
    AdaptiveGroupAssociativeCache,
    ColumnAssociativeCache,
    VictimCache,
)
from ..core.indexing import (
    IndexingScheme,
    ModuloIndexing,
    OddMultiplierIndexing,
    PrimeModuloIndexing,
    XorIndexing,
)
from ..core.simulator import simulate
from ..core.uniformity import percent_reduction
from ..workloads.mibench import MIBENCH_ORDER
from .config import PaperConfig
from .report import ExperimentResult
from .runner import baseline_result, register_experiment, workload_trace

__all__ = ["run_ext_hybrid"]

_ARCHITECTURES: dict[str, Callable] = {
    "ColAssoc": ColumnAssociativeCache,
    "Adaptive": AdaptiveGroupAssociativeCache,
    "Victim": VictimCache,
}

_INDEXES: dict[str, Callable] = {
    "modulo": ModuloIndexing,
    "xor": XorIndexing,
    "odd": lambda g: OddMultiplierIndexing(g, 9),
    "prime": PrimeModuloIndexing,
}


@register_experiment("ext-hybrid")
def run_ext_hybrid(config: PaperConfig) -> ExperimentResult:
    g = config.geometry
    columns = [f"{a}+{i}" for a in _ARCHITECTURES for i in _INDEXES]
    result = ExperimentResult(
        experiment_id="ext-hybrid",
        title="% miss reduction vs DM: programmable associativity x indexing",
        columns=columns,
    )
    for bench in MIBENCH_ORDER:
        trace = workload_trace(bench, config)
        base = baseline_result(trace, config)
        row = {}
        for arch_name, arch in _ARCHITECTURES.items():
            for idx_name, idx in _INDEXES.items():
                scheme: IndexingScheme = idx(g)
                cache = arch(g, indexing=scheme)
                res = simulate(cache, trace)
                row[f"{arch_name}+{idx_name}"] = percent_reduction(res.misses, base.misses)
        result.add_row(bench, row)
    result.add_average_row()
    result.note("generalises the paper's Figure 8 beyond the column-associative cache")
    return result


from .warm import provides_traces, workload_spec  # noqa: E402


@provides_traces("ext-hybrid")
def ext_hybrid_traces(config: PaperConfig):
    return [workload_spec(b, config) for b in MIBENCH_ORDER]
