"""Trace persistence tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace import Trace, TraceCache, load_din, load_npz, save_din, save_npz, zipf_trace


@pytest.fixture
def sample() -> Trace:
    return Trace(
        np.array([0x10, 0x20, 0x30], dtype=np.uint64),
        is_write=np.array([False, True, False]),
        thread=np.array([0, 1, 0], dtype=np.int16),
        name="sample",
        meta={"seed": 7, "note": "hello"},
    )


class TestNpz:
    def test_round_trip(self, sample, tmp_path):
        path = save_npz(sample, tmp_path / "t.npz")
        back = load_npz(path)
        np.testing.assert_array_equal(back.addresses, sample.addresses)
        np.testing.assert_array_equal(back.is_write, sample.is_write)
        np.testing.assert_array_equal(back.thread, sample.thread)
        assert back.name == "sample"
        assert back.meta == {"seed": 7, "note": "hello"}

    def test_suffix_added(self, sample, tmp_path):
        path = save_npz(sample, tmp_path / "t")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_large_trace(self, tmp_path):
        t = zipf_trace(30_000, seed=1)
        back = load_npz(save_npz(t, tmp_path / "big.npz"))
        np.testing.assert_array_equal(back.addresses, t.addresses)

    def test_atomic_write_leaves_no_temp_files(self, sample, tmp_path):
        save_npz(sample, tmp_path / "t.npz")
        save_npz(sample, tmp_path / "t.npz")  # overwrite is atomic too
        leftovers = [p for p in tmp_path.iterdir() if p.name != "t.npz"]
        assert leftovers == []


class TestDin:
    def test_round_trip(self, sample, tmp_path):
        path = save_din(sample, tmp_path / "t.din")
        back = load_din(path)
        np.testing.assert_array_equal(back.addresses, sample.addresses)
        np.testing.assert_array_equal(back.is_write, sample.is_write)

    def test_comments_and_blanks_skipped(self, tmp_path):
        p = tmp_path / "x.din"
        p.write_text("# header\n\n0 10\n1 ff\n")
        t = load_din(p)
        assert t.addresses.tolist() == [0x10, 0xFF]
        assert t.is_write.tolist() == [False, True]

    def test_name_defaults_to_stem(self, sample, tmp_path):
        path = save_din(sample, tmp_path / "mytrace.din")
        assert load_din(path).name == "mytrace"


class TestTraceCache:
    def test_miss_generates_then_hits(self, tmp_path):
        cache = TraceCache(tmp_path)
        calls = []

        def gen():
            calls.append(1)
            return zipf_trace(100, seed=2)

        a = cache.get_or_create("k1", gen)
        b = cache.get_or_create("k1", gen)
        assert len(calls) == 1
        np.testing.assert_array_equal(a.addresses, b.addresses)

    def test_key_for_stable(self):
        k1 = TraceCache.key_for("fft", seed=1, limit=100)
        k2 = TraceCache.key_for("fft", limit=100, seed=1)
        assert k1 == k2

    def test_clear(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.get_or_create("k", lambda: zipf_trace(10))
        cache.clear()
        assert list(tmp_path.glob("*.npz")) == []
        assert list(tmp_path.glob("*.rtr")) == []

    def test_corrupt_entry_regenerated_not_trusted(self, tmp_path):
        """A truncated entry (e.g. from a pre-atomic-write race) is healed."""
        from repro.trace import load_trace

        cache = TraceCache(tmp_path)
        first = cache.get_or_create("k", lambda: zipf_trace(50, seed=3))
        path = cache.path_for("k")
        blob = path.read_bytes()
        path.write_bytes(blob[:-2])  # chop the tail off the on-disk entry
        calls = []

        def regen():
            calls.append(1)
            return zipf_trace(50, seed=3)

        healed = cache.get_or_create("k", regen)
        assert calls == [1]
        np.testing.assert_array_equal(healed.addresses, first.addresses)
        # ... and the healed entry is a valid file again.
        np.testing.assert_array_equal(
            load_trace(cache.path_for("k")).addresses, first.addresses
        )
